"""A small, deterministic discrete-event simulation engine.

The engine is intentionally minimal: a priority queue of
:class:`Event` objects ordered by ``(time, priority, sequence)``.
Events scheduled for the same instant are executed in the order defined
by their ``priority`` and, for equal priorities, their insertion order.
This makes every simulation run fully deterministic for a given seed,
which the test-suite and the benchmark harness rely on.

Example
-------
>>> sim = Simulator()
>>> seen = []
>>> _ = sim.schedule(2.0, lambda: seen.append("b"))
>>> _ = sim.schedule(1.0, lambda: seen.append("a"))
>>> sim.run()
>>> seen
['a', 'b']
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional


class SimulationError(RuntimeError):
    """Raised on misuse of the engine (e.g. scheduling in the past)."""


@dataclass(frozen=True)
class Event:
    """A scheduled callback.

    Attributes
    ----------
    time:
        Absolute simulation time (seconds) at which the event fires.
    priority:
        Tie-breaker for simultaneous events; lower fires first.
    sequence:
        Insertion counter; guarantees FIFO order among equal
        ``(time, priority)`` events.
    action:
        Zero-argument callable executed when the event fires.
    """

    time: float
    priority: int
    sequence: int
    action: Callable[[], None] = field(compare=False)

    def sort_key(self) -> tuple[float, int, int]:
        return (self.time, self.priority, self.sequence)


class EventQueue:
    """A stable priority queue of scheduled callbacks.

    Heap entries are plain ``(time, priority, sequence, action)``
    tuples — the sort key is stored once, not duplicated into a frozen
    :class:`Event`'s compare fields, and no dataclass is allocated per
    push. The unique ``sequence`` guarantees tuple comparison never
    reaches the (incomparable) action. :class:`Event` objects are
    materialized only where the public API returns them (:meth:`push`'s
    handle, :meth:`pop`).
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, int, Callable[[], None]]] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, time: float, action: Callable[[], None], priority: int = 0) -> Event:
        """Insert an event and return it."""
        sequence = next(self._counter)
        heapq.heappush(self._heap, (time, priority, sequence, action))
        return Event(time=time, priority=priority, sequence=sequence, action=action)

    def pop(self) -> Event:
        """Remove and return the earliest event.

        Raises
        ------
        IndexError
            If the queue is empty.
        """
        time, priority, sequence, action = heapq.heappop(self._heap)
        return Event(time=time, priority=priority, sequence=sequence, action=action)

    def pop_entry(self) -> tuple[float, int, int, Callable[[], None]]:
        """Remove and return the earliest raw heap entry (no Event).

        The engine's inner loop uses this to skip the per-step Event
        allocation; external callers should prefer :meth:`pop`.
        """
        return heapq.heappop(self._heap)

    def peek_time(self) -> Optional[float]:
        """Return the fire time of the earliest event, or ``None``."""
        if not self._heap:
            return None
        return self._heap[0][0]


class Simulator:
    """Deterministic discrete-event simulator.

    The simulator owns a clock (``now``) and an :class:`EventQueue`.
    Actions scheduled while the simulation runs are allowed (events may
    schedule follow-up events) as long as they are not in the past.
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = start_time
        self._queue = EventQueue()
        self._events_executed = 0
        self._events_by_priority: dict[int, int] = {}
        #: Optional hook called as ``observer(now, events_executed)``
        #: after every executed event. Installed by the detcheck
        #: sanitizer to assert invariants (e.g. the global RNG stayed
        #: untouched) at event granularity; ``None`` costs one
        #: attribute load per event.
        self.event_observer: Optional[Callable[[float, int], None]] = None

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Number of events that have fired so far."""
        return self._events_executed

    @property
    def events_by_priority(self) -> dict[int, int]:
        """Executed-event counts per priority class (copy).

        Priorities are caller-defined; the runner maps its scheduling
        classes (noon housekeeping, Internet syncs, contacts) onto
        them, so this breakdown shows where simulation time goes.
        """
        return dict(self._events_by_priority)

    @property
    def pending_events(self) -> int:
        """Number of events still waiting in the queue."""
        return len(self._queue)

    def schedule(self, time: float, action: Callable[[], None], priority: int = 0) -> Event:
        """Schedule ``action`` at absolute ``time``.

        Raises
        ------
        SimulationError
            If ``time`` lies in the past.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at t={time:.3f} before current time t={self._now:.3f}"
            )
        return self._queue.push(time, action, priority)

    def schedule_after(self, delay: float, action: Callable[[], None], priority: int = 0) -> Event:
        """Schedule ``action`` ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self._queue.push(self._now + delay, action, priority)

    def schedule_every(
        self,
        interval: float,
        action: Callable[[], None],
        start: Optional[float] = None,
        until: Optional[float] = None,
        priority: int = 0,
    ) -> None:
        """Schedule ``action`` periodically.

        The action fires first at ``start`` (default: ``now + interval``)
        and then every ``interval`` seconds while the fire time is
        strictly below ``until`` (default: forever — bounded only by
        ``run(until=...)``).
        """
        if interval <= 0:
            raise SimulationError(f"non-positive interval {interval!r}")
        first = self._now + interval if start is None else start

        def fire_and_reschedule(at: float) -> None:
            action()
            nxt = at + interval
            if until is None or nxt < until:
                self._queue.push(nxt, lambda: fire_and_reschedule(nxt), priority)

        if until is None or first < until:
            self.schedule(first, lambda: fire_and_reschedule(first), priority)

    def step(self) -> bool:
        """Execute the next event. Return ``False`` if none remained."""
        if not self._queue:
            return False
        time, priority, __, action = self._queue.pop_entry()
        self._now = time
        action()
        self._events_executed += 1
        self._events_by_priority[priority] = (
            self._events_by_priority.get(priority, 0) + 1
        )
        observer = self.event_observer
        if observer is not None:
            observer(self._now, self._events_executed)
        return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until the queue drains or the clock would pass ``until``.

        Events scheduled exactly at ``until`` are executed; the clock
        never advances beyond the last executed event.

        ``max_events`` is a safety valve for long campaigns: when more
        than that many events would execute *within this call*, a
        :class:`SimulationError` is raised instead of looping forever
        (e.g. a buggy action reposting itself at the current instant).
        """
        if max_events is not None and max_events < 1:
            raise SimulationError(f"max_events must be >= 1, got {max_events!r}")
        executed_before = self._events_executed
        while self._queue:
            next_time = self._queue.peek_time()
            assert next_time is not None
            if until is not None and next_time > until:
                break
            if (
                max_events is not None
                and self._events_executed - executed_before >= max_events
            ):
                raise SimulationError(
                    f"event budget exhausted: {max_events} events executed "
                    f"by t={self._now:.3f} with {len(self._queue)} still pending"
                )
            self.step()
        if until is not None and until > self._now:
            self._now = until

    def drain(self) -> Iterator[Event]:
        """Yield remaining events in fire order without executing them."""
        while self._queue:
            yield self._queue.pop()
