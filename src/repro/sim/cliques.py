"""Maximal cliques from hello-derived neighbor graphs.

Paper §V: "Since each node periodically sends hello messages, which
contain the set of IDs of other nodes from which the node can receive
messages, each node can calculate all the maximum cliques containing
it." This module implements that computation with a self-contained
Bron–Kerbosch enumeration (pivoting); the test-suite validates it
against :func:`networkx.find_cliques`.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Set

from repro.net.messages import HelloMessage
from repro.types import NodeId

NeighborGraph = Dict[NodeId, Set[NodeId]]


def neighbor_graph_from_hellos(hellos: Iterable[HelloMessage]) -> NeighborGraph:
    """Build the symmetric can-hear graph from recent hello messages.

    An edge (u, v) exists when *both* directions are confirmed: u heard
    v's hello and v reports having heard u (or vice versa through v's
    own hello). One hello from each side suffices because each hello
    carries the sender's ``heard`` set.
    """
    heard_by: Dict[NodeId, Set[NodeId]] = {}
    for hello in hellos:
        heard_by.setdefault(hello.sender, set()).update(hello.heard)
    graph: NeighborGraph = {node: set() for node in heard_by}
    for u, heard in heard_by.items():
        for v in heard:
            if v in heard_by and u in heard_by[v]:
                graph[u].add(v)
                graph[v].add(u)
    return graph


def symmetrize(graph: Mapping[NodeId, Iterable[NodeId]]) -> NeighborGraph:
    """Return a symmetric copy of an adjacency mapping (no self-loops)."""
    out: NeighborGraph = {node: set() for node in graph}
    for u, neighbors in graph.items():
        for v in neighbors:
            if u == v:
                continue
            out.setdefault(u, set()).add(v)
            out.setdefault(v, set()).add(u)
    return out


def maximal_cliques(graph: Mapping[NodeId, Set[NodeId]]) -> Iterator[FrozenSet[NodeId]]:
    """Enumerate all maximal cliques (Bron–Kerbosch with pivoting).

    Isolated vertices are yielded as singleton cliques, matching
    networkx's convention.
    """
    nodes: List[NodeId] = sorted(graph)
    if not nodes:
        return

    def expand(r: Set[NodeId], p: Set[NodeId], x: Set[NodeId]) -> Iterator[FrozenSet[NodeId]]:
        if not p and not x:
            yield frozenset(r)
            return
        # Pivot on the vertex with the most candidates to prune branches.
        pivot = max(p | x, key=lambda u: len(graph[u] & p))
        for v in sorted(p - graph[pivot]):
            yield from expand(r | {v}, p & graph[v], x & graph[v])
            p.remove(v)
            x.add(v)

    yield from expand(set(), set(nodes), set())


def cliques_containing(
    graph: Mapping[NodeId, Set[NodeId]], node: NodeId
) -> List[FrozenSet[NodeId]]:
    """All maximal cliques of ``graph`` that contain ``node``."""
    return [clique for clique in maximal_cliques(graph) if node in clique]


def largest_clique_containing(
    graph: Mapping[NodeId, Set[NodeId]], node: NodeId
) -> FrozenSet[NodeId]:
    """The largest maximal clique containing ``node``.

    Ties break toward the lexicographically smallest member tuple so
    every node in the same tied clique set picks the same clique.
    """
    candidates = cliques_containing(graph, node)
    if not candidates:
        raise KeyError(f"node {node} not in graph")
    return max(candidates, key=lambda c: (len(c), tuple(sorted(c, reverse=True))))


def partition_into_cliques(
    graph: Mapping[NodeId, Set[NodeId]]
) -> List[FrozenSet[NodeId]]:
    """Greedy partition of the graph into disjoint cliques.

    The paper assumes communication cliques do not overlap in its
    traces (§VI-A); when a denser graph is given, we repeatedly peel
    off the largest maximal clique. Deterministic for a given graph.
    """
    remaining: NeighborGraph = {u: set(vs) for u, vs in graph.items()}
    partition: List[FrozenSet[NodeId]] = []
    while remaining:
        best = max(
            maximal_cliques(remaining),
            key=lambda c: (len(c), tuple(sorted(c, reverse=True))),
        )
        partition.append(best)
        for u in best:
            remaining.pop(u, None)
        for u in sorted(remaining):
            remaining[u] -= best
    return partition
