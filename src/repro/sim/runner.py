"""End-to-end simulation: trace + catalog + MBT protocol + metrics.

Implements the evaluation model of §VI-A:

* a configurable fraction of nodes are Internet access nodes;
* every day at 12:00 noon, ``files_per_day`` new files (TTL
  ``ttl_days``) are generated and nodes issue queries by popularity;
* Internet access nodes sync with the servers right after generation
  (and can be configured to sync more often);
* every trace contact triggers one hello/discovery/download exchange
  with fixed metadata and piece budgets;
* delivery ratios are measured among the non-Internet-access nodes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from itertools import groupby
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence

from repro.detlint.hashseed import hash_seed_value

from repro.catalog.adversary import FakeFileFactory
from repro.catalog.generator import CatalogConfig, CatalogGenerator
from repro.catalog.metadata import PublisherRegistry
from repro.catalog.popularity import PopularityTracker
from repro.catalog.server import FileServer, MetadataServer
from repro.core.credits import CREDIT_POLICIES
from repro.core.mbt import MobileBitTorrent, ProtocolConfig, ProtocolVariant, SchedulingMode
from repro.core.node import NodeState
from repro.core.strategies import AdversaryPlan, AdversaryState
from repro.faults import FaultInjector, FaultPlan
from repro.net.medium import ContactBudget
from repro.perf import PerfRecorder
from repro.sim.engine import Simulator
from repro.sim.metrics import MetricsCollector, SimulationResult
from repro.traces.base import ContactTrace
from repro.types import DAY, NodeId, noon_of_day

#: Event priorities: housekeeping before generation before syncs before
#: contacts when several events share an instant.
_PRIORITY_EXPIRE = 0
_PRIORITY_GENERATE = 1
_PRIORITY_SYNC = 2
_PRIORITY_CONTACT = 3
#: Churn crash/rebirth events; after contacts at the same instant so a
#: crash at a contact's exact start time does not retroactively mute it.
_PRIORITY_FAULT = 4


@dataclass(frozen=True)
class SimulationConfig:
    """All knobs of one simulation run (paper defaults, §VI-A)."""

    #: Fraction of nodes that can access the Internet (0.1 – 0.9).
    internet_access_fraction: float = 0.3
    #: New files generated per day at noon (10 – 100).
    files_per_day: int = 40
    #: File (and query) time-to-live in days (1 – 5).
    ttl_days: float = 3.0
    #: Metadata transmissions per contact (1 – 10).
    metadata_per_contact: int = 5
    #: File/piece transmissions per contact (1 – 10).
    files_per_contact: int = 5
    #: Pieces per file (1 = whole-file exchange, the paper's model).
    pieces_per_file: int = 1
    #: Protocol variant under test.
    variant: ProtocolVariant = ProtocolVariant.MBT
    #: Use the tit-for-tat credit policy and cyclic scheduling.
    tit_for_tat: bool = False
    #: Fraction of nodes that are selfish free-riders.
    selfish_fraction: float = 0.0
    #: Broadcast medium (paper) or pair-wise baseline.
    broadcast: bool = True
    #: Scheduling override; None picks the §V default for the policy.
    scheduling: Optional[SchedulingMode] = None
    #: Frequent-contact threshold: max days between meetings
    #: (3 for DieselNet, 1 for NUS, §VI-A).
    frequent_contact_max_gap_days: float = 3.0
    #: Number of simulated days; None = ceil of the trace span.
    num_days: Optional[int] = None
    #: Internet sync instants per day for access nodes (>= 1).
    internet_syncs_per_day: int = 1
    #: Bound on each node's metadata store (None = unbounded).
    metadata_capacity: Optional[int] = None
    #: Eviction policy of bounded stores: popularity | fifo | lru.
    metadata_policy: str = "popularity"
    #: Bound on each node's piece buffer, in pieces (None = unbounded).
    piece_capacity: Optional[int] = None
    #: Run the full hello-beacon clique-derivation path (§III-B/§V)
    #: instead of trusting trace contact membership.
    derive_cliques_from_hellos: bool = False
    #: Derive per-contact budgets from contact duration and bandwidth
    #: instead of the fixed counts above (§V's realistic regime).
    use_duration_budgets: bool = False
    #: Effective channel bandwidth when duration budgets are on.
    bandwidth_bytes_per_s: float = 100_000.0
    #: Pollution attack (§I / §III-B f): fakes mirrored per day...
    fake_files_per_day: int = 0
    #: ...seeded into this fraction of nodes (the pirates).
    malicious_fraction: float = 0.0
    #: Whether nodes verify metadata signatures (the defence).
    verify_signatures: bool = True
    #: §IV-B future work: encrypt pieces and choke zero-credit peers.
    encrypted_choking: bool = False
    #: User selection among matched metadata: "all" (evaluation model)
    #: or "best" (§III-B: pick one — verified publisher, top popularity).
    selection_policy: str = "all"
    #: Queries created before this many days are excluded from the
    #: measured ratios (warm-up: stores and credit start empty).
    warmup_days: float = 0.0
    #: Internet-side limits (see ProtocolConfig).
    pull_limit: int = 5
    push_limit: int = 10
    popular_file_downloads: int = 2
    #: Files each access node proxy-downloads per sync for its peers.
    proxy_downloads_per_sync: int = 5
    #: Average standing queries generated per node per day.
    queries_per_node_per_day: float = 2.0
    #: When True, the metadata server re-estimates popularities from
    #: the access nodes' requests in the past 24 h (the paper's §IV-A
    #: server-side definition) instead of using the generation-time
    #: ground truth (the paper's simplified evaluation model).
    track_popularity: bool = False
    #: Deterministic fault injection (loss, corruption, flapping,
    #: churn); the default all-zero plan changes nothing.
    faults: FaultPlan = field(default_factory=FaultPlan)
    #: Deterministic adversarial-strategy assignment (free-riders,
    #: under-reporters, polluters, tit-for-tat exploiters); the default
    #: clean plan changes nothing.
    adversaries: AdversaryPlan = field(default_factory=AdversaryPlan)
    #: Credit scheme: "plain" (the paper's §IV-B tit-for-tat ledger) or
    #: "reputation" (first-hand reputation-hardened variant).
    credit_policy: str = "plain"
    #: Safety valve: abort (SimulationError) if a run executes more
    #: than this many events. None = unbounded.
    max_events: Optional[int] = None
    #: Collect wall-clock phase timers (``perf.time_us.*``) alongside
    #: the always-on deterministic ``perf.*`` counters. Off by default:
    #: timer values differ between runs, which would break the
    #: result-equality invariants (serial vs parallel, resume).
    profile: bool = False
    #: Contact-core implementation: "object" (per-object reference
    #: path) or "array" (struct-of-arrays numpy core, bitwise-identical
    #: results — see docs/DETERMINISM.md). Pure implementation knob:
    #: it is not part of the result, so fingerprints from either core
    #: are directly comparable.
    core: str = "object"
    #: Catalog shards on the Internet side: 1 = the paper's flat
    #: central server, >1 = the DHT-sharded catalog of
    #: :mod:`repro.catalog.dht` (XOR-distance placement, per-shard
    #: expiry heaps, cached ranked view). Pure implementation knob at
    #: the observable level: any shard count returns the same results
    #: as the flat server.
    catalog_shards: int = 1
    #: Attach bloom summaries of held/downloading URIs to hellos and
    #: screen metadata candidates against them (see ProtocolConfig).
    #: Changes results (false positives suppress some deliveries), so
    #: off by default.
    hello_blooms: bool = False
    #: Target false-positive rate of the hello summaries.
    bloom_fpr: float = 0.01
    #: Master seed: node roles, catalog and queries all derive from it.
    seed: int = 0

    def __post_init__(self) -> None:
        if self.core not in ("object", "array"):
            raise ValueError(f"core must be 'object' or 'array', got {self.core!r}")
        if not 0.0 <= self.internet_access_fraction <= 1.0:
            raise ValueError("internet_access_fraction must be in [0, 1]")
        if not 0.0 <= self.selfish_fraction <= 1.0:
            raise ValueError("selfish_fraction must be in [0, 1]")
        if self.files_per_day < 1:
            raise ValueError("files_per_day must be >= 1")
        if self.ttl_days <= 0:
            raise ValueError("ttl_days must be positive")
        if self.metadata_per_contact < 0 or self.files_per_contact < 0:
            raise ValueError("per-contact budgets must be non-negative")
        if self.internet_syncs_per_day < 1:
            raise ValueError("internet_syncs_per_day must be >= 1")
        if not 0.0 <= self.malicious_fraction <= 1.0:
            raise ValueError("malicious_fraction must be in [0, 1]")
        if self.fake_files_per_day < 0:
            raise ValueError("fake_files_per_day must be non-negative")
        if self.credit_policy not in CREDIT_POLICIES:
            raise ValueError(
                f"credit_policy must be one of {CREDIT_POLICIES}, "
                f"got {self.credit_policy!r}"
            )
        if self.catalog_shards < 1:
            raise ValueError("catalog_shards must be >= 1")
        if not 0.0 < self.bloom_fpr < 1.0:
            raise ValueError("bloom_fpr must be in (0, 1)")

    def protocol_config(self) -> ProtocolConfig:
        return ProtocolConfig(
            variant=self.variant,
            budget=ContactBudget(
                metadata=self.metadata_per_contact, pieces=self.files_per_contact
            ),
            tit_for_tat=self.tit_for_tat,
            scheduling=self.scheduling,
            broadcast=self.broadcast,
            pull_limit=self.pull_limit,
            push_limit=self.push_limit,
            popular_file_downloads=self.popular_file_downloads,
            proxy_downloads=self.proxy_downloads_per_sync,
            request_memory=self.ttl_days * DAY,
            derive_cliques=self.derive_cliques_from_hellos,
            duration_budgets=self.use_duration_budgets,
            bandwidth_bytes_per_s=self.bandwidth_bytes_per_s,
            encrypted_choking=self.encrypted_choking,
            hello_blooms=self.hello_blooms,
            bloom_fpr=self.bloom_fpr,
            bloom_seed=self.seed,
        )

    def catalog_config(self) -> CatalogConfig:
        return CatalogConfig(
            files_per_day=self.files_per_day,
            ttl_days=self.ttl_days,
            pieces_per_file=self.pieces_per_file,
            queries_per_node_per_day=self.queries_per_node_per_day,
        )

    def with_variant(self, variant: ProtocolVariant) -> "SimulationConfig":
        """Copy with a different protocol variant (sweep helper)."""
        return replace(self, variant=variant)


class Simulation:
    """One runnable simulation over a contact trace."""

    def __init__(self, trace: ContactTrace, config: SimulationConfig) -> None:
        if trace.num_nodes < 2:
            raise ValueError("trace must involve at least two nodes")
        self.trace = trace
        self.config = config
        self._rng = random.Random(config.seed)

        nodes = list(trace.nodes)
        self._access_nodes = self._pick_nodes(nodes, config.internet_access_fraction)
        self._selfish_nodes = self._pick_nodes(nodes, config.selfish_fraction)
        self._malicious_nodes = self._pick_nodes(nodes, config.malicious_fraction)
        # The adversary assignment draws from its own SHA-256-derived
        # stream, never from self._rng: activating a plan must not
        # perturb the role picks above. A clean plan builds no state at
        # all, keeping the honest path bitwise identical.
        self._adversary = (
            None
            if config.adversaries.is_clean()
            else AdversaryState(config.adversaries, nodes, config.seed)
        )

        registry = PublisherRegistry(config.seed)
        self._registry = registry
        self._states: Dict[NodeId, NodeState] = {
            node: NodeState(
                node=node,
                registry=registry,
                internet_access=node in self._access_nodes,
                selfish=node in self._selfish_nodes,
                metadata_capacity=config.metadata_capacity,
                metadata_policy=config.metadata_policy,
                piece_capacity=config.piece_capacity,
                verify_signatures=config.verify_signatures,
                selection_policy=config.selection_policy,
                strategy=(
                    self._adversary.strategy_of(node)
                    if self._adversary is not None
                    else None
                ),
                credit_policy=config.credit_policy,
            )
            for node in nodes
        }
        frequent = trace.frequent_neighbors(config.frequent_contact_max_gap_days)
        for node, neighbors in frequent.items():
            self._states[node].frequent_contacts = neighbors

        tracker = (
            PopularityTracker(population=max(1, len(self._access_nodes)))
            if config.track_popularity
            else None
        )
        # Perf first: the catalog servers record their shard lookups
        # and heap expiries into the run's recorder.
        self._perf = PerfRecorder(profile=config.profile)
        if config.catalog_shards > 1:
            from repro.catalog.dht import ShardedMetadataServer

            self._metadata_server = ShardedMetadataServer(
                config.catalog_shards, tracker, perf=self._perf
            )
        else:
            self._metadata_server = MetadataServer(tracker, perf=self._perf)
        self._file_server = FileServer(perf=self._perf)
        self._metrics = MetricsCollector(measure_from=config.warmup_days * DAY)
        self._generator = CatalogGenerator(
            config.catalog_config(), nodes, seed=config.seed, registry=registry
        )
        self._fake_factory = (
            FakeFileFactory(seed=config.seed)
            if config.fake_files_per_day > 0 and self._malicious_nodes
            else None
        )
        # Strategy polluters get their own factory (distinct URI tag +
        # derived seed) so they can coexist with the legacy pirate path.
        self._polluter_factory = (
            FakeFileFactory(seed=self._adversary.polluter_factory_seed, tag="p")
            if self._adversary is not None
            and self._adversary.polluters
            and config.adversaries.polluter_fakes_per_day > 0
            else None
        )
        # A clean plan builds no injector at all, keeping the fault-free
        # path (and its results) bitwise identical to pre-fault builds.
        self._injector = (
            None if config.faults.is_clean() else FaultInjector(config.faults, config.seed)
        )
        # Array core: build the struct-of-arrays mirror over the (still
        # empty) stores and attach its observers before any catalog
        # state flows in. Raises an informative error without numpy.
        self._arrays = None
        if config.core == "array":
            from repro.core.arrays import NodeStateArrays

            self._arrays = NodeStateArrays.adopt(self._states)
        self._engine = MobileBitTorrent(
            self._states,
            self._metadata_server,
            self._file_server,
            self._metrics,
            config.protocol_config(),
            faults=self._injector,
            perf=self._perf,
            arrays=self._arrays,
            adversary=self._adversary,
        )

    def _pick_nodes(self, nodes: Sequence[NodeId], fraction: float) -> FrozenSet[NodeId]:
        count = round(fraction * len(nodes))
        count = min(count, len(nodes))
        return frozenset(self._rng.sample(list(nodes), count))

    # -- accessors used by tests and examples --------------------------------------

    @property
    def access_nodes(self) -> FrozenSet[NodeId]:
        return self._access_nodes

    @property
    def selfish_nodes(self) -> FrozenSet[NodeId]:
        return self._selfish_nodes

    @property
    def malicious_nodes(self) -> FrozenSet[NodeId]:
        return self._malicious_nodes

    @property
    def adversary(self) -> Optional[AdversaryState]:
        """The active adversary state (None under a clean plan)."""
        return self._adversary

    @property
    def adversary_nodes(self) -> FrozenSet[NodeId]:
        """Nodes assigned a non-honest strategy by the adversary plan."""
        return self._adversary.nodes if self._adversary is not None else frozenset()

    @property
    def states(self) -> Dict[NodeId, NodeState]:
        return self._states

    @property
    def engine(self) -> MobileBitTorrent:
        return self._engine

    @property
    def arrays(self):
        """The array core's struct-of-arrays mirror (None = object core)."""
        return self._arrays

    @property
    def metrics(self) -> MetricsCollector:
        return self._metrics

    def num_days(self) -> int:
        if self.config.num_days is not None:
            return self.config.num_days
        return max(1, int(-(-self.trace.duration // DAY)))

    # -- execution ------------------------------------------------------------------

    def run(
        self,
        event_observer: Optional[Callable[[float, int], None]] = None,
    ) -> SimulationResult:
        """Execute the full simulation and return the delivery ratios.

        ``event_observer`` (if given) is installed on the engine and
        called after every executed event — the detcheck sanitizer's
        hook for per-event invariant assertions.
        """
        sim = Simulator()
        sim.event_observer = event_observer
        days = self.num_days()
        horizon = days * DAY

        for day in range(days):
            noon = noon_of_day(day)
            sim.schedule(noon, self._make_noon_action(day, noon), _PRIORITY_EXPIRE)
            for k in range(self.config.internet_syncs_per_day):
                offset = k * DAY / self.config.internet_syncs_per_day
                at = noon + offset
                if at < horizon:
                    sim.schedule(at, self._make_sync_action(at), _PRIORITY_SYNC)

        # Consecutive contacts at the same trace instant are scheduled
        # as ONE batch event: the engine processes them in the same
        # order as before (grouping only merges runs, so the stable
        # event queue's pop order is unchanged) but can share
        # instant-wide work — e.g. the array core's record-liveness
        # vector — across the whole batch. ``events_contact`` therefore
        # counts batches; ``contacts_processed`` still counts contacts.
        def contacts_in_horizon():
            for contact in self.trace:
                if contact.start >= horizon:
                    break
                yield contact

        for start, group in groupby(contacts_in_horizon(), key=lambda c: c.start):
            sim.schedule(
                start,
                self._make_contacts_action(list(group), start),
                _PRIORITY_CONTACT,
            )

        if self._injector is not None:
            for node, crash_at, rebirth_at in self._injector.churn_schedule(
                list(self.trace.nodes), days
            ):
                if crash_at >= horizon:
                    continue
                sim.schedule(crash_at, self._make_crash_action(node), _PRIORITY_FAULT)
                if rebirth_at < horizon:
                    sim.schedule(
                        rebirth_at, self._make_rebirth_action(node), _PRIORITY_FAULT
                    )

        sim.run(until=horizon, max_events=self.config.max_events)
        extra = {
            "num_days": float(days),
            "num_contacts": float(len(self.trace)),
            "access_nodes": float(len(self._access_nodes)),
            "selfish_nodes": float(len(self._selfish_nodes)),
            "malicious_nodes": float(len(self._malicious_nodes)),
            "adversary_nodes": float(len(self.adversary_nodes)),
            "events": float(sim.events_executed),
            # The hash seed this run executed under (-1 = unpinned).
            # Recorded so detcheck (and post-hoc result forensics) can
            # verify what the environment pinned; the kernel exports
            # PYTHONHASHSEED before fan-out, keeping this identical
            # across serial, parallel and resumed executions.
            "detcheck.pythonhashseed": float(hash_seed_value()),
        }
        if self._adversary is not None:
            # Honest-population delivery: the figrobust panel's y-axis.
            # Adversaries' own queries are excluded — a free-rider that
            # starves itself is not protocol degradation.
            honest = frozenset(
                node
                for node in self._states
                if node not in self._adversary.nodes and node not in self._access_nodes
            )
            meta_ratio, file_ratio, count = self._metrics.ratios_for(
                honest, measure_from=self._metrics.measure_from
            )
            extra["adversary.honest_metadata_ratio"] = meta_ratio
            extra["adversary.honest_file_ratio"] = file_ratio
            extra["adversary.honest_queries"] = float(count)
        extra.update(self._instrumentation(sim))
        return self._metrics.result(extra)

    #: Semantic names of the event-priority classes scheduled above.
    _PRIORITY_NAMES = {
        _PRIORITY_EXPIRE: "events_noon",
        _PRIORITY_SYNC: "events_sync",
        _PRIORITY_CONTACT: "events_contact",
        _PRIORITY_FAULT: "events_fault",
    }

    def _instrumentation(self, sim: Simulator) -> Dict[str, float]:
        """Engine, per-priority and per-node counters for ``extra``.

        The keys land in :data:`repro.sim.metrics.COUNTER_KEYS`, so the
        result exposes them pre-filtered as ``result.counters``.
        """
        counters: Dict[str, float] = {}
        for priority, count in sim.events_by_priority.items():
            name = self._PRIORITY_NAMES.get(priority, f"events_priority_{priority}")
            counters[name] = counters.get(name, 0.0) + float(count)
        for name, value in self._engine.counters.as_dict().items():
            counters[name] = float(value)
        stats = [self._states[node].stats for node in sorted(self._states)]
        counters["metadata_rejected_auth"] = float(
            sum(s.metadata_rejected_auth for s in stats)
        )
        counters["metadata_evictions"] = float(sum(s.metadata_evictions for s in stats))
        counters["piece_evictions"] = float(sum(s.piece_evictions for s in stats))
        counters["checksum_rejections"] = float(
            sum(s.checksum_rejections for s in stats)
        )
        if self._injector is not None:
            for name, value in self._injector.counters.items():
                counters[f"faults.{name}"] = float(value)
        if self._adversary is not None:
            for name, value in self._adversary.counters.items():
                counters[f"adversary.{name}"] = float(value)
            for name, value in self._adversary.nodes_by_strategy().items():
                counters[f"adversary.nodes_{name}"] = float(value)
        for name, value in self._perf_counters().items():
            counters[name] = float(value)
        return counters

    def _perf_counters(self) -> Dict[str, int]:
        """Run-level ``perf.*`` instrumentation (engine + node caches)."""
        out = dict(self._perf.as_counters())
        states = list(self._states.values())
        out["perf.wanted_cache_hits"] = sum(s.wanted_cache_hits for s in states)
        out["perf.wanted_cache_misses"] = sum(s.wanted_cache_misses for s in states)
        out["perf.query_cache_hits"] = sum(s.query_cache_hits for s in states)
        out["perf.query_cache_misses"] = sum(s.query_cache_misses for s in states)
        out["perf.token_index_queries"] = sum(
            s.metadata.index_queries for s in states
        )
        return out

    def node_report(self) -> List[Dict[str, object]]:
        """Per-node operational summary after (or during) a run.

        One row per node: role flags, store sizes, send/receive
        counters and total credit granted — the table
        ``examples/freerider_incentives.py`` style analyses start from.
        """
        rows: List[Dict[str, object]] = []
        for node in sorted(self._states):
            state = self._states[node]
            row: Dict[str, object] = {
                "node": int(node),
                "internet_access": state.internet_access,
                "selfish": state.selfish,
                "malicious": node in self._malicious_nodes,
                "strategy": state.strategy.name,
                "metadata_stored": len(state.metadata),
                "pieces_stored": state.pieces.total_pieces(),
                "credit_granted": state.credits.total_granted(),
            }
            row.update(state.stats.as_dict())
            rows.append(row)
        return rows

    def _make_noon_action(self, day: int, noon: float):
        def action() -> None:
            self._engine.expire_all(noon)
            self._metadata_server.refresh_popularities(noon)
            batch = self._generator.generate_day(day, noon)
            self._engine.on_daily_batch(batch, noon)
            self._inject_fakes(batch, noon)

        return action

    def _inject_fakes(self, batch, noon: float) -> None:
        """Seed today's fake mirrors into the pirate nodes (§I attack).

        Two independent pirate populations can be live at once: the
        legacy ``malicious_fraction`` nodes and the adversary plan's
        polluters; each draws from its own factory and URI namespace.
        """
        if self._fake_factory is not None:
            fakes = self._fake_factory.make_fakes(
                batch, self.config.fake_files_per_day
            )
            self._seed_fakes(fakes, sorted(self._malicious_nodes))
        if self._polluter_factory is not None:
            assert self._adversary is not None
            fakes = self._polluter_factory.make_fakes(
                batch, self.config.adversaries.polluter_fakes_per_day
            )
            self._seed_fakes(fakes, sorted(self._adversary.polluters))
            self._adversary.count("fakes_seeded", len(fakes.metadata))

    def _seed_fakes(self, fakes, pirates) -> None:
        for fake in fakes.metadata:
            for node in pirates:
                state = self._states[node]
                # Pirates store their own fabrications unverified and
                # hold the full fake content, ready to serve it.
                state.metadata.add(fake)
                state.receive_whole_file(fake.uri, fake.num_pieces)

    def _make_sync_action(self, at: float):
        def action() -> None:
            for node in sorted(self._access_nodes):
                self._engine.internet_sync(node, at)

        return action

    def _make_contacts_action(self, contacts, at: float):
        def action() -> None:
            self._engine.handle_contacts(contacts, at)

        return action

    def _make_crash_action(self, node: NodeId):
        def action() -> None:
            self._engine.crash_node(node, wipe=self.config.faults.wipe_on_crash)

        return action

    def _make_rebirth_action(self, node: NodeId):
        def action() -> None:
            self._engine.revive_node(node)

        return action


def run_simulation(trace: ContactTrace, config: SimulationConfig) -> SimulationResult:
    """Convenience one-shot runner."""
    return Simulation(trace, config).run()
