"""Space-time graph analysis of contact traces (§II-A).

"A DTN can be described abstractly using a space time graph in which
each edge corresponds to a contact." This module implements that
abstraction and the queries the reproduction uses it for:

* **earliest arrival** (foremost journey): the earliest time data
  generated at a source at time *t* can reach each node, assuming it
  can ride every contact (bandwidth-free oracle). Computed with a
  label-setting sweep over contacts in start order.
* **reachability sets** and **delivery upper bounds**: given a file
  generated at time *t* with TTL, which nodes could possibly have it
  before expiry? No protocol can beat this bound, so it contextualizes
  measured delivery ratios (see ``bench_oracle_bound.py``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Mapping, Optional

from repro.traces.base import ContactTrace
from repro.types import NodeId


@dataclass(frozen=True)
class JourneyResult:
    """Earliest-arrival labels from one (source set, start time) query."""

    start_time: float
    arrival: Mapping[NodeId, float]

    def reachable_by(self, deadline: float) -> FrozenSet[NodeId]:
        """Nodes whose earliest arrival is at or before ``deadline``."""
        return frozenset(
            node for node, at in self.arrival.items() if at <= deadline
        )

    def delay_to(self, node: NodeId) -> float:
        """Earliest-arrival delay to ``node`` (inf if unreachable)."""
        return self.arrival.get(node, math.inf) - self.start_time


def earliest_arrival(
    trace: ContactTrace,
    sources: Iterable[NodeId],
    start_time: float = 0.0,
) -> JourneyResult:
    """Earliest time data at ``sources`` (from ``start_time``) reaches each node.

    Semantics: data can be transferred within any contact whose
    interval intersects the carrier's possession period — a carrier
    holding the data at time ``max(contact.start, label)`` hands it to
    every other member at that instant (broadcast, zero transmission
    time). This is the standard foremost-journey oracle; real protocols
    with budgets can only be slower.
    """
    labels: Dict[NodeId, float] = {node: start_time for node in sources}
    changed = True
    # One forward sweep catches most propagation; contacts with long
    # durations can relay "backwards" in start order (a contact that
    # started earlier but is still open when data arrives), so sweep
    # until a fixed point. Each sweep is O(contacts × clique size).
    while changed:
        changed = False
        for contact in trace:
            # Earliest time any member holds the data during the contact.
            best: Optional[float] = None
            for member in contact.members:
                label = labels.get(member)
                if label is None or label >= contact.end:
                    continue
                at = max(label, contact.start)
                if best is None or at < best:
                    best = at
            if best is None:
                continue
            for member in contact.members:
                if labels.get(member, math.inf) > best:
                    labels[member] = best
                    changed = True
    return JourneyResult(start_time=start_time, arrival=dict(labels))


def reachability_ratio(
    trace: ContactTrace,
    sources: Iterable[NodeId],
    start_time: float,
    deadline: float,
    population: Optional[Iterable[NodeId]] = None,
) -> float:
    """Fraction of ``population`` reachable from ``sources`` by ``deadline``.

    ``population`` defaults to every node in the trace except the
    sources themselves.
    """
    sources = frozenset(sources)
    result = earliest_arrival(trace, sources, start_time)
    reached = result.reachable_by(deadline)
    if population is None:
        pool = frozenset(trace.nodes) - sources
    else:
        pool = frozenset(population) - sources
    if not pool:
        return 0.0
    return len(reached & pool) / len(pool)


def pairwise_delays(
    trace: ContactTrace, start_time: float = 0.0
) -> Dict[NodeId, Dict[NodeId, float]]:
    """Earliest-arrival delay matrix between all node pairs.

    O(nodes × contacts); fine for trace-analysis use, not for inner
    loops.
    """
    matrix: Dict[NodeId, Dict[NodeId, float]] = {}
    for source in trace.nodes:
        result = earliest_arrival(trace, [source], start_time)
        matrix[source] = {
            node: result.delay_to(node) for node in trace.nodes if node != source
        }
    return matrix


def oracle_file_delivery_bound(
    trace: ContactTrace,
    access_nodes: Iterable[NodeId],
    generation_time: float,
    ttl: float,
) -> float:
    """Upper bound on any protocol's file delivery for one generation.

    A file generated at ``generation_time`` enters the DTN through the
    Internet-access nodes; the bound is the fraction of non-access
    nodes the space-time graph can reach before the TTL expires.
    """
    access = frozenset(access_nodes)
    return reachability_ratio(
        trace,
        access,
        start_time=generation_time,
        deadline=generation_time + ttl,
        population=frozenset(trace.nodes) - access,
    )
