"""Delivery bookkeeping: the paper's performance measurements.

§VI-B: "the performance measurements we use are delivery ratios of
metadata and files, which is the ratio of the number of delivered
metadata and files over the total number of queries generated.
Performance is measured among the non-Internet access nodes."

A query is *metadata-delivered* when its node first stores a metadata
record for the query's target file while the query is live, and
*file-delivered* when the node completes every piece of the target file
while the query is live.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.catalog.query import Query
from repro.types import NodeId, Uri


@dataclass
class QueryRecord:
    """Delivery state of one generated query."""

    query: Query
    access_node: bool
    metadata_delivered_at: Optional[float] = None
    file_delivered_at: Optional[float] = None

    @property
    def metadata_delivered(self) -> bool:
        return self.metadata_delivered_at is not None

    @property
    def file_delivered(self) -> bool:
        return self.file_delivered_at is not None


#: Instrumentation counters recognised by :attr:`SimulationResult.counters`.
#: Produced by the engine layers and aggregated into ``extra`` by the
#: runner: discrete-event engine (``events*``), protocol engine
#: (contacts/cliques/hellos/transmissions/choking/syncs) and node
#: stores (evictions, rejections).
COUNTER_KEYS: Tuple[str, ...] = (
    "events",
    "events_noon",
    "events_sync",
    "events_contact",
    "contacts_processed",
    "contact_batches",
    "cliques_processed",
    "hello_exchanges",
    "metadata_transmissions",
    "piece_transmissions",
    "choked_sends",
    "internet_syncs",
    "metadata_evictions",
    "piece_evictions",
    "checksum_rejections",
    "metadata_rejected_auth",
    # Fault-injection counters (present only when a run has a non-clean
    # FaultPlan; clean runs omit them entirely).
    "events_fault",
    "faults.contacts_dropped",
    "faults.contacts_truncated",
    "faults.contacts_skipped_down",
    "faults.metadata_losses",
    "faults.piece_losses",
    "faults.pieces_corrupted",
    "faults.corrupt_receipts",
    "faults.crashes",
    "faults.rebirths",
    # Adversarial-strategy counters (present only when a run has a
    # non-clean AdversaryPlan; honest runs omit them entirely). The
    # ``nodes_*`` entries record the seeded strategy assignment.
    "adversary.holdings_hidden",
    "adversary.turns_skipped",
    "adversary.rewards_inflated",
    "adversary.fakes_seeded",
    "adversary.fake_metadata_transmissions",
    "adversary.fake_piece_transmissions",
    "adversary.nodes_exploiter",
    "adversary.nodes_free_rider",
    "adversary.nodes_polluter",
    "adversary.nodes_under_reporter",
    # The PYTHONHASHSEED the run executed under (-1 = unpinned); see
    # repro.detlint.hashseed. Recorded by the runner so the detcheck
    # sanitizer can verify the environment's pin reached the run.
    "detcheck.pythonhashseed",
)

#: Prefix of the performance-instrumentation namespace (see
#: :mod:`repro.perf`). Counters under it are advisory — deterministic
#: index/cache statistics plus, under ``--profile``, wall-clock phase
#: timers as ``perf.time_us.*`` — and are excluded from bitwise
#: result-identity comparisons.
PERF_COUNTER_PREFIX = "perf."


def format_counters(counters: Mapping[str, int]) -> str:
    """Aligned two-column rendering of an instrumentation-counter dict."""
    if not counters:
        return "(no counters)"
    width = max(len(name) for name in counters)
    return "\n".join(
        f"{name:>{width}}  {int(value):>12d}" for name, value in counters.items()
    )


@dataclass(frozen=True)
class SimulationResult:
    """Final outcome of one simulation run.

    Ratios are measured among non-Internet-access nodes, per the paper.
    ``extra`` carries auxiliary counters (transmissions, per-node
    aggregates) for diagnostics and the benchmark tables; the
    instrumentation subset is available pre-filtered via
    :attr:`counters`.
    """

    metadata_delivery_ratio: float
    file_delivery_ratio: float
    queries_generated: int
    metadata_delivered: int
    files_delivered: int
    access_metadata_delivery_ratio: float
    access_file_delivery_ratio: float
    extra: Mapping[str, float] = field(default_factory=dict)

    def describe(self) -> str:
        return (
            f"metadata {self.metadata_delivery_ratio:.3f}, "
            f"file {self.file_delivery_ratio:.3f} "
            f"({self.queries_generated} queries from non-access nodes)"
        )

    @property
    def counters(self) -> Dict[str, int]:
        """Instrumentation counters present in ``extra``, as ints.

        Keys follow :data:`COUNTER_KEYS` order; counters a run did not
        produce (e.g. ``choked_sends`` without encrypted choking is
        still 0, but pre-instrumentation results lack the key entirely)
        are omitted rather than invented. Performance-instrumentation
        keys (``perf.*``) follow, sorted by name.
        """
        out = {
            key: int(self.extra[key]) for key in COUNTER_KEYS if key in self.extra
        }
        for key in sorted(self.extra):
            if key.startswith(PERF_COUNTER_PREFIX):
                out[key] = int(self.extra[key])
        return out

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form, JSON-serializable (for reports and the CLI)."""
        return {
            "metadata_delivery_ratio": self.metadata_delivery_ratio,
            "file_delivery_ratio": self.file_delivery_ratio,
            "queries_generated": self.queries_generated,
            "metadata_delivered": self.metadata_delivered,
            "files_delivered": self.files_delivered,
            "access_metadata_delivery_ratio": self.access_metadata_delivery_ratio,
            "access_file_delivery_ratio": self.access_file_delivery_ratio,
            "extra": dict(self.extra),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "SimulationResult":
        """Inverse of :meth:`to_dict` (checkpoint-file reconstruction)."""
        return cls(
            metadata_delivery_ratio=float(data["metadata_delivery_ratio"]),  # type: ignore[arg-type]
            file_delivery_ratio=float(data["file_delivery_ratio"]),  # type: ignore[arg-type]
            queries_generated=int(data["queries_generated"]),  # type: ignore[arg-type]
            metadata_delivered=int(data["metadata_delivered"]),  # type: ignore[arg-type]
            files_delivered=int(data["files_delivered"]),  # type: ignore[arg-type]
            access_metadata_delivery_ratio=float(data["access_metadata_delivery_ratio"]),  # type: ignore[arg-type]
            access_file_delivery_ratio=float(data["access_file_delivery_ratio"]),  # type: ignore[arg-type]
            extra=dict(data.get("extra", {})),  # type: ignore[arg-type]
        )


def _percentile(sorted_values: List[float], q: float) -> float:
    """Nearest-rank percentile of pre-sorted values (q in [0, 1])."""
    if not sorted_values:
        raise ValueError("no values")
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    rank = min(len(sorted_values) - 1, max(0, math.ceil(q * len(sorted_values)) - 1))
    return sorted_values[rank]


class MetricsCollector:
    """Tracks every generated query and its delivery instants.

    ``measure_from`` excludes queries created before that instant from
    the reported ratios (warm-up exclusion: stores, credit and
    metadata spread all start empty, so the first TTL window
    under-represents steady state). Excluded queries are still tracked
    for delay analyses.
    """

    def __init__(self, measure_from: float = 0.0) -> None:
        self.measure_from = measure_from
        self._records: List[QueryRecord] = []
        #: (node, target_uri) -> records awaiting delivery.
        self._pending: Dict[Tuple[NodeId, Uri], List[QueryRecord]] = {}
        self.metadata_transmissions = 0
        self.piece_transmissions = 0

    def register_query(self, query: Query, access_node: bool) -> QueryRecord:
        """Start tracking a freshly generated query."""
        record = QueryRecord(query=query, access_node=access_node)
        self._records.append(record)
        self._pending.setdefault((query.node, query.target_uri), []).append(record)
        return record

    def on_metadata(self, node: NodeId, uri: Uri, now: float) -> None:
        """Node stored a metadata record for ``uri``."""
        for record in self._pending.get((node, uri), ()):
            if record.metadata_delivered_at is None and record.query.is_live(now):
                record.metadata_delivered_at = now

    def on_file_complete(self, node: NodeId, uri: Uri, now: float) -> None:
        """Node completed every piece of ``uri``."""
        for record in self._pending.get((node, uri), ()):
            if record.query.is_live(now):
                if record.metadata_delivered_at is None:
                    record.metadata_delivered_at = now
                if record.file_delivered_at is None:
                    record.file_delivered_at = now

    def count_metadata_transmission(self, receivers: int = 1) -> None:
        self.metadata_transmissions += 1

    def count_piece_transmission(self, receivers: int = 1) -> None:
        self.piece_transmissions += 1

    @property
    def records(self) -> List[QueryRecord]:
        return list(self._records)

    def metadata_delays(self, access_node: bool = False) -> List[float]:
        """Sorted metadata delivery delays (delivered queries only)."""
        return sorted(
            r.metadata_delivered_at - r.query.created_at
            for r in self._records
            if r.access_node == access_node and r.metadata_delivered_at is not None
        )

    def file_delays(self, access_node: bool = False) -> List[float]:
        """Sorted file delivery delays (delivered queries only)."""
        return sorted(
            r.file_delivered_at - r.query.created_at
            for r in self._records
            if r.access_node == access_node and r.file_delivered_at is not None
        )

    def ratios_for(
        self,
        nodes: "set[NodeId] | frozenset[NodeId]",
        measure_from: Optional[float] = None,
    ) -> Tuple[float, float, int]:
        """(metadata ratio, file ratio, query count) over a node subset.

        Used for per-group analyses (e.g. cooperative vs free-rider
        delivery under tit-for-tat choking, or honest-node delivery
        under an adversary plan). Counts every query whose issuing node
        is in ``nodes`` regardless of access status; ``measure_from``
        (if given) applies the same warm-up exclusion as the headline
        ratios, the default keeps the historical all-queries behavior.
        """
        records = [r for r in self._records if r.query.node in nodes]
        if measure_from is not None:
            records = [r for r in records if r.query.created_at >= measure_from]
        if not records:
            return (0.0, 0.0, 0)
        meta = sum(1 for r in records if r.metadata_delivered)
        file = sum(1 for r in records if r.file_delivered)
        return (meta / len(records), file / len(records), len(records))

    def result(self, extra: Optional[Mapping[str, float]] = None) -> SimulationResult:
        """Aggregate into a :class:`SimulationResult`."""
        measured = [
            r for r in self._records if r.query.created_at >= self.measure_from
        ]
        non_access = [r for r in measured if not r.access_node]
        access = [r for r in measured if r.access_node]

        def ratios(records: List[QueryRecord]) -> Tuple[float, int, int]:
            if not records:
                return 0.0, 0, 0
            meta = sum(1 for r in records if r.metadata_delivered)
            file = sum(1 for r in records if r.file_delivered)
            return len(records), meta, file

        total, meta, file = ratios(non_access)
        a_total, a_meta, a_file = ratios(access)
        merged_extra = {
            "metadata_transmissions": float(self.metadata_transmissions),
            "piece_transmissions": float(self.piece_transmissions),
        }
        for prefix, delays in (
            ("metadata_delay", self.metadata_delays()),
            ("file_delay", self.file_delays()),
        ):
            if delays:
                merged_extra[f"{prefix}_p50"] = _percentile(delays, 0.50)
                merged_extra[f"{prefix}_p90"] = _percentile(delays, 0.90)
                merged_extra[f"{prefix}_mean"] = sum(delays) / len(delays)
        if extra:
            merged_extra.update(extra)
        return SimulationResult(
            metadata_delivery_ratio=meta / total if total else 0.0,
            file_delivery_ratio=file / total if total else 0.0,
            queries_generated=int(total),
            metadata_delivered=int(meta),
            files_delivered=int(file),
            access_metadata_delivery_ratio=a_meta / a_total if a_total else 0.0,
            access_file_delivery_ratio=a_file / a_total if a_total else 0.0,
            extra=merged_extra,
        )
