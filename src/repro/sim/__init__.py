"""Discrete-event simulation substrate.

This package contains the generic machinery that drives every
experiment in the reproduction:

* :mod:`repro.sim.engine` — a deterministic discrete-event engine.
* :mod:`repro.sim.cliques` — maximal-clique computation over neighbor
  graphs derived from hello messages.
* :mod:`repro.sim.metrics` — per-query delivery bookkeeping.
* :mod:`repro.sim.runner` — the end-to-end simulation that wires traces,
  the Internet-side catalog and the MBT protocol engine together.
"""

from repro.sim.engine import Event, EventQueue, Simulator
from repro.sim.metrics import MetricsCollector, QueryRecord, SimulationResult
from repro.sim.spacetime import (
    JourneyResult,
    earliest_arrival,
    oracle_file_delivery_bound,
    pairwise_delays,
    reachability_ratio,
)

# The runner module imports the protocol engine, which itself imports
# repro.sim.metrics; loading it lazily keeps this package importable
# from repro.core without a circular import.
_LAZY = {"Simulation", "SimulationConfig", "run_simulation"}


def __getattr__(name: str):
    if name in _LAZY:
        from repro.sim import runner

        return getattr(runner, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "Event",
    "EventQueue",
    "Simulator",
    "JourneyResult",
    "earliest_arrival",
    "oracle_file_delivery_bound",
    "pairwise_delays",
    "reachability_ratio",
    "MetricsCollector",
    "QueryRecord",
    "SimulationResult",
    "Simulation",
    "SimulationConfig",
]
