"""Inter-contact time analysis of contact traces.

The inter-contact time (gap between consecutive meetings of a node
pair) is the key statistic of DTN traces: it controls achievable
delivery delay, and its distribution shape (exponential tail vs
power-law head) is how synthetic traces are validated against real
ones in the literature. This module computes:

* per-pair and aggregate inter-contact samples;
* summary statistics (mean, median, coefficient of variation);
* the empirical CCDF on a log grid;
* a maximum-likelihood exponential fit with a one-number
  goodness-of-fit score (mean absolute CCDF deviation), enough to say
  "this generator's gaps look exponential" in tests and examples.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.traces.base import ContactTrace
from repro.types import NodeId


def intercontact_samples(trace: ContactTrace) -> List[float]:
    """Aggregate inter-contact gaps over every node pair.

    A pair with *k* meetings contributes *k−1* gaps, measured from the
    end of one contact to the start of the next (non-negative; nested
    or overlapping contacts contribute zero).
    """
    samples: List[float] = []
    ends: Dict[Tuple[NodeId, NodeId], float] = {}
    for contact in trace:
        for pair in contact.pairs():
            last_end = ends.get(pair)
            if last_end is not None:
                samples.append(max(0.0, contact.start - last_end))
            previous = ends.get(pair, contact.end)
            ends[pair] = max(previous, contact.end)
    return samples


@dataclass(frozen=True)
class InterContactStats:
    """Summary of an inter-contact sample set."""

    count: int
    mean: float
    median: float
    #: Coefficient of variation (std/mean); 1.0 for exponential gaps.
    cv: float

    def describe(self) -> str:
        return (
            f"{self.count} gaps, mean {self.mean / 3600:.2f} h, "
            f"median {self.median / 3600:.2f} h, cv {self.cv:.2f}"
        )


def summarize(samples: Sequence[float]) -> InterContactStats:
    """Compute :class:`InterContactStats` of gap samples."""
    if not samples:
        raise ValueError("no inter-contact samples")
    ordered = sorted(samples)
    n = len(ordered)
    mean = sum(ordered) / n
    median = ordered[n // 2] if n % 2 else (ordered[n // 2 - 1] + ordered[n // 2]) / 2
    variance = sum((x - mean) ** 2 for x in ordered) / n
    cv = math.sqrt(variance) / mean if mean > 0 else 0.0
    return InterContactStats(count=n, mean=mean, median=median, cv=cv)


def empirical_ccdf(
    samples: Sequence[float], points: int = 20
) -> List[Tuple[float, float]]:
    """Empirical CCDF P(X > t) on a geometric grid of ``points`` ts."""
    if not samples:
        raise ValueError("no samples")
    if points < 2:
        raise ValueError("need at least two grid points")
    ordered = sorted(samples)
    positive = [s for s in ordered if s > 0]
    if not positive:
        return [(0.0, 0.0)]
    lo, hi = positive[0], ordered[-1]
    if hi <= lo:
        return [(lo, 0.0)]
    ratio = (hi / lo) ** (1.0 / (points - 1))
    grid = [lo * ratio**i for i in range(points)]
    n = len(ordered)
    ccdf = []
    for t in grid:
        exceed = sum(1 for s in ordered if s > t)
        ccdf.append((t, exceed / n))
    return ccdf


@dataclass(frozen=True)
class ExponentialFit:
    """MLE exponential fit of gap samples."""

    rate: float
    #: Mean absolute deviation between empirical and fitted CCDF.
    ccdf_error: float

    @property
    def mean(self) -> float:
        return 1.0 / self.rate


def fit_exponential(samples: Sequence[float], points: int = 20) -> ExponentialFit:
    """MLE fit (rate = 1/mean) with a CCDF goodness score."""
    stats = summarize(samples)
    if stats.mean <= 0:
        raise ValueError("degenerate samples (zero mean)")
    rate = 1.0 / stats.mean
    deviations = [
        abs(p - math.exp(-rate * t)) for t, p in empirical_ccdf(samples, points)
    ]
    return ExponentialFit(rate=rate, ccdf_error=sum(deviations) / len(deviations))


def pair_meeting_rates(trace: ContactTrace) -> Dict[Tuple[NodeId, NodeId], float]:
    """Meetings per second for every pair that ever met."""
    duration = max(trace.duration, 1e-9)
    return {
        pair: count / duration
        for pair, count in trace.pair_contact_counts().items()
    }
