"""Analytical models: §V capacity and inter-contact statistics."""

from repro.analysis.capacity import (
    CapacityPoint,
    broadcast_per_node_capacity,
    capacity_table,
    pairwise_per_node_capacity,
)
from repro.analysis.intercontact import (
    ExponentialFit,
    InterContactStats,
    empirical_ccdf,
    fit_exponential,
    intercontact_samples,
    pair_meeting_rates,
    summarize,
)

__all__ = [
    "CapacityPoint",
    "broadcast_per_node_capacity",
    "capacity_table",
    "pairwise_per_node_capacity",
    "ExponentialFit",
    "InterContactStats",
    "empirical_ccdf",
    "fit_exponential",
    "intercontact_samples",
    "pair_meeting_rates",
    "summarize",
]
