"""Per-node transmission capacity: broadcast vs pair-wise (§V).

The paper's theoretical observation motivating broadcast-based file
download: for a clique of *n* nodes sharing one wireless channel,

* **broadcast** — one sender at a time, all others receive, so each
  node receives a ``(n−1)/n`` share of the channel: *increasing* in n;
* **pair-wise** — each transmission has exactly one receiver, so each
  node receives a ``1/n`` share: *decreasing* in n.

These functions mirror :meth:`repro.net.medium.TransmissionMedium.
per_node_capacity`; this module adds the closed forms, a table builder
used by ``benchmarks/bench_capacity.py``, and the crossover fact that
the two coincide only at n = 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List


def broadcast_per_node_capacity(n: int, channel_capacity: float = 1.0) -> float:
    """Per-node received bandwidth under broadcast: W·(n−1)/n."""
    if n < 1:
        raise ValueError("clique size must be >= 1")
    if channel_capacity <= 0:
        raise ValueError("channel capacity must be positive")
    if n == 1:
        return 0.0
    return channel_capacity * (n - 1) / n


def pairwise_per_node_capacity(n: int, channel_capacity: float = 1.0) -> float:
    """Per-node received bandwidth under pair-wise transfer: W/n."""
    if n < 1:
        raise ValueError("clique size must be >= 1")
    if channel_capacity <= 0:
        raise ValueError("channel capacity must be positive")
    if n == 1:
        return 0.0
    return channel_capacity / n


def capacity_gain(n: int) -> float:
    """Broadcast advantage factor: (n−1)/n ÷ 1/n = n−1."""
    if n < 2:
        raise ValueError("gain is defined for cliques of size >= 2")
    return float(n - 1)


@dataclass(frozen=True)
class CapacityPoint:
    """One row of the capacity-vs-density table."""

    clique_size: int
    broadcast: float
    pairwise: float

    @property
    def gain(self) -> float:
        return self.broadcast / self.pairwise if self.pairwise else float("inf")


def capacity_table(
    clique_sizes: Iterable[int], channel_capacity: float = 1.0
) -> List[CapacityPoint]:
    """Tabulate both capacities over ``clique_sizes``."""
    return [
        CapacityPoint(
            clique_size=n,
            broadcast=broadcast_per_node_capacity(n, channel_capacity),
            pairwise=pairwise_per_node_capacity(n, channel_capacity),
        )
        for n in clique_sizes
    ]
