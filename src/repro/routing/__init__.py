"""Classic DTN unicast routing substrate.

The paper situates itself against DTN routing work (§II-A): epidemic
flooding, spray-and-wait and PRoPHET are the canonical baselines. This
package implements them over the same :class:`~repro.traces.base.
ContactTrace` model — they serve as a substrate for comparison
experiments (e.g. how plain message routing fares at content delivery
versus MBT's discovery/download split) and as independently tested
infrastructure.
"""

from repro.routing.base import Message, RoutingResult, simulate_routing
from repro.routing.direct import DirectDeliveryRouter
from repro.routing.epidemic import EpidemicRouter
from repro.routing.maxprop import MaxPropRouter
from repro.routing.prophet import ProphetRouter
from repro.routing.spray_wait import SprayAndWaitRouter

__all__ = [
    "Message",
    "RoutingResult",
    "simulate_routing",
    "DirectDeliveryRouter",
    "EpidemicRouter",
    "MaxPropRouter",
    "ProphetRouter",
    "SprayAndWaitRouter",
]
