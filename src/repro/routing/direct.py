"""Direct delivery: the minimal DTN routing baseline.

The source holds its message until it meets the destination. One copy,
one transmission per delivery, worst delay — the lower anchor every
routing comparison needs.
"""

from __future__ import annotations

from typing import List, Set

from repro.routing.base import Message, Router
from repro.types import NodeId


class DirectDeliveryRouter(Router):
    """Forward a message only to its destination."""

    name = "direct"

    def select_transfers(
        self,
        sender: NodeId,
        receiver: NodeId,
        sender_buffer: Set[Message],
        receiver_buffer: Set[Message],
        now: float,
    ) -> List[Message]:
        selected = [
            m
            for m in sender_buffer
            if m.is_live(now) and m.destination == receiver and m not in receiver_buffer
        ]
        selected.sort(key=lambda m: (m.created_at, m.msg_id))
        return selected
