"""MaxProp routing (Burgess et al., INFOCOM'06 — the paper's ref [18]).

MaxProp is the router designed for UMassDieselNet itself, so it is the
natural fourth baseline for this substrate. The implementation follows
the core of the published design:

* **Meeting likelihoods.** Each node keeps a probability vector over
  peers, updated by *incremental averaging*: on meeting ``v``, node
  ``u`` sets ``p_u[v] += 1`` and renormalizes the whole vector to sum
  to 1. Vectors are exchanged on contact (here: readable globally, as
  the simulator owns all state — equivalent to flooding vectors, which
  MaxProp assumes are small).
* **Path costs.** The cost of a path is the sum over its hops of
  ``1 − p(meet)``; a message's cost to destination is the cheapest such
  path found by Dijkstra over the likelihood graph.
* **Transmission order.** New messages (low hop count) go first, then
  ascending destination cost — MaxProp's head-of-buffer priority.
* **Delivery clearing.** Delivered message ids are flooded as acks so
  copies stop consuming transfer budget.
"""

from __future__ import annotations

import heapq
import math
from collections import defaultdict
from typing import Dict, List, Set, Tuple

from repro.routing.base import Message, Router
from repro.types import NodeId


class MaxPropRouter(Router):
    """MaxProp with incremental-averaging likelihoods and ack clearing."""

    name = "maxprop"

    def __init__(self) -> None:
        #: Raw meeting counters; probabilities are counters normalized.
        self._meetings: Dict[NodeId, Dict[NodeId, float]] = defaultdict(
            lambda: defaultdict(float)
        )
        #: Hop counts per (node, msg_id) copy.
        self._hops: Dict[Tuple[NodeId, int], int] = {}
        #: Flooded delivery acks.
        self._acked: Set[int] = set()

    # -- likelihoods -----------------------------------------------------------------

    def on_encounter(self, u: NodeId, v: NodeId, now: float) -> None:
        """Incremental averaging: bump the met peer, renormalize."""
        for a, b in ((u, v), (v, u)):
            self._meetings[a][b] += 1.0

    def meeting_probability(self, u: NodeId, v: NodeId) -> float:
        """Normalized likelihood that ``u``'s next meeting is ``v``."""
        counters = self._meetings.get(u)
        if not counters:
            return 0.0
        total = sum(counters.values())
        return counters.get(v, 0.0) / total if total else 0.0

    def path_cost(self, source: NodeId, destination: NodeId) -> float:
        """Cheapest sum of (1 − p) hop costs, by Dijkstra.

        Unknown destinations cost infinity; the direct hop is always a
        candidate.
        """
        if source == destination:
            return 0.0
        dist: Dict[NodeId, float] = {source: 0.0}
        heap: List[Tuple[float, NodeId]] = [(0.0, source)]
        while heap:
            cost, node = heapq.heappop(heap)
            if node == destination:
                return cost
            if cost > dist.get(node, math.inf):
                continue
            counters = self._meetings.get(node)
            if not counters:
                continue
            total = sum(counters.values())
            if not total:
                continue
            for peer, count in counters.items():
                hop = 1.0 - count / total
                new_cost = cost + hop
                if new_cost < dist.get(peer, math.inf):
                    dist[peer] = new_cost
                    heapq.heappush(heap, (new_cost, peer))
        return math.inf

    # -- forwarding ------------------------------------------------------------------

    def select_transfers(
        self,
        sender: NodeId,
        receiver: NodeId,
        sender_buffer: Set[Message],
        receiver_buffer: Set[Message],
        now: float,
    ) -> List[Message]:
        candidates = [
            m
            for m in sender_buffer
            if m.is_live(now)
            and m not in receiver_buffer
            and m.msg_id not in self._acked
        ]
        # MaxProp priority: destination-bound first, then low hop count
        # (new messages), then ascending estimated cost via receiver.
        candidates.sort(
            key=lambda m: (
                m.destination != receiver,
                self._hops.get((sender, m.msg_id), 0),
                self.path_cost(receiver, m.destination),
                m.created_at,
                m.msg_id,
            )
        )
        return candidates

    def on_transfer(self, message: Message, sender: NodeId, receiver: NodeId) -> None:
        self._hops[(receiver, message.msg_id)] = (
            self._hops.get((sender, message.msg_id), 0) + 1
        )
        if message.destination == receiver:
            # Delivery ack floods instantly (a simulator simplification;
            # real MaxProp piggybacks acks on subsequent contacts).
            self._acked.add(message.msg_id)

    def is_acked(self, msg_id: int) -> bool:
        """Whether a delivery ack for ``msg_id`` has been issued."""
        return msg_id in self._acked
