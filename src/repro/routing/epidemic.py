"""Epidemic routing: flood every message to every encountered node.

The classic upper-bound baseline (Vahdat & Becker): on contact, a node
forwards every live message the peer lacks. Delivery ratio is maximal
for a given trace and budget; transmission cost is the price.
"""

from __future__ import annotations

from typing import List, Set

from repro.routing.base import Message, Router
from repro.types import NodeId


class EpidemicRouter(Router):
    """Forward everything the receiver does not already carry."""

    name = "epidemic"

    def select_transfers(
        self,
        sender: NodeId,
        receiver: NodeId,
        sender_buffer: Set[Message],
        receiver_buffer: Set[Message],
        now: float,
    ) -> List[Message]:
        candidates = [
            m for m in sender_buffer if m.is_live(now) and m not in receiver_buffer
        ]
        # Destination-bound messages first, then oldest first: when a
        # transfer budget applies, direct deliveries never starve.
        candidates.sort(
            key=lambda m: (m.destination != receiver, m.created_at, m.msg_id)
        )
        return candidates
