"""PRoPHET routing (Lindgren, Doria, Schelén — ref [10] of the paper).

Probabilistic Routing Protocol using History of Encounters and
Transitivity. Each node keeps a delivery predictability P(a, b) per
destination, updated by three rules:

* direct encounter:      P(a,b) ← P(a,b) + (1 − P(a,b)) · P_init
* aging (per Δt):        P(a,b) ← P(a,b) · γ^(Δt / aging_unit)
* transitivity:          P(a,c) ← P(a,c) + (1 − P(a,c)) · P(a,b) · P(b,c) · β

A message is forwarded to a peer whose predictability for the
destination exceeds the carrier's.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.routing.base import Message, Router
from repro.types import HOUR, NodeId


class ProphetRouter(Router):
    """PRoPHET with the standard parameterization."""

    name = "prophet"

    def __init__(
        self,
        p_init: float = 0.75,
        beta: float = 0.25,
        gamma: float = 0.98,
        aging_unit: float = HOUR,
    ) -> None:
        if not 0.0 < p_init <= 1.0:
            raise ValueError("p_init must be in (0, 1]")
        if not 0.0 <= beta <= 1.0:
            raise ValueError("beta must be in [0, 1]")
        if not 0.0 < gamma <= 1.0:
            raise ValueError("gamma must be in (0, 1]")
        if aging_unit <= 0:
            raise ValueError("aging_unit must be positive")
        self._p_init = p_init
        self._beta = beta
        self._gamma = gamma
        self._aging_unit = aging_unit
        self._pred: Dict[Tuple[NodeId, NodeId], float] = {}
        self._last_aged: Dict[NodeId, float] = {}

    # -- predictability table -------------------------------------------------------

    def predictability(self, a: NodeId, b: NodeId) -> float:
        """Current P(a, b) without aging side-effects."""
        return self._pred.get((a, b), 0.0)

    def _age(self, node: NodeId, now: float) -> None:
        last = self._last_aged.get(node)
        self._last_aged[node] = now
        if last is None or now <= last:
            return
        factor = self._gamma ** ((now - last) / self._aging_unit)
        for key in list(self._pred):
            if key[0] == node:
                self._pred[key] *= factor

    def on_encounter(self, u: NodeId, v: NodeId, now: float) -> None:
        """Apply aging, the direct-encounter rule and transitivity."""
        self._age(u, now)
        self._age(v, now)
        for a, b in ((u, v), (v, u)):
            p = self.predictability(a, b)
            self._pred[(a, b)] = p + (1.0 - p) * self._p_init
        # Transitivity: both directions, over all known third parties.
        for a, b in ((u, v), (v, u)):
            p_ab = self.predictability(a, b)
            for (owner, dest), p_bc in list(self._pred.items()):
                if owner != b or dest == a:
                    continue
                p_ac = self.predictability(a, dest)
                updated = p_ac + (1.0 - p_ac) * p_ab * p_bc * self._beta
                self._pred[(a, dest)] = updated

    # -- forwarding ------------------------------------------------------------------

    def select_transfers(
        self,
        sender: NodeId,
        receiver: NodeId,
        sender_buffer: Set[Message],
        receiver_buffer: Set[Message],
        now: float,
    ) -> List[Message]:
        selected: List[Message] = []
        for message in sender_buffer:
            if not message.is_live(now) or message in receiver_buffer:
                continue
            if message.destination == receiver:
                selected.append(message)
                continue
            if self.predictability(receiver, message.destination) > self.predictability(
                sender, message.destination
            ):
                selected.append(message)
        selected.sort(
            key=lambda m: (
                m.destination != receiver,
                -self.predictability(receiver, m.destination),
                m.created_at,
                m.msg_id,
            )
        )
        return selected
