"""Unicast DTN routing: message model and trace-driven simulation.

Routers implement a pair-wise forwarding decision; the simulator walks
the contact trace, expands clique contacts into ordered pair exchanges,
enforces a per-contact transfer budget and records deliveries.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.traces.base import Contact, ContactTrace
from repro.types import NodeId


@dataclass(frozen=True)
class Message:
    """A unicast bundle to be routed through the DTN."""

    msg_id: int
    source: NodeId
    destination: NodeId
    created_at: float
    ttl: float

    def __post_init__(self) -> None:
        if self.source == self.destination:
            raise ValueError("source and destination must differ")
        if self.ttl <= 0:
            raise ValueError("ttl must be positive")

    @property
    def expires_at(self) -> float:
        return self.created_at + self.ttl

    def is_live(self, now: float) -> bool:
        return self.created_at <= now < self.expires_at


class Router(ABC):
    """A DTN routing policy.

    Routers keep all per-node state internally (buffers are owned by
    the simulator); ``prepare`` is called once before the run so the
    router can size its tables.
    """

    name: str = "router"

    def prepare(self, nodes: Sequence[NodeId], messages: Sequence[Message]) -> None:
        """Hook called once before simulation starts."""

    def on_encounter(self, u: NodeId, v: NodeId, now: float) -> None:
        """Hook called when ``u`` and ``v`` meet (before forwarding)."""

    @abstractmethod
    def select_transfers(
        self,
        sender: NodeId,
        receiver: NodeId,
        sender_buffer: Set[Message],
        receiver_buffer: Set[Message],
        now: float,
    ) -> List[Message]:
        """Messages ``sender`` forwards to ``receiver``, in priority order."""

    def on_transfer(self, message: Message, sender: NodeId, receiver: NodeId) -> None:
        """Hook called after each accepted transfer."""


@dataclass(frozen=True)
class RoutingResult:
    """Outcome of one routing simulation."""

    delivered: int
    generated: int
    transmissions: int
    delays: Tuple[float, ...] = field(default=())

    @property
    def delivery_ratio(self) -> float:
        return self.delivered / self.generated if self.generated else 0.0

    @property
    def mean_delay(self) -> float:
        return sum(self.delays) / len(self.delays) if self.delays else float("nan")


def simulate_routing(
    trace: ContactTrace,
    messages: Sequence[Message],
    router: Router,
    transfers_per_contact: Optional[int] = None,
) -> RoutingResult:
    """Run ``router`` over ``trace`` delivering ``messages``.

    Clique contacts are expanded into all ordered pairs in
    deterministic order. ``transfers_per_contact`` bounds the number of
    accepted transfers per contact (None = unbounded).
    """
    buffers: Dict[NodeId, Set[Message]] = {node: set() for node in trace.nodes}
    delivered_at: Dict[int, float] = {}
    transmissions = 0

    pending = sorted(messages, key=lambda m: (m.created_at, m.msg_id))
    router.prepare(trace.nodes, pending)
    next_msg = 0

    for contact in trace:
        now = contact.start
        # Inject messages created before this contact.
        while next_msg < len(pending) and pending[next_msg].created_at <= now:
            message = pending[next_msg]
            buffers[message.source].add(message)
            next_msg += 1
        _drop_expired(buffers, contact.members, now)

        for u, v in contact.pairs():
            router.on_encounter(u, v, now)

        budget = transfers_per_contact
        for u, v in _ordered_pairs(contact):
            if budget is not None and budget <= 0:
                break
            transfers = router.select_transfers(u, v, buffers[u], buffers[v], now)
            for message in transfers:
                if budget is not None and budget <= 0:
                    break
                if not message.is_live(now) or message in buffers[v]:
                    continue
                buffers[v].add(message)
                router.on_transfer(message, u, v)
                transmissions += 1
                if budget is not None:
                    budget -= 1
                if message.destination == v and message.msg_id not in delivered_at:
                    delivered_at[message.msg_id] = now

    delays = tuple(
        sorted(
            delivered_at[m.msg_id] - m.created_at
            for m in messages
            if m.msg_id in delivered_at
        )
    )
    return RoutingResult(
        delivered=len(delivered_at),
        generated=len(messages),
        transmissions=transmissions,
        delays=delays,
    )


def _ordered_pairs(contact: Contact) -> Iterable[Tuple[NodeId, NodeId]]:
    """All ordered pairs of a contact, deterministic order."""
    members = sorted(contact.members)
    for u in members:
        for v in members:
            if u != v:
                yield u, v


def _drop_expired(
    buffers: Dict[NodeId, Set[Message]], members: Iterable[NodeId], now: float
) -> None:
    for node in members:
        buffers[node] = {m for m in buffers[node] if m.is_live(now)}
