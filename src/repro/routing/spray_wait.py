"""Binary Spray-and-Wait routing (Spyropoulos et al.).

Each message starts with ``initial_copies`` logical copy tokens at its
source. When a carrier with more than one token meets a node without
the message, it *sprays* half of its tokens to the peer. A carrier
with a single token *waits* and only delivers directly to the
destination. This bounds total copies to ``initial_copies`` while
keeping delay close to epidemic for well-mixed mobility.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from repro.routing.base import Message, Router
from repro.types import NodeId


class SprayAndWaitRouter(Router):
    """Binary spray-and-wait with per-(node, message) copy tokens."""

    name = "spray-and-wait"

    def __init__(self, initial_copies: int = 8) -> None:
        if initial_copies < 1:
            raise ValueError("initial_copies must be >= 1")
        self._initial_copies = initial_copies
        self._tokens: Dict[Tuple[NodeId, int], int] = {}

    def prepare(self, nodes: Sequence[NodeId], messages: Sequence[Message]) -> None:
        self._tokens = {
            (message.source, message.msg_id): self._initial_copies
            for message in messages
        }

    def tokens_of(self, node: NodeId, msg_id: int) -> int:
        """Copy tokens ``node`` holds for message ``msg_id``."""
        return self._tokens.get((node, msg_id), 0)

    def select_transfers(
        self,
        sender: NodeId,
        receiver: NodeId,
        sender_buffer: Set[Message],
        receiver_buffer: Set[Message],
        now: float,
    ) -> List[Message]:
        selected: List[Message] = []
        for message in sorted(sender_buffer, key=lambda m: (m.created_at, m.msg_id)):
            if not message.is_live(now) or message in receiver_buffer:
                continue
            if message.destination == receiver:
                selected.append(message)
                continue
            if self.tokens_of(sender, message.msg_id) > 1:
                selected.append(message)
        selected.sort(key=lambda m: (m.destination != receiver, m.created_at, m.msg_id))
        return selected

    def on_transfer(self, message: Message, sender: NodeId, receiver: NodeId) -> None:
        """Split the sender's tokens in half (binary spray)."""
        if message.destination == receiver:
            return
        held = self.tokens_of(sender, message.msg_id)
        give = held // 2
        keep = held - give
        self._tokens[(sender, message.msg_id)] = keep
        self._tokens[(receiver, message.msg_id)] = (
            self.tokens_of(receiver, message.msg_id) + give
        )
