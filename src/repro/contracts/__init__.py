"""Machine-readable cross-layer contracts and the CON-rule checkers.

The reproduction's correctness story rests on invariants that used to
live only in conventions: stringly-typed counter keys with
prefix-based fingerprint exclusion, :class:`SimulationConfig` fields
that must be mirrored in the CLI and ``docs/API.md``, dual
object/array implementations behind the scheduler seam, and an import
layering that keeps ``repro.core`` picklable for ``run_many`` workers.
This package turns each convention into data plus an AST check:

``counters``
    every counter key family (``perf.*``, ``faults.*``,
    ``adversary.*``, ``detcheck.*``) with its fingerprint class
    (deterministic / excluded / process-local) — rules CON001/CON002;
``knobs``
    every :class:`SimulationConfig` field mapped to its CLI flags and
    ``docs/API.md`` anchor — rule CON003;
``layers``
    the allowed import DAG between ``repro`` packages — rule CON004;
``seams``
    the dual object/array (and reference-twin) entry points that must
    stay signature-compatible — rule CON005;
``wire``
    the frame body keys and message dataclass fields shared by
    ``repro.net.messages`` and ``repro.runtime.codec`` — rule CON006.

The checks plug into detlint (``python -m repro.detlint --contracts``
or ``repro lint --contracts``) and reuse its findings, path-scoping
and suppression machinery; see ``docs/CONTRACTS.md`` for the rule
reference and how to register a new counter or knob.
"""

from __future__ import annotations

from repro.contracts.counters import (
    COUNTER_PREFIXES,
    COUNTER_REGISTRY,
    CounterSpec,
    NAMESPACE_ROOTS,
    check_counter_key,
    excluded_prefixes,
    surfaced_keys,
)
from repro.contracts.knobs import KNOB_REGISTRY, KnobSpec
from repro.contracts.layers import LAYERS, allowed_packages, module_for_path
from repro.contracts.seams import SEAM_REGISTRY, SeamSpec
from repro.contracts.wire import (
    FRAME_BODY_KEYS,
    FRAME_ENVELOPE_KEYS,
    MESSAGE_FIELDS,
    METADATA_RECORD_FIELDS,
)

__all__ = [
    "COUNTER_PREFIXES",
    "COUNTER_REGISTRY",
    "CounterSpec",
    "NAMESPACE_ROOTS",
    "check_counter_key",
    "excluded_prefixes",
    "surfaced_keys",
    "KNOB_REGISTRY",
    "KnobSpec",
    "LAYERS",
    "allowed_packages",
    "module_for_path",
    "SEAM_REGISTRY",
    "SeamSpec",
    "FRAME_BODY_KEYS",
    "FRAME_ENVELOPE_KEYS",
    "MESSAGE_FIELDS",
    "METADATA_RECORD_FIELDS",
]
