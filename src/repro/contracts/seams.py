"""The seam manifest: dual implementations that must stay compatible.

The scheduler seam lets ``core="array"`` swap the numpy kernels in for
the object builders, the catalog knob swaps the sharded server in for
the flat one, and the naive ``*_reference`` twins remain the executable
specification of each optimized path. All of these are duck-typed —
nothing but convention keeps their signatures aligned — so CON005
checks each manifest entry against the parsed source:

``"twin"``
    both callables must accept the same *set* of parameter names
    (order may differ: the array kernels lead with the view);
``"reference"``
    the reference twin's parameter list must be an ordered prefix of
    the optimized implementation's (the optimized path may add
    trailing opt-in parameters such as ``view``);
``"class"``
    every public method of the left class must exist on the right
    class with an identical ordered parameter list (the drop-in may
    add extra methods, e.g. ``shard_sizes``).

Paths are relative to the ``repro`` package root. A missing symbol —
or a missing file while its counterpart still exists — is itself a
CON005 finding, so deleting half a seam cannot pass silently.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class SeamSpec:
    """One dual-implementation contract."""

    name: str
    kind: str  # "twin" | "reference" | "class"
    left: Tuple[str, str]  # (path relative to the repro root, qualname)
    right: Tuple[str, str]


SEAM_REGISTRY: Tuple[SeamSpec, ...] = (
    SeamSpec(
        name="metadata scheduling kernel (object/array)",
        kind="twin",
        left=("core/discovery.py", "build_metadata_candidates"),
        right=("core/arraycore.py", "build_metadata_candidates"),
    ),
    SeamSpec(
        name="piece scheduling kernel (object/array)",
        kind="twin",
        left=("core/download.py", "build_piece_candidates"),
        right=("core/arraycore.py", "build_piece_candidates"),
    ),
    SeamSpec(
        name="metadata builder reference twin",
        kind="reference",
        left=("core/discovery.py", "build_metadata_candidates"),
        right=("core/discovery.py", "build_metadata_candidates_reference"),
    ),
    SeamSpec(
        name="piece builder reference twin",
        kind="reference",
        left=("core/download.py", "build_piece_candidates"),
        right=("core/download.py", "build_piece_candidates_reference"),
    ),
    SeamSpec(
        name="contact extraction reference twin",
        kind="reference",
        left=("traces/mobility.py", "_extract_contacts"),
        right=("traces/mobility.py", "_extract_contacts_reference"),
    ),
    SeamSpec(
        name="flat/sharded metadata catalog",
        kind="class",
        left=("catalog/server.py", "MetadataServer"),
        right=("catalog/dht.py", "ShardedMetadataServer"),
    ),
)
