"""The knob registry: every ``SimulationConfig`` field and its surfaces.

A simulation knob has up to three public surfaces that must stay in
sync with the dataclass field:

* the ``repro run`` CLI flags that set it (``flags``; several flags
  may feed one field, e.g. the five fault-rate flags build the
  ``faults`` plan; a field with no flags must say why in ``api_only``);
* the ``docs/API.md`` anchor — the backticked field name must appear
  in the API reference (``doc`` overrides the anchor text);
* the RunSpec identity: :func:`repro.exec.kernel.spec_fingerprint`
  derives the checkpoint key from ``repr(config)``, so every field
  must participate in the dataclass repr (``repr=False`` on a field
  would silently alias distinct runs in checkpoint files).

CON003 parses ``SimulationConfig`` out of ``sim/runner.py`` and checks
each field against this registry, each registered flag against the
string literals of ``cli.py``, and each anchor against
``docs/API.md``. To add a knob: add the dataclass field, register it
here, and document it in ``docs/API.md`` (plus a CLI flag, or an
``api_only`` rationale).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class KnobSpec:
    """One registered ``SimulationConfig`` field."""

    field: str
    #: CLI flags of ``repro run`` that feed this field (may be empty).
    flags: Tuple[str, ...] = ()
    #: Why the knob has no CLI flag (required when ``flags`` is empty).
    api_only: str = ""
    #: Anchor text in ``docs/API.md`` when it differs from ``field``.
    doc: str = ""

    @property
    def doc_anchor(self) -> str:
        return self.doc or self.field


_PRESET = "preset by figure/scale workloads; set via the Python API"

KNOB_REGISTRY: Dict[str, KnobSpec] = {
    spec.field: spec
    for spec in (
        KnobSpec("internet_access_fraction", flags=("--access",)),
        KnobSpec("files_per_day", flags=("--files-per-day",)),
        KnobSpec("ttl_days", flags=("--ttl",)),
        KnobSpec("metadata_per_contact", flags=("--metadata-per-contact",)),
        KnobSpec("files_per_contact", flags=("--files-per-contact",)),
        KnobSpec("pieces_per_file", api_only=_PRESET),
        KnobSpec("variant", flags=("--protocol",)),
        KnobSpec("tit_for_tat", flags=("--tit-for-tat",)),
        KnobSpec("selfish_fraction", flags=("--selfish",)),
        KnobSpec("broadcast", flags=("--pairwise",)),
        KnobSpec("scheduling", api_only=_PRESET),
        KnobSpec("frequent_contact_max_gap_days", api_only=_PRESET),
        KnobSpec("num_days", api_only="derived from --scale / the trace span"),
        KnobSpec("internet_syncs_per_day", api_only=_PRESET),
        KnobSpec("metadata_capacity", api_only=_PRESET),
        KnobSpec("metadata_policy", api_only=_PRESET),
        KnobSpec("piece_capacity", api_only=_PRESET),
        KnobSpec("derive_cliques_from_hellos", api_only=_PRESET),
        KnobSpec("use_duration_budgets", api_only=_PRESET),
        KnobSpec("bandwidth_bytes_per_s", api_only=_PRESET),
        KnobSpec("fake_files_per_day", api_only=_PRESET),
        KnobSpec("malicious_fraction", api_only=_PRESET),
        KnobSpec("verify_signatures", api_only=_PRESET),
        KnobSpec("encrypted_choking", api_only=_PRESET),
        KnobSpec("selection_policy", api_only=_PRESET),
        KnobSpec("warmup_days", api_only=_PRESET),
        KnobSpec("pull_limit", api_only=_PRESET),
        KnobSpec("push_limit", api_only=_PRESET),
        KnobSpec("popular_file_downloads", api_only=_PRESET),
        KnobSpec("proxy_downloads_per_sync", api_only=_PRESET),
        KnobSpec("queries_per_node_per_day", api_only=_PRESET),
        KnobSpec("track_popularity", api_only=_PRESET),
        KnobSpec(
            "faults",
            flags=(
                "--loss-rate",
                "--corruption-rate",
                "--contact-drop-rate",
                "--churn-rate",
                "--fault-seed",
            ),
        ),
        KnobSpec(
            "adversaries",
            flags=("--adversary-fraction", "--strategy-mix", "--adversary-seed"),
        ),
        KnobSpec("credit_policy", flags=("--credit-policy",)),
        KnobSpec("max_events", api_only="safety valve; set via the Python API"),
        KnobSpec("profile", flags=("--profile",)),
        KnobSpec("core", flags=("--core",)),
        KnobSpec("catalog_shards", flags=("--catalog-shards",)),
        KnobSpec("hello_blooms", flags=("--hello-blooms",)),
        KnobSpec("bloom_fpr", flags=("--bloom-fpr",)),
        KnobSpec("seed", flags=("--seed",)),
    )
}
