"""The CON-rule checkers: per-file AST passes and project-level drift checks.

Two entry points, both called from detlint when ``--contracts`` is on:

:func:`lint_tree_contracts`
    per-file rules on an already-parsed module — CON001 (counter-key
    literals, including literals passed to recorder ``.count`` calls
    and the literal heads of key-building f-strings) and CON004
    (module-level import layering);
:func:`project_findings`
    cross-file rules run once per discovered ``repro`` package root —
    the CON001 ``COUNTER_KEYS`` cross-check, CON002 (fingerprint
    exclusion list vs registry), CON003 (knob/CLI/docs coverage),
    CON005 (seam signature parity) and CON006 (wire-schema drift).

A *package root* is any directory literally named ``repro`` that
contains linted files, so the same checks run against the live tree
(``src/repro``) and against corpus mini-trees
(``tests/detlint_corpus/contracts_project/src/repro``). Checks whose
source files are absent from a (partial) tree skip silently — except
a half-missing seam, which is exactly the drift CON005 exists for.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.contracts.counters import (
    RECORDER_NAMESPACES,
    SELF_RECORDER_MODULES,
    check_counter_key,
    excluded_prefixes,
    surfaced_keys,
)
from repro.contracts.knobs import KNOB_REGISTRY
from repro.contracts.layers import (
    allowed_packages,
    import_target_top,
    module_for_path,
)
from repro.contracts.seams import SEAM_REGISTRY, SeamSpec
from repro.contracts.wire import (
    FRAME_BODY_KEYS,
    FRAME_ENVELOPE_KEYS,
    MESSAGE_FIELDS,
    METADATA_RECORD_FIELDS,
)
from repro.detlint.findings import Finding

#: A string literal is treated as a counter key iff it looks like one:
#: a namespace root followed only by key characters.
_KEY_LITERAL = re.compile(r"^(?:perf|faults|adversary|detcheck)\.[A-Za-z0-9_.]*$")
_KEY_HEAD = re.compile(r"^(?:perf|faults|adversary|detcheck)\.[A-Za-z0-9_.]*$")


def _finding(path: str, line: int, col: int, rule: str, message: str) -> Finding:
    from repro.detlint.rules import RULES

    return Finding(
        path=path, line=line, col=col, rule=rule, message=message,
        fixit=RULES[rule].fixit,
    )


# --------------------------------------------------------------- per-file


class _ContractVisitor(ast.NodeVisitor):
    """CON001 (counter literals) and CON004 (import layering)."""

    def __init__(self, path: str, active: Set[str]) -> None:
        self.path = path
        self.active = active
        self.findings: List[Finding] = []
        self._handled: Set[int] = set()
        normalized = path.replace("\\", "/")
        self._self_namespace = next(
            (
                namespace
                for suffix, namespace in SELF_RECORDER_MODULES.items()
                if normalized.endswith(suffix)
            ),
            None,
        )

    def _add(self, node: ast.AST, rule: str, message: str) -> None:
        if rule in self.active:
            self.findings.append(
                _finding(
                    self.path,
                    getattr(node, "lineno", 1),
                    getattr(node, "col_offset", 0) + 1,
                    rule,
                    message,
                )
            )

    # -- CON001 ------------------------------------------------------------

    def visit_Expr(self, node: ast.Expr) -> None:
        # Docstrings and bare prose strings are not counter keys.
        if isinstance(node.value, ast.Constant) and isinstance(node.value.value, str):
            return
        self.generic_visit(node)

    def _recorder_namespace(self, func: ast.expr) -> Optional[str]:
        """Namespace a ``<receiver>.count(...)`` call records into."""
        if not (isinstance(func, ast.Attribute) and func.attr == "count"):
            return None
        receiver = func.value
        if isinstance(receiver, ast.Name):
            name = receiver.id
            if name == "self":
                return self._self_namespace
            return RECORDER_NAMESPACES.get(name)
        if isinstance(receiver, ast.Attribute):
            if (
                isinstance(receiver.value, ast.Name)
                and receiver.value.id == "self"
                and receiver.attr == "count"
            ):  # pragma: no cover - self.count handled via Name above
                return None
            return RECORDER_NAMESPACES.get(receiver.attr)
        return None

    def visit_Call(self, node: ast.Call) -> None:
        namespace = self._recorder_namespace(node.func)
        if namespace and node.args and isinstance(node.args[0], ast.Constant):
            value = node.args[0].value
            if isinstance(value, str):
                self._handled.add(id(node.args[0]))
                problem = check_counter_key(namespace + value)
                if problem:
                    self._add(
                        node.args[0],
                        "CON001",
                        f"recorder call lands in {namespace}* — {problem} "
                        "(register it in repro.contracts.counters)",
                    )
        self.generic_visit(node)

    def visit_Constant(self, node: ast.Constant) -> None:
        if (
            id(node) not in self._handled
            and isinstance(node.value, str)
            and _KEY_LITERAL.match(node.value)
        ):
            problem = check_counter_key(node.value)
            if problem:
                self._add(
                    node,
                    "CON001",
                    f"{problem} (register it in repro.contracts.counters)",
                )

    def visit_JoinedStr(self, node: ast.JoinedStr) -> None:
        head = node.values[0] if node.values else None
        if (
            isinstance(head, ast.Constant)
            and isinstance(head.value, str)
            and _KEY_HEAD.match(head.value)
        ):
            problem = check_counter_key(head.value, prefix_only=True)
            if problem:
                self._add(
                    node,
                    "CON001",
                    f"f-string builds a counter key: {problem} "
                    "(register the prefix in repro.contracts.counters)",
                )
        # Do not descend: formatted values cannot hold key literals.


def _module_level_imports(
    tree: ast.Module,
) -> Iterable[Tuple[ast.stmt, str, int]]:
    """``(node, dotted-target, level)`` for import statements that run at
    import time: module body, class bodies, and top-level if/try arms.
    Function bodies are excluded — the lazy-import escape hatch."""

    def walk(body: Sequence[ast.stmt]) -> Iterable[Tuple[ast.stmt, str, int]]:
        for node in body:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    yield node, alias.name, 0
            elif isinstance(node, ast.ImportFrom):
                yield node, node.module or "", node.level
            elif isinstance(node, ast.ClassDef):
                yield from walk(node.body)
            elif isinstance(node, (ast.If, ast.Try)):
                yield from walk(node.body)
                yield from walk(node.orelse)
                for handler in getattr(node, "handlers", []):
                    yield from walk(handler.body)
                yield from walk(getattr(node, "finalbody", []))

    return walk(tree.body)


def _check_layering(tree: ast.Module, path: str, active: Set[str]) -> List[Finding]:
    if "CON004" not in active:
        return []
    module = module_for_path(path)
    if module is None:
        return []
    findings: List[Finding] = []
    allowance = allowed_packages(module)
    own_top = import_target_top(module) if "." in module else "repro"
    imports = list(_module_level_imports(tree))
    if allowance is None:
        if any(target.startswith("repro") or level for _, target, level in imports):
            findings.append(
                _finding(
                    path, 1, 1, "CON004",
                    f"module {module} is not covered by the import-layer "
                    "registry (repro.contracts.layers.LAYERS)",
                )
            )
        return findings
    key, allowed = allowance
    package_parts = module.split(".")
    for node, target, level in imports:
        if level:
            base = list(package_parts)
            if not path.replace("\\", "/").endswith("__init__.py"):
                base = base[:-1]
            base = base[: len(base) - (level - 1)]
            target = ".".join(base + ([target] if target else []))
        if not (target == "repro" or target.startswith("repro.")):
            continue
        top = import_target_top(target)
        if top == own_top or top in allowed:
            continue
        findings.append(
            _finding(
                path,
                node.lineno,
                node.col_offset + 1,
                "CON004",
                f"layer violation: {key} may not import repro.{top} at "
                "module level (allowed: "
                f"{', '.join(sorted(allowed)) or 'nothing'}; use a "
                "function-local import if the dependency is unavoidable)",
            )
        )
    return findings


def lint_tree_contracts(
    tree: ast.Module, path: str, active: Set[str]
) -> List[Finding]:
    """Per-file contract findings for an already-parsed module."""
    findings: List[Finding] = []
    if "CON001" in active:
        visitor = _ContractVisitor(path, active)
        visitor.visit(tree)
        findings.extend(visitor.findings)
    findings.extend(_check_layering(tree, path, active))
    return findings


# ------------------------------------------------------------- project


def _repro_roots(files: Sequence[Path]) -> List[Path]:
    roots: Set[Path] = set()
    for file in files:
        parts = file.parts
        if "repro" in parts:
            index = len(parts) - 1 - parts[::-1].index("repro")
            roots.add(Path(*parts[: index + 1]))
    return sorted(roots)


class _Tree:
    """Lazily parsed source files under one repro package root."""

    def __init__(self, root: Path) -> None:
        self.root = root
        self._cache: Dict[str, Optional[Tuple[ast.Module, str]]] = {}

    def parse(self, rel: str) -> Optional[Tuple[ast.Module, str]]:
        if rel not in self._cache:
            path = self.root / rel
            result: Optional[Tuple[ast.Module, str]] = None
            if path.is_file():
                try:
                    result = (
                        ast.parse(path.read_text(encoding="utf-8")),
                        path.as_posix(),
                    )
                except (SyntaxError, UnicodeDecodeError, OSError):
                    result = None  # DET000 surfaces via the per-file pass
            self._cache[rel] = result
        return self._cache[rel]

    def exists(self, rel: str) -> bool:
        return (self.root / rel).is_file()

    def docs_text(self, name: str) -> Optional[str]:
        for candidate in (
            self.root.parent.parent / "docs" / name,
            self.root.parent / "docs" / name,
        ):
            if candidate.is_file():
                return candidate.read_text(encoding="utf-8")
        return None


def _str_tuple(node: ast.expr) -> Optional[Tuple[Tuple[str, ...], int]]:
    """String elements of a tuple/list display, with its line."""
    if isinstance(node, (ast.Tuple, ast.List)):
        out = []
        for element in node.elts:
            if isinstance(element, ast.Constant) and isinstance(element.value, str):
                out.append(element.value)
        return tuple(out), node.lineno
    return None


def _assigned_tuple(
    tree: ast.Module, name: str
) -> Optional[Tuple[Tuple[str, ...], int]]:
    """Top-level ``NAME = ("...", ...)`` assignment contents."""
    for node in tree.body:
        target: Optional[ast.expr] = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            target, value = node.target, node.value
        else:
            continue
        if isinstance(target, ast.Name) and target.id == name:
            return _str_tuple(value)
    return None


def _class_def(tree: ast.Module, name: str) -> Optional[ast.ClassDef]:
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and node.name == name:
            return node
    return None


def _function_def(
    tree: ast.Module, name: str
) -> Optional[ast.FunctionDef]:
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node.name == name:
                return node  # type: ignore[return-value]
    return None


def _ann_fields(cls: ast.ClassDef) -> List[Tuple[str, int, ast.AnnAssign]]:
    out = []
    for node in cls.body:
        if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            out.append((node.target.id, node.lineno, node))
    return out


def _params(fn: ast.FunctionDef) -> Tuple[str, ...]:
    args = fn.args
    names = [a.arg for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)]
    if names and names[0] in ("self", "cls"):
        names = names[1:]
    return tuple(names)


# -- CON001 cross-check: COUNTER_KEYS vs registry ---------------------------


def _check_counter_surface(tree: _Tree) -> List[Finding]:
    parsed = tree.parse("sim/metrics.py")
    if parsed is None:
        return []
    module, path = parsed
    listed = _assigned_tuple(module, "COUNTER_KEYS")
    if listed is None:
        return []
    keys, line = listed
    registered = surfaced_keys()
    findings = []
    for key in sorted(set(keys) - registered):
        findings.append(
            _finding(
                path, line, 1, "CON001",
                f"COUNTER_KEYS lists {key!r} but the contracts counter "
                "registry does not mark it surfaced",
            )
        )
    for key in sorted(registered - set(keys)):
        findings.append(
            _finding(
                path, line, 1, "CON001",
                f"counter {key!r} is registered as surfaced but missing "
                "from COUNTER_KEYS",
            )
        )
    return findings


# -- CON002: fingerprint-exclusion drift ------------------------------------


def _check_fingerprint_registry(tree: _Tree) -> List[Finding]:
    parsed = tree.parse("detlint/sanitizer.py")
    if parsed is None:
        return []
    module, path = parsed
    listed = _assigned_tuple(module, "FINGERPRINT_IGNORED_PREFIXES")
    if listed is None:
        return []
    prefixes, line = listed
    expected = excluded_prefixes()
    findings = []
    for prefix in sorted(set(expected) - set(prefixes)):
        findings.append(
            _finding(
                path, line, 1, "CON002",
                f"registry marks {prefix!r} fingerprint-excluded but "
                "FINGERPRINT_IGNORED_PREFIXES does not strip it",
            )
        )
    for prefix in sorted(set(prefixes) - set(expected)):
        findings.append(
            _finding(
                path, line, 1, "CON002",
                f"FINGERPRINT_IGNORED_PREFIXES strips {prefix!r}, which the "
                "contracts counter registry does not mark excluded",
            )
        )
    return findings


# -- CON003: knob coverage --------------------------------------------------


def _cli_strings(tree: _Tree) -> Optional[Set[str]]:
    parsed = tree.parse("cli.py")
    if parsed is None:
        return None
    module, _ = parsed
    return {
        node.value
        for node in ast.walk(module)
        if isinstance(node, ast.Constant) and isinstance(node.value, str)
    }


def _field_call_keywords(node: ast.AnnAssign) -> Dict[str, ast.expr]:
    value = node.value
    if (
        isinstance(value, ast.Call)
        and isinstance(value.func, ast.Name)
        and value.func.id == "field"
    ):
        return {kw.arg: kw.value for kw in value.keywords if kw.arg}
    return {}


def _check_knobs(tree: _Tree) -> List[Finding]:
    parsed = tree.parse("sim/runner.py")
    if parsed is None:
        return []
    module, path = parsed
    config = _class_def(module, "SimulationConfig")
    if config is None:
        return []
    cli_strings = _cli_strings(tree)
    docs = tree.docs_text("API.md")
    findings = []
    fields = _ann_fields(config)
    for name, line, node in fields:
        spec = KNOB_REGISTRY.get(name)
        if spec is None:
            findings.append(
                _finding(
                    path, line, 1, "CON003",
                    f"SimulationConfig field {name!r} is not in the knob "
                    "registry (repro.contracts.knobs)",
                )
            )
            continue
        repr_kw = _field_call_keywords(node).get("repr")
        if isinstance(repr_kw, ast.Constant) and repr_kw.value is False:
            findings.append(
                _finding(
                    path, line, 1, "CON003",
                    f"field {name!r} sets repr=False, excluding it from the "
                    "RunSpec/checkpoint identity (spec_fingerprint hashes "
                    "the config repr)",
                )
            )
        if not spec.flags and not spec.api_only:
            findings.append(
                _finding(
                    path, line, 1, "CON003",
                    f"knob {name!r} is registered with neither CLI flags "
                    "nor an api_only rationale",
                )
            )
        if cli_strings is not None:
            for flag in spec.flags:
                if flag not in cli_strings:
                    findings.append(
                        _finding(
                            path, line, 1, "CON003",
                            f"knob {name!r} declares CLI flag {flag!r} but "
                            "cli.py defines no such flag",
                        )
                    )
        if docs is not None and f"`{spec.doc_anchor}`" not in docs:
            findings.append(
                _finding(
                    path, line, 1, "CON003",
                    f"knob {name!r} has no `{spec.doc_anchor}` anchor in "
                    "docs/API.md",
                )
            )
    stale = sorted(set(KNOB_REGISTRY) - {name for name, _, _ in fields})
    if stale:
        findings.append(
            _finding(
                path, config.lineno, 1, "CON003",
                "knob registry entries without a SimulationConfig field: "
                + ", ".join(stale),
            )
        )
    return findings


# -- CON005: seam parity ----------------------------------------------------


def _seam_findings(tree: _Tree, seam: SeamSpec) -> List[Finding]:
    left_parsed = tree.parse(seam.left[0])
    right_parsed = tree.parse(seam.right[0])
    if left_parsed is None and right_parsed is None:
        if tree.exists(seam.left[0]) or tree.exists(seam.right[0]):
            return []  # unparseable: the per-file pass reports DET000
        return []  # partial tree without this seam at all
    findings = []
    for parsed, anchor, (rel, qualname) in (
        (left_parsed, right_parsed, seam.left),
        (right_parsed, left_parsed, seam.right),
    ):
        if parsed is None and anchor is not None and not tree.exists(rel):
            findings.append(
                _finding(
                    anchor[1], 1, 1, "CON005",
                    f"seam {seam.name!r}: counterpart {rel} (holding "
                    f"{qualname}) is missing from the tree",
                )
            )
    if findings or left_parsed is None or right_parsed is None:
        return findings
    if seam.kind == "class":
        return _class_seam(left_parsed, right_parsed, seam)
    left_fn = _function_def(left_parsed[0], seam.left[1])
    right_fn = _function_def(right_parsed[0], seam.right[1])
    for fn, parsed, qualname in (
        (left_fn, left_parsed, seam.left[1]),
        (right_fn, right_parsed, seam.right[1]),
    ):
        if fn is None:
            findings.append(
                _finding(
                    parsed[1], 1, 1, "CON005",
                    f"seam {seam.name!r}: {qualname} not found at module "
                    "level",
                )
            )
    if findings or left_fn is None or right_fn is None:
        return findings
    left_params, right_params = _params(left_fn), _params(right_fn)
    if seam.kind == "twin" and set(left_params) != set(right_params):
        findings.append(
            _finding(
                right_parsed[1], right_fn.lineno, 1, "CON005",
                f"seam {seam.name!r}: parameter sets diverge "
                f"({sorted(left_params)} vs {sorted(right_params)})",
            )
        )
    elif seam.kind == "reference" and (
        left_params[: len(right_params)] != right_params
    ):
        findings.append(
            _finding(
                right_parsed[1], right_fn.lineno, 1, "CON005",
                f"seam {seam.name!r}: reference signature {right_params} is "
                f"not an ordered prefix of {left_params}",
            )
        )
    return findings


def _class_seam(
    left_parsed: Tuple[ast.Module, str],
    right_parsed: Tuple[ast.Module, str],
    seam: SeamSpec,
) -> List[Finding]:
    findings = []
    left_cls = _class_def(left_parsed[0], seam.left[1])
    right_cls = _class_def(right_parsed[0], seam.right[1])
    for cls, parsed, qualname in (
        (left_cls, left_parsed, seam.left[1]),
        (right_cls, right_parsed, seam.right[1]),
    ):
        if cls is None:
            findings.append(
                _finding(
                    parsed[1], 1, 1, "CON005",
                    f"seam {seam.name!r}: class {qualname} not found",
                )
            )
    if findings or left_cls is None or right_cls is None:
        return findings
    right_methods = {
        node.name: node
        for node in right_cls.body
        if isinstance(node, ast.FunctionDef)
    }
    for node in left_cls.body:
        if not isinstance(node, ast.FunctionDef) or node.name.startswith("_"):
            continue
        twin = right_methods.get(node.name)
        if twin is None:
            findings.append(
                _finding(
                    right_parsed[1], right_cls.lineno, 1, "CON005",
                    f"seam {seam.name!r}: {seam.right[1]} lacks method "
                    f"{node.name!r} of {seam.left[1]}",
                )
            )
        elif _params(twin) != _params(node):
            findings.append(
                _finding(
                    right_parsed[1], twin.lineno, 1, "CON005",
                    f"seam {seam.name!r}: {seam.right[1]}.{node.name} "
                    f"signature {_params(twin)} diverges from "
                    f"{seam.left[1]}.{node.name} {_params(node)}",
                )
            )
    return findings


# -- CON006: wire-schema drift ----------------------------------------------


def _largest_dict_keys(fn: ast.FunctionDef) -> Optional[Tuple[Tuple[str, ...], int]]:
    best: Optional[Tuple[Tuple[str, ...], int]] = None
    for node in ast.walk(fn):
        if isinstance(node, ast.Dict):
            keys = tuple(
                key.value
                for key in node.keys
                if isinstance(key, ast.Constant) and isinstance(key.value, str)
            )
            if keys and (best is None or len(keys) > len(best[0])):
                best = (keys, node.lineno)
    return best


def _subscript_keys(fn: ast.FunctionDef) -> Set[str]:
    return {
        node.slice.value
        for node in ast.walk(fn)
        if isinstance(node, ast.Subscript)
        and isinstance(node.slice, ast.Constant)
        and isinstance(node.slice.value, str)
    }


def _check_dataclass_fields(
    tree: _Tree, rel: str, class_name: str, expected: Tuple[str, ...]
) -> List[Finding]:
    parsed = tree.parse(rel)
    if parsed is None:
        return []
    module, path = parsed
    cls = _class_def(module, class_name)
    if cls is None:
        return [
            _finding(
                path, 1, 1, "CON006",
                f"wire schema: class {class_name} not found in {rel}",
            )
        ]
    names = tuple(name for name, _, _ in _ann_fields(cls))
    if names != expected:
        return [
            _finding(
                path, cls.lineno, 1, "CON006",
                f"wire schema: {class_name} fields {names} != registered "
                f"{expected} (repro.contracts.wire)",
            )
        ]
    return []


def _check_codec_function(
    tree: _Tree,
    module: ast.Module,
    path: str,
    name: str,
    expected: Tuple[str, ...],
    *,
    ordered: bool,
) -> List[Finding]:
    fn = _function_def(module, name)
    if fn is None:
        return [
            _finding(
                path, 1, 1, "CON006",
                f"wire schema: codec function {name} not found",
            )
        ]
    built = _largest_dict_keys(fn)
    if built is None:
        return [
            _finding(
                path, fn.lineno, 1, "CON006",
                f"wire schema: {name} builds no literal-keyed dict to check",
            )
        ]
    keys, line = built
    matches = keys == expected if ordered else set(keys) == set(expected)
    if not matches:
        return [
            _finding(
                path, line, 1, "CON006",
                f"wire schema: {name} emits keys {keys} != registered "
                f"{expected} (repro.contracts.wire)",
            )
        ]
    return []


def _check_wire(tree: _Tree) -> List[Finding]:
    findings = _check_dataclass_fields(
        tree, "catalog/metadata.py", "Metadata", METADATA_RECORD_FIELDS
    )
    messages = tree.parse("net/messages.py")
    if messages is not None:
        for class_name, expected in sorted(MESSAGE_FIELDS.items()):
            findings.extend(
                _check_dataclass_fields(
                    tree, "net/messages.py", class_name, expected
                )
            )
    codec = tree.parse("runtime/codec.py")
    if codec is not None:
        module, path = codec
        findings.extend(
            _check_codec_function(
                tree, module, path, "encode_frame", FRAME_ENVELOPE_KEYS,
                ordered=True,
            )
        )
        findings.extend(
            _check_codec_function(
                tree, module, path, "metadata_to_fields",
                METADATA_RECORD_FIELDS, ordered=True,
            )
        )
        for builder, expected in sorted(FRAME_BODY_KEYS.items()):
            findings.extend(
                _check_codec_function(
                    tree, module, path, builder, expected, ordered=False
                )
            )
        reader = _function_def(module, "metadata_from_fields")
        if reader is None:
            findings.append(
                _finding(
                    path, 1, 1, "CON006",
                    "wire schema: codec function metadata_from_fields not "
                    "found",
                )
            )
        else:
            read = _subscript_keys(reader)
            if read != set(METADATA_RECORD_FIELDS):
                findings.append(
                    _finding(
                        path, reader.lineno, 1, "CON006",
                        "wire schema: metadata_from_fields reads keys "
                        f"{sorted(read)} != registered "
                        f"{sorted(METADATA_RECORD_FIELDS)}",
                    )
                )
    return findings


def project_findings(files: Sequence[Path]) -> List[Finding]:
    """Cross-file contract findings for every repro root under ``files``."""
    findings: List[Finding] = []
    for root in _repro_roots(files):
        tree = _Tree(root)
        findings.extend(_check_counter_surface(tree))
        findings.extend(_check_fingerprint_registry(tree))
        findings.extend(_check_knobs(tree))
        for seam in SEAM_REGISTRY:
            findings.extend(_seam_findings(tree, seam))
        findings.extend(_check_wire(tree))
    return sorted(findings)
