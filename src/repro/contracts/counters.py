"""The counter-key registry: every counter family and its fingerprint class.

``SimulationResult.extra`` is a flat string-keyed counter namespace
shared by the engine, the fault injector, the adversary harness, the
perf recorder and the detcheck sanitizer. Three properties hang off
the *spelling* of a key, so a typo silently creates a new counter:

* whether downstream equality checks treat it as part of the result
  (``fingerprint="deterministic"``) or exclude it from bitwise
  comparisons (``"excluded"``, the ``FINGERPRINT_IGNORED_PREFIXES``
  list in :mod:`repro.detlint.sanitizer`);
* whether it is process-local diagnostics that must never be folded
  into a result at all (``"local"``, the ``perf.trace.*`` family);
* whether it is surfaced in :data:`repro.sim.metrics.COUNTER_KEYS`
  (``surfaced=True``) for the ``--counters`` rendering.

CON001 checks every counter-key string literal (and every literal
passed to a recorder's ``.count(...)``) against this registry; CON002
checks that the sanitizer's exclusion list equals the registry's
``excluded`` prefixes. To add a counter: append a :class:`CounterSpec`
here, and — if it should be rendered by ``--counters`` — add it to
``COUNTER_KEYS`` with ``surfaced=True`` (CON001 cross-checks the two
listings in both directions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Tuple

#: The counter namespaces. A string literal starting with one of these
#: roots is treated as a counter key by CON001.
NAMESPACE_ROOTS: Tuple[str, ...] = ("perf.", "faults.", "adversary.", "detcheck.")


@dataclass(frozen=True)
class CounterSpec:
    """One registered counter key (or, when ``key`` ends in ``.`` or
    ``_``, a registered key *prefix* used to build keys dynamically).

    ``fingerprint`` is the key's determinism class:

    ``"deterministic"``
        a pure function of the simulation inputs; safe inside result
        fingerprints and the serial-vs-parallel equality checks;
    ``"excluded"``
        varies between identical runs (wall-clock timers) or between
        implementations (kernel/shard internals); stripped by
        :func:`repro.detlint.sanitizer.result_fingerprint`;
    ``"local"``
        process-local diagnostics (trace-cache hits) that are never
        folded into a :class:`SimulationResult` in the first place.

    ``open_prefix`` (prefixes only) allows unregistered exact keys
    beneath the prefix — for families whose suffixes are genuinely
    dynamic, like the per-phase ``perf.time_us.*`` timers.
    """

    key: str
    fingerprint: str  # "deterministic" | "excluded" | "local"
    surfaced: bool = False  # listed in repro.sim.metrics.COUNTER_KEYS
    open_prefix: bool = False
    note: str = ""

    @property
    def is_prefix(self) -> bool:
        return self.key.endswith((".", "_"))


COUNTER_REGISTRY: Tuple[CounterSpec, ...] = (
    # -- engine counters (bare names, surfaced via COUNTER_KEYS) ------------
    CounterSpec("events", "deterministic", surfaced=True),
    CounterSpec("events_noon", "deterministic", surfaced=True),
    CounterSpec("events_sync", "deterministic", surfaced=True),
    CounterSpec("events_contact", "deterministic", surfaced=True),
    CounterSpec("contacts_processed", "deterministic", surfaced=True),
    CounterSpec("contact_batches", "deterministic", surfaced=True),
    CounterSpec("cliques_processed", "deterministic", surfaced=True),
    CounterSpec("hello_exchanges", "deterministic", surfaced=True),
    CounterSpec("metadata_transmissions", "deterministic", surfaced=True),
    CounterSpec("piece_transmissions", "deterministic", surfaced=True),
    CounterSpec("choked_sends", "deterministic", surfaced=True),
    CounterSpec("internet_syncs", "deterministic", surfaced=True),
    CounterSpec("metadata_evictions", "deterministic", surfaced=True),
    CounterSpec("piece_evictions", "deterministic", surfaced=True),
    CounterSpec("checksum_rejections", "deterministic", surfaced=True),
    CounterSpec("metadata_rejected_auth", "deterministic", surfaced=True),
    CounterSpec("events_fault", "deterministic", surfaced=True),
    # -- faults.* (deterministic fault-injection tallies) -------------------
    CounterSpec("faults.", "deterministic", note="fault-injection namespace"),
    CounterSpec("faults.contacts_dropped", "deterministic", surfaced=True),
    CounterSpec("faults.contacts_truncated", "deterministic", surfaced=True),
    CounterSpec("faults.contacts_skipped_down", "deterministic", surfaced=True),
    CounterSpec("faults.metadata_losses", "deterministic", surfaced=True),
    CounterSpec("faults.piece_losses", "deterministic", surfaced=True),
    CounterSpec("faults.pieces_corrupted", "deterministic", surfaced=True),
    CounterSpec("faults.corrupt_receipts", "deterministic", surfaced=True),
    CounterSpec("faults.crashes", "deterministic", surfaced=True),
    CounterSpec("faults.rebirths", "deterministic", surfaced=True),
    # -- adversary.* (strategy tallies + seeded assignment + ratios) --------
    CounterSpec("adversary.", "deterministic", note="adversarial-strategy namespace"),
    CounterSpec("adversary.nodes_", "deterministic", note="per-strategy node counts"),
    CounterSpec("adversary.holdings_hidden", "deterministic", surfaced=True),
    CounterSpec("adversary.turns_skipped", "deterministic", surfaced=True),
    CounterSpec("adversary.rewards_inflated", "deterministic", surfaced=True),
    CounterSpec("adversary.fakes_seeded", "deterministic", surfaced=True),
    CounterSpec("adversary.fake_metadata_transmissions", "deterministic", surfaced=True),
    CounterSpec("adversary.fake_piece_transmissions", "deterministic", surfaced=True),
    CounterSpec("adversary.nodes_exploiter", "deterministic", surfaced=True),
    CounterSpec("adversary.nodes_free_rider", "deterministic", surfaced=True),
    CounterSpec("adversary.nodes_polluter", "deterministic", surfaced=True),
    CounterSpec("adversary.nodes_under_reporter", "deterministic", surfaced=True),
    CounterSpec("adversary.honest_metadata_ratio", "deterministic"),
    CounterSpec("adversary.honest_file_ratio", "deterministic"),
    CounterSpec("adversary.honest_queries", "deterministic"),
    # -- detcheck.* (environment attestation) -------------------------------
    CounterSpec("detcheck.pythonhashseed", "deterministic", surfaced=True),
    # -- perf.* (advisory instrumentation; see repro.perf) ------------------
    CounterSpec("perf.wanted_cache_hits", "deterministic"),
    CounterSpec("perf.wanted_cache_misses", "deterministic"),
    CounterSpec("perf.query_cache_hits", "deterministic"),
    CounterSpec("perf.query_cache_misses", "deterministic"),
    CounterSpec("perf.token_index_queries", "deterministic"),
    CounterSpec("perf.view_builds", "deterministic"),
    CounterSpec("perf.view_rebuilds", "deterministic"),
    CounterSpec("perf.view_reuses", "deterministic"),
    CounterSpec("perf.meta_candidates", "deterministic"),
    CounterSpec("perf.piece_candidates", "deterministic"),
    # perf.time_us.*: wall-clock phase timers under --profile; suffixes
    # are phase names minted at the call site, so the family stays open.
    CounterSpec("perf.time_us.", "excluded", open_prefix=True, note="phase timers"),
    # perf.sched.*: scheduling-kernel dispatch statistics. Deterministic
    # per core implementation but object/array cores differ, so the
    # family is fingerprint-excluded to keep cores comparable.
    CounterSpec("perf.sched.", "excluded", note="kernel dispatch statistics"),
    CounterSpec("perf.sched.meta_vectorized", "excluded"),
    CounterSpec("perf.sched.meta_object", "excluded"),
    CounterSpec("perf.sched.piece_vectorized", "excluded"),
    CounterSpec("perf.sched.piece_object", "excluded"),
    CounterSpec("perf.sched.meta_builder_fallback", "excluded"),
    CounterSpec("perf.sched.piece_builder_fallback", "excluded"),
    CounterSpec("perf.sched.live_recomputes", "excluded"),
    CounterSpec("perf.sched.live_reuses", "excluded"),
    # perf.catalog.*: sharded-catalog internals; flat and sharded servers
    # must fingerprint identically, so the family is excluded.
    CounterSpec("perf.catalog.", "excluded", note="catalog shard/bloom internals"),
    CounterSpec("perf.catalog.shard_lookups", "excluded"),
    CounterSpec("perf.catalog.route_hops", "excluded"),
    CounterSpec("perf.catalog.heap_expiries", "excluded"),
    CounterSpec("perf.catalog.ranked_rebuilds", "excluded"),
    CounterSpec("perf.catalog.bloom_screens", "excluded"),
    CounterSpec("perf.catalog.bloom_hits", "excluded"),
    CounterSpec("perf.catalog.bloom_false_positives", "excluded"),
    # perf.trace.*: process-local trace-pipeline diagnostics (LRU and
    # disk-cache outcomes); never folded into a SimulationResult.
    CounterSpec("perf.trace.", "local", open_prefix=True, note="trace-cache diagnostics"),
)

#: Registered exact keys, by key.
COUNTER_KEYS_EXACT: Dict[str, CounterSpec] = {
    spec.key: spec for spec in COUNTER_REGISTRY if not spec.is_prefix
}

#: Registered prefixes, by prefix (namespace roots are implicit prefixes).
COUNTER_PREFIXES: Dict[str, CounterSpec] = {
    spec.key: spec for spec in COUNTER_REGISTRY if spec.is_prefix
}

#: Map from a recorder receiver name to the namespace its bare
#: ``.count("name")`` literals land in (see PerfRecorder.as_counters,
#: FaultInjector.snapshot, AdversaryHarness). ``self.count`` inside
#: the modules of :data:`SELF_RECORDER_MODULES` resolves the same way.
RECORDER_NAMESPACES: Dict[str, str] = {
    "perf": "perf.",
    "_perf": "perf.",
    "faults": "faults.",
    "_faults": "faults.",
    "adversary": "adversary.",
    "_adversary": "adversary.",
}

#: Path suffixes whose ``self.count("name")`` calls record into the
#: mapped namespace (the recorder classes themselves).
SELF_RECORDER_MODULES: Dict[str, str] = {
    "repro/faults.py": "faults.",
    "repro/core/strategies.py": "adversary.",
}


def excluded_prefixes() -> Tuple[str, ...]:
    """The prefixes the fingerprint sanitizer must strip, sorted.

    Exactly the registered ``excluded`` prefixes: ``local`` families
    never reach a result, and exact excluded keys are covered by their
    family prefix.
    """
    return tuple(
        sorted(
            spec.key
            for spec in COUNTER_PREFIXES.values()
            if spec.fingerprint == "excluded"
        )
    )


def surfaced_keys() -> FrozenSet[str]:
    """Exact keys that must appear in ``repro.sim.metrics.COUNTER_KEYS``."""
    return frozenset(
        spec.key for spec in COUNTER_REGISTRY if spec.surfaced and not spec.is_prefix
    )


def check_counter_key(key: str, *, prefix_only: bool = False) -> Optional[str]:
    """Problem description if ``key`` is not a registered counter key.

    ``prefix_only`` checks a *partial* key — the literal head of an
    f-string like ``f"faults.{name}"`` or a ``startswith`` probe — so
    only prefix/root registration counts.
    """
    if key.endswith((".", "_")) or prefix_only:
        if key in COUNTER_PREFIXES or key in NAMESPACE_ROOTS:
            return None
        return f"prefix {key!r} is not a registered counter prefix"
    if key in COUNTER_KEYS_EXACT:
        return None
    for prefix, spec in COUNTER_PREFIXES.items():
        if spec.open_prefix and key.startswith(prefix):
            return None
    return f"counter key {key!r} is not registered"
