"""The wire-schema registry: frame keys shared by messages and codec.

:mod:`repro.net.messages` defines the in-simulation message
dataclasses; :mod:`repro.runtime.codec` serializes the same content as
JSON frame bodies for the asyncio runtime. The two are linked only by
key spelling — a renamed dataclass field or body key desynchronizes
the emulated radio from the simulated one without any test noticing
until a frame fails to decode. CON006 checks, against this registry:

* the :class:`Metadata` dataclass fields (``catalog/metadata.py``),
  the dict keys built by ``metadata_to_fields`` and the keys read back
  by ``metadata_from_fields`` (all three must match exactly);
* each message dataclass's ordered field list;
* the body keys emitted by each frame builder, plus the envelope keys
  every frame carries.
"""

from __future__ import annotations

from typing import Dict, Tuple

#: Serialized field set of one metadata record — the Metadata
#: dataclass, metadata_to_fields and metadata_from_fields agree on it.
METADATA_RECORD_FIELDS: Tuple[str, ...] = (
    "uri",
    "name",
    "publisher",
    "description",
    "checksums",
    "size_bytes",
    "created_at",
    "ttl",
    "popularity",
    "signature",
)

#: Ordered dataclass fields of each wire message.
MESSAGE_FIELDS: Dict[str, Tuple[str, ...]] = {
    "HelloMessage": (
        "sender",
        "heard",
        "query_tokens",
        "downloading",
        "sent_at",
        "summary",
    ),
    "MetadataMessage": ("sender", "metadata", "sent_at"),
    "PieceMessage": (
        "sender",
        "uri",
        "index",
        "payload",
        "checksum",
        "sent_at",
        "attached",
    ),
}

#: Keys every encoded frame body carries (see ``encode_frame``).
FRAME_ENVELOPE_KEYS: Tuple[str, ...] = ("type", "sender", "sent_at")

#: Type-specific body keys emitted by each frame builder.
FRAME_BODY_KEYS: Dict[str, Tuple[str, ...]] = {
    "build_hello": (
        "heard",
        "query_tokens",
        "carried_query_tokens",
        "downloading",
        "held_uris",
        "have",
    ),
    "build_metadata_frame": ("record",),
    "build_piece_frame": ("record", "index", "payload_b64"),
}
