"""The import-layer DAG: which ``repro`` packages may import which.

Two properties hang off the layering. First, picklability: ``run_many``
ships :class:`SimulationConfig` values (which reference ``repro.core``
strategy/credit objects) to worker processes, so the simulation core
must never drag in the executor, the CLI or matplotlib-adjacent
experiment code. Second, import cost: ``repro.detlint`` must stay
dependency-free so the linter can run in a bare checkout.

CON004 resolves each linted file to its module (the path tail after
the last ``repro/`` component), looks up the most specific entry here
(exact module, then enclosing packages), and flags any *module-level*
``repro`` import outside the allowance. Function-local imports are the
sanctioned escape hatch — they defer the dependency until call time,
which is exactly what keeps the core picklable — so CON004 ignores
them. Unknown modules (a freshly added top-level package) are flagged
until they get an entry here.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional, Tuple

#: Allowed import targets per importer, as short top-level names
#: (``"exec"`` means ``repro.exec``). Importing inside your own
#: top-level package is always allowed and left implicit. Keys are
#: dotted module prefixes; the most specific key wins, so
#: ``repro.net.hello`` can carry a wider allowance than ``repro.net``.
LAYERS: Dict[str, FrozenSet[str]] = {
    # Leaf layers: shared types and the perf recorder import nothing.
    "repro.types": frozenset(),
    "repro.perf": frozenset(),
    # Trace pipeline and its consumers.
    "repro.traces": frozenset({"types"}),
    "repro.analysis": frozenset({"types", "traces"}),
    "repro.faults": frozenset({"types", "traces"}),
    "repro.routing": frozenset({"types", "traces"}),
    # Catalog (Internet side) sits on types + perf only.
    "repro.catalog": frozenset({"types", "perf"}),
    # Radio messages sit on the catalog records they carry; the hello
    # pipeline additionally walks node state and clique views.
    "repro.net": frozenset({"types", "catalog"}),
    "repro.net.hello": frozenset({"types", "catalog", "core", "sim"}),
    # The protocol core and the simulation harness are one layer (the
    # engine records core metrics; the runner drives the core), kept
    # free of exec/cli/experiments so configs stay picklable.
    "repro.core": frozenset(
        {"types", "perf", "catalog", "faults", "net", "traces", "sim"}
    ),
    "repro.sim": frozenset(
        {"types", "perf", "catalog", "core", "net", "faults", "traces", "detlint"}
    ),
    # The asyncio-facing runtime drives the same core over real frames.
    "repro.runtime": frozenset({"types", "catalog", "core", "net", "sim", "traces"}),
    # Tooling: detlint is import-free; the sanitizer (runtime detcheck)
    # and the contracts registries are its only heavier corners.
    "repro.detlint": frozenset(),
    "repro.detlint.sanitizer": frozenset({"sim", "traces"}),
    "repro.contracts": frozenset({"detlint"}),
    # Orchestration layers may reach down, never sideways into cli.
    "repro.exec": frozenset({"types", "detlint", "sim", "traces"}),
    "repro.experiments": frozenset(
        {"types", "analysis", "core", "exec", "sim", "traces"}
    ),
    # Entry points see everything below them.
    "repro.cli": frozenset(
        {
            "types", "perf", "traces", "analysis", "faults", "routing",
            "catalog", "net", "core", "sim", "runtime", "detlint",
            "contracts", "exec", "experiments",
        }
    ),
    "repro.__main__": frozenset({"cli"}),
    # The package facade re-exports the public API surface.
    "repro": frozenset(
        {
            "types", "perf", "traces", "analysis", "faults", "routing",
            "catalog", "net", "core", "sim", "runtime", "detlint",
            "contracts", "exec", "experiments",
        }
    ),
}


def module_for_path(path: str) -> Optional[str]:
    """Dotted module name for a file path, or None outside ``repro``.

    Resolution anchors on the *last* ``repro`` path component, so both
    the live tree (``src/repro/core/mbt.py``) and corpus mini-trees
    (``tests/.../src/repro/core/bad.py``) resolve the same way.
    """
    parts = path.replace("\\", "/").split("/")
    if "repro" not in parts:
        return None
    tail = parts[len(parts) - 1 - parts[::-1].index("repro"):]
    if not tail[-1].endswith(".py"):
        return None
    tail[-1] = tail[-1][:-3]
    if tail[-1] == "__init__":
        tail = tail[:-1]
    return ".".join(tail)


def allowed_packages(module: str) -> Optional[Tuple[str, FrozenSet[str]]]:
    """``(registry key, allowed top-level names)`` for ``module``.

    Walks from the exact module up through its enclosing packages;
    returns None when no entry covers the module (a layering gap
    CON004 reports as its own finding).
    """
    probe = module
    while probe:
        if probe in LAYERS:
            # The bare "repro" facade entry covers only the facade
            # itself — an unknown package must not inherit it.
            if probe == "repro" and module != "repro":
                return None
            return probe, LAYERS[probe]
        probe = probe.rpartition(".")[0]
    return None


def import_target_top(target: str) -> str:
    """Short top-level name of an imported ``repro`` module."""
    parts = target.split(".")
    return parts[1] if len(parts) > 1 else "repro"
