"""The shared execution kernel: picklable run specs + process fan-out.

Every experiment harness in the repository — figure sweeps, multi-seed
campaigns, the benchmark suite and the CLI — reduces to the same
primitive: *run one simulation for one (trace, config) pair*. This
module makes that primitive a first-class, picklable value so a flat
list of runs can be executed serially or fanned out across worker
processes with bitwise-identical results:

* :class:`TraceSpec` — a declarative, picklable description of how to
  build a contact trace (a dotted-path builder plus arguments, or a
  literal pre-built trace);
* :class:`RunSpec` — one run: a trace spec, a
  :class:`~repro.sim.runner.SimulationConfig` and an optional seed
  override, plus an opaque ``tag`` that round-trips to the result;
* :func:`execute` — the pure mapping ``RunSpec -> RunResult``;
* :func:`run_many` — ``map(execute, specs)`` over a
  :class:`~concurrent.futures.ProcessPoolExecutor` when ``jobs > 1``,
  preserving input order.

Determinism
-----------
``execute`` derives all randomness from the spec: the trace builder is
seeded by the spec's arguments and the simulation by
``config.seed`` (or the spec's ``seed`` override), each through its own
``random.Random`` instance. No module-level RNG is consulted, so the
results are independent of execution order and of the process the run
lands in — ``run_many(specs, jobs=4)`` equals ``jobs=1`` exactly.

Trace caching
-------------
Building a trace can rival the simulation itself in cost, and a sweep
reuses one trace across many (x, protocol) cells. ``execute`` therefore
caches built traces in a small per-process table keyed by the *full*
trace spec (builder path + every argument). Each worker process builds
any distinct trace at most once; literal traces bypass the cache (they
are already built and travel inside the pickled spec).
"""

from __future__ import annotations

import hashlib
import importlib
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.sim.metrics import SimulationResult
from repro.sim.runner import Simulation, SimulationConfig
from repro.traces.base import ContactTrace

__all__ = [
    "RunResult",
    "RunSpec",
    "TraceSpec",
    "as_trace_spec",
    "derive_seed",
    "execute",
    "resolve_callable",
    "run_many",
    "trace_cache_info",
]


def resolve_callable(fn: Callable[..., Any]) -> Optional[str]:
    """Dotted ``"module:qualname"`` path of ``fn``, or None.

    Only module-level callables resolve (closures and lambdas carry
    ``<locals>`` or ``<lambda>`` in their qualname and cannot be
    re-imported by a worker). The path is validated by importing it
    back and checking identity.
    """
    module = getattr(fn, "__module__", None)
    qualname = getattr(fn, "__qualname__", None)
    if not module or not qualname:
        return None
    if "<locals>" in qualname or "<lambda>" in qualname:
        return None
    try:
        target: Any = importlib.import_module(module)
        for part in qualname.split("."):
            target = getattr(target, part)
    except (ImportError, AttributeError):
        return None
    return f"{module}:{qualname}" if target is fn else None


def _import_callable(path: str) -> Callable[..., Any]:
    module, _, qualname = path.partition(":")
    target: Any = importlib.import_module(module)
    for part in qualname.split("."):
        target = getattr(target, part)
    return target


@dataclass(frozen=True)
class TraceSpec:
    """Picklable recipe for one contact trace.

    Exactly one of two forms:

    * **builder** — ``builder`` names a module-level callable as
      ``"module:qualname"``; :meth:`build` imports and calls it with
      ``args``/``kwargs``. Cheap to pickle and cacheable by value.
    * **literal** — ``trace`` holds a pre-built
      :class:`~repro.traces.base.ContactTrace`. The trace itself is
      pickled to workers; caching is unnecessary.
    """

    builder: Optional[str] = None
    args: Tuple[Any, ...] = ()
    kwargs: Tuple[Tuple[str, Any], ...] = ()
    trace: Optional[ContactTrace] = None

    def __post_init__(self) -> None:
        if (self.builder is None) == (self.trace is None):
            raise ValueError("TraceSpec needs exactly one of builder= or trace=")

    @classmethod
    def of(cls, fn: Callable[..., ContactTrace], *args: Any, **kwargs: Any) -> "TraceSpec":
        """Spec for a module-level trace builder and its arguments."""
        path = resolve_callable(fn)
        if path is None:
            raise ValueError(
                f"{fn!r} is not an importable module-level callable; "
                "use TraceSpec.literal(...) for traces built by closures"
            )
        return cls(builder=path, args=tuple(args), kwargs=tuple(sorted(kwargs.items())))

    @classmethod
    def literal(cls, trace: ContactTrace) -> "TraceSpec":
        """Spec wrapping an already-built trace."""
        return cls(trace=trace)

    @property
    def cache_key(self) -> Optional[Tuple[Any, ...]]:
        """Hashable identity for the per-worker cache (None = uncached)."""
        if self.builder is None:
            return None
        key = (self.builder, self.args, self.kwargs)
        try:
            hash(key)
        except TypeError:
            return None  # unhashable builder arguments: rebuild every time
        return key

    def build(self) -> ContactTrace:
        """Materialize the trace (no caching; see :func:`execute`)."""
        if self.trace is not None:
            return self.trace
        assert self.builder is not None
        fn = _import_callable(self.builder)
        return fn(*self.args, **dict(self.kwargs))


def as_trace_spec(obj: "TraceSpec | ContactTrace") -> TraceSpec:
    """Coerce a trace-or-spec into a spec (legacy factories return traces)."""
    if isinstance(obj, TraceSpec):
        return obj
    if isinstance(obj, ContactTrace):
        return TraceSpec.literal(obj)
    raise TypeError(f"expected TraceSpec or ContactTrace, got {type(obj).__name__}")


@dataclass(frozen=True)
class RunSpec:
    """One simulation run, fully described by picklable data.

    ``seed`` (when not None) overrides ``config.seed``; ``tag`` is an
    opaque tuple of ``(key, value)`` pairs that round-trips unchanged to
    the :class:`RunResult`, letting consumers map a flat result list
    back onto their grid (x value, protocol, seed, …).
    """

    trace: TraceSpec
    config: SimulationConfig
    seed: Optional[int] = None
    tag: Tuple[Tuple[str, Any], ...] = ()

    def resolved_config(self) -> SimulationConfig:
        """The config actually run (seed override applied)."""
        if self.seed is None:
            return self.config
        return replace(self.config, seed=self.seed)

    def labels(self) -> Dict[str, Any]:
        """The tag as a plain dict."""
        return dict(self.tag)

    @staticmethod
    def make_tag(**labels: Any) -> Tuple[Tuple[str, Any], ...]:
        """Build a deterministic tag tuple from keyword labels."""
        return tuple(sorted(labels.items()))


@dataclass(frozen=True)
class RunResult:
    """Outcome of :func:`execute`: the spec, its result and wall time."""

    spec: RunSpec
    result: SimulationResult
    wall_time: float


def derive_seed(*components: Any) -> int:
    """Deterministic 63-bit seed derived from arbitrary components.

    Stable across processes and Python invocations (unlike ``hash``,
    which is salted): hashes the repr of the components with SHA-256.
    Use to give each run of a family an independent but reproducible
    RNG stream: ``derive_seed(base_seed, "sweep", x, index)``.
    """
    digest = hashlib.sha256(repr(components).encode()).digest()
    return int.from_bytes(digest[:8], "big") >> 1


#: Per-process trace cache: full spec key -> built trace. Bounded so a
#: long-lived worker sweeping many trace parameters cannot grow without
#: limit; eviction is FIFO (sweeps revisit recent specs, not old ones).
_TRACE_CACHE: Dict[Tuple[Any, ...], ContactTrace] = {}
_TRACE_CACHE_LIMIT = 16
_TRACE_CACHE_STATS = {"hits": 0, "misses": 0}


def _trace_for(spec: TraceSpec) -> ContactTrace:
    key = spec.cache_key
    if key is None:
        return spec.build()
    cached = _TRACE_CACHE.get(key)
    if cached is not None:
        _TRACE_CACHE_STATS["hits"] += 1
        return cached
    _TRACE_CACHE_STATS["misses"] += 1
    trace = spec.build()
    if len(_TRACE_CACHE) >= _TRACE_CACHE_LIMIT:
        _TRACE_CACHE.pop(next(iter(_TRACE_CACHE)))
    _TRACE_CACHE[key] = trace
    return trace


def trace_cache_info() -> Dict[str, int]:
    """Hit/miss counters of this process's trace cache (diagnostics)."""
    return {"size": len(_TRACE_CACHE), **_TRACE_CACHE_STATS}


def execute(spec: RunSpec) -> RunResult:
    """Run one spec to completion (pure: output depends only on the spec)."""
    start = time.perf_counter()
    trace = _trace_for(spec.trace)
    result = Simulation(trace, spec.resolved_config()).run()
    return RunResult(spec=spec, result=result, wall_time=time.perf_counter() - start)


def run_many(
    specs: Sequence[RunSpec],
    jobs: Optional[int] = None,
    chunksize: Optional[int] = None,
) -> List[RunResult]:
    """Execute every spec, preserving input order.

    ``jobs`` <= 1 (the default) runs serially in-process; larger values
    fan out over a :class:`ProcessPoolExecutor` with ``jobs`` workers.
    Results are identical either way — specs are self-contained and
    :func:`execute` consults no shared mutable state. ``chunksize``
    tunes how many specs each worker pulls at once (default: enough to
    give every worker a handful of contiguous specs, which also keeps
    the per-worker trace cache warm since neighbouring specs in a sweep
    share a trace).
    """
    specs = list(specs)
    if jobs is None:
        jobs = 1
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if jobs == 1 or len(specs) <= 1:
        return [execute(spec) for spec in specs]
    workers = min(jobs, len(specs))
    if chunksize is None:
        chunksize = max(1, len(specs) // (workers * 4))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(execute, specs, chunksize=chunksize))
