"""The shared execution kernel: picklable run specs + process fan-out.

Every experiment harness in the repository — figure sweeps, multi-seed
campaigns, the benchmark suite and the CLI — reduces to the same
primitive: *run one simulation for one (trace, config) pair*. This
module makes that primitive a first-class, picklable value so a flat
list of runs can be executed serially or fanned out across worker
processes with bitwise-identical results:

* :class:`TraceSpec` — a declarative, picklable description of how to
  build a contact trace (a dotted-path builder plus arguments, or a
  literal pre-built trace);
* :class:`RunSpec` — one run: a trace spec, a
  :class:`~repro.sim.runner.SimulationConfig` and an optional seed
  override, plus an opaque ``tag`` that round-trips to the result;
* :func:`execute` — the pure mapping ``RunSpec -> RunResult``;
* :func:`run_many` — submission-based fan-out over a
  :class:`~concurrent.futures.ProcessPoolExecutor` when ``jobs > 1``,
  preserving input order.

Resilience
----------
``run_many`` is built for multi-hour campaigns where a single worker
crash must not cost the whole sweep:

* each spec is submitted as its own future with an optional per-spec
  ``timeout``;
* a crashed worker (``BrokenProcessPool``) or timed-out spec is retried
  on a fresh pool, up to ``retries`` times with exponential ``backoff``;
* ordinary exceptions raised by the simulation itself are treated as
  deterministic and never retried — ``on_error`` picks between raising
  immediately (``"fail_fast"``) and recording a :class:`RunError` in
  the result slot (``"collect"``);
* with ``checkpoint=path``, every completed run is appended to a JSONL
  file keyed by :func:`spec_fingerprint`; a re-invocation with the same
  path re-runs only the specs not yet completed.

Determinism
-----------
``execute`` derives all randomness from the spec: the trace builder is
seeded by the spec's arguments and the simulation by
``config.seed`` (or the spec's ``seed`` override), each through its own
``random.Random`` instance. No module-level RNG is consulted, so the
results are independent of execution order and of the process the run
lands in — ``run_many(specs, jobs=4)`` equals ``jobs=1`` exactly, even
when workers crash and specs are retried.

Trace caching
-------------
Building a trace can rival the simulation itself in cost, and a sweep
reuses one trace across many (x, protocol) cells. ``execute`` therefore
caches built traces in two layers:

* a small **per-process LRU table** keyed by the *full* trace spec
  (builder path + every argument) — each worker builds any distinct
  trace at most once while it stays hot;
* an optional **persistent disk cache** (:mod:`repro.traces.cache`)
  layered underneath, keyed by :func:`trace_spec_fingerprint`, so all
  sweep workers — and all future invocations — share a single build.
  Enable it with :func:`set_trace_cache_dir`, the
  ``REPRO_TRACE_CACHE`` environment variable (inherited by worker
  processes) or the CLI ``--trace-cache DIR`` flag.

Literal traces bypass both layers (they are already built and travel
inside the pickled spec).

Execution modes
---------------
``run_many(..., mode="auto")`` (the default) only spins up a process
pool when it can actually help: with ``jobs <= 1`` or on a single-CPU
machine it executes inline — no pool, no pickling, no fork overhead.
``mode="processes"`` forces the pool (crash/timeout isolation is worth
the overhead even on one CPU); ``mode="inline"`` forces serial
execution. :func:`resolve_execution_mode` exposes the decision.
"""

from __future__ import annotations

import hashlib
import importlib
import json
import os
import time
from collections import OrderedDict
from concurrent.futures import BrokenExecutor, CancelledError, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.detlint.hashseed import ensure_hash_seed
from repro.sim.metrics import SimulationResult
from repro.sim.runner import Simulation, SimulationConfig
from repro.traces import cache as trace_disk_cache
from repro.traces.base import ContactTrace

__all__ = [
    "RunError",
    "RunManyError",
    "RunResult",
    "RunSpec",
    "TRACE_CACHE_ENV",
    "TraceSpec",
    "as_trace_spec",
    "build_trace",
    "derive_seed",
    "execute",
    "resolve_callable",
    "resolve_execution_mode",
    "run_many",
    "set_trace_cache_dir",
    "spec_fingerprint",
    "trace_cache_clear",
    "trace_cache_dir",
    "trace_cache_info",
    "trace_perf_counters",
    "trace_spec_fingerprint",
]

#: Environment variable naming the persistent trace-cache directory.
#: Read per build (not at import), so it propagates to worker processes
#: and tests can flip it at runtime.
TRACE_CACHE_ENV = "REPRO_TRACE_CACHE"


def resolve_callable(fn: Callable[..., Any]) -> Optional[str]:
    """Dotted ``"module:qualname"`` path of ``fn``, or None.

    Only module-level callables resolve (closures and lambdas carry
    ``<locals>`` or ``<lambda>`` in their qualname and cannot be
    re-imported by a worker). The path is validated by importing it
    back and checking identity.
    """
    module = getattr(fn, "__module__", None)
    qualname = getattr(fn, "__qualname__", None)
    if not module or not qualname:
        return None
    if "<locals>" in qualname or "<lambda>" in qualname:
        return None
    try:
        target: Any = importlib.import_module(module)
        for part in qualname.split("."):
            target = getattr(target, part)
    except (ImportError, AttributeError):
        return None
    return f"{module}:{qualname}" if target is fn else None


def _import_callable(path: str) -> Callable[..., Any]:
    module, _, qualname = path.partition(":")
    target: Any = importlib.import_module(module)
    for part in qualname.split("."):
        target = getattr(target, part)
    return target


@dataclass(frozen=True)
class TraceSpec:
    """Picklable recipe for one contact trace.

    Exactly one of two forms:

    * **builder** — ``builder`` names a module-level callable as
      ``"module:qualname"``; :meth:`build` imports and calls it with
      ``args``/``kwargs``. Cheap to pickle and cacheable by value.
    * **literal** — ``trace`` holds a pre-built
      :class:`~repro.traces.base.ContactTrace`. The trace itself is
      pickled to workers; caching is unnecessary.
    """

    builder: Optional[str] = None
    args: Tuple[Any, ...] = ()
    kwargs: Tuple[Tuple[str, Any], ...] = ()
    trace: Optional[ContactTrace] = None

    def __post_init__(self) -> None:
        if (self.builder is None) == (self.trace is None):
            raise ValueError("TraceSpec needs exactly one of builder= or trace=")

    @classmethod
    def of(cls, fn: Callable[..., ContactTrace], *args: Any, **kwargs: Any) -> "TraceSpec":
        """Spec for a module-level trace builder and its arguments."""
        path = resolve_callable(fn)
        if path is None:
            raise ValueError(
                f"{fn!r} is not an importable module-level callable; "
                "use TraceSpec.literal(...) for traces built by closures"
            )
        return cls(builder=path, args=tuple(args), kwargs=tuple(sorted(kwargs.items())))

    @classmethod
    def literal(cls, trace: ContactTrace) -> "TraceSpec":
        """Spec wrapping an already-built trace."""
        return cls(trace=trace)

    @property
    def cache_key(self) -> Optional[Tuple[Any, ...]]:
        """Hashable identity for the per-worker cache (None = uncached)."""
        if self.builder is None:
            return None
        key = (self.builder, self.args, self.kwargs)
        try:
            hash(key)
        except TypeError:
            return None  # unhashable builder arguments: rebuild every time
        return key

    def build(self) -> ContactTrace:
        """Materialize the trace (no caching; see :func:`execute`)."""
        if self.trace is not None:
            return self.trace
        assert self.builder is not None
        fn = _import_callable(self.builder)
        return fn(*self.args, **dict(self.kwargs))


def as_trace_spec(obj: "TraceSpec | ContactTrace") -> TraceSpec:
    """Coerce a trace-or-spec into a spec (legacy factories return traces)."""
    if isinstance(obj, TraceSpec):
        return obj
    if isinstance(obj, ContactTrace):
        return TraceSpec.literal(obj)
    raise TypeError(f"expected TraceSpec or ContactTrace, got {type(obj).__name__}")


@dataclass(frozen=True)
class RunSpec:
    """One simulation run, fully described by picklable data.

    ``seed`` (when not None) overrides ``config.seed``; ``tag`` is an
    opaque tuple of ``(key, value)`` pairs that round-trips unchanged to
    the :class:`RunResult`, letting consumers map a flat result list
    back onto their grid (x value, protocol, seed, …).
    """

    trace: TraceSpec
    config: SimulationConfig
    seed: Optional[int] = None
    tag: Tuple[Tuple[str, Any], ...] = ()

    def resolved_config(self) -> SimulationConfig:
        """The config actually run (seed override applied)."""
        if self.seed is None:
            return self.config
        return replace(self.config, seed=self.seed)

    def labels(self) -> Dict[str, Any]:
        """The tag as a plain dict."""
        return dict(self.tag)

    @staticmethod
    def make_tag(**labels: Any) -> Tuple[Tuple[str, Any], ...]:
        """Build a deterministic tag tuple from keyword labels."""
        return tuple(sorted(labels.items()))


@dataclass(frozen=True)
class RunResult:
    """Outcome of :func:`execute`: the spec, its result and wall time."""

    spec: RunSpec
    result: SimulationResult
    wall_time: float


@dataclass(frozen=True)
class RunError:
    """Terminal failure of one spec (``on_error="collect"`` slot value).

    ``error`` is a human-readable description of the last failure and
    ``attempts`` the number of execution attempts made (1 for
    non-retryable simulation errors, up to ``retries + 1`` for worker
    crashes and timeouts).
    """

    spec: RunSpec
    error: str
    attempts: int

    def labels(self) -> Dict[str, Any]:
        """The spec's tag as a plain dict (mirrors ``RunSpec.labels``)."""
        return dict(self.spec.tag)


class RunManyError(RuntimeError):
    """A spec failed terminally under ``on_error="fail_fast"``."""

    def __init__(self, errors: Sequence[RunError]) -> None:
        self.errors = list(errors)
        first = self.errors[0]
        super().__init__(
            f"{len(self.errors)} spec(s) failed; first: {first.error} "
            f"after {first.attempts} attempt(s) (tag={first.labels()})"
        )


def derive_seed(*components: Any) -> int:
    """Deterministic 63-bit seed derived from arbitrary components.

    Stable across processes and Python invocations (unlike ``hash``,
    which is salted): hashes the repr of the components with SHA-256.
    Use to give each run of a family an independent but reproducible
    RNG stream: ``derive_seed(base_seed, "sweep", x, index)``.
    """
    digest = hashlib.sha256(repr(components).encode()).digest()
    return int.from_bytes(digest[:8], "big") >> 1


def _trace_identity(spec: TraceSpec) -> Tuple[Any, ...]:
    """Value identity of a trace spec (never its memory address)."""
    if spec.builder is not None:
        return ("builder", spec.builder, repr(spec.args), repr(spec.kwargs))
    trace = spec.trace
    assert trace is not None
    digest = hashlib.sha256()
    for contact in trace:
        digest.update(
            repr((contact.start, contact.end, tuple(sorted(contact.members)))).encode()
        )
    return ("literal", trace.name, len(trace), digest.hexdigest())


def spec_fingerprint(spec: RunSpec) -> str:
    """Stable hex identity of a run spec, the checkpoint-file key.

    Covers the trace (builder path + arguments, or the literal trace's
    full contact content), the resolved config (including the fault
    plan and seed) and the tag — everything that determines the run's
    output. Stable across processes and Python invocations.
    """
    identity = (
        _trace_identity(spec.trace),
        repr(spec.resolved_config()),
        repr(spec.tag),
    )
    return hashlib.sha256(repr(identity).encode()).hexdigest()


def trace_spec_fingerprint(spec: TraceSpec) -> str:
    """Stable hex identity of a trace spec — the disk-cache key.

    Covers the builder's dotted path and every argument (or a literal
    trace's full contact content), so any change to the recipe is a
    different cache entry. Stable across processes and Python
    invocations.
    """
    return hashlib.sha256(repr(_trace_identity(spec)).encode()).hexdigest()


class _LRUCache:
    """Tiny LRU map with hit/miss counters (per-process trace cache)."""

    def __init__(self, limit: int) -> None:
        if limit < 1:
            raise ValueError(f"cache limit must be >= 1, got {limit}")
        self._limit = limit
        self._data: "OrderedDict[Tuple[Any, ...], ContactTrace]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Tuple[Any, ...]) -> bool:
        return key in self._data  # membership probe; no recency touch

    def get(self, key: Tuple[Any, ...]) -> Optional[ContactTrace]:
        try:
            value = self._data[key]
        except KeyError:
            self.misses += 1
            return None
        self._data.move_to_end(key)  # a hit refreshes recency
        self.hits += 1
        return value

    def put(self, key: Tuple[Any, ...], value: ContactTrace) -> None:
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self._limit:
            self._data.popitem(last=False)  # evict least recently used

    def clear(self) -> None:
        self._data.clear()


#: Per-process trace cache: full spec key -> built trace. Bounded so a
#: long-lived worker sweeping many trace parameters cannot grow without
#: limit; eviction is least-recently-used (a sweep's hot trace stays
#: cached however many cold ones pass through).
_TRACE_CACHE_LIMIT = 16
_TRACE_CACHE = _LRUCache(_TRACE_CACHE_LIMIT)

#: Builds performed by this process (disk + LRU both missed).
_TRACE_BUILDS = {"count": 0}

_DIR_UNSET = object()
#: Programmatic override of the cache directory; when left unset, the
#: ``REPRO_TRACE_CACHE`` environment variable decides.
_TRACE_CACHE_DIR_OVERRIDE: Any = _DIR_UNSET


def set_trace_cache_dir(path: Optional[str]) -> Optional[str]:
    """Set the persistent trace-cache directory for this process.

    ``None`` clears the override, falling back to ``REPRO_TRACE_CACHE``
    (or no disk layer when the variable is unset too). Returns the
    previous override so callers can restore it. Note: worker processes
    inherit the *environment variable*, not this override — parallel
    sweeps should export ``REPRO_TRACE_CACHE`` instead (the CLI flag
    does exactly that).
    """
    global _TRACE_CACHE_DIR_OVERRIDE
    previous = _TRACE_CACHE_DIR_OVERRIDE
    _TRACE_CACHE_DIR_OVERRIDE = _DIR_UNSET if path is None else path
    return None if previous is _DIR_UNSET else previous


def trace_cache_dir() -> Optional[str]:
    """The effective persistent trace-cache directory, or ``None``."""
    if _TRACE_CACHE_DIR_OVERRIDE is not _DIR_UNSET:
        return _TRACE_CACHE_DIR_OVERRIDE
    return os.environ.get(TRACE_CACHE_ENV) or None


def _trace_for(spec: TraceSpec) -> ContactTrace:
    key = spec.cache_key
    if key is None:
        return spec.build()
    cached = _TRACE_CACHE.get(key)
    if cached is not None:
        return cached
    cache_dir = trace_cache_dir()
    fingerprint = trace_spec_fingerprint(spec) if cache_dir is not None else None
    if cache_dir is not None:
        loaded = trace_disk_cache.load(cache_dir, fingerprint)
        if loaded is not None:
            _TRACE_CACHE.put(key, loaded)
            return loaded
    trace = spec.build()
    _TRACE_BUILDS["count"] += 1
    _TRACE_CACHE.put(key, trace)
    if cache_dir is not None:
        trace_disk_cache.store(cache_dir, fingerprint, trace)
    return trace


def build_trace(spec: "TraceSpec | ContactTrace") -> ContactTrace:
    """Materialize a trace through both cache layers (LRU, then disk)."""
    return _trace_for(as_trace_spec(spec))


def trace_cache_info() -> Dict[str, int]:
    """Hit/miss counters of this process's trace cache (diagnostics)."""
    return {
        "size": len(_TRACE_CACHE),
        "hits": _TRACE_CACHE.hits,
        "misses": _TRACE_CACHE.misses,
    }


def trace_cache_clear() -> None:
    """Drop this process's in-memory LRU (cold-cache tests and benches).

    Leaves the disk layer untouched: the next :func:`build_trace` for a
    known spec is served from disk, not rebuilt.
    """
    _TRACE_CACHE.clear()


def trace_perf_counters() -> Dict[str, int]:
    """Every trace-pipeline tally in the flat ``perf.trace.*`` namespace.

    Combines this process's LRU layer, its build count and the disk
    layer (:func:`repro.traces.cache.cache_counters`). Process-local
    and wall-clock-dependent, so deliberately kept out of
    :class:`~repro.sim.metrics.SimulationResult` counters.
    """
    out = {
        "perf.trace.lru_size": len(_TRACE_CACHE),
        "perf.trace.lru_hits": _TRACE_CACHE.hits,
        "perf.trace.lru_misses": _TRACE_CACHE.misses,
        "perf.trace.builds": _TRACE_BUILDS["count"],
    }
    out.update(trace_disk_cache.cache_counters())
    return out


def execute(spec: RunSpec) -> RunResult:
    """Run one spec to completion (pure: output depends only on the spec).

    With ``REPRO_DETCHECK`` enabled (see
    :mod:`repro.detlint.sanitizer`), the run is executed under the
    runtime sanitizer — double-run fingerprint cross-check, global-RNG
    guard and hash-seed verification — and the first run's result is
    returned, so sanitized and unsanitized executions are
    interchangeable. The environment variable is inherited by pool
    workers, covering parallel sweeps too.
    """
    # Pin PYTHONHASHSEED before the run so the recorded
    # detcheck.pythonhashseed counter is identical whether this spec
    # executes inline, in a worker, or in a resumed sweep.
    ensure_hash_seed()
    start = time.perf_counter()
    trace = _trace_for(spec.trace)
    from repro.detlint import sanitizer  # deferred: pulls in hashing/json only

    if sanitizer.detcheck_enabled():
        result = sanitizer.checked_run(trace, spec.resolved_config())
    else:
        result = Simulation(trace, spec.resolved_config()).run()
    return RunResult(spec=spec, result=result, wall_time=time.perf_counter() - start)


def _load_checkpoint(path: str) -> Dict[str, List[Dict[str, Any]]]:
    """Completed payloads from a checkpoint file, keyed by fingerprint.

    Duplicate fingerprints (identical specs run twice) are kept as a
    queue in file order. Torn or malformed lines — the tail of a run
    killed mid-write — are skipped rather than fatal.
    """
    completed: Dict[str, List[Dict[str, Any]]] = {}
    try:
        handle = open(path, "r", encoding="utf-8")
    except OSError:
        return completed
    with handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
                fingerprint = payload["fingerprint"]
                payload["result"]
            except (ValueError, KeyError, TypeError):
                continue
            completed.setdefault(fingerprint, []).append(payload)
    return completed


def resolve_execution_mode(
    jobs: Optional[int], mode: str = "auto"
) -> Tuple[str, int]:
    """Decide how :func:`run_many` will execute: ``(mode, jobs)``.

    Returns ``("inline", 1)`` or ``("processes", n)``. Under ``"auto"``
    a pool is only used when ``jobs > 1`` *and* the machine has more
    than one CPU — on a single core, pool + pickling overhead beats the
    win, so the sweep runs inline instead. ``"processes"`` forces the
    pool (its crash/timeout isolation can be worth the overhead
    anywhere); ``"inline"`` forces serial execution.
    """
    if mode not in ("auto", "inline", "processes"):
        raise ValueError(
            f'mode must be "auto", "inline" or "processes", got {mode!r}'
        )
    jobs = 1 if jobs is None else jobs
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if jobs == 1 or mode == "inline":
        return "inline", 1
    if mode == "auto" and (os.cpu_count() or 1) <= 1:
        return "inline", 1
    return "processes", jobs


def run_many(
    specs: Sequence[RunSpec],
    jobs: Optional[int] = None,
    *,
    timeout: Optional[float] = None,
    retries: int = 2,
    backoff: float = 0.1,
    on_error: str = "fail_fast",
    checkpoint: Optional[str] = None,
    mode: str = "auto",
) -> List[Union[RunResult, RunError]]:
    """Execute every spec, preserving input order.

    ``jobs`` <= 1 (the default) runs serially in-process; larger values
    submit each spec as its own future to a
    :class:`ProcessPoolExecutor` with up to ``jobs`` workers — unless
    ``mode`` (see :func:`resolve_execution_mode`) decides the pool
    cannot pay for itself, in which case the sweep runs inline with no
    pickling or fork overhead. Results are identical either way — specs
    are self-contained and :func:`execute` consults no shared mutable
    state.

    Fault handling (parallel mode):

    * ``timeout`` — seconds granted per spec once its result is
      awaited; a spec exceeding it counts as a retryable failure and
      its (possibly stuck) worker pool is abandoned without waiting.
    * ``retries`` — how many times a retryable failure (worker crash,
      broken pool, timeout) is re-executed on a fresh pool; waits
      ``backoff`` seconds before the first retry round, doubling each
      round. Exceptions raised *by the simulation itself* are
      deterministic and never retried.
    * ``on_error`` — ``"fail_fast"`` (default) re-raises the first
      terminal failure; ``"collect"`` puts a :class:`RunError` in the
      failed spec's result slot and keeps going.
    * ``checkpoint`` — path of a JSONL file; every completed run is
      appended (fingerprint + result) and, on re-invocation, specs
      whose fingerprint is already present are restored from the file
      instead of re-run. Errors are never checkpointed, so failed
      specs are retried by a resumed sweep.

    Serial mode honors ``on_error`` and ``checkpoint`` (there is no
    worker to crash or time out, so ``timeout``/``retries`` do not
    apply).
    """
    specs = list(specs)
    # Worker bootstrap: pool workers inherit the parent environment, so
    # pinning PYTHONHASHSEED here (when the caller left it unset)
    # guarantees every spawned interpreter runs unsalted — and that the
    # detcheck.pythonhashseed counter recorded by each run is identical
    # across serial, parallel and resumed executions of the same sweep.
    ensure_hash_seed()
    __, jobs = resolve_execution_mode(jobs, mode)
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    if backoff < 0:
        raise ValueError(f"backoff must be >= 0, got {backoff}")
    if on_error not in ("fail_fast", "collect"):
        raise ValueError(f'on_error must be "fail_fast" or "collect", got {on_error!r}')
    if timeout is not None and timeout <= 0:
        raise ValueError(f"timeout must be positive, got {timeout}")

    slots: List[Optional[Union[RunResult, RunError]]] = [None] * len(specs)
    pending: List[int] = list(range(len(specs)))
    fingerprints: List[str] = []
    writer = None
    if checkpoint is not None:
        fingerprints = [spec_fingerprint(spec) for spec in specs]
        done = _load_checkpoint(checkpoint)
        pending = []
        for index, fingerprint in enumerate(fingerprints):
            queue = done.get(fingerprint)
            if queue:
                payload = queue.pop(0)
                slots[index] = RunResult(
                    spec=specs[index],
                    result=SimulationResult.from_dict(payload["result"]),
                    wall_time=float(payload.get("wall_time", 0.0)),
                )
            else:
                pending.append(index)
        writer = open(checkpoint, "a", encoding="utf-8")

    def record(index: int, run: RunResult) -> None:
        slots[index] = run
        if writer is not None:
            writer.write(
                json.dumps(
                    {
                        "fingerprint": fingerprints[index],
                        "wall_time": run.wall_time,
                        "result": run.result.to_dict(),
                    }
                )
                + "\n"
            )
            writer.flush()

    try:
        if jobs == 1 or not pending:
            for index in pending:
                try:
                    run = execute(specs[index])
                except Exception as exc:
                    if on_error == "fail_fast":
                        raise
                    slots[index] = RunError(
                        spec=specs[index],
                        error=f"{type(exc).__name__}: {exc}",
                        attempts=1,
                    )
                else:
                    record(index, run)
        else:
            _run_parallel(
                specs, pending, slots, record, jobs, timeout, retries, backoff, on_error
            )
    finally:
        if writer is not None:
            writer.close()
    assert all(slot is not None for slot in slots)
    return slots  # type: ignore[return-value]


def _run_parallel(
    specs: List[RunSpec],
    pending: List[int],
    slots: List[Optional[Union[RunResult, RunError]]],
    record: Callable[[int, RunResult], None],
    jobs: int,
    timeout: Optional[float],
    retries: int,
    backoff: float,
    on_error: str,
) -> None:
    """Rounds of per-spec futures; retryable failures get a fresh pool."""
    failures: Dict[int, int] = {index: 0 for index in pending}
    delay = backoff
    while pending:
        pool = ProcessPoolExecutor(max_workers=min(jobs, len(pending)))
        futures = {index: pool.submit(execute, specs[index]) for index in pending}
        failed: List[Tuple[int, str]] = []
        stuck = False
        fatal: Optional[BaseException] = None
        try:
            for index in pending:
                try:
                    run = futures[index].result(timeout=timeout)
                except (FuturesTimeoutError, TimeoutError):
                    stuck = True
                    failed.append((index, f"timed out after {timeout:g}s"))
                except (BrokenExecutor, CancelledError) as exc:
                    failed.append((index, f"worker crashed ({type(exc).__name__})"))
                except Exception as exc:
                    # The simulation itself raised: deterministic, so a
                    # retry would fail identically.
                    if on_error == "fail_fast":
                        fatal = exc
                        break
                    slots[index] = RunError(
                        spec=specs[index],
                        error=f"{type(exc).__name__}: {exc}",
                        attempts=failures[index] + 1,
                    )
                else:
                    record(index, run)
        finally:
            # A timed-out worker cannot be interrupted; abandon the pool
            # without waiting so the retry round starts immediately.
            pool.shutdown(wait=not stuck, cancel_futures=True)
        if fatal is not None:
            raise fatal
        pending = []
        for index, reason in failed:
            failures[index] += 1
            if failures[index] <= retries:
                pending.append(index)
            else:
                error = RunError(spec=specs[index], error=reason, attempts=failures[index])
                if on_error == "fail_fast":
                    raise RunManyError([error])
                slots[index] = error
        if pending and delay > 0:
            time.sleep(delay)
            delay = min(delay * 2, 2.0)
