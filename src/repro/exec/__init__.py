"""Shared execution kernel: picklable run specs, parallel fan-out.

See :mod:`repro.exec.kernel` for the full story. Typical use::

    from repro.exec import RunSpec, TraceSpec, run_many
    from repro.experiments.workloads import dieselnet_trace, dieselnet_base_config

    specs = [
        RunSpec(trace=TraceSpec.of(dieselnet_trace, "fast", seed),
                config=dieselnet_base_config(seed))
        for seed in range(8)
    ]
    for run in run_many(specs, jobs=4):
        print(run.spec.resolved_config().seed, run.result.describe())
"""

from repro.exec.kernel import (
    TRACE_CACHE_ENV,
    RunError,
    RunManyError,
    RunResult,
    RunSpec,
    TraceSpec,
    as_trace_spec,
    build_trace,
    derive_seed,
    execute,
    resolve_callable,
    resolve_execution_mode,
    run_many,
    set_trace_cache_dir,
    spec_fingerprint,
    trace_cache_clear,
    trace_cache_dir,
    trace_cache_info,
    trace_perf_counters,
    trace_spec_fingerprint,
)

__all__ = [
    "TRACE_CACHE_ENV",
    "RunError",
    "RunManyError",
    "RunResult",
    "RunSpec",
    "TraceSpec",
    "as_trace_spec",
    "build_trace",
    "derive_seed",
    "execute",
    "resolve_callable",
    "resolve_execution_mode",
    "run_many",
    "set_trace_cache_dir",
    "spec_fingerprint",
    "trace_cache_clear",
    "trace_cache_dir",
    "trace_cache_info",
    "trace_perf_counters",
    "trace_spec_fingerprint",
]
