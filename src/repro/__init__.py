"""repro — reproduction of "Cooperative File Sharing in Hybrid Delay
Tolerant Networks" (Liu, Wu, Guan, Chen — ICDCS 2011).

The package implements the paper's mobile BitTorrent (MBT) system and
every substrate it needs: a discrete-event DTN simulator, synthetic
UMassDieselNet/NUS traces, the Internet-side file/metadata catalog,
cooperative and tit-for-tat discovery and download policies, and an
experiment harness that regenerates every figure of the evaluation.

Quickstart
----------
>>> from repro import (
...     SimulationConfig, Simulation, generate_dieselnet_trace,
... )
>>> trace = generate_dieselnet_trace(seed=1)
>>> result = Simulation(trace, SimulationConfig(seed=1)).run()
>>> 0.0 <= result.file_delivery_ratio <= 1.0
True
"""

from repro.core.credits import CREDIT_POLICIES, CreditLedger, ReputationCreditLedger
from repro.core.mbt import MobileBitTorrent, ProtocolConfig, ProtocolVariant, SchedulingMode
from repro.core.strategies import STRATEGY_NAMES, AdversaryPlan, Strategy, parse_mix
from repro.exec import RunError, RunResult, RunSpec, TraceSpec, execute, run_many
from repro.faults import FaultInjector, FaultPlan
from repro.sim.metrics import SimulationResult
from repro.sim.runner import Simulation, SimulationConfig, run_simulation
from repro.traces.base import Contact, ContactTrace
from repro.traces.dieselnet import DieselNetConfig, generate_dieselnet_trace
from repro.traces.nus import NUSConfig, generate_nus_trace

__version__ = "1.0.0"

__all__ = [
    "MobileBitTorrent",
    "ProtocolConfig",
    "ProtocolVariant",
    "SchedulingMode",
    "RunError",
    "RunResult",
    "RunSpec",
    "TraceSpec",
    "execute",
    "run_many",
    "FaultInjector",
    "FaultPlan",
    "AdversaryPlan",
    "Strategy",
    "STRATEGY_NAMES",
    "parse_mix",
    "CreditLedger",
    "ReputationCreditLedger",
    "CREDIT_POLICIES",
    "SimulationResult",
    "Simulation",
    "SimulationConfig",
    "run_simulation",
    "Contact",
    "ContactTrace",
    "DieselNetConfig",
    "generate_dieselnet_trace",
    "NUSConfig",
    "generate_nus_trace",
    "__version__",
]
