"""Wire format for MBT frames.

Layout of every frame::

    MAGIC (4 bytes, b"MBT1") | LENGTH (4 bytes, big-endian) |
    CRC32 (4 bytes, of the body) | BODY (LENGTH bytes, UTF-8 JSON)

The JSON body always carries ``type`` (one of :class:`FrameType`),
``sender`` and ``sent_at``, plus type-specific fields. Binary piece
payloads are base64-encoded inside the body — simple, debuggable, and
adequate for an emulated radio (a production build would swap the JSON
body for a compact binary encoding behind the same functions).

Decoding is strict: bad magic, truncated frames, CRC mismatches and
unknown frame types raise :class:`CodecError` so a deployment never
acts on corrupted radio input.
"""

from __future__ import annotations

import base64
import binascii
import enum
import json
import struct
from dataclasses import dataclass
from typing import Any, Dict, Tuple

from repro.catalog.metadata import Metadata
from repro.types import NodeId, Uri

MAGIC = b"MBT1"
_HEADER = struct.Struct(">4sII")  # magic, body length, crc32


class CodecError(ValueError):
    """Raised for any malformed frame."""


class FrameType(enum.Enum):
    HELLO = "hello"
    METADATA = "metadata"
    PIECE = "piece"


@dataclass(frozen=True)
class Frame:
    """A decoded frame: type, sender, timestamp and the body fields."""

    frame_type: FrameType
    sender: NodeId
    sent_at: float
    body: Dict[str, Any]

    def field(self, name: str) -> Any:
        try:
            return self.body[name]
        except KeyError as exc:
            raise CodecError(f"frame missing field {name!r}") from exc


def _encode_body(body: Dict[str, Any]) -> bytes:
    return json.dumps(body, separators=(",", ":"), sort_keys=True).encode()


def encode_frame(
    frame_type: FrameType,
    sender: NodeId,
    sent_at: float,
    fields: Dict[str, Any],
) -> bytes:
    """Serialize one frame to bytes."""
    body = {"type": frame_type.value, "sender": int(sender), "sent_at": sent_at}
    body.update(fields)
    encoded = _encode_body(body)
    crc = binascii.crc32(encoded) & 0xFFFFFFFF
    return _HEADER.pack(MAGIC, len(encoded), crc) + encoded


def decode_frame(data: bytes) -> Frame:
    """Parse and verify one frame.

    Raises
    ------
    CodecError
        On bad magic, truncation, CRC mismatch, invalid JSON or an
        unknown frame type.
    """
    if len(data) < _HEADER.size:
        raise CodecError(f"frame too short: {len(data)} bytes")
    magic, length, crc = _HEADER.unpack_from(data)
    if magic != MAGIC:
        raise CodecError(f"bad magic {magic!r}")
    body_bytes = data[_HEADER.size:]
    if len(body_bytes) != length:
        raise CodecError(f"length mismatch: header says {length}, got {len(body_bytes)}")
    if binascii.crc32(body_bytes) & 0xFFFFFFFF != crc:
        raise CodecError("CRC mismatch: frame corrupted")
    try:
        body = json.loads(body_bytes.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CodecError(f"invalid body: {exc}") from exc
    try:
        frame_type = FrameType(body["type"])
    except (KeyError, ValueError) as exc:
        raise CodecError(f"unknown frame type: {body.get('type')!r}") from exc
    if "sender" not in body or "sent_at" not in body:
        raise CodecError("frame missing sender/sent_at")
    return Frame(
        frame_type=frame_type,
        sender=NodeId(int(body["sender"])),
        sent_at=float(body["sent_at"]),
        body=body,
    )


# ------------------------------------------------------------------ metadata


def metadata_to_fields(record: Metadata) -> Dict[str, Any]:
    """JSON-safe representation of a metadata record."""
    return {
        "uri": record.uri,
        "name": record.name,
        "publisher": record.publisher,
        "description": record.description,
        "checksums": list(record.checksums),
        "size_bytes": record.size_bytes,
        "created_at": record.created_at,
        "ttl": record.ttl,
        "popularity": record.popularity,
        "signature": record.signature,
    }


def metadata_from_fields(fields: Dict[str, Any]) -> Metadata:
    """Rebuild a metadata record from frame fields.

    Raises
    ------
    CodecError
        On missing keys or wrong field types.
    """
    try:
        return Metadata(
            uri=Uri(str(fields["uri"])),
            name=str(fields["name"]),
            publisher=str(fields["publisher"]),
            description=str(fields["description"]),
            checksums=tuple(str(c) for c in fields["checksums"]),
            size_bytes=int(fields["size_bytes"]),
            created_at=float(fields["created_at"]),
            ttl=float(fields["ttl"]),
            popularity=float(fields["popularity"]),
            signature=str(fields["signature"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise CodecError(f"bad metadata fields: {exc}") from exc


# ------------------------------------------------------------------ builders


def build_hello(
    sender: NodeId,
    sent_at: float,
    heard: Tuple[int, ...],
    query_tokens: Tuple[Tuple[str, ...], ...],
    downloading: Tuple[str, ...],
    held_uris: Tuple[str, ...],
    have: Dict[str, Tuple[int, ...]],
    carried_query_tokens: Tuple[Tuple[str, ...], ...] = (),
) -> bytes:
    """HELLO: presence + §III-B fields + store digests.

    ``query_tokens`` are the sender's own queries and
    ``carried_query_tokens`` the ones carried for frequent contacts
    (full MBT) — peers rank own requests above carried ones (§IV-A).
    ``downloading`` lists the URIs the sender wants (§III-B d);
    ``held_uris`` is the metadata-store digest; ``have`` maps every
    URI with stored pieces to its piece indices (BitTorrent-style
    have-map) so peers never retransmit pieces the sender holds.
    """
    return encode_frame(
        FrameType.HELLO,
        sender,
        sent_at,
        {
            "heard": sorted(heard),
            "query_tokens": [sorted(tokens) for tokens in query_tokens],
            "carried_query_tokens": [
                sorted(tokens) for tokens in carried_query_tokens
            ],
            "downloading": sorted(downloading),
            "held_uris": sorted(held_uris),
            "have": {uri: sorted(idx) for uri, idx in have.items()},
        },
    )


def build_metadata_frame(sender: NodeId, sent_at: float, record: Metadata) -> bytes:
    """METADATA: one advertised record."""
    return encode_frame(
        FrameType.METADATA, sender, sent_at, {"record": metadata_to_fields(record)}
    )


def build_piece_frame(
    sender: NodeId,
    sent_at: float,
    record: Metadata,
    index: int,
    payload: bytes,
) -> bytes:
    """PIECE: one file piece with its metadata attached."""
    return encode_frame(
        FrameType.PIECE,
        sender,
        sent_at,
        {
            "record": metadata_to_fields(record),
            "index": index,
            "payload_b64": base64.b64encode(payload).decode(),
        },
    )


def piece_payload_from_frame(frame: Frame) -> bytes:
    """Extract and decode the piece payload."""
    try:
        return base64.b64decode(frame.field("payload_b64"), validate=True)
    except (binascii.Error, ValueError) as exc:
        raise CodecError(f"bad piece payload: {exc}") from exc
