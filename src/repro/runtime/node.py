"""The device runtime: MBT with strictly local knowledge.

A :class:`DTNNode` knows only (a) its own :class:`~repro.core.node.
NodeState` and (b) what peers said in their hello frames: query
strings, downloading URIs with piece bitmaps, and a metadata-store
digest (``held_uris``). Candidate selection reimplements §IV/§V
rankings on top of that information alone — no reads of peer state.

The hello carries everything the schedulers need (BitTorrent-style
have-maps for pieces, a store digest for metadata), so local candidate
selection sees the same facts the omniscient simulator reads directly;
the equivalence tests in ``tests/test_runtime.py`` verify the two
implementations deliver comparably on identical workloads. Remaining
divergence is inherent to per-node scheduling: each sender ranks only
its own candidates (there is no coordinator message exchange), exactly
the §V-B cyclic mode.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional, Set, Tuple

from repro.catalog.files import IntegrityError, bit_indices, pack_bitmap, piece_payload
from repro.core.mbt import ProtocolConfig
from repro.core.node import NodeState
from repro.runtime import codec
from repro.runtime.codec import CodecError, Frame, FrameType
from repro.sim.metrics import MetricsCollector
from repro.types import NodeId, Uri


class DTNNode:
    """One device running the MBT protocol over frames."""

    def __init__(
        self,
        state: NodeState,
        config: ProtocolConfig,
        metrics: Optional[MetricsCollector] = None,
    ) -> None:
        self.state = state
        self.config = config
        self.metrics = metrics
        #: Peer knowledge from hello frames.
        self.peer_query_tokens: Dict[NodeId, Tuple[FrozenSet[str], ...]] = {}
        #: Queries peers carry for their frequent contacts (full MBT).
        self.peer_carried_tokens: Dict[NodeId, Tuple[FrozenSet[str], ...]] = {}
        #: URIs each peer advertises as wanted (§III-B d).
        self.peer_downloading: Dict[NodeId, Set[Uri]] = {}
        #: Metadata-store digests per peer.
        self.peer_held: Dict[NodeId, Set[Uri]] = {}
        #: Have-maps per peer: uri -> bitmap of piece indices the peer
        #: holds (bit ``i`` set = piece ``i``). The hello wire format
        #: stays a sorted index list; bitmaps are the in-memory form.
        self.peer_have: Dict[NodeId, Dict[Uri, int]] = {}
        #: Members of the contact currently in progress (broadcast
        #: inference: every data frame on the air reached all of them).
        self.current_clique: FrozenSet[NodeId] = frozenset()
        #: Diagnostics.
        self.frames_received = 0
        self.frames_dropped = 0

    def begin_contact(self, members: FrozenSet[NodeId]) -> None:
        """Enter a contact: remember who shares the broadcast domain."""
        self.current_clique = members

    def end_contact(self) -> None:
        """Leave the contact."""
        self.current_clique = frozenset()

    @property
    def node_id(self) -> NodeId:
        return self.state.node

    # -- sending ---------------------------------------------------------------------

    def hello_bytes(self, now: float) -> bytes:
        """Serialize this node's hello beacon (§III-B fields + digests)."""
        include_foreign = self.config.variant.distributes_queries
        carried = (
            self.state.foreign_query_tokens(now) if include_foreign else ()
        )
        return codec.build_hello(
            sender=self.node_id,
            sent_at=now,
            heard=tuple(
                int(n) for n in self.state.heard_recently(now, window=5.0)
            ),
            query_tokens=tuple(
                tuple(tokens) for tokens in self.state.own_query_tokens(now)
            ),
            carried_query_tokens=tuple(tuple(tokens) for tokens in carried),
            downloading=tuple(sorted(str(u) for u in self.state.wanted_uris(now))),
            held_uris=tuple(sorted(str(u) for u in self.state.metadata.uris)),
            have={
                str(uri): tuple(sorted(self.state.pieces.pieces_of(uri)))
                for uri in sorted(self.state.pieces.uris)
            },
        )

    def propose_metadata(
        self, now: float, clique: FrozenSet[NodeId]
    ) -> Optional[Tuple[Tuple, Uri]]:
        """Best local metadata candidate as (ranking key, uri), or None.

        §IV-A two-phase ranking over peers' hello-advertised queries
        (own above carried) and store digests. Keys are comparable
        across members, so the coordinator can pick the clique's best
        proposal — and all members would agree, having the same hello
        information.
        """
        if self.state.selfish:
            return None
        peers = [p for p in clique if p != self.node_id]
        best_key: Optional[Tuple] = None
        best_uri: Optional[Uri] = None
        for record in self.state.metadata.records():
            if not record.is_live(now):
                continue
            missing = [
                p for p in peers if record.uri not in self.peer_held.get(p, set())
            ]
            if not missing:
                continue
            own_req = sum(
                1
                for p in missing
                if any(
                    tokens <= record.token_set
                    for tokens in self.peer_query_tokens.get(p, ())
                )
            )
            proxy_req = sum(
                1
                for p in missing
                if not any(
                    tokens <= record.token_set
                    for tokens in self.peer_query_tokens.get(p, ())
                )
                and any(
                    tokens <= record.token_set
                    for tokens in self.peer_carried_tokens.get(p, ())
                )
            )
            phase = 0 if (own_req or proxy_req) else 1
            key = (phase, -own_req, -proxy_req, -record.popularity, record.uri)
            if best_key is None or key < best_key:
                best_key = key
                best_uri = record.uri
        if best_uri is None:
            return None
        return (best_key, best_uri)

    def metadata_frame_for(self, uri: Uri, now: float) -> bytes:
        """Serialize the METADATA frame for a record this node holds."""
        record = self.state.metadata.get(uri)
        if record is None:
            raise KeyError(f"node {self.node_id} does not hold {uri}")
        return codec.build_metadata_frame(self.node_id, now, record)

    def next_metadata_frame(
        self, now: float, clique: FrozenSet[NodeId]
    ) -> Optional[bytes]:
        """Cyclic-mode transmission: this node's own best candidate."""
        proposal = self.propose_metadata(now, clique)
        if proposal is None:
            return None
        return self.metadata_frame_for(proposal[1], now)

    def propose_piece(
        self, now: float, clique: FrozenSet[NodeId]
    ) -> Optional[Tuple[Tuple, Uri, int]]:
        """Best local piece candidate as (key, uri, index), or None (§V-A)."""
        if self.state.selfish:
            return None
        peers = [p for p in clique if p != self.node_id]
        best_key: Optional[Tuple] = None
        best: Optional[Tuple[Uri, int]] = None
        for uri in self.state.pieces.uris:
            record = self.state.metadata.get(uri)
            if record is None or not record.is_live(now):
                continue
            for index in bit_indices(self.state.pieces.bitmap_of(uri)):
                mask = 1 << index
                requesters = 0
                lacking = 0
                for peer in peers:
                    if self.peer_have.get(peer, {}).get(uri, 0) & mask:
                        continue
                    lacking += 1
                    if uri in self.peer_downloading.get(peer, set()):
                        requesters += 1
                if not lacking:
                    continue
                phase = 0 if requesters else 1
                key = (phase, -requesters, -record.popularity, uri, index)
                if best_key is None or key < best_key:
                    best_key = key
                    best = (uri, index)
        if best is None:
            return None
        return (best_key, best[0], best[1])

    def piece_frame_for(self, uri: Uri, index: int, now: float) -> bytes:
        """Serialize the PIECE frame for a piece this node holds."""
        record = self.state.metadata.get(uri)
        if record is None or index not in self.state.pieces.pieces_of(uri):
            raise KeyError(f"node {self.node_id} does not hold {uri}#{index}")
        payload = piece_payload(uri, index, self.config.payload_length)
        return codec.build_piece_frame(self.node_id, now, record, index, payload)

    def next_piece_frame(
        self, now: float, clique: FrozenSet[NodeId]
    ) -> Optional[bytes]:
        """Cyclic-mode transmission: this node's own best candidate."""
        proposal = self.propose_piece(now, clique)
        if proposal is None:
            return None
        return self.piece_frame_for(proposal[1], proposal[2], now)

    def note_own_broadcast(self, data: bytes, clique: FrozenSet[NodeId]) -> None:
        """Record that every clique peer now holds what we just sent."""
        frame = codec.decode_frame(data)
        if frame.frame_type is FrameType.METADATA:
            uri = Uri(str(frame.field("record")["uri"]))
            for peer in clique:
                if peer != self.node_id:
                    self.peer_held.setdefault(peer, set()).add(uri)
        elif frame.frame_type is FrameType.PIECE:
            uri = Uri(str(frame.field("record")["uri"]))
            index = int(frame.field("index"))
            for peer in clique:
                if peer == self.node_id:
                    continue
                self.peer_held.setdefault(peer, set()).add(uri)
                have = self.peer_have.setdefault(peer, {})
                have[uri] = have.get(uri, 0) | (1 << index)

    # -- receiving -------------------------------------------------------------------

    def on_frame(self, sender: NodeId, data: bytes, now: float) -> None:
        """Handle one raw frame from the radio; corrupt frames dropped."""
        try:
            frame = codec.decode_frame(data)
        except CodecError:
            self.frames_dropped += 1
            return
        self.frames_received += 1
        if frame.frame_type is FrameType.HELLO:
            self._on_hello(frame, now)
        elif frame.frame_type is FrameType.METADATA:
            self._on_metadata(frame, now)
        elif frame.frame_type is FrameType.PIECE:
            self._on_piece(frame, now)

    def _on_hello(self, frame: Frame, now: float) -> None:
        sender = frame.sender
        self.state.neighbor_last_heard[sender] = now
        self.peer_query_tokens[sender] = tuple(
            frozenset(tokens) for tokens in frame.field("query_tokens")
        )
        self.peer_carried_tokens[sender] = tuple(
            frozenset(tokens)
            for tokens in frame.body.get("carried_query_tokens", [])
        )
        self.peer_downloading[sender] = {
            Uri(str(uri)) for uri in frame.field("downloading")
        }
        self.peer_held[sender] = {Uri(str(u)) for u in frame.field("held_uris")}
        self.peer_have[sender] = {
            Uri(str(uri)): pack_bitmap(int(i) for i in indices)
            for uri, indices in frame.field("have").items()
        }

    def _mark_clique_received(self, uri: Uri, index: Optional[int] = None) -> None:
        """Broadcast inference: every current clique member got the frame."""
        for peer in self.current_clique:
            if peer == self.node_id:
                continue
            self.peer_held.setdefault(peer, set()).add(uri)
            if index is not None:
                have = self.peer_have.setdefault(peer, {})
                have[uri] = have.get(uri, 0) | (1 << index)

    def _on_metadata(self, frame: Frame, now: float) -> None:
        try:
            record = codec.metadata_from_fields(frame.field("record"))
        except CodecError:
            self.frames_dropped += 1
            return
        self.peer_held.setdefault(frame.sender, set()).add(record.uri)
        self._mark_clique_received(record.uri)
        if self.state.accept_metadata(record, now) and self.metrics is not None:
            self.metrics.on_metadata(self.node_id, record.uri, now)

    def _on_piece(self, frame: Frame, now: float) -> None:
        try:
            record = codec.metadata_from_fields(frame.field("record"))
            index = int(frame.field("index"))
            payload = codec.piece_payload_from_frame(frame)
        except CodecError:
            self.frames_dropped += 1
            return
        self.peer_held.setdefault(frame.sender, set()).add(record.uri)
        self._mark_clique_received(record.uri, index)
        if self.state.accept_metadata(record, now) and self.metrics is not None:
            self.metrics.on_metadata(self.node_id, record.uri, now)
        if record.uri not in self.state.metadata:
            return  # could not verify the record: refuse the piece too
        if not 0 <= index < record.num_pieces:
            self.frames_dropped += 1
            return
        try:
            new = self.state.accept_piece(
                record.uri, index, payload, record.checksums[index], now
            )
        except IntegrityError:
            self.frames_dropped += 1
            return
        if new and self.state.pieces.is_complete(record.uri, record.num_pieces):
            self.state.stats.files_completed += 1
            if self.metrics is not None:
                self.metrics.on_file_complete(self.node_id, record.uri, now)
