"""Trace-driven harness for the wire-level runtime.

Runs the same evaluation model as :mod:`repro.sim.runner` — daily
generation at noon, Internet syncs, per-contact budgets, delivery
measured over non-access nodes — but every DTN interaction travels as
serialized frames over an :class:`~repro.runtime.radio.EmulatedRadio`:

1. each contact opens a broadcast domain with the members joined;
2. every member beacons a hello (the §III-B handshake);
3. members transmit metadata then pieces in the §V-B cyclic order,
   each choosing its next frame from *local* knowledge only, until the
   per-contact budgets are spent or nobody has anything useful left.

Internet-side behaviour (daily batches, syncs, query distribution to
frequent contacts) reuses the protocol engine, which is legitimate:
those interactions are with servers, not over the DTN radio.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional

from repro.catalog.generator import CatalogGenerator
from repro.catalog.metadata import PublisherRegistry
from repro.core.coordinator import cyclic_order
from repro.core.mbt import MobileBitTorrent, SchedulingMode
from repro.core.node import NodeState
from repro.runtime.node import DTNNode
from repro.runtime.radio import EmulatedRadio
from repro.sim.engine import Simulator
from repro.sim.metrics import MetricsCollector, SimulationResult
from repro.sim.runner import SimulationConfig
from repro.traces.base import Contact, ContactTrace
from repro.types import DAY, NodeId, noon_of_day

from repro.catalog.server import FileServer, MetadataServer
from repro.catalog.popularity import PopularityTracker

import random


@dataclass(frozen=True)
class RuntimeConfig:
    """Runtime-specific knobs on top of :class:`SimulationConfig`."""

    #: Hello beacon rounds at contact start (≥1; 2 stabilizes 'heard').
    hello_rounds: int = 1
    #: Optional radio fault hook installed on every contact:
    #: (sender, frame bytes) -> delivered bytes, or None to drop.
    #: Corrupted frames are rejected by the codec at the receivers.
    fault_hook: Optional[object] = None


class RuntimeHarness:
    """Wire-level counterpart of :class:`repro.sim.runner.Simulation`."""

    def __init__(
        self,
        trace: ContactTrace,
        config: SimulationConfig,
        runtime_config: Optional[RuntimeConfig] = None,
    ) -> None:
        if trace.num_nodes < 2:
            raise ValueError("trace must involve at least two nodes")
        self.trace = trace
        self.config = config
        self.runtime_config = runtime_config or RuntimeConfig()
        rng = random.Random(config.seed)

        nodes = list(trace.nodes)
        count = min(len(nodes), round(config.internet_access_fraction * len(nodes)))
        self._access_nodes = frozenset(rng.sample(nodes, count))
        selfish_count = min(len(nodes), round(config.selfish_fraction * len(nodes)))
        self._selfish_nodes = frozenset(rng.sample(nodes, selfish_count))

        registry = PublisherRegistry(config.seed)
        protocol = config.protocol_config()
        self._metrics = MetricsCollector()
        self._states: Dict[NodeId, NodeState] = {}
        self._devices: Dict[NodeId, DTNNode] = {}
        for node in nodes:
            state = NodeState(
                node=node,
                registry=registry,
                internet_access=node in self._access_nodes,
                selfish=node in self._selfish_nodes,
                metadata_capacity=config.metadata_capacity,
                metadata_policy=config.metadata_policy,
                piece_capacity=config.piece_capacity,
                verify_signatures=config.verify_signatures,
            )
            self._states[node] = state
            self._devices[node] = DTNNode(state, protocol, self._metrics)

        frequent = trace.frequent_neighbors(config.frequent_contact_max_gap_days)
        for node, neighbors in frequent.items():
            self._states[node].frequent_contacts = neighbors

        self._metadata_server = MetadataServer(
            PopularityTracker(max(1, len(self._access_nodes)))
            if config.track_popularity
            else None
        )
        self._file_server = FileServer()
        self._generator = CatalogGenerator(
            config.catalog_config(), nodes, seed=config.seed, registry=registry
        )
        # The engine is reused for the *server-side* interactions only
        # (daily batches, Internet syncs, expiry); DTN contacts go over
        # the radio below.
        self._engine = MobileBitTorrent(
            self._states, self._metadata_server, self._file_server,
            self._metrics, protocol,
        )
        self.radio_frames = 0
        self.radio_bytes = 0

    # -- accessors -------------------------------------------------------------------

    @property
    def access_nodes(self) -> FrozenSet[NodeId]:
        return self._access_nodes

    @property
    def devices(self) -> Dict[NodeId, DTNNode]:
        return self._devices

    @property
    def metrics(self) -> MetricsCollector:
        return self._metrics

    def num_days(self) -> int:
        if self.config.num_days is not None:
            return self.config.num_days
        return max(1, int(-(-self.trace.duration // DAY)))

    # -- contact processing over the radio --------------------------------------------

    def run_contact(self, contact: Contact, now: float) -> None:
        """One contact: join radio, beacon, cyclic frame exchange."""
        members = contact.members
        radio = EmulatedRadio()
        if self.runtime_config.fault_hook is not None:
            radio.fault_hook = self.runtime_config.fault_hook  # type: ignore[assignment]
        for node in sorted(members):
            device = self._devices[node]
            device.begin_contact(members)
            radio.join(
                node,
                lambda sender, data, d=device: d.on_frame(sender, data, now),
            )

        # Hello handshake.
        for __ in range(self.runtime_config.hello_rounds):
            for node in sorted(members):
                radio.broadcast(node, self._devices[node].hello_bytes(now))

        # Frequent-contact query distribution (MBT): carried out by the
        # engine, as in the simulator — query storage is a local action
        # on hello contents already exchanged above.
        if self.config.variant.distributes_queries:
            states = {node: self._states[node] for node in members}
            for node, state in states.items():
                if state.selfish:
                    continue
                for peer, peer_state in states.items():
                    if peer != node and peer in state.frequent_contacts:
                        state.store_foreign_queries(
                            peer, peer_state.own_queries(now)
                        )

        budget = self._engine._contact_budget(contact)
        mode = self._engine.config.effective_scheduling()
        if mode is SchedulingMode.COORDINATOR:
            self._run_coordinated_phase(radio, members, now, budget.metadata, "metadata")
            self._rebeacon(radio, members, now)
            self._run_coordinated_phase(radio, members, now, budget.pieces, "piece")
        else:
            order = cyclic_order(members)
            self._run_phase(radio, members, order, now, budget.metadata, "metadata")
            self._rebeacon(radio, members, now)
            self._run_phase(radio, members, order, now, budget.pieces, "piece")

        self.radio_frames += radio.frames_sent
        self.radio_bytes += radio.bytes_sent
        for node in sorted(members):
            radio.leave(node)
            self._devices[node].end_contact()

    def _rebeacon(self, radio: EmulatedRadio, members: FrozenSet[NodeId], now: float) -> None:
        """Hello round between phases (§III-B: beacons at least 1 Hz).

        Metadata received seconds ago may have created new download
        requests; the refreshed hellos advertise them before the piece
        phase, matching the simulator's live request tracking.
        """
        for node in sorted(members):
            radio.broadcast(node, self._devices[node].hello_bytes(now))

    def _run_coordinated_phase(
        self,
        radio: EmulatedRadio,
        members: FrozenSet[NodeId],
        now: float,
        budget: int,
        phase: str,
    ) -> None:
        """Coordinator scheduling (§V-A) as a proposal protocol.

        Each slot, every member computes its best local candidate; the
        coordinator (deterministically: every member, since all share
        the same hello information) picks the globally best proposal,
        ties broken toward the lowest sender id, and that member
        transmits. One proposal round per slot — cheap control traffic
        a real deployment would piggyback on data frames.
        """
        for __ in range(budget):
            proposals = []
            for node in sorted(members):
                device = self._devices[node]
                if phase == "metadata":
                    proposal = device.propose_metadata(now, members)
                    if proposal is not None:
                        proposals.append((proposal[0], node, proposal[1], None))
                else:
                    proposal = device.propose_piece(now, members)
                    if proposal is not None:
                        proposals.append(
                            (proposal[0], node, proposal[1], proposal[2])
                        )
            if not proposals:
                break
            __, sender, uri, index = min(proposals, key=lambda p: (p[0], p[1]))
            device = self._devices[sender]
            if phase == "metadata":
                frame = device.metadata_frame_for(uri, now)
            else:
                assert index is not None
                frame = device.piece_frame_for(uri, index, now)
            radio.broadcast(sender, frame)
            device.note_own_broadcast(frame, members)
            if phase == "metadata":
                device.state.stats.metadata_sent += 1
                self._metrics.count_metadata_transmission()
            else:
                device.state.stats.pieces_sent += 1
                self._metrics.count_piece_transmission()

    def _run_phase(
        self,
        radio: EmulatedRadio,
        members: FrozenSet[NodeId],
        order: List[NodeId],
        now: float,
        budget: int,
        phase: str,
    ) -> None:
        spent = 0
        idle = 0
        position = 0
        while spent < budget and idle < len(order):
            node = order[position % len(order)]
            position += 1
            device = self._devices[node]
            if phase == "metadata":
                frame = device.next_metadata_frame(now, members)
            else:
                frame = device.next_piece_frame(now, members)
            if frame is None:
                idle += 1
                continue
            radio.broadcast(node, frame)
            device.note_own_broadcast(frame, members)
            if phase == "metadata":
                device.state.stats.metadata_sent += 1
                self._metrics.count_metadata_transmission()
            else:
                device.state.stats.pieces_sent += 1
                self._metrics.count_piece_transmission()
            spent += 1
            idle = 0

    # -- execution ---------------------------------------------------------------------

    def run(self) -> SimulationResult:
        """Execute the whole trace over the radio."""
        sim = Simulator()
        days = self.num_days()
        horizon = days * DAY
        for day in range(days):
            noon = noon_of_day(day)
            sim.schedule(noon, self._make_noon(day, noon), priority=0)
            sim.schedule(noon, self._make_sync(noon), priority=1)
        for contact in self.trace:
            if contact.start >= horizon:
                break
            sim.schedule(
                contact.start, self._make_contact(contact), priority=2
            )
        sim.run(until=horizon)
        return self._metrics.result(
            {
                "num_days": float(days),
                "radio_frames": float(self.radio_frames),
                "radio_bytes": float(self.radio_bytes),
            }
        )

    def _make_noon(self, day: int, noon: float):
        def action() -> None:
            self._engine.expire_all(noon)
            self._metadata_server.refresh_popularities(noon)
            batch = self._generator.generate_day(day, noon)
            self._engine.on_daily_batch(batch, noon)

        return action

    def _make_sync(self, at: float):
        def action() -> None:
            for node in sorted(self._access_nodes):
                self._engine.internet_sync(node, at)

        return action

    def _make_contact(self, contact: Contact):
        return lambda: self.run_contact(contact, contact.start)
