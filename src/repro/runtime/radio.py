"""Emulated broadcast radio.

One :class:`EmulatedRadio` models the shared channel of a contact:
whatever one member puts on the air is delivered — as raw bytes — to
every other member currently joined. The radio counts frames and bytes
(the numbers behind the §V capacity argument) and can corrupt frames
on demand for fault-injection tests.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Optional

from repro.types import NodeId

#: A receive callback: (sender, raw frame bytes) -> None.
ReceiveHandler = Callable[[NodeId, bytes], None]


class EmulatedRadio:
    """A broadcast domain with byte accounting."""

    def __init__(self) -> None:
        self._handlers: Dict[NodeId, ReceiveHandler] = {}
        self.frames_sent = 0
        self.bytes_sent = 0
        self.deliveries = 0
        #: Optional fault hook: (sender, data) -> data to deliver
        #: (return None to drop the frame entirely).
        self.fault_hook: Optional[Callable[[NodeId, bytes], Optional[bytes]]] = None

    def join(self, node: NodeId, handler: ReceiveHandler) -> None:
        """Bring a node into the broadcast domain."""
        self._handlers[node] = handler

    def leave(self, node: NodeId) -> None:
        """Remove a node from the broadcast domain."""
        self._handlers.pop(node, None)

    @property
    def members(self) -> FrozenSet[NodeId]:
        return frozenset(self._handlers)

    def broadcast(self, sender: NodeId, data: bytes) -> int:
        """Put a frame on the air; return the number of receivers.

        The sender must be joined; every other member receives the
        frame (after the fault hook, if any).
        """
        if sender not in self._handlers:
            raise ValueError(f"sender {sender} is not in the broadcast domain")
        self.frames_sent += 1
        self.bytes_sent += len(data)
        delivered = 0
        for node, handler in sorted(self._handlers.items()):
            if node == sender:
                continue
            payload: Optional[bytes] = data
            if self.fault_hook is not None:
                payload = self.fault_hook(sender, data)
            if payload is None:
                continue
            handler(sender, payload)
            delivered += 1
        self.deliveries += delivered
        return delivered
