"""Wire-level protocol runtime: the deployable form of MBT.

The simulator in :mod:`repro.sim` is *omniscient*: contact processing
reads every member's stores directly. A deployment cannot — each device
knows only what arrived over the radio. This package implements that
constraint end-to-end (the paper's declared future work, §VII:
"the deployment of our protocol on real devices"):

* :mod:`repro.runtime.codec` — a versioned, length-checked wire format
  for hello / metadata / piece frames (JSON body, binary-safe payload).
* :mod:`repro.runtime.radio` — an emulated broadcast radio: frames put
  on the air reach every node in the contact, with byte accounting.
* :mod:`repro.runtime.node` — the device runtime: beaconing, neighbor
  tables, local candidate selection from hello-carried state summaries,
  cyclic-order transmission (no coordinator messages needed).
* :mod:`repro.runtime.harness` — drives a contact trace through real
  frames and reports the same delivery metrics as the simulator.

The test-suite validates the runtime against the simulator: with
identical traces, catalogs and budgets, the wire-level implementation
delivers the same files (see ``tests/test_runtime.py``).
"""

from repro.runtime.codec import (
    CodecError,
    Frame,
    FrameType,
    decode_frame,
    encode_frame,
)
from repro.runtime.harness import RuntimeHarness, RuntimeConfig
from repro.runtime.node import DTNNode
from repro.runtime.radio import EmulatedRadio

__all__ = [
    "CodecError",
    "Frame",
    "FrameType",
    "decode_frame",
    "encode_frame",
    "RuntimeHarness",
    "RuntimeConfig",
    "DTNNode",
    "EmulatedRadio",
]
