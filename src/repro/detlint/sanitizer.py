"""The runtime sanitizer: ``REPRO_DETCHECK=1`` / ``--detcheck``.

Where the static pass (:mod:`repro.detlint.checker`) catches
determinism hazards by their *syntax*, the sanitizer catches them by
their *effect*. :func:`checked_run` wraps one simulation and upgrades
the repository's hypothesis-only guarantees into an always-on smoke
check:

1. **Hash-seed pinning** — asserts ``PYTHONHASHSEED`` is pinned to an
   integer (exporting ``0`` when it was simply unset) and, after the
   run, that the value the simulation recorded into its
   ``detcheck.pythonhashseed`` counter matches the environment.
2. **Global-RNG isolation** — snapshots the ``random`` module's state
   and re-checks it after *every simulation event* (via the engine's
   event observer): the first event whose action consumes the global
   stream is reported by time and ordinal, not just "somewhere in the
   run".
3. **Double-run fingerprint cross-check** — executes the identical
   ``(trace, config)`` twice in-process and compares result
   fingerprints (wall-clock ``perf.time_us.*`` timers excluded); any
   residual nondeterminism — iteration-order leaks, shared mutable
   state surviving between runs — fails loudly with the first
   differing key.

Enable it per-process with the ``REPRO_DETCHECK`` environment variable
(inherited by sweep workers, so ``run_many`` fan-outs are covered) or
per-invocation with the CLI ``--detcheck`` flag.
"""

from __future__ import annotations

import hashlib
import json
import os
import random
from typing import Any, Dict, Optional, Tuple

from repro.detlint.hashseed import (
    UNPINNED,
    ensure_hash_seed,
    hash_seed_value,
    raw_hash_seed,
)
from repro.sim.metrics import SimulationResult
from repro.sim.runner import Simulation, SimulationConfig
from repro.traces.base import ContactTrace

#: Environment variable switching the sanitizer on ("1", "true", ...).
DETCHECK_ENV = "REPRO_DETCHECK"

#: ``extra`` keys excluded from fingerprints: wall-clock phase timers
#: differ between the two runs by construction, and the scheduling-
#: dispatch counters (``perf.sched.*``) record *which implementation*
#: ran (vectorized kernel vs object loops, liveness-cache reuse) — by
#: the array core's equivalence contract they are the only counters
#: allowed to differ between two bitwise-identical results. The
#: catalog counters (``perf.catalog.*``) likewise record where server
#: state lived (shard lookups, heap pops, cache rebuilds): the sharded
#: catalog is observably identical to the flat server, so its activity
#: must not enter the fingerprint either.
FINGERPRINT_IGNORED_PREFIXES: Tuple[str, ...] = (
    "perf.time_us.",
    "perf.sched.",
    "perf.catalog.",
)


class DeterminismError(RuntimeError):
    """A runtime determinism invariant was violated."""


def detcheck_enabled(env: Optional[Dict[str, str]] = None) -> bool:
    """Whether ``REPRO_DETCHECK`` asks for sanitized runs."""
    mapping = os.environ if env is None else env
    return mapping.get(DETCHECK_ENV, "").strip().lower() in {
        "1",
        "true",
        "yes",
        "on",
    }


def assert_hash_seed_pinned() -> int:
    """Pin ``PYTHONHASHSEED`` (exporting ``0`` when unset) or raise.

    An *unset* variable is repaired silently — child processes spawned
    afterwards inherit the pin. An explicit ``PYTHONHASHSEED=random``
    is a contradiction of the determinism contract and raises.
    """
    ensure_hash_seed()
    value = hash_seed_value()
    if value == UNPINNED:
        raise DeterminismError(
            f"PYTHONHASHSEED={raw_hash_seed()!r} requests per-process hash "
            "randomization; pin it to an integer (e.g. PYTHONHASHSEED=0) "
            "for detcheck runs"
        )
    return value


def result_fingerprint(result: SimulationResult) -> str:
    """Stable hex digest of everything a run's result asserts.

    Canonical JSON of :meth:`SimulationResult.to_dict` with the
    wall-clock timer counters removed; equal fingerprints mean
    bitwise-equal observable results.
    """
    payload = result.to_dict()
    extra = payload.get("extra")
    if isinstance(extra, dict):
        payload["extra"] = {
            key: value
            for key, value in sorted(extra.items())
            if not key.startswith(FINGERPRINT_IGNORED_PREFIXES)
        }
    encoded = json.dumps(payload, sort_keys=True, default=repr).encode()
    return hashlib.sha256(encoded).hexdigest()


def _first_difference(a: SimulationResult, b: SimulationResult) -> str:
    """Human-readable description of the first differing result field."""
    da, db = a.to_dict(), b.to_dict()
    ea = da.pop("extra", {})
    eb = db.pop("extra", {})
    for key in sorted(da):
        if da[key] != db.get(key):
            return f"{key}: {da[key]!r} != {db.get(key)!r}"
    for key in sorted(set(ea) | set(eb)):
        if key.startswith(FINGERPRINT_IGNORED_PREFIXES):
            continue
        if ea.get(key) != eb.get(key):
            return f"extra[{key!r}]: {ea.get(key)!r} != {eb.get(key)!r}"
    return "fingerprints differ but no field does (serialization drift)"


class GlobalRngGuard:
    """Event observer asserting the global ``random`` stream is idle.

    Installed on the engine via ``Simulation.run(event_observer=...)``;
    called after every executed event with ``(now, events_executed)``.
    The check is a state *comparison*, not a re-seed: simulations that
    legitimately own seeded private ``random.Random`` instances are
    unaffected.
    """

    def __init__(self) -> None:
        self._state = random.getstate()

    def __call__(self, now: float, events_executed: int) -> None:
        state = random.getstate()
        if state != self._state:
            raise DeterminismError(
                "the process-global random module was consumed during the "
                f"simulation (first detected after event #{events_executed} "
                f"at t={now:.3f}); simulation code must draw from an "
                "explicitly seeded random.Random instance (detlint DET001)"
            )


def verify_recorded_hash_seed(result: SimulationResult) -> None:
    """Check the run recorded the hash seed the environment pinned."""
    recorded = result.counters.get("detcheck.pythonhashseed")
    expected = hash_seed_value()
    if recorded is None:
        raise DeterminismError(
            "result carries no detcheck.pythonhashseed counter; the "
            "simulation runner did not record the pinned hash seed"
        )
    if recorded != expected:
        raise DeterminismError(
            f"result recorded PYTHONHASHSEED={recorded} but the environment "
            f"pins {expected}; the run predates the pin or crossed an "
            "environment boundary"
        )


def checked_run(
    trace: ContactTrace,
    config: SimulationConfig,
    *,
    runs: int = 2,
) -> SimulationResult:
    """Run ``(trace, config)`` under the full sanitizer and return it.

    Executes ``runs`` (default two) fresh, back-to-back simulations of
    the identical inputs with the global-RNG guard installed, verifies
    the recorded hash seed, and cross-checks the result fingerprints.
    Raises :class:`DeterminismError` on any violation; otherwise the
    first run's result is returned, so a sanitized path produces the
    exact result an unsanitized one would.
    """
    if runs < 1:
        raise ValueError(f"runs must be >= 1, got {runs}")
    assert_hash_seed_pinned()
    results = []
    for _ in range(runs):
        result = Simulation(trace, config).run(event_observer=GlobalRngGuard())
        verify_recorded_hash_seed(result)
        results.append(result)
    reference = result_fingerprint(results[0])
    for index, result in enumerate(results[1:], start=2):
        fingerprint = result_fingerprint(result)
        if fingerprint != reference:
            raise DeterminismError(
                f"detcheck double-run mismatch (run 1 vs run {index}): "
                f"{_first_difference(results[0], result)} — the simulation "
                "is not a pure function of (trace, config)"
            )
    return results[0]


def maybe_checked_run(
    trace: ContactTrace,
    config: SimulationConfig,
    *,
    force: bool = False,
) -> SimulationResult:
    """``checked_run`` when detcheck is on, a plain run otherwise."""
    if force or detcheck_enabled():
        return checked_run(trace, config)
    return Simulation(trace, config).run()


def fingerprint_summary(result: SimulationResult) -> Dict[str, Any]:
    """Diagnostic payload printed by the CLI after a sanitized run."""
    return {
        "fingerprint": result_fingerprint(result),
        "pythonhashseed": hash_seed_value(),
        "detcheck": True,
    }
