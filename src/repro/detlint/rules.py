"""The detlint rule registry: what each rule forbids, where, and why.

Every rule carries a stable ID (``DET001``…), a one-line summary used
in findings, a fix-it message, and a tuple of *path scopes* — substring
fragments of the POSIX-style file path that opt a file into the rule.
Scoping encodes the determinism contract of ``docs/DETERMINISM.md``:
the simulation core must be bitwise deterministic, while e.g. the
benchmark harness may freely read wall clocks.

Suppressing a finding
---------------------
Append ``# detlint: ignore[DET002]`` to the flagged line (or put the
comment alone on the line above) together with a short justification.
A bare ``# detlint: ignore`` suppresses every rule on that line;
prefer the bracketed form so unrelated regressions still surface.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Tuple

#: Path fragments of the deterministic simulation core. DET001 (RNG)
#: additionally covers the trace generators and the fault injector —
#: both consume randomness, which is fine, but only through an
#: explicitly seeded ``random.Random``. The ``repro/core`` fragment
#: deliberately covers the array core too (``core/arrays.py``,
#: ``core/arraycore.py``): the numpy hot path is held to the same
#: determinism rules as the object path it mirrors.
#: ``repro/catalog/dht`` joins the core scope: the sharded catalog must
#: be observably identical to the flat server, so it is held to the
#: same iteration-order and float-comparison rules (the rest of
#: ``repro/catalog`` stays out, as before — only RNG/time rules apply).
#: ``repro/runtime`` (the frame-level harness replays the same
#: protocol) and ``repro/routing`` (baseline routers share the trace
#: replay) are full core members too.
_SIM_CORE = (
    "repro/core",
    "repro/sim",
    "repro/net",
    "repro/catalog/dht",
    "repro/runtime",
    "repro/routing",
)
_RNG_SCOPE = _SIM_CORE + ("repro/traces", "repro/faults", "repro/catalog")
_TIME_SCOPE = _RNG_SCOPE

#: Path fragment of the whole package: the cross-layer contract rules
#: (CON001–CON006) apply to any file that resolves into ``repro``,
#: live tree or corpus mini-tree alike — but only when contracts
#: checking is switched on (``--contracts``).
_CONTRACT_SCOPE = ("repro/",)

#: Callable names treated as canonical-ordering helpers: iterating
#: their return value is deterministic even when the input was a set.
ORDERING_HELPERS: FrozenSet[str] = frozenset({"sorted", "canonical_order"})

#: Wrappers that preserve their argument's iteration order — iterating
#: ``list(set(...))`` is exactly as hash-order-dependent as the set.
ORDER_PRESERVING_WRAPPERS: FrozenSet[str] = frozenset(
    {"list", "tuple", "iter", "enumerate", "reversed"}
)

#: Attribute names whose ``==``/``!=`` comparison DET004 treats as a
#: float simulation-state comparison. Exact names, plus any name
#: ending in ``_at`` or ``_time`` (delivery instants, wall clocks).
FLOAT_STATE_NAMES: FrozenSet[str] = frozenset(
    {"now", "time", "start", "end", "ttl", "deadline", "duration", "horizon"}
)
FLOAT_STATE_SUFFIXES: Tuple[str, ...] = ("_at", "_time", "_seconds")


@dataclass(frozen=True)
class Rule:
    """One static determinism rule."""

    id: str
    title: str
    summary: str
    fixit: str
    #: POSIX-path fragments that opt a file in; empty = every file.
    scopes: Tuple[str, ...]


RULES: Dict[str, Rule] = {
    rule.id: rule
    for rule in (
        Rule(
            id="DET001",
            title="global or unseeded RNG",
            summary=(
                "module-level random.* call or random.Random() without an "
                "explicit seed in a simulation path"
            ),
            fixit=(
                "derive randomness from an explicitly seeded random.Random "
                "instance threaded from the run's config/seed"
            ),
            scopes=_RNG_SCOPE,
        ),
        Rule(
            id="DET002",
            title="unordered iteration",
            summary=(
                "iteration over a raw set/frozenset/dict-values view in the "
                "simulation core"
            ),
            fixit=(
                "wrap the iterable in sorted(...) (or an allow-listed "
                "canonical-ordering helper) so iteration order cannot depend "
                "on hash seeding or insertion history"
            ),
            scopes=_SIM_CORE,
        ),
        Rule(
            id="DET003",
            title="ambient time or entropy",
            summary=(
                "wall-clock/entropy read (time.time, datetime.now, "
                "os.urandom, uuid.uuid4, ...) inside a simulation path"
            ),
            fixit=(
                "only the engine clock (Simulator.now) may supply time "
                "inside the simulation; take `now` as a parameter"
            ),
            scopes=_TIME_SCOPE,
        ),
        Rule(
            id="DET004",
            title="float equality",
            summary=(
                "== / != comparison on float simulation state (times, "
                "delivery instants, float literals)"
            ),
            fixit=(
                "compare with an ordering (<=, >=), a tolerance, or justify "
                "the exact identity check with a suppression comment"
            ),
            scopes=_SIM_CORE,
        ),
        Rule(
            id="DET005",
            title="mutable default / non-literal pop default",
            summary=(
                "mutable default argument, or dict.pop with a non-literal "
                "default, in a protocol handler"
            ),
            fixit=(
                "default to None and construct inside the function; pass "
                "literal pop defaults so no shared object escapes"
            ),
            scopes=("repro/core", "repro/net", "repro/runtime", "repro/routing"),
        ),
        Rule(
            id="CON001",
            title="unregistered counter key",
            summary=(
                "counter-key literal (perf./faults./adversary./detcheck.) "
                "not declared in the contracts counter registry; also "
                "COUNTER_KEYS drift against the registry"
            ),
            fixit=(
                "register the key (or prefix) in repro.contracts.counters "
                "with its fingerprint class, and mirror surfaced keys in "
                "sim.metrics.COUNTER_KEYS"
            ),
            scopes=_CONTRACT_SCOPE,
        ),
        Rule(
            id="CON002",
            title="fingerprint-exclusion drift",
            summary=(
                "sanitizer FINGERPRINT_IGNORED_PREFIXES disagrees with the "
                "registry's fingerprint-excluded counter prefixes"
            ),
            fixit=(
                "keep detlint.sanitizer.FINGERPRINT_IGNORED_PREFIXES equal "
                "to repro.contracts.counters.excluded_prefixes()"
            ),
            scopes=_CONTRACT_SCOPE,
        ),
        Rule(
            id="CON003",
            title="config knob coverage",
            summary=(
                "SimulationConfig field unregistered, missing its declared "
                "CLI flag in cli.py, or missing its docs/API.md anchor"
            ),
            fixit=(
                "register the field in repro.contracts.knobs with its CLI "
                "flags (or an api_only rationale) and document it under its "
                "backticked name in docs/API.md"
            ),
            scopes=_CONTRACT_SCOPE,
        ),
        Rule(
            id="CON004",
            title="import-layering violation",
            summary=(
                "module-level import of a repro package outside the "
                "importer's allowance in the layer registry"
            ),
            fixit=(
                "move the import inside the function that needs it, or "
                "widen repro.contracts.layers.LAYERS if the layering "
                "genuinely changed"
            ),
            scopes=_CONTRACT_SCOPE,
        ),
        Rule(
            id="CON005",
            title="seam-parity drift",
            summary=(
                "dual object/array (or reference-twin) implementation "
                "missing, or its signature diverging from its counterpart"
            ),
            fixit=(
                "restore the counterpart listed in "
                "repro.contracts.seams.SEAM_REGISTRY or re-align the "
                "parameter names (the seam is duck-typed)"
            ),
            scopes=_CONTRACT_SCOPE,
        ),
        Rule(
            id="CON006",
            title="wire-schema drift",
            summary=(
                "net.messages dataclass fields or runtime.codec frame keys "
                "diverge from the registered wire schema"
            ),
            fixit=(
                "update repro.contracts.wire together with BOTH the "
                "message dataclasses and the codec builders/readers"
            ),
            scopes=_CONTRACT_SCOPE,
        ),
    )
}

ALL_RULE_IDS: Tuple[str, ...] = tuple(sorted(RULES))

#: The contract-rule family: scoped like any other rule, but only
#: active when contracts checking is requested (``--contracts``).
CONTRACT_RULE_IDS: Tuple[str, ...] = tuple(
    rule_id for rule_id in ALL_RULE_IDS if rule_id.startswith("CON")
)

#: The determinism-rule family (always active).
DET_RULE_IDS: Tuple[str, ...] = tuple(
    rule_id for rule_id in ALL_RULE_IDS if rule_id.startswith("DET")
)


def _normalized(path: str) -> str:
    return path.replace("\\", "/")


def rules_for_path(path: str, all_rules: bool = False) -> FrozenSet[str]:
    """IDs of the rules that apply to ``path`` (scope matching).

    ``all_rules=True`` ignores scoping — used for ad-hoc checks of
    files outside the repository layout.
    """
    if all_rules:
        return frozenset(RULES)
    normalized = _normalized(path)
    return frozenset(
        rule.id
        for rule in RULES.values()
        if any(fragment in normalized for fragment in rule.scopes)
    )


def format_rule_table() -> str:
    """Readable rule reference (the ``--list-rules`` output)."""
    lines = []
    for rule_id in ALL_RULE_IDS:
        rule = RULES[rule_id]
        lines.append(f"{rule.id}  {rule.title}")
        lines.append(f"    flags : {rule.summary}")
        lines.append(f"    fix   : {rule.fixit}")
        lines.append(f"    scope : {', '.join(rule.scopes)}")
    return "\n".join(lines)
