"""The AST pass: one visitor implementing rules DET001–DET005.

:func:`lint_source` is the pure entry point — source text plus the
path it (nominally) lives at, returning the unsuppressed findings.
Path scoping happens here (see :func:`repro.detlint.rules.rules_for_path`),
so callers can lint a string against a *virtual* path to exercise the
scoped rules in tests.

The pass is deliberately syntactic: it has no type information, so it
recognizes the *expressions* that produce unordered iterables or
ambient entropy (``set(...)``, ``x.values()``, ``time.time()``) rather
than the types themselves. That trades a class of false negatives
(``for x in some_set_valued_name``) for zero infrastructure — the same
trade the fix-it messages assume.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Sequence, Set, Union

from repro.detlint.findings import PARSE_ERROR_RULE, Finding
from repro.detlint.rules import (
    CONTRACT_RULE_IDS,
    FLOAT_STATE_NAMES,
    FLOAT_STATE_SUFFIXES,
    ORDER_PRESERVING_WRAPPERS,
    ORDERING_HELPERS,
    RULES,
    rules_for_path,
)
from repro.detlint.suppressions import SuppressionMap

#: ``random`` module functions whose call consumes (or mutates) the
#: process-global RNG stream. Anything lowercase on the module is one;
#: listing the common names keeps the intent greppable.
_GLOBAL_RNG_HINT = (
    "random, randint, randrange, choice, choices, sample, shuffle, "
    "uniform, gauss, seed, getstate, setstate, ..."
)

#: (module, attribute) calls that read ambient time or entropy.
_AMBIENT_CALLS = {
    ("time", "time"),
    ("time", "time_ns"),
    ("time", "monotonic"),
    ("time", "monotonic_ns"),
    ("time", "perf_counter"),
    ("time", "perf_counter_ns"),
    ("time", "process_time"),
    ("os", "urandom"),
    ("os", "getrandom"),
    ("uuid", "uuid1"),
    ("uuid", "uuid4"),
    ("secrets", "token_bytes"),
    ("secrets", "token_hex"),
    ("secrets", "randbelow"),
}

#: ``datetime``-flavoured constructors of "now".
_NOW_ATTRS = {"now", "utcnow", "today"}


def _call_module_attr(node: ast.Call) -> Optional[tuple]:
    """``(module_name, attr)`` for ``module.attr(...)`` calls, else None.

    Resolves one dotted level (``time.time()``) and two
    (``datetime.datetime.now()`` -> ``("datetime", "now")``).
    """
    func = node.func
    if not isinstance(func, ast.Attribute):
        return None
    value = func.value
    if isinstance(value, ast.Name):
        return (value.id, func.attr)
    if isinstance(value, ast.Attribute) and isinstance(value.value, ast.Name):
        # datetime.datetime.now() / datetime.date.today()
        return (value.value.id, func.attr)
    return None


def _unordered_iterable(expr: ast.expr) -> Optional[str]:
    """Description of ``expr`` if it is a raw unordered iterable.

    Recognizes set displays/comprehensions, ``set(...)``/
    ``frozenset(...)`` calls, set-algebra method calls and
    ``.values()`` views — unwrapping order-preserving wrappers such as
    ``list(...)`` and ``enumerate(...)`` first. Returns ``None`` for
    everything else, including ``sorted(...)`` and allow-listed
    canonical-ordering helpers.
    """
    if isinstance(expr, ast.Set):
        return "a set literal"
    if isinstance(expr, ast.SetComp):
        return "a set comprehension"
    if not isinstance(expr, ast.Call):
        return None
    func = expr.func
    if isinstance(func, ast.Name):
        if func.id in ("set", "frozenset"):
            return f"{func.id}(...)"
        if func.id in ORDERING_HELPERS:
            return None
        if func.id in ORDER_PRESERVING_WRAPPERS and expr.args:
            return _unordered_iterable(expr.args[0])
        return None
    if isinstance(func, ast.Attribute):
        if func.attr == "values" and not expr.args:
            return "a dict .values() view"
        if func.attr in (
            "union",
            "intersection",
            "difference",
            "symmetric_difference",
        ):
            return f"a set .{func.attr}() result"
    return None


def _is_float_state_name(name: str) -> bool:
    return name in FLOAT_STATE_NAMES or name.endswith(FLOAT_STATE_SUFFIXES)


def _float_state_operand(expr: ast.expr) -> Optional[str]:
    """Description of ``expr`` if DET004 considers it float sim-state."""
    if isinstance(expr, ast.Constant) and type(expr.value) is float:
        return f"the float literal {expr.value!r}"
    if isinstance(expr, ast.Attribute) and _is_float_state_name(expr.attr):
        return f"attribute .{expr.attr}"
    if isinstance(expr, ast.Name) and _is_float_state_name(expr.id):
        return f"name {expr.id!r}"
    return None


def _is_literal_default(expr: ast.expr) -> bool:
    """Whether a ``dict.pop`` default is a safe literal."""
    if isinstance(expr, ast.Constant):
        return True
    if isinstance(expr, ast.UnaryOp) and isinstance(expr.op, ast.USub):
        return isinstance(expr.operand, ast.Constant)
    if isinstance(expr, ast.Tuple):
        return all(_is_literal_default(el) for el in expr.elts)
    return False


_MUTABLE_DISPLAY = (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
_MUTABLE_FACTORIES = {"list", "dict", "set", "defaultdict", "OrderedDict", "deque"}


def _mutable_default(expr: ast.expr) -> Optional[str]:
    """Description of ``expr`` if it is a mutable default argument."""
    if isinstance(expr, _MUTABLE_DISPLAY):
        return "a mutable literal"
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
        if expr.func.id in _MUTABLE_FACTORIES:
            return f"a {expr.func.id}() call"
    return None


class _DetVisitor(ast.NodeVisitor):
    """Collects raw findings; suppression filtering happens later."""

    def __init__(self, path: str, active: Set[str]) -> None:
        self.path = path
        self.active = active
        self.findings: List[Finding] = []
        #: Local aliases bound by ``from random import ...``.
        self._random_aliases: Set[str] = set()
        #: Local aliases of ambient time/entropy callables
        #: (``from time import time`` and friends).
        self._ambient_aliases: dict = {}

    # -- bookkeeping ------------------------------------------------------------

    def _add(self, node: ast.AST, rule_id: str, message: str) -> None:
        if rule_id not in self.active:
            return
        rule = RULES[rule_id]
        self.findings.append(
            Finding(
                path=self.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0) + 1,
                rule=rule_id,
                message=message,
                fixit=rule.fixit,
            )
        )

    # -- imports (alias tracking for DET001 / DET003) ---------------------------

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random":
            for alias in node.names:
                self._random_aliases.add(alias.asname or alias.name)
        elif node.module in ("time", "uuid", "os", "secrets", "datetime"):
            for alias in node.names:
                key = (node.module, alias.name)
                if key in _AMBIENT_CALLS or (
                    node.module == "datetime" and alias.name in _NOW_ATTRS
                ):
                    self._ambient_aliases[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )
        self.generic_visit(node)

    # -- DET001 / DET003 / DET005(pop) ------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        self._check_rng_call(node)
        self._check_ambient_call(node)
        self._check_pop_default(node)
        self.generic_visit(node)

    def _check_rng_call(self, node: ast.Call) -> None:
        func = node.func
        module_attr = _call_module_attr(node)
        if module_attr and module_attr[0] == "random":
            attr = module_attr[1]
            if attr == "Random":
                if not node.args and not node.keywords:
                    self._add(
                        node,
                        "DET001",
                        "random.Random() constructed without an explicit "
                        "seed argument (seeds from OS entropy)",
                    )
            elif attr == "SystemRandom":
                self._add(
                    node,
                    "DET001",
                    "random.SystemRandom() draws from OS entropy and can "
                    "never be seeded",
                )
            elif attr[:1].islower():
                self._add(
                    node,
                    "DET001",
                    f"random.{attr}() consumes the process-global RNG "
                    f"stream ({_GLOBAL_RNG_HINT})",
                )
            return
        if isinstance(func, ast.Name) and func.id in self._random_aliases:
            if func.id == "Random":
                if not node.args and not node.keywords:
                    self._add(
                        node,
                        "DET001",
                        "Random() (imported from random) constructed "
                        "without an explicit seed argument",
                    )
            else:
                self._add(
                    node,
                    "DET001",
                    f"{func.id}() (imported from random) consumes the "
                    "process-global RNG stream",
                )

    def _check_ambient_call(self, node: ast.Call) -> None:
        module_attr = _call_module_attr(node)
        if module_attr is not None:
            module, attr = module_attr
            if module_attr in _AMBIENT_CALLS:
                self._add(
                    node,
                    "DET003",
                    f"{module}.{attr}() reads ambient wall-clock/entropy "
                    "state inside a simulation path",
                )
                return
            if module == "datetime" and attr in _NOW_ATTRS:
                self._add(
                    node,
                    "DET003",
                    f"datetime {attr}() reads the wall clock inside a "
                    "simulation path",
                )
                return
        func = node.func
        if isinstance(func, ast.Name) and func.id in self._ambient_aliases:
            self._add(
                node,
                "DET003",
                f"{self._ambient_aliases[func.id]}() (imported alias) reads "
                "ambient wall-clock/entropy state inside a simulation path",
            )

    def _check_pop_default(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "pop"
            and len(node.args) == 2
            and not _is_literal_default(node.args[1])
        ):
            self._add(
                node,
                "DET005",
                ".pop(key, default) with a non-literal default — the "
                "default expression is evaluated (and may be shared) on "
                "every call",
            )

    # -- DET002 -----------------------------------------------------------------

    def _check_iter(self, expr: ast.expr) -> None:
        description = _unordered_iterable(expr)
        if description is not None:
            self._add(
                expr,
                "DET002",
                f"iteration over {description}: order can depend on hash "
                "seeding / insertion history",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def _visit_comprehension_node(self, node: ast.AST) -> None:
        for gen in node.generators:  # type: ignore[attr-defined]
            self._check_iter(gen.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension_node
    visit_SetComp = _visit_comprehension_node
    visit_DictComp = _visit_comprehension_node
    visit_GeneratorExp = _visit_comprehension_node

    # -- DET004 -----------------------------------------------------------------

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for index, op in enumerate(node.ops):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            for side in (operands[index], operands[index + 1]):
                description = _float_state_operand(side)
                if description is not None:
                    symbol = "==" if isinstance(op, ast.Eq) else "!="
                    self._add(
                        node,
                        "DET004",
                        f"float {symbol} comparison on {description}; exact "
                        "float identity is fragile simulation state",
                    )
                    break
        self.generic_visit(node)

    # -- DET005 (mutable defaults) ----------------------------------------------

    def _check_defaults(
        self, node: Union[ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda]
    ) -> None:
        args = node.args
        for default in [*args.defaults, *args.kw_defaults]:
            if default is None:
                continue
            description = _mutable_default(default)
            if description is not None:
                self._add(
                    default,
                    "DET005",
                    f"mutable default argument ({description}) is shared "
                    "across every call of the handler",
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check_defaults(node)
        self.generic_visit(node)


def lint_source(
    source: str,
    path: str,
    *,
    all_rules: bool = False,
    suppressions: bool = True,
    contracts: bool = False,
) -> List[Finding]:
    """Lint one source text as if it lived at ``path``.

    Applies path scoping (unless ``all_rules``) and suppression
    comments (unless ``suppressions=False``), returning findings
    sorted by location. The CON contract rules only participate when
    ``contracts=True`` (they need the registries of
    :mod:`repro.contracts`, which stays unimported otherwise).
    """
    active = set(rules_for_path(path, all_rules=all_rules))
    contract_active = active & set(CONTRACT_RULE_IDS) if contracts else set()
    active -= set(CONTRACT_RULE_IDS)
    if not active and not contract_active:
        return []
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 0) or 1,
                rule=PARSE_ERROR_RULE,
                message=f"file does not parse: {exc.msg}",
                fixit="fix the syntax error; detlint only checks parseable files",
            )
        ]
    visitor = _DetVisitor(path, active)
    visitor.visit(tree)
    findings = visitor.findings
    if contract_active:
        # Deferred so plain DET linting never imports the registries.
        from repro.contracts.checks import lint_tree_contracts

        findings = findings + lint_tree_contracts(tree, path, contract_active)
    if suppressions:
        smap = SuppressionMap(source)
        findings = [f for f in findings if not smap.suppresses(f.line, f.rule)]
    return sorted(findings)


def lint_sources(
    sources: Iterable[Sequence],
    *,
    all_rules: bool = False,
) -> List[Finding]:
    """Lint ``(source, path)`` pairs and concatenate the findings."""
    out: List[Finding] = []
    for source, path in sources:
        out.extend(lint_source(source, path, all_rules=all_rules))
    return out
