"""repro.detlint — AST determinism & invariant linter + runtime sanitizer.

Every reproduced figure rests on bitwise-deterministic simulation:
``run_many(jobs=4)`` must equal ``jobs=1``, checkpoint resume must
equal a fresh sweep, and the grid contact extractor must equal the
all-pairs reference. This package defends that property *before* the
tests do:

* the **static pass** (``repro lint`` / :func:`lint_paths`) walks the
  source tree with :mod:`ast` and flags the classic determinism bugs —
  unseeded RNG (DET001), hash-order iteration (DET002), wall-clock
  reads (DET003), float equality on simulation state (DET004) and
  mutable-default aliasing (DET005) — each with a fix-it message and a
  ``# detlint: ignore[RULE]`` suppression;
* the **runtime sanitizer** (:mod:`repro.detlint.sanitizer`, enabled
  by ``REPRO_DETCHECK=1`` or ``--detcheck``) pins ``PYTHONHASHSEED``,
  guards the global RNG between events, and cross-checks result
  fingerprints across two inline runs.

The sanitizer is *not* imported here: it pulls in the simulation
stack, which in turn records the pinned hash seed via the
dependency-free :mod:`repro.detlint.hashseed` — importing it from
``__init__`` would close an import cycle. Use
``from repro.detlint import sanitizer`` explicitly.

See ``docs/DETERMINISM.md`` for the full determinism contract and the
rule reference table.
"""

from repro.detlint.checker import lint_source, lint_sources
from repro.detlint.findings import (
    FORMATTERS,
    PARSE_ERROR_RULE,
    Finding,
    format_github,
    format_json,
    format_text,
)
from repro.detlint.rules import ALL_RULE_IDS, RULES, Rule, rules_for_path
from repro.detlint.runner import LintReport, iter_python_files, lint_paths, main

__all__ = [
    "ALL_RULE_IDS",
    "FORMATTERS",
    "Finding",
    "LintReport",
    "PARSE_ERROR_RULE",
    "RULES",
    "Rule",
    "format_github",
    "format_json",
    "format_text",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "lint_sources",
    "main",
    "rules_for_path",
]
