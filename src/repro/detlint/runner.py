"""File walking, aggregation and the ``repro lint`` command driver.

:func:`lint_paths` is the library entry point (used by the tests);
:func:`main` is the CLI driver shared by ``repro lint`` and
``python -m repro.detlint``.

Exit codes
----------
``0``
    no findings (the tree honours the determinism contract);
``1``
    at least one finding (including unparseable files);
``2``
    usage error — a named path does not exist or matches no Python
    files.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    NamedTuple,
    Optional,
    Sequence,
    TextIO,
    Tuple,
)

from repro.detlint.checker import lint_source
from repro.detlint.findings import FORMATTERS, Finding
from repro.detlint.rules import format_rule_table

#: Directory names never descended into.
_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".mypy_cache", ".ruff_cache"}

#: Default lint target when no path argument is given (relative to
#: the working directory; the repository's source tree).
DEFAULT_TARGET = "src/repro"


class LintReport(NamedTuple):
    """Aggregate outcome of one lint invocation."""

    findings: List[Finding]
    files_checked: int
    suppressions_matched: int

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0


def iter_python_files(paths: Sequence[str]) -> List[Path]:
    """Every ``.py`` file under ``paths`` (files kept, dirs walked).

    Raises ``FileNotFoundError`` for a named path that does not exist.
    The listing is sorted so findings come out in a stable order.
    """
    out: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            out.append(path)
        elif path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                if not any(part in _SKIP_DIRS for part in sub.parts):
                    out.append(sub)
        else:
            raise FileNotFoundError(f"no such file or directory: {raw}")
    return sorted(set(out))


def lint_paths(
    paths: Sequence[str],
    *,
    all_rules: bool = False,
    contracts: bool = False,
) -> LintReport:
    """Lint every Python file under ``paths``.

    ``contracts=True`` additionally enables the CON contract-rule
    family: the per-file rules inside :func:`lint_source`, plus the
    project-level drift checks (knob/counter registries, seam parity,
    wire schema) run once per discovered ``repro`` package root.
    """
    findings: List[Finding] = []
    suppressed = 0
    files = iter_python_files(paths)
    for path in files:
        source = path.read_text(encoding="utf-8")
        posix = path.as_posix()
        file_findings = lint_source(
            source, posix, all_rules=all_rules, contracts=contracts
        )
        findings.extend(file_findings)
        # Count matched suppressions for the summary line: a second,
        # suppression-free pass would re-run the visitor, so instead
        # diff against the unsuppressed finding count.
        raw = lint_source(
            source, posix, all_rules=all_rules,
            suppressions=False, contracts=contracts,
        )
        suppressed += len(raw) - len(file_findings)
    if contracts:
        for finding, was_suppressed in _project_contract_findings(files):
            if was_suppressed:
                suppressed += 1
            else:
                findings.append(finding)
    return LintReport(
        findings=sorted(findings),
        files_checked=len(files),
        suppressions_matched=suppressed,
    )


def _project_contract_findings(
    files: Sequence[Path],
) -> Iterator[Tuple[Finding, bool]]:
    """Project-level CON findings, suppression-filtered.

    Cross-file findings anchor at a concrete file/line (the drifted
    assignment, the undocumented config field), so the ordinary
    ``# detlint: ignore[...]`` comment machinery applies — the anchor
    file's suppression map decides.
    """
    from repro.contracts.checks import project_findings
    from repro.detlint.suppressions import SuppressionMap

    maps: Dict[str, Optional[SuppressionMap]] = {}
    for finding in project_findings(files):
        if finding.path not in maps:
            try:
                source = Path(finding.path).read_text(encoding="utf-8")
                maps[finding.path] = SuppressionMap(source)
            except OSError:
                maps[finding.path] = None
        smap = maps[finding.path]
        yield finding, bool(smap and smap.suppresses(finding.line, finding.rule))


def build_parser(prog: str = "repro lint") -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=prog,
        description="detlint: AST-based determinism & invariant linter",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help=f"files or directories to lint (default: {DEFAULT_TARGET})",
    )
    parser.add_argument(
        "--format",
        choices=sorted(FORMATTERS),
        default="text",
        help="finding output format (github emits PR line annotations)",
    )
    parser.add_argument(
        "--no-scope",
        action="store_true",
        help="apply every rule to every file, ignoring path scoping",
    )
    parser.add_argument(
        "--contracts",
        action="store_true",
        help=(
            "additionally enforce the cross-layer contract rules "
            "(CON001-CON006: counter/knob registries, import layering, "
            "seam parity, wire schema)"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule reference table and exit",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the summary line (findings only)",
    )
    return parser


def main(
    argv: Optional[Sequence[str]] = None,
    *,
    prog: str = "repro lint",
    stream: Optional[TextIO] = None,
) -> int:
    """Run the linter; returns the process exit code."""
    stream = stream if stream is not None else sys.stdout
    args = build_parser(prog).parse_args(argv)
    if args.list_rules:
        print(format_rule_table(), file=stream)
        return 0
    paths = list(args.paths)
    if not paths:
        if not os.path.isdir(DEFAULT_TARGET):
            print(
                f"{prog}: no paths given and default target "
                f"{DEFAULT_TARGET!r} not found",
                file=sys.stderr,
            )
            return 2
        paths = [DEFAULT_TARGET]
    try:
        report = lint_paths(
            paths, all_rules=args.no_scope, contracts=args.contracts
        )
    except FileNotFoundError as exc:
        print(f"{prog}: {exc}", file=sys.stderr)
        return 2
    if report.files_checked == 0:
        print(f"{prog}: no Python files under {paths}", file=sys.stderr)
        return 2
    rendered = FORMATTERS[args.format](report.findings)
    if rendered:
        print(rendered, file=stream)
    if not args.quiet and args.format == "text":
        summary = (
            f"{len(report.findings)} finding(s) in "
            f"{report.files_checked} file(s)"
        )
        if report.suppressions_matched:
            summary += f", {report.suppressions_matched} suppressed"
        print(summary, file=stream)
    return report.exit_code


def _iter_sources(paths: Sequence[str]) -> Iterable[Tuple[str, str]]:
    """(source, posix-path) pairs for ``paths`` (test helper)."""
    for path in iter_python_files(paths):
        yield path.read_text(encoding="utf-8"), path.as_posix()
