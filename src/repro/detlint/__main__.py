"""``python -m repro.detlint`` — standalone linter entry point.

Identical to ``python -m repro lint`` but importable without the
simulation stack (useful for pre-commit hooks and editors).
"""

import sys

from repro.detlint.runner import main

if __name__ == "__main__":
    sys.exit(main(prog="python -m repro.detlint"))
