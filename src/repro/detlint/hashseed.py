"""PYTHONHASHSEED bookkeeping shared by the kernel and the sanitizer.

Deliberately dependency-free (stdlib ``os`` only): the simulation
runner records the pinned seed into every result's counters, the
execution kernel exports it to spawned pool workers, and the runtime
sanitizer (:mod:`repro.detlint.sanitizer`) asserts on it — none of
which may drag the AST machinery (or each other) into their import
graphs.

The contract
------------
Simulation *results* are hash-seed independent (PR 3 sorted every
iteration whose order could leak the seed), but the determinism story
is easier to audit when the seed is pinned anyway: a pinned seed makes
any future ordering regression reproduce identically across processes
instead of flickering. So the kernel pins ``PYTHONHASHSEED`` in the
environment before spawning workers when the caller left it unset, and
every :class:`~repro.sim.metrics.SimulationResult` records the value it
ran under as the ``detcheck.pythonhashseed`` counter (``-1`` when the
interpreter was launched with hash randomization left floating or set
to ``random``).
"""

from __future__ import annotations

import os
from typing import Optional

#: Environment variable controlling CPython hash randomization.
HASH_SEED_ENV = "PYTHONHASHSEED"

#: Seed exported when the caller left ``PYTHONHASHSEED`` unset. Zero
#: disables hash randomization entirely in child interpreters.
DEFAULT_HASH_SEED = "0"

#: Counter value recorded when the seed is unpinned (unset or
#: ``random``) — distinguishable from every valid seed (all >= 0).
UNPINNED = -1


def raw_hash_seed() -> Optional[str]:
    """The ``PYTHONHASHSEED`` environment value, or ``None`` if unset."""
    value = os.environ.get(HASH_SEED_ENV)
    return value if value else None


def hash_seed_value() -> int:
    """The pinned hash seed as an int, or :data:`UNPINNED` (-1).

    ``PYTHONHASHSEED=random`` counts as unpinned: it forces a fresh
    salt per interpreter, which is exactly what pinning exists to
    prevent.
    """
    value = raw_hash_seed()
    if value is None or not value.isdigit():
        return UNPINNED
    return int(value)


def ensure_hash_seed(default: str = DEFAULT_HASH_SEED) -> str:
    """Export ``PYTHONHASHSEED`` (to ``default``) when unset.

    Exporting cannot re-seed the *current* interpreter — CPython reads
    the variable at startup — but every child process spawned after
    this call (pool workers, subprocesses) inherits the pinned value.
    Returns the effective value.
    """
    value = raw_hash_seed()
    if value is None:
        os.environ[HASH_SEED_ENV] = default
        return default
    return value
