"""Finding records and the output renderers of ``repro lint``.

A :class:`Finding` is one rule violation at one source location. The
renderers turn a finding list into the three supported formats:

* ``text`` — ``path:line:col: RULE message`` with an indented fix-it
  hint, the human-facing default;
* ``github`` — GitHub Actions workflow commands
  (``::error file=...``), which the CI job uses to annotate the
  offending PR lines in place;
* ``json`` — one object per finding, for tooling.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import List, Sequence

#: Pseudo-rule reported for files the linter cannot parse at all.
PARSE_ERROR_RULE = "DET000"


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation: location, rule, message and fix-it hint."""

    path: str
    line: int
    col: int
    rule: str
    message: str
    fixit: str = ""


def format_text(findings: Sequence[Finding]) -> str:
    """Human-readable listing, one finding per line plus fix-it hints."""
    lines: List[str] = []
    for f in findings:
        lines.append(f"{f.path}:{f.line}:{f.col}: {f.rule} {f.message}")
        if f.fixit:
            lines.append(f"    fix: {f.fixit}")
    return "\n".join(lines)


def _escape_github(text: str) -> str:
    """Escape a workflow-command message payload (docs.github.com)."""
    return (
        text.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")
    )


def format_github(findings: Sequence[Finding]) -> str:
    """GitHub Actions ``::error`` annotations, one per finding."""
    lines = []
    for f in findings:
        message = f.message if not f.fixit else f"{f.message} Fix: {f.fixit}"
        lines.append(
            f"::error file={f.path},line={f.line},col={f.col},"
            f"title={f.rule}::{_escape_github(message)}"
        )
    return "\n".join(lines)


def format_json(findings: Sequence[Finding]) -> str:
    """JSON array of finding objects (stable key order)."""
    return json.dumps([asdict(f) for f in findings], indent=2, sort_keys=True)


FORMATTERS = {
    "text": format_text,
    "github": format_github,
    "json": format_json,
}
