"""``# detlint: ignore[...]`` suppression-comment parsing.

A finding is suppressed when its line carries an ignore comment, or
when a *standalone* ignore comment (nothing but whitespace and the
comment) precedes it with only further comment-only lines in between —
the escape hatch for lines already at the line-length budget, which
also lets the justification span a comment block.

Grammar::

    # detlint: ignore              suppress every rule on the line
    # detlint: ignore[DET002]      suppress one rule
    # detlint: ignore[DET002, DET004]   suppress several

Trailing prose after the bracket is encouraged (the justification) and
ignored by the parser.
"""

from __future__ import annotations

import re
from typing import Dict, FrozenSet, Optional

#: ``frozenset()`` sentinel meaning "every rule" (bare ``ignore``).
ALL_RULES: FrozenSet[str] = frozenset()

_IGNORE_RE = re.compile(
    r"#\s*detlint:\s*ignore(?:\[(?P<rules>[A-Za-z0-9_,\s]+)\])?"
)
_BARE_COMMENT_RE = re.compile(r"^\s*#")


class SuppressionMap:
    """Per-file map from line number to the rule IDs suppressed there."""

    def __init__(self, source: str) -> None:
        self._by_line: Dict[int, FrozenSet[str]] = {}
        self._standalone: Dict[int, FrozenSet[str]] = {}
        self.matched = 0  # suppressions that actually hid a finding
        pending: Optional[FrozenSet[str]] = None
        for lineno, line in enumerate(source.splitlines(), start=1):
            rules = _parse_ignore(line)
            if rules is not None:
                self._by_line[lineno] = rules
            if _BARE_COMMENT_RE.match(line):
                # A comment-only ignore line covers the next code line,
                # carrying across any further comment-only lines (the
                # justification block).
                if rules is not None:
                    pending = rules
            elif pending is not None:
                self._standalone[lineno] = pending
                pending = None
        self.total = len(self._by_line)

    def suppresses(self, lineno: int, rule_id: str) -> bool:
        """Whether a finding of ``rule_id`` at ``lineno`` is ignored."""
        for rules in (
            self._by_line.get(lineno),
            self._standalone.get(lineno),
        ):
            if rules is None:
                continue
            if rules is ALL_RULES or not rules or rule_id in rules:
                self.matched += 1
                return True
        return False


def _parse_ignore(line: str) -> Optional[FrozenSet[str]]:
    """Rule IDs ignored by ``line``'s comment, or None if no comment.

    An empty frozenset means the bare form (ignore everything).
    """
    match = _IGNORE_RE.search(line)
    if match is None:
        return None
    rules = match.group("rules")
    if rules is None:
        return ALL_RULES
    return frozenset(
        part.strip().upper() for part in rules.split(",") if part.strip()
    )
