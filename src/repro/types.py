"""Shared primitive types and time constants used across the library.

The whole code base measures time in **seconds** as ``float``. A day is
86 400 seconds; the paper generates new files every day at 12:00 (noon),
which is ``NOON_OFFSET`` seconds into the day.
"""

from __future__ import annotations

from typing import NewType

#: Identifier of a node (bus, student, phone) participating in the DTN.
NodeId = NewType("NodeId", int)

#: Uniform resource identifier of a file, e.g. ``"dtn://fox/ep-0042"``.
Uri = NewType("Uri", str)

#: Seconds in one minute / hour / day.
MINUTE: float = 60.0
HOUR: float = 3600.0
DAY: float = 86400.0

#: Offset of the daily file-generation instant (12:00 noon, paper VI-A).
NOON_OFFSET: float = 12 * HOUR


def day_of(time: float) -> int:
    """Return the zero-based day index containing ``time`` (seconds)."""
    return int(time // DAY)


def noon_of_day(day: int) -> float:
    """Return the absolute time of 12:00 noon on zero-based day ``day``."""
    return day * DAY + NOON_OFFSET
