"""Persistent compiled-trace cache: build once, reuse across processes.

Building a synthetic trace (mobility simulation + contact extraction)
can rival the protocol simulation itself in cost, and a sweep rebuilds
the same trace in every worker process whenever the in-process LRU goes
cold. This module turns built traces into durable on-disk artifacts so
one build serves every process that ever asks for the same spec:

* **Keyed store** — entries are addressed by an opaque hex ``key`` (the
  execution kernel uses
  :func:`repro.exec.trace_spec_fingerprint`, which covers the builder
  path and every argument, so a changed spec is a different entry).
* **Compact packed binary format** — a fixed little-endian header
  (magic, format version, payload length, SHA-256 checksum prefix)
  followed by the trace name and ``(start, end, members)`` records with
  full ``float64`` precision. Floats round-trip bit-exactly.
* **Atomic writes** — entries are written to a unique temp file in the
  cache directory and published with :func:`os.replace`, so concurrent
  writers (sweep workers racing on a cold cache) each produce a valid
  file and the last one wins; readers never observe a torn entry.
* **Corruption → silent rebuild** — a bad magic, an unknown format
  version, a truncated payload or a checksum mismatch makes
  :func:`load` return ``None`` (and remove the bad file, best-effort);
  the caller rebuilds and overwrites. The cache is an accelerator, not
  a source of truth.

Every outcome is tallied in the process-local ``perf.trace.*`` counter
namespace (:func:`cache_counters`), which the execution kernel merges
into :func:`repro.exec.trace_perf_counters` and the CLI prints under
``--counters``/``--profile``. The counters are process-local wall-clock
style diagnostics and are deliberately **not** folded into
:class:`~repro.sim.metrics.SimulationResult` — cache hits differ
between processes, and result counters must stay bitwise-identical
between serial and parallel runs.
"""

from __future__ import annotations

import hashlib
import os
import struct
from pathlib import Path
from typing import Dict, Optional, Union

from repro.traces.base import Contact, ContactTrace
from repro.types import NodeId

__all__ = [
    "CACHE_VERSION",
    "cache_counters",
    "entry_path",
    "load",
    "pack_trace",
    "reset_cache_counters",
    "store",
    "unpack_trace",
]

#: Bump when the packed layout changes; readers reject other versions.
CACHE_VERSION = 1

_MAGIC = b"RTRC"
#: magic | version | payload length | SHA-256 prefix of the payload.
_HEADER = struct.Struct("<4sIQ16s")
_NAME_HEADER = struct.Struct("<HI")  # name length | contact count
_RECORD = struct.Struct("<ddI")  # start | end | member count
_MEMBER = struct.Struct("<q")  # node id (signed, 64-bit)

_COUNTER_NAMES = (
    "disk_hits",
    "disk_misses",
    "disk_corrupt",
    "disk_version_skew",
    "disk_writes",
    "disk_write_errors",
)
_counters: Dict[str, int] = {name: 0 for name in _COUNTER_NAMES}


def cache_counters() -> Dict[str, int]:
    """Process-local tallies in the flat ``perf.trace.*`` namespace."""
    return {f"perf.trace.{name}": value for name, value in _counters.items()}


def reset_cache_counters() -> None:
    """Zero the tallies (tests and benchmark isolation)."""
    for name in _COUNTER_NAMES:
        _counters[name] = 0


def pack_trace(trace: ContactTrace) -> bytes:
    """Serialize ``trace`` into the versioned packed binary format."""
    name_bytes = trace.name.encode("utf-8")
    if len(name_bytes) > 0xFFFF:
        name_bytes = name_bytes[:0xFFFF]
    parts = [_NAME_HEADER.pack(len(name_bytes), len(trace)), name_bytes]
    record = _RECORD.pack
    member = _MEMBER.pack
    for contact in trace:
        members = sorted(contact.members)
        parts.append(record(contact.start, contact.end, len(members)))
        parts.extend(member(node) for node in members)
    payload = b"".join(parts)
    digest = hashlib.sha256(payload).digest()[:16]
    return _HEADER.pack(_MAGIC, CACHE_VERSION, len(payload), digest) + payload


def unpack_trace(blob: bytes) -> ContactTrace:
    """Parse a packed trace; raises ``ValueError`` on any defect."""
    if len(blob) < _HEADER.size:
        raise ValueError("truncated header")
    magic, version, length, digest = _HEADER.unpack_from(blob)
    if magic != _MAGIC:
        raise ValueError(f"bad magic {magic!r}")
    if version != CACHE_VERSION:
        raise _VersionSkew(f"format version {version} != {CACHE_VERSION}")
    payload = blob[_HEADER.size:]
    if len(payload) != length:
        raise ValueError(f"payload length {len(payload)} != recorded {length}")
    if hashlib.sha256(payload).digest()[:16] != digest:
        raise ValueError("checksum mismatch")
    name_len, count = _NAME_HEADER.unpack_from(payload)
    offset = _NAME_HEADER.size
    floor = offset + name_len + count * (_RECORD.size + 2 * _MEMBER.size)
    if floor > len(payload):
        raise ValueError(f"payload too short for {count} contacts")
    name = payload[offset:offset + name_len].decode("utf-8")
    offset += name_len
    contacts = []
    for __ in range(count):
        start, end, num_members = _RECORD.unpack_from(payload, offset)
        offset += _RECORD.size
        members = frozenset(
            NodeId(_MEMBER.unpack_from(payload, offset + k * _MEMBER.size)[0])
            for k in range(num_members)
        )
        offset += num_members * _MEMBER.size
        contacts.append(Contact(start, end, members))
    if offset != len(payload):
        raise ValueError(f"{len(payload) - offset} trailing bytes")
    return ContactTrace(contacts, name=name)


def entry_path(cache_dir: Union[str, Path], key: str) -> Path:
    """Path of the cache entry for ``key`` under ``cache_dir``."""
    return Path(cache_dir) / f"{key}.trace"


def load(cache_dir: Union[str, Path], key: str) -> Optional[ContactTrace]:
    """Return the cached trace for ``key``, or ``None`` to rebuild.

    Missing entries count as misses; undecodable ones (torn writes,
    bit rot, format evolution) are counted, removed best-effort, and
    reported as ``None`` so the caller silently rebuilds.
    """
    path = entry_path(cache_dir, key)
    try:
        blob = path.read_bytes()
    except OSError:
        _counters["disk_misses"] += 1
        return None
    try:
        trace = unpack_trace(blob)
    except _VersionSkew:
        _counters["disk_version_skew"] += 1
        _discard(path)
        return None
    except (ValueError, struct.error, UnicodeDecodeError):
        _counters["disk_corrupt"] += 1
        _discard(path)
        return None
    _counters["disk_hits"] += 1
    return trace


def store(cache_dir: Union[str, Path], key: str, trace: ContactTrace) -> bool:
    """Persist ``trace`` under ``key``; returns whether the write stuck.

    Best-effort by design: an unwritable cache directory degrades to
    building every time (counted), never to a failed run.
    """
    directory = Path(cache_dir)
    final = entry_path(directory, key)
    # detlint: ignore[DET003] -- entropy names a process-unique temp file
    # for the atomic rename; it never influences simulation results.
    tmp = directory / f".{key}.{os.getpid()}.{os.urandom(4).hex()}.tmp"
    try:
        directory.mkdir(parents=True, exist_ok=True)
        tmp.write_bytes(pack_trace(trace))
        os.replace(tmp, final)
    except OSError:
        _counters["disk_write_errors"] += 1
        _discard(tmp)
        return False
    _counters["disk_writes"] += 1
    return True


class _VersionSkew(ValueError):
    """A structurally sound entry written by another format version."""


def _discard(path: Path) -> None:
    try:
        os.remove(path)
    except OSError:
        pass
