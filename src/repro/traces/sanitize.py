"""Trace cleaning utilities for externally sourced contact dumps.

Real trace files (UMassDieselNet dumps, ONE simulator exports) arrive
with artifacts the simulator must not see: duplicate records,
overlapping intervals for the same pair, absolute epoch timestamps,
zero-length contacts. These helpers normalize them into the invariants
:class:`~repro.traces.base.ContactTrace` expects.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, FrozenSet, List, Tuple

from repro.traces.base import Contact, ContactTrace
from repro.types import NodeId


def shift_to_zero(trace: ContactTrace) -> ContactTrace:
    """Translate the trace so its first contact starts at time 0.

    Epoch-stamped dumps (seconds since 1970) become simulator-relative.
    """
    if not len(trace):
        return trace
    offset = trace.start_time
    contacts = [
        Contact(c.start - offset, c.end - offset, c.members) for c in trace
    ]
    return ContactTrace(contacts, name=f"{trace.name}|zeroed")


def merge_overlapping(trace: ContactTrace, gap_tolerance: float = 0.0) -> ContactTrace:
    """Merge overlapping or near-adjacent contacts of the same member set.

    Two contacts with identical members merge when the later one starts
    within ``gap_tolerance`` seconds of the earlier one's end. Radio
    flapping in real dumps shows up as many back-to-back micro-contacts
    of the same pair; merging restores the actual meeting.
    """
    if gap_tolerance < 0:
        raise ValueError("gap_tolerance must be non-negative")
    by_members: Dict[FrozenSet[NodeId], List[Contact]] = defaultdict(list)
    for contact in trace:
        by_members[contact.members].append(contact)

    merged: List[Contact] = []
    for members, contacts in by_members.items():
        contacts.sort(key=lambda c: (c.start, c.end))
        current_start, current_end = contacts[0].start, contacts[0].end
        for contact in contacts[1:]:
            if contact.start <= current_end + gap_tolerance:
                current_end = max(current_end, contact.end)
            else:
                merged.append(Contact(current_start, current_end, members))
                current_start, current_end = contact.start, contact.end
        merged.append(Contact(current_start, current_end, members))
    return ContactTrace(merged, name=f"{trace.name}|merged")


def drop_short_contacts(trace: ContactTrace, min_duration: float) -> ContactTrace:
    """Remove contacts shorter than ``min_duration`` seconds.

    Sub-second blips cannot carry a handshake, let alone a piece.
    """
    if min_duration < 0:
        raise ValueError("min_duration must be non-negative")
    contacts = [c for c in trace if c.duration >= min_duration]
    return ContactTrace(contacts, name=f"{trace.name}|>={min_duration:g}s")


def clip(trace: ContactTrace, start: float, end: float) -> ContactTrace:
    """Keep the window [start, end), trimming contacts at the borders."""
    if end <= start:
        raise ValueError("window must be non-empty")
    contacts: List[Contact] = []
    for contact in trace:
        s = max(contact.start, start)
        e = min(contact.end, end)
        if e > s:
            contacts.append(Contact(s, e, contact.members))
    return ContactTrace(contacts, name=f"{trace.name}|clip")


def relabel_nodes(trace: ContactTrace) -> Tuple[ContactTrace, Dict[NodeId, NodeId]]:
    """Renumber nodes densely as 0..n−1; return trace and the mapping.

    External dumps use sparse device ids; dense ids keep downstream
    arrays compact. The returned mapping goes old id → new id.
    """
    mapping = {old: NodeId(new) for new, old in enumerate(trace.nodes)}
    contacts = [
        Contact(c.start, c.end, frozenset(mapping[m] for m in c.members))
        for c in trace
    ]
    return ContactTrace(contacts, name=f"{trace.name}|relabel"), mapping


def sanitize(
    trace: ContactTrace,
    min_duration: float = 1.0,
    merge_gap: float = 5.0,
) -> ContactTrace:
    """The standard cleaning pipeline for external dumps.

    merge flapping → drop blips → shift to zero → dense node ids.
    """
    cleaned = merge_overlapping(trace, gap_tolerance=merge_gap)
    cleaned = drop_short_contacts(cleaned, min_duration)
    cleaned = shift_to_zero(cleaned)
    cleaned, __ = relabel_nodes(cleaned)
    return ContactTrace(list(cleaned), name=f"{trace.name}|sanitized")
