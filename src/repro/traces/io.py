"""Plain-text trace serialization.

The format is a line-oriented superset of the UMassDieselNet contact
record style: one contact per line,

    <start-seconds> <end-seconds> <node-id> <node-id> [<node-id> ...]

with ``#`` comment lines and blank lines ignored. Pair-wise traces
(two ids per line) round-trip with real DieselNet-style dumps; clique
traces simply list more ids.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, TextIO, Union

from repro.traces.base import Contact, ContactTrace, TraceError
from repro.types import NodeId

PathLike = Union[str, Path]


def write_trace(trace: ContactTrace, destination: Union[PathLike, TextIO]) -> None:
    """Write ``trace`` to a path or an open text file."""
    if hasattr(destination, "write"):
        _write_lines(trace, destination)  # type: ignore[arg-type]
        return
    with open(destination, "w", encoding="utf-8") as handle:
        _write_lines(trace, handle)


def _write_lines(trace: ContactTrace, handle: TextIO) -> None:
    handle.write(f"# trace: {trace.name}\n")
    handle.write(f"# nodes: {trace.num_nodes} contacts: {len(trace)}\n")
    for contact in trace:
        members = " ".join(str(m) for m in sorted(contact.members))
        # repr() emits the shortest decimal that round-trips the exact
        # float64, so read_trace(write_trace(t)) preserves every bit.
        handle.write(f"{contact.start!r} {contact.end!r} {members}\n")


def read_trace(source: Union[PathLike, TextIO], name: str = "trace") -> ContactTrace:
    """Read a trace from a path or an open text file.

    Raises
    ------
    TraceError
        On malformed lines (wrong field count, bad numbers, a contact
        with fewer than two distinct nodes, or ``end <= start``).
    """
    if hasattr(source, "read"):
        return _read_lines(source, name)  # type: ignore[arg-type]
    path = Path(source)
    with open(path, encoding="utf-8") as handle:
        return _read_lines(handle, name if name != "trace" else path.stem)


def _read_lines(handle: TextIO, name: str) -> ContactTrace:
    contacts: List[Contact] = []
    for lineno, raw in enumerate(handle, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        fields = line.split()
        if len(fields) < 4:
            raise TraceError(f"line {lineno}: expected 'start end id id...', got {line!r}")
        try:
            start = float(fields[0])
            end = float(fields[1])
            members = frozenset(NodeId(int(f)) for f in fields[2:])
        except ValueError as exc:
            raise TraceError(f"line {lineno}: {exc}") from exc
        if len(members) < 2:
            raise TraceError(f"line {lineno}: contact needs two distinct nodes: {line!r}")
        contacts.append(Contact(start, end, members))
    return ContactTrace(contacts, name=name)


def contacts_as_records(contacts: Iterable[Contact]) -> List[tuple[float, float, tuple[int, ...]]]:
    """Return contacts as plain tuples, convenient for numpy/tests."""
    return [(c.start, c.end, tuple(sorted(c.members))) for c in contacts]
