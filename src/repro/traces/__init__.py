"""DTN contact traces: model, synthetic generators and I/O.

A *contact* is a period of time during which a set of nodes can all
hear each other's broadcasts (a clique). The paper uses two traces:

* the real **UMassDieselNet** bus trace — pair-wise contacts only;
* the synthetic **NUS student** trace — classroom cliques derived from
  campus schedules.

Neither raw trace is redistributable in this offline environment, so
:mod:`repro.traces.dieselnet` and :mod:`repro.traces.nus` provide
generators that synthesize traces with the structural properties the
protocols depend on (see DESIGN.md, "Substitutions").
"""

from repro.traces.base import Contact, ContactTrace, TraceStats
from repro.traces.dieselnet import DieselNetConfig, generate_dieselnet_trace
from repro.traces.io import read_trace, write_trace
from repro.traces.mobility import (
    CommunityConfig,
    RandomWaypointConfig,
    generate_community_trace,
    generate_random_waypoint_trace,
)
from repro.traces.nus import NUSConfig, generate_nus_trace
from repro.traces.sanitize import (
    clip,
    drop_short_contacts,
    merge_overlapping,
    relabel_nodes,
    sanitize,
    shift_to_zero,
)

__all__ = [
    "Contact",
    "ContactTrace",
    "TraceStats",
    "DieselNetConfig",
    "generate_dieselnet_trace",
    "NUSConfig",
    "generate_nus_trace",
    "CommunityConfig",
    "RandomWaypointConfig",
    "generate_community_trace",
    "generate_random_waypoint_trace",
    "read_trace",
    "write_trace",
    "clip",
    "drop_short_contacts",
    "merge_overlapping",
    "relabel_nodes",
    "sanitize",
    "shift_to_zero",
]
