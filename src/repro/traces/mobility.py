"""Mobility-model trace generators: trajectories → contacts.

Schedule-based generators (:mod:`repro.traces.dieselnet`,
:mod:`repro.traces.nus`) emit contacts directly. This module takes the
classic simulator route instead: it moves nodes through a plane under a
mobility model, samples positions on a fixed tick, and extracts
contacts from communication-range proximity — the standard pipeline of
DTN simulators (e.g. the ONE).

Two models are provided:

* **Random waypoint** (`RandomWaypointConfig`): each node repeatedly
  picks a uniform destination and speed, walks there, pauses, repeats.
  The baseline mobility model of the MANET/DTN literature.
* **Community model** (`CommunityConfig`): nodes belong to home
  communities (disc-shaped areas); they random-waypoint *within* their
  community most of the time and occasionally roam to a random remote
  point, producing the skewed, cluster-heavy contact patterns real
  human traces show (and which the paper's frequent-contact mechanism
  needs).

Contact extraction merges consecutive in-range samples per pair into
:class:`~repro.traces.base.Contact` records. Groups larger than two
emerge naturally as overlapping pair contacts; the MBT engine treats
each contact independently, matching the paper's non-overlapping-clique
assumption for pair-wise traces.

Extraction kernel
-----------------
Proximity testing is the hot path: the naive formulation checks every
node pair every tick — O(n² · ticks). :func:`_extract_contacts` instead
hashes positions into a uniform grid with cell edge ≈ ``radio_range``
and tests only same-cell and adjacent-cell pairs, which is near-linear
for the sparse deployments DTN scenarios use. The all-pairs scan is
kept as :func:`_extract_contacts_reference`; both kernels perform the
*identical* float comparisons in the identical canonical order, so
their :class:`Contact` lists are bitwise-equal (the property suite in
``tests/test_traces_mobility.py`` enforces this).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Tuple

from repro.traces.base import Contact, ContactTrace
from repro.types import DAY, NodeId


@dataclass(frozen=True)
class RandomWaypointConfig:
    """Parameters of the random-waypoint mobility model."""

    num_nodes: int = 30
    #: Side length of the square simulation area (meters).
    area_size: float = 1000.0
    #: Uniform speed range (m/s) — pedestrian-to-vehicle speeds.
    min_speed: float = 0.5
    max_speed: float = 5.0
    #: Pause range at each waypoint (seconds).
    min_pause: float = 0.0
    max_pause: float = 120.0
    #: Radio range (meters): two nodes in range are in contact.
    radio_range: float = 50.0
    #: Position-sampling tick (seconds).
    tick: float = 30.0
    #: Simulated duration (seconds).
    duration: float = 2 * DAY

    def __post_init__(self) -> None:
        if self.num_nodes < 2:
            raise ValueError("need at least two nodes")
        if self.area_size <= 0 or self.radio_range <= 0:
            raise ValueError("area and radio range must be positive")
        if not 0 < self.min_speed <= self.max_speed:
            raise ValueError("need 0 < min_speed <= max_speed")
        if not 0 <= self.min_pause <= self.max_pause:
            raise ValueError("need 0 <= min_pause <= max_pause")
        if self.tick <= 0 or self.duration <= 0:
            raise ValueError("tick and duration must be positive")


@dataclass(frozen=True)
class CommunityConfig:
    """Parameters of the community mobility model."""

    num_nodes: int = 40
    num_communities: int = 4
    area_size: float = 2000.0
    #: Radius of each community disc (meters).
    community_radius: float = 200.0
    #: Probability that the next waypoint leaves the home community.
    roaming_probability: float = 0.15
    min_speed: float = 0.5
    max_speed: float = 3.0
    min_pause: float = 0.0
    max_pause: float = 300.0
    radio_range: float = 50.0
    tick: float = 30.0
    duration: float = 2 * DAY

    def __post_init__(self) -> None:
        if self.num_nodes < 2:
            raise ValueError("need at least two nodes")
        if self.num_communities < 1:
            raise ValueError("need at least one community")
        if not 0.0 <= self.roaming_probability <= 1.0:
            raise ValueError("roaming_probability must be in [0, 1]")
        if self.community_radius <= 0 or self.area_size <= 0:
            raise ValueError("geometry must be positive")
        if not 0 < self.min_speed <= self.max_speed:
            raise ValueError("need 0 < min_speed <= max_speed")


Point = Tuple[float, float]


class _Walker:
    """One node's piecewise-linear trajectory with pauses.

    State advances strictly forward: each leg's displacement and travel
    time are computed once when the leg begins (not re-derived from the
    leg start on every position query), so a tick-by-tick sweep costs a
    couple of multiplications per sample. The cached values feed the
    exact same arithmetic the per-query formulation used, so sampled
    positions are bitwise-unchanged.
    """

    __slots__ = (
        "_position",
        "_pick_waypoint",
        "_pick_speed",
        "_pick_pause",
        "_target",
        "_pause_until",
        "_leg_start_time",
        "_leg_start_pos",
        "_leg_dx",
        "_leg_dy",
        "_travel_time",
        "_arrival",
    )

    def __init__(
        self,
        start: Point,
        pick_waypoint,
        pick_speed,
        pick_pause,
    ) -> None:
        self._position = start
        self._pick_waypoint = pick_waypoint
        self._pick_speed = pick_speed
        self._pick_pause = pick_pause
        self._pause_until = 0.0
        self._begin_leg(0.0)

    def _begin_leg(self, now: float) -> None:
        pos = self._position
        self._leg_start_pos = pos
        self._leg_start_time = now
        target = self._pick_waypoint(pos)
        self._target = target
        speed = self._pick_speed()
        dx = target[0] - pos[0]
        dy = target[1] - pos[1]
        distance = math.hypot(dx, dy)
        travel_time = distance / speed if distance else 0.0
        self._leg_dx = dx
        self._leg_dy = dy
        self._travel_time = travel_time
        self._arrival = now + travel_time

    def position_at(self, now: float) -> Point:
        """Advance internal state to ``now`` and return the position."""
        while True:
            if now < self._pause_until:
                return self._position
            if now < self._arrival:
                fraction = (now - self._leg_start_time) / self._travel_time
                start = self._leg_start_pos
                self._position = (
                    start[0] + fraction * self._leg_dx,
                    start[1] + fraction * self._leg_dy,
                )
                return self._position
            # Arrived: pause, then start the next leg.
            self._position = self._target
            self._pause_until = self._arrival + self._pick_pause()
            if now < self._pause_until:
                return self._position
            self._begin_leg(self._pause_until)


def _sample_positions(
    walkers: Sequence[_Walker], tick: float, duration: float
) -> Iterator[Tuple[float, Sequence[Point]]]:
    """Yield ``(time, positions)`` for every tick in ``[0, duration]``."""
    steps = int(duration // tick)
    for step in range(steps + 1):
        now = step * tick
        yield now, [w.position_at(now) for w in walkers]


def _close_contacts(
    open_since: Dict[Tuple[int, int], float],
    in_range: Sequence[Tuple[int, int]],
    now: float,
    tick: float,
    contacts: List[Contact],
) -> None:
    """Open new pair intervals and close the ones that left range.

    ``in_range`` must arrive sorted from both extraction kernels.
    Contacts closing on the same tick are appended in ``(start, pair)``
    order — the canonical ordering the bitwise-equality guarantee
    between the kernels relies on.
    """
    setdefault = open_since.setdefault
    for pair in in_range:
        setdefault(pair, now)
    closed = open_since.keys() - in_range if len(open_since) > len(in_range) else ()
    if not closed:
        return
    for pair in sorted(closed, key=lambda p: (open_since[p], p)):
        start = open_since.pop(pair)
        contacts.append(
            Contact(
                start,
                max(now, start + tick),
                frozenset((NodeId(pair[0]), NodeId(pair[1]))),
            )
        )


def _flush_contacts(
    open_since: Dict[Tuple[int, int], float],
    last_time: float,
    tick: float,
    contacts: List[Contact],
) -> None:
    """Close every still-open pair interval at the end of the trace."""
    for pair, start in open_since.items():
        contacts.append(
            Contact(
                start,
                max(last_time, start + tick),
                frozenset((NodeId(pair[0]), NodeId(pair[1]))),
            )
        )


def _extract_contacts_reference(
    positions: Iterator[Tuple[float, Sequence[Point]]],
    radio_range: float,
    tick: float,
    num_nodes: int,
) -> List[Contact]:
    """All-pairs proximity scan — the O(n² · ticks) reference kernel.

    Kept as the correctness oracle for :func:`_extract_contacts`: both
    kernels must produce bitwise-identical contact lists.
    """
    range_sq = radio_range * radio_range
    open_since: Dict[Tuple[int, int], float] = {}
    contacts: List[Contact] = []
    last_time = 0.0
    for now, points in positions:
        last_time = now
        in_range = []
        for i in range(num_nodes):
            xi, yi = points[i]
            for j in range(i + 1, num_nodes):
                xj, yj = points[j]
                dx = xi - xj
                dy = yi - yj
                if dx * dx + dy * dy <= range_sq:
                    in_range.append((i, j))
        _close_contacts(open_since, in_range, now, tick, contacts)
    _flush_contacts(open_since, last_time, tick, contacts)
    return contacts


#: Cell keys are packed into one int, ``gx * _CELL_STRIDE + gy``; the
#: stride keeps the y index in its own field so neighbor lookups are
#: plain integer additions (Python ints never overflow).
_CELL_STRIDE = 1 << 32


def _extract_contacts(
    positions: Iterator[Tuple[float, Sequence[Point]]],
    radio_range: float,
    tick: float,
    num_nodes: int,
) -> List[Contact]:
    """Spatial-hash proximity scan: near-linear in nodes for sparse areas.

    Positions are bucketed per tick into a uniform grid whose cell edge
    is slightly above ``radio_range``; only same-cell and adjacent-cell
    pairs are distance-tested. The slack on the cell edge means float
    rounding in the bucketing arithmetic can never push an in-range pair
    more than one cell apart, and the distance test itself is the same
    ``dx*dx + dy*dy <= range_sq`` comparison the reference kernel
    performs (subtraction order at most flips the sign of ``dx``/``dy``,
    which squares away exactly), so the output is bitwise-identical to
    :func:`_extract_contacts_reference`.
    """
    range_sq = radio_range * radio_range
    # Degenerate ranges (0 or negative) only match coincident points,
    # which always share a bucket whatever the positive cell size.
    inv_cell = 1.0 / (radio_range * 1.0001) if radio_range > 0 else 1.0
    stride = _CELL_STRIDE
    floor = math.floor
    open_since: Dict[Tuple[int, int], float] = {}
    contacts: List[Contact] = []
    last_time = 0.0
    for now, points in positions:
        last_time = now
        buckets: Dict[int, List[Tuple[float, float, int]]] = {}
        buckets_get = buckets.get
        for index in range(num_nodes):
            x, y = points[index]
            key = floor(x * inv_cell) * stride + floor(y * inv_cell)
            bucket = buckets_get(key)
            if bucket is None:
                buckets[key] = [(x, y, index)]
            else:
                bucket.append((x, y, index))
        in_range: List[Tuple[int, int]] = []
        append = in_range.append
        for key, members in buckets.items():
            count = len(members)
            for a in range(count - 1):
                xi, yi, i = members[a]
                for b in range(a + 1, count):
                    xj, yj, j = members[b]
                    dx = xi - xj
                    dy = yi - yj
                    if dx * dx + dy * dy <= range_sq:
                        # members is index-sorted, so i < j already.
                        append((i, j))
            # The forward half-neighborhood (+x), (-x,+y), (+y), (+x,+y):
            # every adjacent cell pair is visited from exactly one side.
            for delta in (stride, 1 - stride, 1, stride + 1):
                other = buckets_get(key + delta)
                if not other:
                    continue
                for xi, yi, i in members:
                    for xj, yj, j in other:
                        dx = xi - xj
                        dy = yi - yj
                        if dx * dx + dy * dy <= range_sq:
                            append((i, j) if i < j else (j, i))
        in_range.sort()
        _close_contacts(open_since, in_range, now, tick, contacts)
    _flush_contacts(open_since, last_time, tick, contacts)
    return contacts


def _rwp_walkers(config: RandomWaypointConfig, rng: random.Random) -> List[_Walker]:
    """Walker population of the random-waypoint model (consumes ``rng``)."""

    def pick_waypoint(__: Point) -> Point:
        return (rng.uniform(0, config.area_size), rng.uniform(0, config.area_size))

    def pick_speed() -> float:
        return rng.uniform(config.min_speed, config.max_speed)

    def pick_pause() -> float:
        return rng.uniform(config.min_pause, config.max_pause)

    return [
        _Walker(pick_waypoint((0.0, 0.0)), pick_waypoint, pick_speed, pick_pause)
        for __ in range(config.num_nodes)
    ]


def generate_random_waypoint_trace(
    config: RandomWaypointConfig | None = None, seed: int = 0
) -> ContactTrace:
    """Simulate random-waypoint mobility and extract the contact trace."""
    config = config or RandomWaypointConfig()
    rng = random.Random(seed ^ 0xB0B11E)
    walkers = _rwp_walkers(config, rng)
    contacts = _extract_contacts(
        _sample_positions(walkers, config.tick, config.duration),
        config.radio_range,
        config.tick,
        config.num_nodes,
    )
    return ContactTrace(contacts, name=f"rwp(seed={seed})")


def _community_walkers(config: CommunityConfig, rng: random.Random) -> List[_Walker]:
    """Walker population of the community model (consumes ``rng``)."""
    centers: List[Point] = [
        (
            rng.uniform(config.community_radius, config.area_size - config.community_radius),
            rng.uniform(config.community_radius, config.area_size - config.community_radius),
        )
        for __ in range(config.num_communities)
    ]
    homes = [i % config.num_communities for i in range(config.num_nodes)]

    def point_in_disc(center: Point) -> Point:
        angle = rng.uniform(0.0, 2 * math.pi)
        radius = config.community_radius * math.sqrt(rng.random())
        return (
            center[0] + radius * math.cos(angle),
            center[1] + radius * math.sin(angle),
        )

    def pick_waypoint_for(home: int):
        def pick(__: Point) -> Point:
            if rng.random() < config.roaming_probability:
                return (
                    rng.uniform(0, config.area_size),
                    rng.uniform(0, config.area_size),
                )
            return point_in_disc(centers[home])

        return pick

    def pick_speed() -> float:
        return rng.uniform(config.min_speed, config.max_speed)

    def pick_pause() -> float:
        return rng.uniform(config.min_pause, config.max_pause)

    return [
        _Walker(
            point_in_disc(centers[homes[i]]),
            pick_waypoint_for(homes[i]),
            pick_speed,
            pick_pause,
        )
        for i in range(config.num_nodes)
    ]


def generate_community_trace(
    config: CommunityConfig | None = None, seed: int = 0
) -> ContactTrace:
    """Simulate community mobility and extract the contact trace."""
    config = config or CommunityConfig()
    rng = random.Random(seed ^ 0xC0FFEE)
    walkers = _community_walkers(config, rng)
    contacts = _extract_contacts(
        _sample_positions(walkers, config.tick, config.duration),
        config.radio_range,
        config.tick,
        config.num_nodes,
    )
    return ContactTrace(contacts, name=f"community(seed={seed})")


def community_of_nodes(config: CommunityConfig) -> Sequence[int]:
    """Deterministic home-community assignment used by the generator."""
    return [i % config.num_communities for i in range(config.num_nodes)]
