"""Mobility-model trace generators: trajectories → contacts.

Schedule-based generators (:mod:`repro.traces.dieselnet`,
:mod:`repro.traces.nus`) emit contacts directly. This module takes the
classic simulator route instead: it moves nodes through a plane under a
mobility model, samples positions on a fixed tick, and extracts
contacts from communication-range proximity — the standard pipeline of
DTN simulators (e.g. the ONE).

Two models are provided:

* **Random waypoint** (`RandomWaypointConfig`): each node repeatedly
  picks a uniform destination and speed, walks there, pauses, repeats.
  The baseline mobility model of the MANET/DTN literature.
* **Community model** (`CommunityConfig`): nodes belong to home
  communities (disc-shaped areas); they random-waypoint *within* their
  community most of the time and occasionally roam to a random remote
  point, producing the skewed, cluster-heavy contact patterns real
  human traces show (and which the paper's frequent-contact mechanism
  needs).

Contact extraction merges consecutive in-range samples per pair into
:class:`~repro.traces.base.Contact` records. Groups larger than two
emerge naturally as overlapping pair contacts; the MBT engine treats
each contact independently, matching the paper's non-overlapping-clique
assumption for pair-wise traces.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Tuple

from repro.traces.base import Contact, ContactTrace
from repro.types import DAY, NodeId


@dataclass(frozen=True)
class RandomWaypointConfig:
    """Parameters of the random-waypoint mobility model."""

    num_nodes: int = 30
    #: Side length of the square simulation area (meters).
    area_size: float = 1000.0
    #: Uniform speed range (m/s) — pedestrian-to-vehicle speeds.
    min_speed: float = 0.5
    max_speed: float = 5.0
    #: Pause range at each waypoint (seconds).
    min_pause: float = 0.0
    max_pause: float = 120.0
    #: Radio range (meters): two nodes in range are in contact.
    radio_range: float = 50.0
    #: Position-sampling tick (seconds).
    tick: float = 30.0
    #: Simulated duration (seconds).
    duration: float = 2 * DAY

    def __post_init__(self) -> None:
        if self.num_nodes < 2:
            raise ValueError("need at least two nodes")
        if self.area_size <= 0 or self.radio_range <= 0:
            raise ValueError("area and radio range must be positive")
        if not 0 < self.min_speed <= self.max_speed:
            raise ValueError("need 0 < min_speed <= max_speed")
        if not 0 <= self.min_pause <= self.max_pause:
            raise ValueError("need 0 <= min_pause <= max_pause")
        if self.tick <= 0 or self.duration <= 0:
            raise ValueError("tick and duration must be positive")


@dataclass(frozen=True)
class CommunityConfig:
    """Parameters of the community mobility model."""

    num_nodes: int = 40
    num_communities: int = 4
    area_size: float = 2000.0
    #: Radius of each community disc (meters).
    community_radius: float = 200.0
    #: Probability that the next waypoint leaves the home community.
    roaming_probability: float = 0.15
    min_speed: float = 0.5
    max_speed: float = 3.0
    min_pause: float = 0.0
    max_pause: float = 300.0
    radio_range: float = 50.0
    tick: float = 30.0
    duration: float = 2 * DAY

    def __post_init__(self) -> None:
        if self.num_nodes < 2:
            raise ValueError("need at least two nodes")
        if self.num_communities < 1:
            raise ValueError("need at least one community")
        if not 0.0 <= self.roaming_probability <= 1.0:
            raise ValueError("roaming_probability must be in [0, 1]")
        if self.community_radius <= 0 or self.area_size <= 0:
            raise ValueError("geometry must be positive")
        if not 0 < self.min_speed <= self.max_speed:
            raise ValueError("need 0 < min_speed <= max_speed")


Point = Tuple[float, float]


class _Walker:
    """One node's piecewise-linear trajectory with pauses."""

    def __init__(
        self,
        start: Point,
        pick_waypoint,
        pick_speed,
        pick_pause,
    ) -> None:
        self._position = start
        self._pick_waypoint = pick_waypoint
        self._pick_speed = pick_speed
        self._pick_pause = pick_pause
        self._target: Point = start
        self._speed = 1.0
        self._pause_until = 0.0
        self._leg_start_time = 0.0
        self._leg_start_pos = start
        self._begin_leg(0.0)

    def _begin_leg(self, now: float) -> None:
        self._leg_start_pos = self._position
        self._leg_start_time = now
        self._target = self._pick_waypoint(self._position)
        self._speed = self._pick_speed()

    def position_at(self, now: float) -> Point:
        """Advance internal state to ``now`` and return the position."""
        while True:
            if now < self._pause_until:
                return self._position
            dx = self._target[0] - self._leg_start_pos[0]
            dy = self._target[1] - self._leg_start_pos[1]
            distance = math.hypot(dx, dy)
            travel_time = distance / self._speed if distance else 0.0
            arrival = self._leg_start_time + travel_time
            if now < arrival:
                fraction = (now - self._leg_start_time) / travel_time
                self._position = (
                    self._leg_start_pos[0] + fraction * dx,
                    self._leg_start_pos[1] + fraction * dy,
                )
                return self._position
            # Arrived: pause, then start the next leg.
            self._position = self._target
            self._pause_until = arrival + self._pick_pause()
            if now < self._pause_until:
                return self._position
            self._leg_start_time = self._pause_until
            self._leg_start_pos = self._position
            self._target = self._pick_waypoint(self._position)
            self._speed = self._pick_speed()
            self._leg_start_time = self._pause_until


def _extract_contacts(
    positions: Iterator[Tuple[float, Sequence[Point]]],
    radio_range: float,
    tick: float,
    num_nodes: int,
) -> List[Contact]:
    """Merge consecutive in-range samples into contacts per pair."""
    range_sq = radio_range * radio_range
    open_since: Dict[Tuple[int, int], float] = {}
    contacts: List[Contact] = []
    last_time = 0.0
    for now, points in positions:
        last_time = now
        in_range = set()
        for i in range(num_nodes):
            xi, yi = points[i]
            for j in range(i + 1, num_nodes):
                xj, yj = points[j]
                dx = xi - xj
                dy = yi - yj
                if dx * dx + dy * dy <= range_sq:
                    in_range.add((i, j))
        for pair in in_range:
            open_since.setdefault(pair, now)
        for pair in list(open_since):
            if pair not in in_range:
                start = open_since.pop(pair)
                contacts.append(
                    Contact(
                        start,
                        max(now, start + tick),
                        frozenset((NodeId(pair[0]), NodeId(pair[1]))),
                    )
                )
    for pair, start in open_since.items():
        contacts.append(
            Contact(
                start,
                max(last_time, start + tick),
                frozenset((NodeId(pair[0]), NodeId(pair[1]))),
            )
        )
    return contacts


def generate_random_waypoint_trace(
    config: RandomWaypointConfig | None = None, seed: int = 0
) -> ContactTrace:
    """Simulate random-waypoint mobility and extract the contact trace."""
    config = config or RandomWaypointConfig()
    rng = random.Random(seed ^ 0xB0B11E)

    def pick_waypoint(__: Point) -> Point:
        return (rng.uniform(0, config.area_size), rng.uniform(0, config.area_size))

    def pick_speed() -> float:
        return rng.uniform(config.min_speed, config.max_speed)

    def pick_pause() -> float:
        return rng.uniform(config.min_pause, config.max_pause)

    walkers = [
        _Walker(pick_waypoint((0.0, 0.0)), pick_waypoint, pick_speed, pick_pause)
        for __ in range(config.num_nodes)
    ]

    def positions() -> Iterator[Tuple[float, Sequence[Point]]]:
        steps = int(config.duration // config.tick)
        for step in range(steps + 1):
            now = step * config.tick
            yield now, [w.position_at(now) for w in walkers]

    contacts = _extract_contacts(
        positions(), config.radio_range, config.tick, config.num_nodes
    )
    return ContactTrace(contacts, name=f"rwp(seed={seed})")


def generate_community_trace(
    config: CommunityConfig | None = None, seed: int = 0
) -> ContactTrace:
    """Simulate community mobility and extract the contact trace."""
    config = config or CommunityConfig()
    rng = random.Random(seed ^ 0xC0FFEE)

    centers: List[Point] = [
        (
            rng.uniform(config.community_radius, config.area_size - config.community_radius),
            rng.uniform(config.community_radius, config.area_size - config.community_radius),
        )
        for __ in range(config.num_communities)
    ]
    homes = [i % config.num_communities for i in range(config.num_nodes)]

    def point_in_disc(center: Point) -> Point:
        angle = rng.uniform(0.0, 2 * math.pi)
        radius = config.community_radius * math.sqrt(rng.random())
        return (
            center[0] + radius * math.cos(angle),
            center[1] + radius * math.sin(angle),
        )

    def pick_waypoint_for(home: int):
        def pick(__: Point) -> Point:
            if rng.random() < config.roaming_probability:
                return (
                    rng.uniform(0, config.area_size),
                    rng.uniform(0, config.area_size),
                )
            return point_in_disc(centers[home])

        return pick

    def pick_speed() -> float:
        return rng.uniform(config.min_speed, config.max_speed)

    def pick_pause() -> float:
        return rng.uniform(config.min_pause, config.max_pause)

    walkers = [
        _Walker(
            point_in_disc(centers[homes[i]]),
            pick_waypoint_for(homes[i]),
            pick_speed,
            pick_pause,
        )
        for i in range(config.num_nodes)
    ]

    def positions() -> Iterator[Tuple[float, Sequence[Point]]]:
        steps = int(config.duration // config.tick)
        for step in range(steps + 1):
            now = step * config.tick
            yield now, [w.position_at(now) for w in walkers]

    contacts = _extract_contacts(
        positions(), config.radio_range, config.tick, config.num_nodes
    )
    return ContactTrace(contacts, name=f"community(seed={seed})")


def community_of_nodes(config: CommunityConfig) -> Sequence[int]:
    """Deterministic home-community assignment used by the generator."""
    return [i % config.num_communities for i in range(config.num_nodes)]
