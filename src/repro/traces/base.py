"""Contact-trace data model.

A DTN is described abstractly by its sequence of *contacts*
(space-time graph edges, paper §II-A). Each :class:`Contact` names the
set of nodes that form a communication clique for an interval of time.
Pair-wise traces (UMassDieselNet) simply have two members per contact;
the NUS classroom trace has one contact per class session with all
attending students as members.
"""

from __future__ import annotations

from bisect import bisect_left
from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Sequence, Set, Tuple

from repro.types import DAY, NodeId


class TraceError(ValueError):
    """Raised for malformed contacts or traces."""


@dataclass(frozen=True, order=True)
class Contact:
    """A communication opportunity among a clique of nodes.

    Attributes
    ----------
    start, end:
        Absolute start and end times in seconds, ``start < end``.
    members:
        The nodes in the clique; every member can receive every other
        member's broadcasts for the whole interval. At least two.
    """

    start: float
    end: float
    members: FrozenSet[NodeId] = field(compare=False)

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise TraceError(f"contact must have positive duration: {self.start}..{self.end}")
        if len(self.members) < 2:
            raise TraceError(f"contact needs at least two members, got {set(self.members)}")

    @property
    def duration(self) -> float:
        """Length of the contact in seconds."""
        return self.end - self.start

    @property
    def size(self) -> int:
        """Number of nodes in the clique."""
        return len(self.members)

    def pairs(self) -> Iterator[Tuple[NodeId, NodeId]]:
        """Yield every unordered node pair in the clique (u < v)."""
        ordered = sorted(self.members)
        for i, u in enumerate(ordered):
            for v in ordered[i + 1:]:
                yield u, v

    def involves(self, node: NodeId) -> bool:
        """Return whether ``node`` takes part in this contact."""
        return node in self.members


@dataclass(frozen=True)
class TraceStats:
    """Summary statistics of a :class:`ContactTrace`."""

    num_nodes: int
    num_contacts: int
    duration_days: float
    mean_contact_duration: float
    mean_clique_size: float
    contacts_per_node_per_day: float
    pairwise_fraction: float

    def describe(self) -> str:
        """Return a short human-readable summary."""
        return (
            f"{self.num_nodes} nodes, {self.num_contacts} contacts over "
            f"{self.duration_days:.1f} days; mean duration "
            f"{self.mean_contact_duration:.0f}s, mean clique size "
            f"{self.mean_clique_size:.2f}, "
            f"{self.contacts_per_node_per_day:.2f} contacts/node/day, "
            f"{self.pairwise_fraction:.0%} pair-wise"
        )


class ContactTrace:
    """An immutable, time-sorted sequence of :class:`Contact` objects.

    Provides the queries the protocol stack needs: iteration in start
    order, the node population, per-pair contact counts and the
    frequent-contact relation of paper §VI-A.
    """

    def __init__(self, contacts: Iterable[Contact], name: str = "trace") -> None:
        self._contacts: List[Contact] = sorted(contacts, key=lambda c: (c.start, c.end))
        self.name = name
        nodes: Set[NodeId] = set()
        for contact in self._contacts:
            nodes.update(contact.members)
        self._nodes: Tuple[NodeId, ...] = tuple(sorted(nodes))
        self._starts: List[float] = [c.start for c in self._contacts]

    # -- basic container protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._contacts)

    def __iter__(self) -> Iterator[Contact]:
        return iter(self._contacts)

    def __getitem__(self, index: int) -> Contact:
        return self._contacts[index]

    # -- properties ---------------------------------------------------------------

    @property
    def nodes(self) -> Tuple[NodeId, ...]:
        """All node ids appearing in the trace, sorted ascending."""
        return self._nodes

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def start_time(self) -> float:
        """Start of the first contact (0.0 for an empty trace)."""
        return self._contacts[0].start if self._contacts else 0.0

    @property
    def end_time(self) -> float:
        """Latest contact end (0.0 for an empty trace)."""
        return max((c.end for c in self._contacts), default=0.0)

    @property
    def duration(self) -> float:
        """Span from time zero to the last contact end."""
        return self.end_time

    # -- queries ------------------------------------------------------------------

    def contacts_between(self, start: float, end: float) -> List[Contact]:
        """Return contacts whose start lies in ``[start, end)``."""
        lo = bisect_left(self._starts, start)
        hi = bisect_left(self._starts, end)
        return self._contacts[lo:hi]

    def contacts_of(self, node: NodeId) -> List[Contact]:
        """Return the contacts that involve ``node``, in start order."""
        return [c for c in self._contacts if node in c.members]

    def pair_contact_counts(self) -> Dict[Tuple[NodeId, NodeId], int]:
        """Count contacts per unordered node pair.

        A clique contact of size *k* contributes one count to each of
        its k·(k−1)/2 pairs.
        """
        counts: Counter[Tuple[NodeId, NodeId]] = Counter()
        for contact in self._contacts:
            for pair in contact.pairs():
                counts[pair] += 1
        return dict(counts)

    def pair_contact_times(self) -> Dict[Tuple[NodeId, NodeId], List[float]]:
        """Map each unordered node pair to its sorted contact start times."""
        times: Dict[Tuple[NodeId, NodeId], List[float]] = defaultdict(list)
        for contact in self._contacts:
            for pair in contact.pairs():
                times[pair].append(contact.start)
        return dict(times)

    def frequent_pairs(self, max_gap_days: float) -> Set[Tuple[NodeId, NodeId]]:
        """Return pairs that meet at least once every ``max_gap_days``.

        This is the paper's "frequent contacting nodes" relation
        (§VI-A): in the DieselNet trace, nodes with contacts at least
        every three days; in the NUS trace, at least once per day. A
        pair qualifies when the gaps between consecutive meetings — and
        the lead-in/lead-out to the trace boundaries — never exceed
        ``max_gap_days`` days.
        """
        max_gap = max_gap_days * DAY
        horizon = self.duration
        frequent: Set[Tuple[NodeId, NodeId]] = set()
        for pair, times in self.pair_contact_times().items():
            gaps = [times[0] - 0.0]
            gaps.extend(b - a for a, b in zip(times, times[1:]))
            gaps.append(horizon - times[-1])
            if max(gaps) <= max_gap:
                frequent.add(pair)
        return frequent

    def frequent_pairs_by_rate(self, min_contacts_per_day: float) -> Set[Tuple[NodeId, NodeId]]:
        """Return pairs meeting at least ``min_contacts_per_day`` on average.

        This is the rate reading of the paper's frequent-contact rule
        (§VI-A): DieselNet pairs with "contacts at least every three
        days" have rate >= 1/3 per day; NUS pairs with "contacts at
        least once per day" have rate >= 1 per day.
        """
        if min_contacts_per_day <= 0:
            raise TraceError("min_contacts_per_day must be positive")
        days = max(self.duration / DAY, 1e-9)
        frequent: Set[Tuple[NodeId, NodeId]] = set()
        for pair, count in self.pair_contact_counts().items():
            if count / days >= min_contacts_per_day:
                frequent.add(pair)
        return frequent

    def frequent_neighbors(
        self, max_gap_days: float, by_rate: bool = True
    ) -> Dict[NodeId, Set[NodeId]]:
        """Return, per node, its set of frequent contacting nodes.

        With ``by_rate=True`` (default) a pair is frequent when it
        averages at least one contact per ``max_gap_days`` days; with
        ``by_rate=False`` the stricter max-gap criterion of
        :meth:`frequent_pairs` applies.
        """
        if by_rate:
            pairs = self.frequent_pairs_by_rate(1.0 / max_gap_days)
        else:
            pairs = self.frequent_pairs(max_gap_days)
        neighbors: Dict[NodeId, Set[NodeId]] = {node: set() for node in self._nodes}
        for u, v in pairs:
            neighbors[u].add(v)
            neighbors[v].add(u)
        return neighbors

    def stats(self) -> TraceStats:
        """Compute :class:`TraceStats` for this trace."""
        if not self._contacts:
            return TraceStats(0, 0, 0.0, 0.0, 0.0, 0.0, 0.0)
        total_duration = sum(c.duration for c in self._contacts)
        total_size = sum(c.size for c in self._contacts)
        pairwise = sum(1 for c in self._contacts if c.size == 2)
        days = max(self.duration / DAY, 1e-9)
        participations = sum(c.size for c in self._contacts)
        return TraceStats(
            num_nodes=self.num_nodes,
            num_contacts=len(self._contacts),
            duration_days=self.duration / DAY,
            mean_contact_duration=total_duration / len(self._contacts),
            mean_clique_size=total_size / len(self._contacts),
            contacts_per_node_per_day=participations / max(self.num_nodes, 1) / days,
            pairwise_fraction=pairwise / len(self._contacts),
        )

    # -- transforms ---------------------------------------------------------------

    def restricted_to(self, nodes: Iterable[NodeId]) -> "ContactTrace":
        """Return a new trace keeping only contacts fully inside ``nodes``.

        Contacts partially inside are shrunk to the intersection and
        dropped if fewer than two members remain.
        """
        keep = set(nodes)
        contacts: List[Contact] = []
        for contact in self._contacts:
            members = frozenset(m for m in contact.members if m in keep)
            if len(members) >= 2:
                contacts.append(Contact(contact.start, contact.end, members))
        return ContactTrace(contacts, name=f"{self.name}|restricted")

    def truncated(self, end_time: float) -> "ContactTrace":
        """Return a new trace with contacts starting before ``end_time``."""
        contacts = [c for c in self._contacts if c.start < end_time]
        return ContactTrace(contacts, name=f"{self.name}|<{end_time:.0f}s")


def merge_traces(traces: Sequence[ContactTrace], name: str = "merged") -> ContactTrace:
    """Merge several traces into one time-sorted trace."""
    contacts: List[Contact] = []
    for trace in traces:
        contacts.extend(trace)
    return ContactTrace(contacts, name=name)
