"""Synthetic UMassDieselNet-like bus trace generator.

The real UMassDieselNet trace (Burgess et al., INFOCOM'06) records
pair-wise radio contacts between ~40 buses running fixed routes around
Amherst, MA. The raw trace is not redistributable here, so this module
synthesizes traces with the structural properties the paper's protocols
depend on:

* **pair-wise contacts only** — the paper relies on this ("the
  UMassDieselNet trace only contains pair-wise contacts", §VI-A);
* **route locality** — buses assigned to the same route meet far more
  often than buses on different routes, producing both *frequent
  contacting* pairs (meet at least every 3 days) and rare pairs;
* **working-day structure** — buses only meet during service hours;
* **short contact durations** — most bus meetings last tens of seconds.

Meetings per pair are a Poisson process over the service window whose
rate depends on how the pair's routes relate (same route, intersecting
routes via shared hubs, or disjoint).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence

from repro.traces.base import Contact, ContactTrace
from repro.types import DAY, HOUR, NodeId


@dataclass(frozen=True)
class DieselNetConfig:
    """Parameters of the synthetic DieselNet generator.

    The defaults approximate the published UMassDieselNet statistics at
    a scale that keeps full parameter sweeps fast.
    """

    num_buses: int = 40
    num_routes: int = 8
    num_days: int = 20
    #: Expected meetings/day for a pair of buses on the same route.
    same_route_meetings_per_day: float = 2.5
    #: Expected meetings/day for buses whose routes share a hub.
    hub_route_meetings_per_day: float = 0.6
    #: Expected meetings/day for unrelated buses.
    other_meetings_per_day: float = 0.08
    #: Fraction of route pairs that share a transfer hub.
    hub_fraction: float = 0.3
    #: Daily service window (buses run 06:00–22:00 by default).
    service_start_hour: float = 6.0
    service_end_hour: float = 22.0
    #: Contact durations are exponential with this mean (seconds).
    mean_contact_duration: float = 45.0
    min_contact_duration: float = 5.0
    max_contact_duration: float = 600.0

    def __post_init__(self) -> None:
        if self.num_buses < 2:
            raise ValueError("need at least two buses")
        if self.num_routes < 1:
            raise ValueError("need at least one route")
        if self.num_days < 1:
            raise ValueError("need at least one day")
        if not 0.0 <= self.hub_fraction <= 1.0:
            raise ValueError("hub_fraction must be in [0, 1]")
        if self.service_end_hour <= self.service_start_hour:
            raise ValueError("service window must be non-empty")

    @property
    def service_window(self) -> float:
        """Length of the daily service window in seconds."""
        return (self.service_end_hour - self.service_start_hour) * HOUR


def _route_assignment(config: DieselNetConfig, rng: random.Random) -> List[int]:
    """Assign each bus a route id, round-robin then shuffled."""
    routes = [bus % config.num_routes for bus in range(config.num_buses)]
    rng.shuffle(routes)
    return routes


def _hub_pairs(config: DieselNetConfig, rng: random.Random) -> set[frozenset[int]]:
    """Pick the unordered route pairs that share a transfer hub."""
    pairs = [
        frozenset((a, b))
        for a in range(config.num_routes)
        for b in range(a + 1, config.num_routes)
    ]
    k = round(config.hub_fraction * len(pairs))
    return set(rng.sample(pairs, k)) if k else set()


def _pair_rate(
    route_u: int,
    route_v: int,
    hubs: set[frozenset[int]],
    config: DieselNetConfig,
) -> float:
    """Expected meetings/day for a pair of buses given their routes."""
    if route_u == route_v:
        return config.same_route_meetings_per_day
    if frozenset((route_u, route_v)) in hubs:
        return config.hub_route_meetings_per_day
    return config.other_meetings_per_day


def generate_dieselnet_trace(
    config: DieselNetConfig | None = None,
    seed: int = 0,
) -> ContactTrace:
    """Generate a synthetic DieselNet-style pair-wise contact trace.

    Parameters
    ----------
    config:
        Generator parameters; defaults approximate the real trace.
    seed:
        Seed for the private RNG; equal seeds give identical traces.
    """
    config = config or DieselNetConfig()
    rng = random.Random(seed)
    routes = _route_assignment(config, rng)
    hubs = _hub_pairs(config, rng)

    window = config.service_window
    contacts: List[Contact] = []
    for u in range(config.num_buses):
        for v in range(u + 1, config.num_buses):
            rate = _pair_rate(routes[u], routes[v], hubs, config)
            for day in range(config.num_days):
                meetings = _poisson(rng, rate)
                for __ in range(meetings):
                    offset = rng.uniform(0.0, window)
                    start = day * DAY + config.service_start_hour * HOUR + offset
                    duration = _clamped_exponential(
                        rng,
                        config.mean_contact_duration,
                        config.min_contact_duration,
                        config.max_contact_duration,
                    )
                    contacts.append(
                        Contact(start, start + duration, frozenset((NodeId(u), NodeId(v))))
                    )
    return ContactTrace(contacts, name=f"dieselnet(seed={seed})")


def _poisson(rng: random.Random, lam: float) -> int:
    """Sample a Poisson variate with mean ``lam`` (Knuth's method)."""
    if lam <= 0.0:
        return 0
    # Knuth's multiplication method is fine for the small rates we use.
    import math

    threshold = math.exp(-lam)
    k = 0
    p = 1.0
    while True:
        p *= rng.random()
        if p <= threshold:
            return k
        k += 1


def _clamped_exponential(
    rng: random.Random, mean: float, lo: float, hi: float
) -> float:
    """Sample an exponential variate with ``mean``, clamped to [lo, hi]."""
    return min(max(rng.expovariate(1.0 / mean), lo), hi)


def route_of_buses(config: DieselNetConfig, seed: int = 0) -> Sequence[int]:
    """Expose the deterministic route assignment for a given seed.

    Useful in tests and examples to reason about which bus pairs are
    expected to be frequent contacts.
    """
    rng = random.Random(seed)
    return _route_assignment(config, rng)
