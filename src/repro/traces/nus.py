"""Synthetic NUS student contact trace generator.

The NUS student trace (Srinivasan et al., MobiCom'06) is itself a
synthetic trace derived from National University of Singapore class
schedules: two students are in contact if and only if they sit in the
same classroom session. This module rebuilds that construction:

* a population of students enrolls in a fixed number of courses each;
* every course holds weekly sessions in a schedule grid (hour slots on
  weekdays);
* each session produces **one clique contact** whose members are the
  enrolled students who attend (i.i.d. Bernoulli with the *attendance
  rate* — the knob swept in the paper's Figure 3(f)).

The resulting trace has the two properties the paper leans on: large
communication cliques and a strongly periodic (daily/weekly) contact
pattern, which makes classmates *frequent contacting nodes* (at least
one contact per day, §VI-A).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.traces.base import Contact, ContactTrace
from repro.types import DAY, HOUR, NodeId


@dataclass(frozen=True)
class NUSConfig:
    """Parameters of the synthetic NUS student-trace generator."""

    num_students: int = 120
    num_courses: int = 24
    courses_per_student: int = 4
    #: Weekly sessions held by each course.
    sessions_per_course_per_week: int = 3
    #: Simulated weekdays; weekends have no classes.
    num_days: int = 20
    #: Probability an enrolled student attends a given session.
    attendance_rate: float = 0.8
    #: Class sessions start on the hour between these bounds.
    first_slot_hour: int = 8
    last_slot_hour: int = 18
    #: Class length in seconds.
    session_duration: float = 1.5 * HOUR
    #: Days per "week" of the schedule grid (5 teaching days).
    teaching_days_per_week: int = 5

    def __post_init__(self) -> None:
        if self.num_students < 2:
            raise ValueError("need at least two students")
        if self.courses_per_student > self.num_courses:
            raise ValueError("courses_per_student exceeds num_courses")
        if not 0.0 <= self.attendance_rate <= 1.0:
            raise ValueError("attendance_rate must be in [0, 1]")
        if self.last_slot_hour <= self.first_slot_hour:
            raise ValueError("empty teaching window")


@dataclass(frozen=True)
class CourseSchedule:
    """A course with its roster and weekly time slots."""

    course_id: int
    roster: Tuple[NodeId, ...]
    #: (weekday index, start hour) pairs within the teaching week.
    slots: Tuple[Tuple[int, int], ...] = field(default=())


def build_schedules(config: NUSConfig, rng: random.Random) -> List[CourseSchedule]:
    """Construct course rosters and weekly slots deterministically.

    Students pick ``courses_per_student`` distinct courses uniformly at
    random; each course picks weekly ``(weekday, hour)`` slots without
    replacement from the teaching grid.
    """
    rosters: Dict[int, List[NodeId]] = {c: [] for c in range(config.num_courses)}
    for student in range(config.num_students):
        chosen = rng.sample(range(config.num_courses), config.courses_per_student)
        for course in chosen:
            rosters[course].append(NodeId(student))

    grid = [
        (weekday, hour)
        for weekday in range(config.teaching_days_per_week)
        for hour in range(config.first_slot_hour, config.last_slot_hour)
    ]
    schedules: List[CourseSchedule] = []
    for course in range(config.num_courses):
        slots = tuple(sorted(rng.sample(grid, config.sessions_per_course_per_week)))
        schedules.append(
            CourseSchedule(
                course_id=course,
                roster=tuple(sorted(rosters[course])),
                slots=slots,
            )
        )
    return schedules


def generate_nus_trace(config: NUSConfig | None = None, seed: int = 0) -> ContactTrace:
    """Generate a synthetic NUS-style classroom-clique contact trace.

    Each held session with at least two attendees becomes one
    :class:`~repro.traces.base.Contact` covering the whole class.
    """
    config = config or NUSConfig()
    rng = random.Random(seed)
    schedules = build_schedules(config, rng)

    contacts: List[Contact] = []
    for day in range(config.num_days):
        weekday = day % 7
        if weekday >= config.teaching_days_per_week:
            continue  # weekend
        for course in schedules:
            for slot_weekday, hour in course.slots:
                if slot_weekday != weekday:
                    continue
                attendees = frozenset(
                    student
                    for student in course.roster
                    if rng.random() < config.attendance_rate
                )
                if len(attendees) < 2:
                    continue
                start = day * DAY + hour * HOUR
                contacts.append(Contact(start, start + config.session_duration, attendees))
    return ContactTrace(contacts, name=f"nus(seed={seed},att={config.attendance_rate})")


def classmates(schedules: Sequence[CourseSchedule]) -> Dict[NodeId, set[NodeId]]:
    """Return, per student, the set of students sharing any course."""
    mates: Dict[NodeId, set[NodeId]] = {}
    for course in schedules:
        for student in course.roster:
            mates.setdefault(student, set()).update(
                other for other in course.roster if other != student
            )
    return mates
