"""Deterministic fault injection for the simulated world.

The paper evaluates MBT on clean contact traces with lossless
transmissions, yet its whole premise is opportunistic networking over
flaky radios and unreliable peers. This module adds the missing
failure regimes as a *seeded, declarative* plan:

* **transmission loss** — each receiver of a broadcast/unicast
  independently misses the frame with probability ``loss_rate``;
* **piece corruption** — a piece transmission is corrupted in flight
  with probability ``corruption_rate``; every receiver then rejects it
  through the existing checksum-verification path
  (:meth:`~repro.core.node.NodeState.accept_piece` /
  ``NodeStats.checksum_rejections``) and the piece is never stored;
* **contact flapping** — a contact is lost entirely
  (``contact_drop_rate``) or truncated to a random fraction of its
  duration (``contact_truncation_rate``), which also scales its
  transmission budgets;
* **node churn** — per node and day, with probability ``churn_rate``
  the node crashes at a uniform instant, stays down for
  ``churn_downtime_days`` (contacts and Internet syncs skip it) and is
  then reborn, optionally with its learned state wiped
  (``wipe_on_crash``).

Determinism
-----------
A :class:`FaultPlan` is a frozen, picklable dataclass and therefore
part of a :class:`~repro.exec.RunSpec`'s identity. The
:class:`FaultInjector` derives one independent ``random.Random``
stream per fault category from ``(plan.seed, run_seed)`` via SHA-256,
and every draw happens at a deterministic point of the (itself
deterministic) event loop — so a fault-injected run is exactly
reproducible for a fixed seed, independent of worker process or job
count.

The all-zero plan (:meth:`FaultPlan.is_clean`) is the default and is
never instantiated into an injector, so the clean path stays bitwise
identical to fault-free builds (no extra counters, no RNG draws).
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.traces.base import Contact
from repro.types import DAY, NodeId

__all__ = ["FaultPlan", "FaultInjector", "corrupt_payload", "FAULT_COUNTER_NAMES"]

#: Truncated contacts keep a uniform fraction of their duration in this
#: range (never zero — the radio came up at least briefly).
_TRUNCATION_KEEP = (0.1, 0.9)

#: Counter names an active injector reports (surfaced by the runner as
#: ``faults.<name>`` in ``SimulationResult.counters``).
FAULT_COUNTER_NAMES: Tuple[str, ...] = (
    "contacts_dropped",
    "contacts_truncated",
    "contacts_skipped_down",
    "metadata_losses",
    "piece_losses",
    "pieces_corrupted",
    "corrupt_receipts",
    "crashes",
    "rebirths",
)


def _derive(*components: object) -> int:
    """Stable 64-bit stream seed from arbitrary components (SHA-256)."""
    digest = hashlib.sha256(repr(components).encode()).digest()
    return int.from_bytes(digest[:8], "big")


def corrupt_payload(payload: bytes) -> bytes:
    """Flip the last byte of a payload (guaranteed checksum mismatch)."""
    if not payload:
        return b"\xff"
    return payload[:-1] + bytes([payload[-1] ^ 0xFF])


@dataclass(frozen=True)
class FaultPlan:
    """Declarative, picklable description of the faults to inject.

    All rates are probabilities in ``[0, 1]``; the default plan is
    all-zero (no faults, no behavior change). The plan travels inside
    :class:`~repro.sim.runner.SimulationConfig`, so it is part of a
    run's identity for caching, checkpointing and reproducibility.
    """

    #: Per-receiver probability that a transmission is lost.
    loss_rate: float = 0.0
    #: Per-piece-transmission probability of in-flight corruption.
    corruption_rate: float = 0.0
    #: Probability that a trace contact never happens (radio flap).
    contact_drop_rate: float = 0.0
    #: Probability that a contact is truncated to a random fraction.
    contact_truncation_rate: float = 0.0
    #: Per-node-per-day crash probability.
    churn_rate: float = 0.0
    #: Downtime after a crash, in days.
    churn_downtime_days: float = 0.5
    #: Whether a crash wipes the node's learned state (stores, heard
    #: requests, neighbor table); own queries survive the reboot.
    wipe_on_crash: bool = True
    #: Fault-stream seed component (combined with the run seed).
    seed: int = 0

    def __post_init__(self) -> None:
        for name in (
            "loss_rate",
            "corruption_rate",
            "contact_drop_rate",
            "contact_truncation_rate",
            "churn_rate",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.churn_downtime_days <= 0:
            raise ValueError("churn_downtime_days must be positive")

    def is_clean(self) -> bool:
        """True when no fault can ever fire (the bitwise-clean path)."""
        return (
            self.loss_rate == 0.0
            and self.corruption_rate == 0.0
            and self.contact_drop_rate == 0.0
            and self.contact_truncation_rate == 0.0
            and self.churn_rate == 0.0
        )


class FaultInjector:
    """Executes a :class:`FaultPlan` with per-category RNG streams.

    One injector serves one simulation run. Construction is cheap;
    every decision is drawn lazily at the (deterministic) moment the
    simulated world asks for it. Counters accumulate per category and
    are merged into ``SimulationResult.extra`` as ``faults.*`` keys by
    the runner.
    """

    def __init__(self, plan: FaultPlan, run_seed: int) -> None:
        self.plan = plan
        self._rng_contact = random.Random(_derive("faults", plan.seed, run_seed, "contact"))
        self._rng_loss = random.Random(_derive("faults", plan.seed, run_seed, "loss"))
        self._rng_corrupt = random.Random(_derive("faults", plan.seed, run_seed, "corrupt"))
        self._rng_churn = random.Random(_derive("faults", plan.seed, run_seed, "churn"))
        self.counters: Dict[str, int] = {name: 0 for name in FAULT_COUNTER_NAMES}

    def count(self, name: str, increment: int = 1) -> None:
        """Bump a fault counter (engine callback for receiver-side events)."""
        self.counters[name] = self.counters.get(name, 0) + increment

    # -- contact-level faults -----------------------------------------------------

    def transform_contact(self, contact: Contact) -> Tuple[Optional[Contact], float]:
        """Apply flapping to one contact.

        Returns ``(None, 0.0)`` when the contact is dropped, otherwise
        the (possibly truncated) contact and the kept duration
        fraction; fixed per-contact budgets are scaled by that fraction
        (duration-derived budgets shrink via the shorter contact
        itself).
        """
        plan = self.plan
        if plan.contact_drop_rate > 0 and self._rng_contact.random() < plan.contact_drop_rate:
            self.count("contacts_dropped")
            return None, 0.0
        if (
            plan.contact_truncation_rate > 0
            and self._rng_contact.random() < plan.contact_truncation_rate
        ):
            keep = self._rng_contact.uniform(*_TRUNCATION_KEEP)
            self.count("contacts_truncated")
            truncated = Contact(
                contact.start,
                contact.start + contact.duration * keep,
                contact.members,
            )
            return truncated, keep
        return contact, 1.0

    # -- transmission-level faults ------------------------------------------------

    def deliverable(
        self, receivers: FrozenSet[NodeId], kind: str
    ) -> FrozenSet[NodeId]:
        """Subset of ``receivers`` that actually hear a transmission.

        ``kind`` is ``"metadata"`` or ``"piece"`` (for the loss
        counters). Receivers are visited in sorted order so the RNG
        stream is independent of set iteration order.
        """
        if self.plan.loss_rate <= 0 or not receivers:
            return receivers
        kept = [
            r for r in sorted(receivers) if self._rng_loss.random() >= self.plan.loss_rate
        ]
        lost = len(receivers) - len(kept)
        if lost:
            self.count(f"{kind}_losses", lost)
        return frozenset(kept)

    def corrupt_transmission(self) -> bool:
        """Whether the next piece transmission is corrupted in flight."""
        if self.plan.corruption_rate <= 0:
            return False
        corrupted = self._rng_corrupt.random() < self.plan.corruption_rate
        if corrupted:
            self.count("pieces_corrupted")
        return corrupted

    # -- churn --------------------------------------------------------------------

    def churn_schedule(
        self, nodes: Sequence[NodeId], num_days: int
    ) -> List[Tuple[NodeId, float, float]]:
        """Precompute ``(node, crash_time, rebirth_time)`` churn events.

        For each day and node (sorted, so draws are order-stable) the
        node crashes with probability ``churn_rate`` at a uniform
        instant of that day. Crashes that would land while the node is
        already down are skipped. The schedule is returned sorted by
        crash time.
        """
        plan = self.plan
        if plan.churn_rate <= 0:
            return []
        downtime = plan.churn_downtime_days * DAY
        schedule: List[Tuple[NodeId, float, float]] = []
        down_until: Dict[NodeId, float] = {}
        for day in range(num_days):
            for node in sorted(nodes):
                if self._rng_churn.random() >= plan.churn_rate:
                    continue
                at = day * DAY + self._rng_churn.random() * DAY
                if at < down_until.get(node, -1.0):
                    continue
                schedule.append((node, at, at + downtime))
                down_until[node] = at + downtime
        schedule.sort(key=lambda entry: (entry[1], entry[0]))
        return schedule
