"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``run``        one simulation on a generated trace, printed as a table
``sweep``      figure sweeps through the parallel execution kernel
``figures``    regenerate paper figure panels (same engine as the benchmarks)
``trace``      generate a trace, print its statistics, optionally save it
``stats``      statistics of a saved trace file
``capacity``   the §V broadcast-vs-pair-wise capacity table
``lint``       detlint: AST determinism & invariant linter

Examples
--------
::

    python -m repro run --trace dieselnet --access 0.3 --files-per-day 40
    python -m repro run --trace nus --counters        # instrumentation dump
    python -m repro run --detcheck --protocol mbt     # sanitized double-run
    python -m repro lint src/repro --format github    # CI line annotations
    python -m repro lint --list-rules
    python -m repro sweep fig3a --jobs 4              # 4 worker processes
    python -m repro sweep --all --jobs 4 --format csv
    python -m repro figures fig3a --scale fast
    python -m repro --trace-cache ~/.cache/repro sweep fig3a --jobs 4
    python -m repro trace --kind nus --seed 7 --out campus.trace
    python -m repro stats campus.trace
    python -m repro capacity --max-n 16
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional, Sequence

from repro.analysis.capacity import capacity_table
from repro.core.credits import CREDIT_POLICIES
from repro.core.mbt import ProtocolVariant
from repro.core.strategies import AdversaryPlan, parse_mix
from repro.exec import TRACE_CACHE_ENV, TraceSpec, build_trace
from repro.experiments import FIGURES
from repro.faults import FaultPlan
from repro.experiments.workloads import dieselnet_trace, nus_trace
from repro.sim.runner import Simulation, SimulationConfig
from repro.traces.base import ContactTrace
from repro.traces.io import read_trace, write_trace
from repro.traces.mobility import (
    CommunityConfig,
    RandomWaypointConfig,
    generate_community_trace,
    generate_random_waypoint_trace,
)

TRACE_KINDS = ("dieselnet", "nus", "rwp", "community")


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _trace_spec(kind: str, seed: int, scale: str = "fast") -> TraceSpec:
    if kind == "dieselnet":
        return TraceSpec.of(dieselnet_trace, scale, seed)
    if kind == "nus":
        return TraceSpec.of(nus_trace, scale, seed)
    if kind == "rwp":
        return TraceSpec.of(
            generate_random_waypoint_trace, RandomWaypointConfig(), seed
        )
    if kind == "community":
        return TraceSpec.of(generate_community_trace, CommunityConfig(), seed)
    raise ValueError(f"unknown trace kind {kind!r}")


def _build_trace(kind: str, seed: int, scale: str = "fast") -> ContactTrace:
    # Routed through the kernel so --trace-cache / REPRO_TRACE_CACHE
    # serves CLI builds from the same disk artifacts as sweep workers.
    return build_trace(_trace_spec(kind, seed, scale))


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.detlint import sanitizer

    detcheck = args.detcheck or sanitizer.detcheck_enabled()
    trace = _build_trace(args.trace, args.seed, args.scale)
    if not args.json:
        print(f"trace: {trace.stats().describe()}")
        if detcheck:
            print("detcheck: sanitized double-run (fingerprint cross-check on)")
    config = SimulationConfig(
        internet_access_fraction=args.access,
        files_per_day=args.files_per_day,
        ttl_days=args.ttl,
        metadata_per_contact=args.metadata_per_contact,
        files_per_contact=args.files_per_contact,
        tit_for_tat=args.tit_for_tat,
        selfish_fraction=args.selfish,
        broadcast=not args.pairwise,
        frequent_contact_max_gap_days=1.0 if args.trace == "nus" else 3.0,
        faults=FaultPlan(
            loss_rate=args.loss_rate,
            corruption_rate=args.corruption_rate,
            contact_drop_rate=args.contact_drop_rate,
            churn_rate=args.churn_rate,
            seed=args.fault_seed,
        ),
        adversaries=AdversaryPlan(
            fraction=args.adversary_fraction,
            mix=parse_mix(args.strategy_mix),
            seed=args.adversary_seed,
        ),
        credit_policy=args.credit_policy,
        profile=args.profile,
        core=args.core,
        catalog_shards=args.catalog_shards,
        hello_blooms=args.hello_blooms,
        bloom_fpr=args.bloom_fpr,
        seed=args.seed,
    )
    variants = (
        list(ProtocolVariant)
        if args.protocol == "all"
        else [ProtocolVariant(args.protocol)]
    )
    def run_one(cfg: SimulationConfig):
        if detcheck:
            return sanitizer.checked_run(trace, cfg)
        return Simulation(trace, cfg).run()

    if args.json:
        import json

        payload = {
            variant.value: run_one(config.with_variant(variant)).to_dict()
            for variant in variants
        }
        print(json.dumps(payload, indent=2))
        return 0
    print(f"{'protocol':>8}{'metadata':>10}{'file':>8}{'queries':>9}")
    results = {}
    for variant in variants:
        result = run_one(config.with_variant(variant))
        results[variant.value] = result
        print(
            f"{variant.value:>8}{result.metadata_delivery_ratio:>10.3f}"
            f"{result.file_delivery_ratio:>8.3f}{result.queries_generated:>9}"
        )
        if args.core == "array":
            print(f"         {_format_sched_report(result)}")
        if args.catalog_shards > 1 or args.hello_blooms:
            print(f"         {_format_catalog_report(result)}")
    if args.adversary_fraction > 0.0:
        for name, result in results.items():
            print(f"\n-- {name} adversary report --")
            print(_format_adversary_report(result))
    if args.counters or args.profile:
        from repro.exec import trace_perf_counters
        from repro.sim.metrics import format_counters

        for name, result in results.items():
            print(f"\n-- {name} instrumentation counters --")
            print(format_counters(result.counters))
        print("\n-- trace pipeline counters (process-local) --")
        print(format_counters(trace_perf_counters()))
    return 0


def _format_sched_report(result) -> str:
    """One-line vectorized-vs-fallback report for ``--core array``.

    Reads the ``perf.sched.*`` counters so a coherence fallback (the
    array mirror desynced and the object loops ran instead) is visible
    at a glance rather than silently masquerading as a perf regression.
    """
    extra = result.extra

    def n(key: str) -> int:
        return int(extra.get(f"perf.sched.{key}", 0))

    meta_vec, meta_obj = n("meta_vectorized"), n("meta_object")
    piece_vec, piece_obj = n("piece_vectorized"), n("piece_object")
    fallbacks = n("meta_builder_fallback") + n("piece_builder_fallback")
    line = (
        f"sched: metadata {meta_vec} vectorized / {meta_obj} object, "
        f"pieces {piece_vec} vectorized / {piece_obj} object"
    )
    if fallbacks:
        line += f", {fallbacks} coherence fallbacks"
    return line


def _format_catalog_report(result) -> str:
    """One-line catalog/bloom activity report (``perf.catalog.*``).

    The sharded-vs-flat and screened-vs-open paths are observably
    identical (sharding) or intentionally lossy (bloom false
    positives), so this line — not the results table — is where their
    activity shows up.
    """
    extra = result.extra

    def n(key: str) -> int:
        return int(extra.get(f"perf.catalog.{key}", 0))

    line = (
        f"catalog: {n('shard_lookups')} shard lookups "
        f"({n('route_hops')} hops), {n('heap_expiries')} heap expiries, "
        f"{n('ranked_rebuilds')} ranked rebuilds"
    )
    screens = n("bloom_screens")
    if screens:
        line += (
            f"; blooms: {screens} screens, {n('bloom_hits')} hits, "
            f"{n('bloom_false_positives')} false positives"
        )
    return line


def _format_adversary_report(result) -> str:
    """Adversary section of ``repro run``: census, damage, honest view."""
    counters = result.counters
    extra = result.extra
    census = {
        key[len("adversary.nodes_"):]: int(value)
        for key, value in counters.items()
        if key.startswith("adversary.nodes_")
    }
    lines = [
        "adversarial nodes: "
        + (
            ", ".join(f"{name}={count}" for name, count in sorted(census.items()))
            or "none"
        )
    ]
    for key in (
        "adversary.holdings_hidden",
        "adversary.turns_skipped",
        "adversary.rewards_inflated",
        "adversary.fakes_seeded",
        "adversary.fake_metadata_transmissions",
        "adversary.fake_piece_transmissions",
    ):
        if key in counters:
            lines.append(f"{key[len('adversary.'):]:>28}: {int(counters[key])}")
    if "adversary.honest_file_ratio" in extra:
        lines.append(
            "honest-node delivery: "
            f"metadata={extra['adversary.honest_metadata_ratio']:.3f} "
            f"file={extra['adversary.honest_file_ratio']:.3f} "
            f"(over {int(extra['adversary.honest_queries'])} queries)"
        )
    return "\n".join(lines)


def _cmd_figures(args: argparse.Namespace) -> int:
    names = sorted(FIGURES) if args.all else args.panels
    if not names:
        print("name at least one panel or pass --all", file=sys.stderr)
        return 2
    for name in names:
        result = FIGURES[name](
            scale=args.scale, seeds=tuple(args.seeds), jobs=args.jobs
        )
        print(result.format_table())
        print()
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    """Figure sweeps through the kernel, with report-format output."""
    from repro.experiments.report import sweep_to_csv, sweep_to_json, sweep_to_markdown

    names = sorted(FIGURES) if args.all else args.panels
    if not names:
        print("name at least one panel or pass --all", file=sys.stderr)
        return 2
    renderers = {
        "table": lambda r: r.format_table(),
        "csv": sweep_to_csv,
        "markdown": sweep_to_markdown,
        "json": sweep_to_json,
    }
    render = renderers[args.format]
    for name in names:
        result = FIGURES[name](
            scale=args.scale, seeds=tuple(args.seeds), jobs=args.jobs
        )
        print(render(result))
        print()
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    trace = _build_trace(args.kind, args.seed, args.scale)
    print(trace.stats().describe())
    if args.out:
        write_trace(trace, args.out)
        print(f"written to {args.out}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    trace = read_trace(args.path)
    stats = trace.stats()
    print(stats.describe())
    frequent = trace.frequent_pairs_by_rate(1.0 / args.frequent_gap_days)
    print(f"frequent pairs (>=1 contact / {args.frequent_gap_days:g} days): "
          f"{len(frequent)}")
    return 0


def _cmd_capacity(args: argparse.Namespace) -> int:
    print(f"{'n':>4}{'broadcast':>12}{'pairwise':>12}{'gain':>8}")
    for point in capacity_table(range(2, args.max_n + 1)):
        print(
            f"{point.clique_size:>4}{point.broadcast:>12.4f}"
            f"{point.pairwise:>12.4f}{point.gain:>8.1f}"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Cooperative file sharing in hybrid DTNs (ICDCS'11 reproduction)",
    )
    parser.add_argument(
        "--trace-cache",
        metavar="DIR",
        default=None,
        help="persist built traces in DIR and reuse them across runs and "
             f"worker processes (same as setting {TRACE_CACHE_ENV})",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one simulation")
    run.add_argument("--trace", choices=TRACE_KINDS, default="dieselnet")
    run.add_argument("--scale", choices=("fast", "paper"), default="fast")
    run.add_argument("--protocol", default="all",
                     choices=("all", *(v.value for v in ProtocolVariant)))
    run.add_argument("--access", type=float, default=0.3)
    run.add_argument("--files-per-day", type=int, default=40)
    run.add_argument("--ttl", type=float, default=3.0)
    run.add_argument("--metadata-per-contact", type=int, default=3)
    run.add_argument("--files-per-contact", type=int, default=3)
    run.add_argument("--tit-for-tat", action="store_true")
    run.add_argument("--selfish", type=float, default=0.0)
    run.add_argument("--pairwise", action="store_true",
                     help="use the pair-wise baseline medium")
    run.add_argument("--loss-rate", type=float, default=0.0,
                     help="per-receiver transmission loss probability")
    run.add_argument("--corruption-rate", type=float, default=0.0,
                     help="per-transmission piece corruption probability")
    run.add_argument("--contact-drop-rate", type=float, default=0.0,
                     help="probability a trace contact never happens")
    run.add_argument("--churn-rate", type=float, default=0.0,
                     help="per-node-per-day crash probability")
    run.add_argument("--fault-seed", type=int, default=0,
                     help="seed of the fault-injection streams")
    run.add_argument("--adversary-fraction", type=float, default=0.0,
                     help="fraction of nodes assigned an adversarial "
                          "strategy (0 = all honest)")
    run.add_argument("--strategy-mix",
                     default="exploiter,free_rider,polluter,under_reporter",
                     help="comma-separated strategy mix, each entry NAME or "
                          "NAME=WEIGHT (e.g. 'polluter=3,exploiter')")
    run.add_argument("--adversary-seed", type=int, default=0,
                     help="seed of the strategy-assignment stream")
    run.add_argument("--credit-policy", choices=CREDIT_POLICIES,
                     default="plain",
                     help="tit-for-tat credit scheme: the paper's plain "
                          "ledger or the reputation-hardened variant")
    run.add_argument("--core", choices=("object", "array"), default="object",
                     help="contact hot-path implementation: the reference "
                          "object core or the numpy array core (bitwise-"
                          "identical results, not part of the fingerprint)")
    run.add_argument("--catalog-shards", type=int, default=1,
                     help="Internet-side catalog shards: 1 = the paper's "
                          "flat central server, >1 = the XOR-routed DHT "
                          "catalog (identical results, not part of the "
                          "fingerprint)")
    run.add_argument("--hello-blooms", action="store_true",
                     help="attach bloom summaries of held/downloading URIs "
                          "to hellos and screen metadata targets against "
                          "them (changes results: false positives suppress "
                          "some deliveries)")
    run.add_argument("--bloom-fpr", type=float, default=0.01,
                     help="target false-positive rate of the hello bloom "
                          "summaries (accuracy/size knob)")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--json", action="store_true",
                     help="emit results as JSON instead of a table")
    run.add_argument("--counters", action="store_true",
                     help="also print the instrumentation counters")
    run.add_argument("--profile", action="store_true",
                     help="enable wall-clock phase timers (perf.time_us.* "
                          "counters; implies --counters)")
    run.add_argument("--detcheck", action="store_true",
                     help="runtime determinism sanitizer: pin PYTHONHASHSEED,"
                          " guard the global RNG per event, and cross-check "
                          "result fingerprints across two inline runs (same "
                          "as REPRO_DETCHECK=1)")
    run.set_defaults(handler=_cmd_run)

    figures = sub.add_parser("figures", help="regenerate paper figure panels")
    figures.add_argument("panels", nargs="*", choices=[*sorted(FIGURES), []])
    figures.add_argument("--all", action="store_true")
    figures.add_argument("--scale", choices=("fast", "paper"), default="fast")
    figures.add_argument("--seeds", type=int, nargs="+", default=[0])
    figures.add_argument("--jobs", type=_positive_int, default=1,
                         help="worker processes for the sweep grid")
    figures.set_defaults(handler=_cmd_figures)

    sweep = sub.add_parser(
        "sweep",
        help="figure sweeps through the parallel execution kernel",
    )
    sweep.add_argument("panels", nargs="*", choices=[*sorted(FIGURES), []])
    sweep.add_argument("--all", action="store_true")
    sweep.add_argument("--scale", choices=("fast", "paper"), default="fast")
    sweep.add_argument("--seeds", type=int, nargs="+", default=[0])
    sweep.add_argument("--jobs", type=_positive_int, default=1,
                       help="worker processes (1 = serial, same results)")
    sweep.add_argument("--format", choices=("table", "csv", "markdown", "json"),
                       default="table")
    sweep.set_defaults(handler=_cmd_sweep)

    trace = sub.add_parser("trace", help="generate a synthetic trace")
    trace.add_argument("--kind", choices=TRACE_KINDS, default="dieselnet")
    trace.add_argument("--scale", choices=("fast", "paper"), default="fast")
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument("--out", help="write the trace to this path")
    trace.set_defaults(handler=_cmd_trace)

    stats = sub.add_parser("stats", help="statistics of a saved trace")
    stats.add_argument("path")
    stats.add_argument("--frequent-gap-days", type=float, default=3.0)
    stats.set_defaults(handler=_cmd_stats)

    capacity = sub.add_parser("capacity", help="§V capacity table")
    capacity.add_argument("--max-n", type=int, default=16)
    capacity.set_defaults(handler=_cmd_capacity)

    lint = sub.add_parser(
        "lint",
        help=(
            "detlint: AST determinism & contract linter "
            "(DET001-DET005, CON001-CON006 with --contracts)"
        ),
    )
    lint.add_argument("paths", nargs="*",
                      help="files or directories (default: src/repro)")
    lint.add_argument("--format", choices=("text", "github", "json"),
                      default="text",
                      help="finding output format (github = PR annotations)")
    lint.add_argument("--no-scope", action="store_true",
                      help="apply every rule everywhere, ignoring path scopes")
    lint.add_argument("--contracts", action="store_true",
                      help="also enforce the cross-layer contract rules "
                           "(counter/knob registries, import layering, "
                           "seam parity, wire schema)")
    lint.add_argument("--list-rules", action="store_true",
                      help="print the rule reference table and exit")
    lint.add_argument("--quiet", action="store_true",
                      help="suppress the summary line")
    lint.set_defaults(handler=_cmd_lint)

    validate = sub.add_parser(
        "validate", help="run the paper-claims validation checklist"
    )
    validate.add_argument("--scale", choices=("fast", "paper"), default="fast")
    validate.add_argument("--seeds", type=int, nargs="+", default=[0])
    validate.set_defaults(handler=_cmd_validate)

    return parser


def _cmd_lint(args: argparse.Namespace) -> int:
    """Delegate to the detlint driver (kept import-light until used)."""
    from repro.detlint.runner import main as detlint_main

    argv = list(args.paths)
    argv += ["--format", args.format]
    if args.no_scope:
        argv.append("--no-scope")
    if args.contracts:
        argv.append("--contracts")
    if args.list_rules:
        argv.append("--list-rules")
    if args.quiet:
        argv.append("--quiet")
    return detlint_main(argv, prog="repro lint")


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.experiments.validation import format_report, validate_reproduction

    claims = validate_reproduction(scale=args.scale, seeds=tuple(args.seeds))
    print(format_report(claims))
    return 0 if all(c.passed for c in claims) else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.trace_cache:
        # Exported (not just set in-process) so sweep worker processes
        # inherit the cache directory and share the build artifacts.
        os.environ[TRACE_CACHE_ENV] = args.trace_cache
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
