"""Lightweight performance instrumentation for the contact hot path.

Two kinds of signals, with different determinism contracts:

* **Counters** — plain integers (index hits, cache misses, clique-view
  rebuilds). Always collected: they are deterministic functions of the
  simulation inputs, so they survive the serial-vs-parallel and
  checkpoint-resume equality checks and are safe to include in
  :class:`~repro.sim.metrics.SimulationResult` counters.
* **Timers** — monotonic wall-clock phase accumulators. Only collected
  when profiling is explicitly enabled
  (:class:`~repro.sim.runner.SimulationConfig` ``profile=True`` or the
  CLI ``--profile`` flag), because wall-clock values differ between
  runs and would break result-equality invariants. They surface as
  integer microseconds under ``perf.time_us.<phase>``.

A third family lives outside the recorder entirely: the **trace
pipeline counters** under ``perf.trace.*`` (LRU hits/misses/builds from
:func:`repro.exec.trace_perf_counters`, disk-cache outcomes from
:func:`repro.traces.cache.cache_counters`). They are process-local —
cache hits differ between a serial run and its sweep workers — so they
are never folded into :class:`~repro.sim.metrics.SimulationResult` and
only surface through the kernel/CLI diagnostics paths.

Everything lands in the ``perf.*`` counter namespace, which downstream
comparisons (golden results, bench baselines) treat as advisory and
exclude from bitwise-identity checks.
"""

from __future__ import annotations

import time
from typing import Dict

#: Prefix of every instrumentation counter in ``SimulationResult``.
PERF_PREFIX = "perf."


class PerfRecorder:
    """Accumulates ``perf.*`` counters and (optionally) phase timers.

    Designed for hot loops: :meth:`count` is a dict upsert, and the
    timer pair :meth:`start`/:meth:`stop` collapses to near-nothing
    when profiling is off (``start`` returns 0 and ``stop`` returns
    immediately).
    """

    __slots__ = ("profile", "counters", "_timers_ns")

    def __init__(self, profile: bool = False) -> None:
        self.profile = profile
        self.counters: Dict[str, int] = {}
        self._timers_ns: Dict[str, int] = {}

    def count(self, name: str, n: int = 1) -> None:
        """Add ``n`` to the deterministic counter ``name``."""
        counters = self.counters
        counters[name] = counters.get(name, 0) + n

    def start(self) -> int:
        """Begin a timed span; returns an opaque token for :meth:`stop`."""
        if not self.profile:
            return 0
        return time.perf_counter_ns()

    def stop(self, phase: str, token: int) -> None:
        """Close a timed span opened by :meth:`start` under ``phase``."""
        if not token:
            return
        timers = self._timers_ns
        timers[phase] = timers.get(phase, 0) + time.perf_counter_ns() - token

    def merge(self, other: "PerfRecorder") -> None:
        """Fold another recorder's signals into this one."""
        for name, value in other.counters.items():
            self.count(name, value)
        for phase, ns in other._timers_ns.items():
            self._timers_ns[phase] = self._timers_ns.get(phase, 0) + ns

    def as_counters(self) -> Dict[str, int]:
        """All signals in the flat ``perf.*`` namespace.

        Timers are reported as integer microseconds under
        ``perf.time_us.<phase>`` so they fit the int-typed counter
        machinery; they are present only when profiling was enabled.
        """
        out = {PERF_PREFIX + name: value for name, value in self.counters.items()}
        for phase, ns in self._timers_ns.items():
            out[f"{PERF_PREFIX}time_us.{phase}"] = ns // 1000
        return out
