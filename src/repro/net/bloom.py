"""Deterministic pure-python bloom filters for hello-summary exchange.

The hybridised-BitTorrent literature (see PAPERS.md: "Efficient
Indexing of the BitTorrent Distributed Hash Table", and the
``pybloom_live`` idiom in DHT crawlers) replaces exact held-item
listings with constant-size bloom summaries so per-contact metadata
exchange costs O(new items) instead of O(store). This module provides
the summary: a fixed-seed, deterministically sized bloom filter over
URI strings.

Determinism contract
--------------------
Everything about a filter is a pure function of ``(items, capacity,
fpr, seed)``:

* **Sizing** uses the textbook formulas ``m = -n ln p / (ln 2)^2`` and
  ``k = round(m/n ln 2)``, evaluated once from the declared capacity —
  never from wall-clock state or dict iteration order.
* **Hashing** is double hashing over one SHA-256 digest of
  ``seed || item``: the two 64-bit halves ``h1, h2`` generate the probe
  sequence ``(h1 + i*h2) mod m``. No per-process hash randomization is
  involved, so two nodes (or two runs) building a filter over the same
  items produce bit-identical filters.

The false-positive rate ``fpr`` is the documented accuracy knob
(:class:`~repro.sim.runner.SimulationConfig` ``bloom_fpr``): a positive
membership answer may be wrong with probability ≈ ``fpr`` once the
filter holds ``capacity`` items, a negative answer is always right.
"""

from __future__ import annotations

import hashlib
import math
from typing import Iterable, Tuple

#: Default target false-positive rate of hello summaries.
DEFAULT_FPR = 0.01

#: Smallest filter ever allocated (bits); keeps tiny stores honest.
MIN_BITS = 64

#: Hard cap on hash probes per membership test.
MAX_HASHES = 16


def item_hashes(item: str, seed: int) -> Tuple[int, int]:
    """The ``(h1, h2)`` double-hashing pair of ``item`` under ``seed``.

    Independent of any particular filter's size, so a caller testing
    one item against many filters (the per-contact candidate screen)
    hashes once and probes each filter with
    :meth:`BloomFilter.contains_hashes`.
    """
    digest = hashlib.sha256(b"%d|%s" % (seed, item.encode("utf-8"))).digest()
    h1 = int.from_bytes(digest[:8], "big")
    h2 = int.from_bytes(digest[8:16], "big") | 1  # odd: full-period step
    return h1, h2


def bloom_parameters(capacity: int, fpr: float) -> Tuple[int, int]:
    """Deterministic ``(num_bits, num_hashes)`` for a target load.

    ``capacity`` is the number of items the filter is expected to hold
    at the declared ``fpr``; both outputs are pure integer functions of
    the inputs.
    """
    if capacity < 0:
        raise ValueError("capacity must be non-negative")
    if not 0.0 < fpr < 1.0:
        raise ValueError(f"fpr must be in (0, 1), got {fpr!r}")
    n = max(1, capacity)
    bits = int(math.ceil(-n * math.log(fpr) / (math.log(2.0) ** 2)))
    bits = max(MIN_BITS, bits)
    hashes = int(round(bits / n * math.log(2.0)))
    hashes = min(MAX_HASHES, max(1, hashes))
    return bits, hashes


class BloomFilter:
    """A seeded, deterministically sized bloom filter over strings."""

    __slots__ = ("num_bits", "num_hashes", "seed", "_bits", "count")

    def __init__(self, capacity: int, fpr: float = DEFAULT_FPR, seed: int = 0) -> None:
        self.num_bits, self.num_hashes = bloom_parameters(capacity, fpr)
        self.seed = seed
        self._bits = bytearray((self.num_bits + 7) // 8)
        #: Items added so far (adds of duplicates count twice; the
        #: caller controls capacity, the filter only reports load).
        self.count = 0

    @classmethod
    def from_items(
        cls, items: Iterable[str], fpr: float = DEFAULT_FPR, seed: int = 0
    ) -> "BloomFilter":
        """Build a filter sized for exactly these items.

        The iterable is materialized once to size the filter; insertion
        order does not affect the resulting bit pattern (each item sets
        the same bits regardless of when it is added), so callers may
        pass sets without a determinism hazard.
        """
        materialized = list(items)
        bloom = cls(len(materialized), fpr=fpr, seed=seed)
        for item in materialized:
            bloom.add(item)
        return bloom

    def _probes(self, item: str) -> Iterable[int]:
        h1, h2 = item_hashes(item, self.seed)
        m = self.num_bits
        return ((h1 + i * h2) % m for i in range(self.num_hashes))

    def add(self, item: str) -> None:
        """Insert ``item`` (idempotent on the bit pattern)."""
        bits = self._bits
        for index in self._probes(item):
            bits[index >> 3] |= 1 << (index & 7)
        self.count += 1

    def __contains__(self, item: str) -> bool:
        bits = self._bits
        for index in self._probes(item):
            if not bits[index >> 3] & (1 << (index & 7)):
                return False
        return True

    def contains_hashes(self, hashes: Tuple[int, int]) -> bool:
        """Membership test from a precomputed :func:`item_hashes` pair.

        Equivalent to ``item in self`` for the hashed item, without
        re-running SHA-256 — the screen's one-item-many-filters path.
        """
        h1, h2 = hashes
        bits = self._bits
        m = self.num_bits
        for i in range(self.num_hashes):
            index = (h1 + i * h2) % m
            if not bits[index >> 3] & (1 << (index & 7)):
                return False
        return True

    def __len__(self) -> int:
        return self.count

    @property
    def size_bytes(self) -> int:
        """Wire size of the summary (the bit array)."""
        return len(self._bits)

    def fill_ratio(self) -> float:
        """Fraction of bits set — load diagnostic, not part of results."""
        set_bits = sum(bin(byte).count("1") for byte in self._bits)
        return set_bits / self.num_bits if self.num_bits else 0.0

    def to_bytes(self) -> bytes:
        """The raw bit array (for wire transport / tests)."""
        return bytes(self._bits)

    def __repr__(self) -> str:
        return (
            f"BloomFilter(bits={self.num_bits}, hashes={self.num_hashes}, "
            f"seed={self.seed}, count={self.count})"
        )
