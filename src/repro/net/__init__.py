"""Wire messages and transmission-medium models."""

from repro.net.hello import (
    build_hello,
    derive_cliques,
    exchange_hellos,
    full_connectivity,
)
from repro.net.medium import (
    BroadcastMedium,
    ContactBudget,
    PairwiseMedium,
    TransmissionMedium,
    budget_from_duration,
)
from repro.net.messages import (
    HELLO_INTERVAL,
    HelloMessage,
    MetadataMessage,
    PieceMessage,
)

__all__ = [
    "build_hello",
    "derive_cliques",
    "exchange_hellos",
    "full_connectivity",
    "BroadcastMedium",
    "ContactBudget",
    "PairwiseMedium",
    "TransmissionMedium",
    "budget_from_duration",
    "HELLO_INTERVAL",
    "HelloMessage",
    "MetadataMessage",
    "PieceMessage",
]
