"""Wire messages exchanged among DTN nodes.

Paper §III-B: "Messages exchanged among the nodes include: (a) hello
messages, (b) metadata, and (c) file pieces. Nodes send hello messages
at least every second. A hello message includes: (a) node ID, (b) the
IDs of the nodes from which hello messages were received in the past 5
seconds, (c) query strings, and (d) the URIs of the downloading files."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Optional, Tuple

from repro.catalog.files import PIECE_SIZE
from repro.catalog.metadata import Metadata
from repro.net.bloom import BloomFilter
from repro.types import NodeId, Uri

#: Nodes send hello messages at least every second (§III-B).
HELLO_INTERVAL: float = 1.0

#: Hellos advertise neighbors heard within this many seconds (§III-B).
HELLO_NEIGHBOR_WINDOW: float = 5.0

#: Rough wire sizes in bytes, used by bandwidth-derived budgets.
HELLO_BASE_SIZE: int = 64
QUERY_TOKEN_SIZE: int = 16
METADATA_BASE_SIZE: int = 2048


@dataclass(frozen=True)
class HelloMessage:
    """Periodic presence beacon.

    Attributes
    ----------
    sender:
        Node emitting the hello.
    heard:
        Nodes the sender received hellos from in the recent window;
        receivers use this to compute communication cliques.
    query_tokens:
        The sender's standing query strings (token sets).
    downloading:
        URIs of files the sender is currently trying to download.
    sent_at:
        Emission time.
    summary:
        Optional bloom-filter summary of the URIs the sender already
        holds or is downloading (``ProtocolConfig.hello_blooms``).
        Receivers screen metadata candidates against it so per-contact
        exchange scales with *new* items, not with the peer's store;
        a constant-size filter replaces an exact O(store) listing.
    """

    sender: NodeId
    heard: FrozenSet[NodeId]
    query_tokens: Tuple[FrozenSet[str], ...]
    downloading: FrozenSet[Uri]
    sent_at: float
    summary: Optional[BloomFilter] = None

    @property
    def size_bytes(self) -> int:
        """Approximate serialized size."""
        tokens = sum(len(ts) for ts in self.query_tokens)
        summary = 0 if self.summary is None else self.summary.size_bytes
        return (
            HELLO_BASE_SIZE
            + 4 * len(self.heard)
            + QUERY_TOKEN_SIZE * tokens
            + 32 * len(self.downloading)
            + summary
        )


@dataclass(frozen=True)
class MetadataMessage:
    """One metadata record broadcast during the discovery phase."""

    sender: NodeId
    metadata: Metadata
    sent_at: float

    @property
    def size_bytes(self) -> int:
        """Approximate serialized size: base record plus checksums."""
        return METADATA_BASE_SIZE + 20 * len(self.metadata.checksums)


@dataclass(frozen=True)
class PieceMessage:
    """One file piece broadcast during the download phase.

    In MBT-QM the piece carries its file's metadata (``attached``),
    matching prior content-distribution systems where metadata only
    travel with content (§I, §VI-A).
    """

    sender: NodeId
    uri: Uri
    index: int
    payload: bytes
    checksum: str
    sent_at: float
    attached: Metadata | None = field(default=None)

    @property
    def size_bytes(self) -> int:
        """Wire size: a full 256 KB piece (payloads are stand-ins)."""
        attached = 0 if self.attached is None else METADATA_BASE_SIZE
        return PIECE_SIZE + attached
