"""Hello-beacon protocol: presence, queries and clique derivation (§III-B).

Nodes beacon at least once per second; each hello carries the sender's
id, the ids heard in the last five seconds, its query strings and the
URIs it is downloading. From the received hellos every node derives the
symmetric can-hear graph and its communication cliques (§V).

Trace-driven simulations get clique membership for free from the
contact records, so by default the engine trusts them. Setting
``SimulationConfig.derive_cliques_from_hellos`` routes contact
processing through this module instead: hellos are synthesized from
node state, the neighbor graph is rebuilt from them, and the clique
partition is recomputed — the full protocol path, byte-for-byte what a
deployment would run on radio silence + beacons.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Mapping, Optional

from repro.core.node import NodeState
from repro.net.bloom import BloomFilter
from repro.net.messages import HELLO_NEIGHBOR_WINDOW, HelloMessage
from repro.sim.cliques import neighbor_graph_from_hellos, partition_into_cliques
from repro.types import NodeId


def build_hello(
    state: NodeState,
    now: float,
    include_foreign_queries: bool,
    summary: Optional[BloomFilter] = None,
) -> HelloMessage:
    """Synthesize the hello a node would beacon at ``now``.

    ``summary`` attaches the sender's held/downloading bloom filter
    (``ProtocolConfig.hello_blooms``); see
    :meth:`repro.core.node.NodeState.hello_summary`.
    """
    return HelloMessage(
        sender=state.node,
        heard=state.heard_recently(now, HELLO_NEIGHBOR_WINDOW),
        query_tokens=state.query_tokens(now, include_foreign_queries),
        downloading=state.wanted_uris(now),
        sent_at=now,
        summary=summary,
    )


def exchange_hellos(
    states: Mapping[NodeId, NodeState],
    connectivity: Mapping[NodeId, FrozenSet[NodeId]],
    now: float,
    rounds: int = 2,
    include_foreign_queries: bool = False,
    summary_of=None,
) -> List[HelloMessage]:
    """Run ``rounds`` beacon rounds over a connectivity graph.

    Every round, each node beacons and every connected listener updates
    its neighbor table. Two rounds suffice for the ``heard`` sets to
    stabilize (round one populates tables, round two advertises them),
    mirroring the 1 Hz / 5 s-window protocol at contact start.
    Returns the final round's hellos. ``summary_of`` (state -> bloom
    filter, or None) attaches each sender's held/downloading summary
    under ``ProtocolConfig.hello_blooms``.
    """
    if rounds < 1:
        raise ValueError("need at least one beacon round")
    hellos: List[HelloMessage] = []
    for round_index in range(rounds):
        at = now + float(round_index)
        hellos = [
            build_hello(
                state,
                at,
                include_foreign_queries,
                summary=None if summary_of is None else summary_of(state),
            )
            for __, state in sorted(states.items())
        ]
        for hello in hellos:
            for listener in connectivity.get(hello.sender, frozenset()):
                if listener in states:
                    states[listener].neighbor_last_heard[hello.sender] = at
    return hellos


def derive_cliques(
    states: Mapping[NodeId, NodeState],
    connectivity: Mapping[NodeId, FrozenSet[NodeId]],
    now: float,
    summary_of=None,
) -> List[FrozenSet[NodeId]]:
    """Beacon, rebuild the can-hear graph from hellos, partition cliques.

    This is the distributed computation of §V realized centrally: the
    information used (hello ``heard`` sets) is exactly what every
    member receives, so each member could compute the same partition
    locally.
    """
    hellos = exchange_hellos(states, connectivity, now, summary_of=summary_of)
    graph = neighbor_graph_from_hellos(hellos)
    partition = partition_into_cliques(graph)
    return [clique for clique in partition if len(clique) >= 2]


def full_connectivity(members: FrozenSet[NodeId]) -> Dict[NodeId, FrozenSet[NodeId]]:
    """Connectivity map of a trace contact: everyone hears everyone."""
    return {node: members - {node} for node in members}
