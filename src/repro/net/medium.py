"""Transmission-medium models: broadcast vs pair-wise budgets.

The paper's §V argument: in a clique of *n* nodes sharing one wireless
channel of capacity *W*, broadcast-based communication lets one sender
reach the other *n−1* nodes at once, so per-node *received* bandwidth
is ``W·(n−1)/n``. Pair-wise communication delivers each transmission to
exactly one receiver, so per-node bandwidth is ``W/n``. Both medium
models below turn a per-contact transmission budget into a schedule of
(sender, receivers, item) deliveries honoring that difference: the
broadcast medium charges one budget unit per clique-wide delivery, the
pair-wise medium charges one unit per single-receiver delivery.

The paper's simulations use fixed per-contact budgets ("nodes can send
or receive a fixed number of metadata and files", §VI-A);
:func:`budget_from_duration` derives budgets from contact duration and
channel bandwidth for the medium-sensitivity experiments instead.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import FrozenSet

from repro.types import NodeId


@dataclass(frozen=True)
class ContactBudget:
    """Per-contact transmission budgets.

    ``metadata`` and ``pieces`` count *transmissions* (channel uses),
    not receptions: under broadcast one transmission serves the whole
    clique, under pair-wise it serves one receiver.
    """

    metadata: int
    pieces: int

    def __post_init__(self) -> None:
        if self.metadata < 0 or self.pieces < 0:
            raise ValueError("budgets must be non-negative")

    def scaled(self, factor: float) -> "ContactBudget":
        """Budget of a partially lost contact: floor both counts.

        Used by fault injection when a contact is truncated to
        ``factor`` of its duration. ``factor >= 1`` returns ``self``
        unchanged (a truncation never grants extra budget).
        """
        if factor < 0.0:
            raise ValueError(f"scale factor must be non-negative, got {factor}")
        if factor >= 1.0:
            return self
        return ContactBudget(
            metadata=int(self.metadata * factor), pieces=int(self.pieces * factor)
        )


class TransmissionMedium(ABC):
    """How one transmission maps to receivers and budget cost."""

    @abstractmethod
    def receivers(self, sender: NodeId, clique: FrozenSet[NodeId]) -> FrozenSet[NodeId]:
        """Nodes that receive a transmission from ``sender``."""

    @abstractmethod
    def per_node_capacity(self, clique_size: int) -> float:
        """Fraction of channel capacity received per node (§V model)."""

    @property
    @abstractmethod
    def name(self) -> str:
        """Short identifier used in experiment tables."""


class BroadcastMedium(TransmissionMedium):
    """The paper's broadcast medium: every clique member receives."""

    def receivers(self, sender: NodeId, clique: FrozenSet[NodeId]) -> FrozenSet[NodeId]:
        if sender not in clique:
            raise ValueError(f"sender {sender} not in clique {set(clique)}")
        return clique - {sender}

    def per_node_capacity(self, clique_size: int) -> float:
        """(n−1)/n: everyone but the single sender receives."""
        if clique_size < 1:
            raise ValueError("clique size must be >= 1")
        if clique_size == 1:
            return 0.0
        return (clique_size - 1) / clique_size

    @property
    def name(self) -> str:
        return "broadcast"


class PairwiseMedium(TransmissionMedium):
    """Baseline pair-wise medium: one designated receiver.

    ``receivers`` needs a chosen peer; the download scheduler passes it
    via :meth:`receivers_for_peer`. ``receivers`` with a full clique
    returns the lowest-id other node, a deterministic default used by
    simple tests.
    """

    def receivers(self, sender: NodeId, clique: FrozenSet[NodeId]) -> FrozenSet[NodeId]:
        if sender not in clique:
            raise ValueError(f"sender {sender} not in clique {set(clique)}")
        others = sorted(clique - {sender})
        if not others:
            return frozenset()
        return frozenset({others[0]})

    @staticmethod
    def receivers_for_peer(peer: NodeId) -> FrozenSet[NodeId]:
        """Explicit single-receiver set."""
        return frozenset({peer})

    def per_node_capacity(self, clique_size: int) -> float:
        """1/n: the channel is shared and each use serves one receiver."""
        if clique_size < 1:
            raise ValueError("clique size must be >= 1")
        if clique_size == 1:
            return 0.0
        return 1.0 / clique_size

    @property
    def name(self) -> str:
        return "pairwise"


def budget_from_duration(
    duration: float,
    bandwidth_bytes_per_s: float,
    metadata_size: int,
    piece_size: int,
    metadata_share: float = 0.2,
) -> ContactBudget:
    """Derive a :class:`ContactBudget` from contact length and bandwidth.

    The contact's byte volume is split between a discovery phase
    (``metadata_share`` of the time, per §V's "file discovery uses the
    starting period of each connection") and a download phase.
    """
    if duration <= 0 or bandwidth_bytes_per_s <= 0:
        raise ValueError("duration and bandwidth must be positive")
    if not 0.0 <= metadata_share <= 1.0:
        raise ValueError("metadata_share must be in [0, 1]")
    volume = duration * bandwidth_bytes_per_s
    metadata_budget = int(volume * metadata_share // max(metadata_size, 1))
    piece_budget = int(volume * (1.0 - metadata_share) // max(piece_size, 1))
    return ContactBudget(metadata=metadata_budget, pieces=piece_budget)
