"""Programmatic validation of the paper's qualitative claims.

Runs the key sweeps and checks each claim the paper makes about its
evaluation, returning a structured report. This is the library form of
what the benchmark suite asserts; ``examples/validate_reproduction.py``
prints it as a checklist.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.analysis.capacity import (
    broadcast_per_node_capacity,
    pairwise_per_node_capacity,
)
from repro.experiments.figures import fig2a, fig2b, fig2c, fig3a
from repro.experiments.sweep import SweepResult
from repro.experiments.workloads import Scale


@dataclass(frozen=True)
class Claim:
    """One validated statement from the paper."""

    claim_id: str
    description: str
    passed: bool
    detail: str


def _dominates(
    better: Sequence[float], worse: Sequence[float], tolerance: float = 0.06
) -> bool:
    return all(b >= w - tolerance for b, w in zip(better, worse)) and sum(
        better
    ) >= sum(worse)


def _rises(series: Sequence[float], tolerance: float = 0.06) -> bool:
    return series[-1] >= series[0] - tolerance and max(series) >= series[0]


def _falls(series: Sequence[float], tolerance: float = 0.06) -> bool:
    return series[-1] <= series[0] + tolerance and min(series) <= series[0]


def validate_reproduction(
    scale: Scale = "fast", seeds: Sequence[int] = (0,)
) -> List[Claim]:
    """Run the validation suite; one :class:`Claim` per paper statement."""
    claims: List[Claim] = []
    panel_2a = fig2a(scale=scale, seeds=seeds)
    panel_2b = fig2b(scale=scale, seeds=seeds)
    panel_2c = fig2c(scale=scale, seeds=seeds)
    panel_3a = fig3a(scale=scale, seeds=seeds)

    claims.append(_claim_ordering(panel_2a))
    claims.append(_claim_access_trend(panel_2a))
    claims.append(_claim_files_per_day(panel_2b))
    claims.append(_claim_ttl(panel_2c))
    claims.append(_claim_qm_flat(panel_3a))
    claims.append(_claim_discovery_doubles(panel_3a))
    claims.append(_claim_capacity())
    return claims


def _claim_ordering(panel: SweepResult) -> Claim:
    ok = _dominates(panel.file_series("mbt"), panel.file_series("mbt-q")) and (
        _dominates(panel.file_series("mbt-q"), panel.file_series("mbt-qm"))
    )
    return Claim(
        claim_id="ordering",
        description="MBT >= MBT-Q >= MBT-QM on file delivery (Fig. 2(a))",
        passed=ok,
        detail=f"MBT {panel.file_series('mbt')} vs QM {panel.file_series('mbt-qm')}",
    )


def _claim_access_trend(panel: SweepResult) -> Claim:
    ok = all(
        _rises(panel.file_series(p)) for p in ("mbt", "mbt-q")
    ) and all(_rises(panel.metadata_series(p)) for p in ("mbt", "mbt-q"))
    return Claim(
        claim_id="access-trend",
        description="delivery rises with the Internet-access fraction (Fig. 2(a))",
        passed=ok,
        detail=f"MBT file series {panel.file_series('mbt')}",
    )


def _claim_files_per_day(panel: SweepResult) -> Claim:
    ok = all(_falls(panel.file_series(p)) for p in ("mbt", "mbt-q", "mbt-qm"))
    return Claim(
        claim_id="files-per-day",
        description="delivery falls as new files per day grow (Fig. 2(b))",
        passed=ok,
        detail=f"MBT file series {panel.file_series('mbt')}",
    )


def _claim_ttl(panel: SweepResult) -> Claim:
    ok = all(_rises(panel.file_series(p)) for p in ("mbt", "mbt-q", "mbt-qm"))
    return Claim(
        claim_id="ttl",
        description="delivery rises with file TTL (Fig. 2(c))",
        passed=ok,
        detail=f"MBT file series {panel.file_series('mbt')}",
    )


def _claim_qm_flat(panel: SweepResult) -> Claim:
    qm = panel.file_series("mbt-qm")
    mbt = panel.file_series("mbt")
    qm_rise = qm[-1] - qm[0]
    mbt_rise = mbt[-1] - mbt[0]
    ok = qm_rise < mbt_rise / 2
    return Claim(
        claim_id="qm-flat",
        description=(
            "MBT-QM shows no access-fraction increase, lacking discovery "
            "(Fig. 3(a))"
        ),
        passed=ok,
        detail=f"QM rise {qm_rise:.3f} vs MBT rise {mbt_rise:.3f}",
    )


def _claim_discovery_doubles(panel: SweepResult) -> Claim:
    index = len(panel.x_values) - 2  # the ~0.7–0.8 access point
    mbt = panel.file_series("mbt")[index]
    qm = panel.file_series("mbt-qm")[index]
    ok = qm > 0 and mbt >= 1.8 * qm
    return Claim(
        claim_id="discovery-doubles",
        description=(
            "with ~80% access nodes, file delivery at least doubles with "
            "discovery (Fig. 3(a))"
        ),
        passed=ok,
        detail=f"MBT {mbt:.3f} vs MBT-QM {qm:.3f}",
    )


def _claim_capacity() -> Claim:
    sizes = range(2, 20)
    broadcast = [broadcast_per_node_capacity(n) for n in sizes]
    pairwise = [pairwise_per_node_capacity(n) for n in sizes]
    ok = (
        broadcast == sorted(broadcast)
        and pairwise == sorted(pairwise, reverse=True)
        and broadcast[0] == pairwise[0]
    )
    return Claim(
        claim_id="capacity",
        description=(
            "broadcast per-node capacity rises with density, pair-wise "
            "falls (§V)"
        ),
        passed=ok,
        detail=f"broadcast(2..4)={broadcast[:3]}, pairwise(2..4)={pairwise[:3]}",
    )


def format_report(claims: Sequence[Claim]) -> str:
    """Render the checklist as text."""
    lines = ["Reproduction validation report", "=" * 34]
    for claim in claims:
        mark = "PASS" if claim.passed else "FAIL"
        lines.append(f"[{mark}] {claim.claim_id}: {claim.description}")
        lines.append(f"       {claim.detail}")
    passed = sum(1 for c in claims if c.passed)
    lines.append(f"{passed}/{len(claims)} claims reproduced")
    return "\n".join(lines)
