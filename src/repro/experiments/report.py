"""Render sweep results as CSV or Markdown reports.

Used by ``examples/figure_runner.py --csv/--markdown`` and handy for
downstream analysis (the CSV loads directly into pandas/numpy).
"""

from __future__ import annotations

import csv
import io
import json
from typing import Any, Dict, Iterable, List

from repro.experiments.sweep import SweepResult


def sweep_to_csv(result: SweepResult) -> str:
    """One row per x value; two columns (meta, file) per protocol."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    header: List[str] = [result.x_label]
    for protocol in result.protocols:
        header.append(f"{protocol}_metadata")
        header.append(f"{protocol}_file")
    writer.writerow(header)
    for point in result.points:
        row: List[object] = [point.x]
        for protocol in result.protocols:
            meta, file_ratio = point.ratios[protocol]
            row.append(f"{meta:.6f}")
            row.append(f"{file_ratio:.6f}")
        writer.writerow(row)
    return buffer.getvalue()


def sweep_to_markdown(result: SweepResult) -> str:
    """GitHub-flavoured Markdown table of one panel."""
    header = [result.x_label]
    for protocol in result.protocols:
        header.append(f"{protocol} meta")
        header.append(f"{protocol} file")
    lines = [
        f"### {result.name}",
        "",
        "| " + " | ".join(header) + " |",
        "|" + "---|" * len(header),
    ]
    for point in result.points:
        cells = [f"{point.x:g}"]
        for protocol in result.protocols:
            meta, file_ratio = point.ratios[protocol]
            cells.append(f"{meta:.3f}")
            cells.append(f"{file_ratio:.3f}")
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)


def sweep_to_dict(result: SweepResult) -> Dict[str, Any]:
    """Plain-dict form of one panel (JSON-serializable)."""
    return {
        "name": result.name,
        "x_label": result.x_label,
        "x_values": list(result.x_values),
        "protocols": list(result.protocols),
        "points": [
            {
                "x": point.x,
                "ratios": {
                    protocol: {"metadata": meta, "file": file_ratio}
                    for protocol, (meta, file_ratio) in point.ratios.items()
                },
            }
            for point in result.points
        ],
    }


def sweep_to_json(result: SweepResult, indent: int = 2) -> str:
    """JSON text of one panel."""
    return json.dumps(sweep_to_dict(result), indent=indent)


def combined_markdown_report(results: Iterable[SweepResult], title: str) -> str:
    """Concatenate several panels under one heading."""
    parts = [f"# {title}", ""]
    for result in results:
        parts.append(sweep_to_markdown(result))
        parts.append("")
    return "\n".join(parts)
