"""Trace and configuration presets used by the figure sweeps."""

from __future__ import annotations

from dataclasses import replace
from typing import Literal

from repro.sim.runner import SimulationConfig
from repro.traces.base import ContactTrace
from repro.traces.dieselnet import DieselNetConfig, generate_dieselnet_trace
from repro.traces.nus import NUSConfig, generate_nus_trace

Scale = Literal["fast", "paper"]

#: DieselNet generator presets. "paper" approximates the real trace's
#: population; "fast" keeps full sweeps tractable inside pytest.
_DIESELNET = {
    "fast": DieselNetConfig(num_buses=20, num_days=8),
    "paper": DieselNetConfig(num_buses=40, num_days=20),
}

_NUS = {
    "fast": NUSConfig(num_students=60, num_courses=12, num_days=8),
    "paper": NUSConfig(num_students=120, num_courses=24, num_days=20),
}


def dieselnet_trace(scale: Scale = "fast", seed: int = 0) -> ContactTrace:
    """Synthetic UMassDieselNet-style trace at the given scale."""
    return generate_dieselnet_trace(_DIESELNET[scale], seed=seed)


def nus_trace(
    scale: Scale = "fast", seed: int = 0, attendance_rate: float = 0.8
) -> ContactTrace:
    """Synthetic NUS student trace at the given scale."""
    config = replace(_NUS[scale], attendance_rate=attendance_rate)
    return generate_nus_trace(config, seed=seed)


def dieselnet_base_config(seed: int = 0) -> SimulationConfig:
    """Baseline §VI-A parameters on the DieselNet trace.

    Frequent contacts: at least one meeting every three days.
    """
    return SimulationConfig(
        internet_access_fraction=0.3,
        files_per_day=40,
        ttl_days=3.0,
        metadata_per_contact=3,
        files_per_contact=3,
        frequent_contact_max_gap_days=3.0,
        seed=seed,
    )


def nus_base_config(seed: int = 0) -> SimulationConfig:
    """Baseline §VI-A parameters on the NUS trace.

    Frequent contacts: at least one meeting per day.
    """
    return SimulationConfig(
        internet_access_fraction=0.3,
        files_per_day=40,
        ttl_days=3.0,
        metadata_per_contact=3,
        files_per_contact=3,
        frequent_contact_max_gap_days=1.0,
        seed=seed,
    )
