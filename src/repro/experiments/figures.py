"""One function per figure panel of the paper's evaluation (§VI-B).

Figure 2 panels sweep the DieselNet trace, Figure 3 panels the NUS
student trace:

    (a) percentage of Internet-access nodes
    (b) number of new files per day
    (c) file TTL in days
    (d) metadata transmissions per contact
    (e) file transmissions per contact
    (f) attendance rate (NUS only)

Every function accepts a ``scale`` ("fast" for CI-sized runs, "paper"
for full-sized ones), a seed list to average over, and ``jobs`` — the
worker-process count handed to the shared execution kernel
(:mod:`repro.exec`); ``jobs=4`` runs the panel's x × protocol × seed
grid four runs at a time with results identical to serial execution.

Trace factories return :class:`~repro.exec.TraceSpec` values (a dotted
builder path plus arguments) rather than built traces, so specs stay
cheap to pickle and each worker builds any distinct trace exactly once.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Dict, List, Sequence, Tuple

from repro.core.mbt import ProtocolVariant
from repro.core.strategies import AdversaryPlan
from repro.exec import RunSpec, TraceSpec, run_many
from repro.experiments.sweep import SweepPoint, SweepResult, run_sweep
from repro.experiments.workloads import (
    Scale,
    dieselnet_base_config,
    dieselnet_trace,
    nus_base_config,
    nus_trace,
)
from repro.sim.runner import SimulationConfig

#: Paper x-axis ranges (§VI-A).
ACCESS_FRACTIONS = (0.1, 0.3, 0.5, 0.7, 0.9)
FILES_PER_DAY = (10, 25, 40, 70, 100)
TTL_DAYS = (1, 2, 3, 4, 5)
PER_CONTACT_BUDGETS = (1, 2, 4, 7, 10)
ATTENDANCE_RATES = (0.2, 0.4, 0.6, 0.8, 1.0)
#: Robustness sweep (beyond the paper): per-receiver transmission loss.
LOSS_RATES = (0.0, 0.1, 0.2, 0.3, 0.5)
#: Robustness sweep (beyond the paper): fraction of adversarial nodes.
ADVERSARY_FRACTIONS = (0.0, 0.15, 0.3, 0.45)
#: Threat mix of the adversarial panel: dominated by polluters — the
#: verifiable offence the reputation defense can actually neutralize —
#: with exploiters gaming the credit scheme on the side. (Free-riders
#: and under-reporters simply withhold capacity, which no credit
#: scheme can restore; mixing them in only dilutes the comparison.)
FIGROBUST_MIX: Tuple[Tuple[str, float], ...] = (
    ("exploiter", 1.0),
    ("polluter", 3.0),
)


def _sweep_access(config: SimulationConfig, x: float, seed: int) -> SimulationConfig:
    return replace(config, internet_access_fraction=x, seed=seed)


def _sweep_files_per_day(config: SimulationConfig, x: float, seed: int) -> SimulationConfig:
    return replace(config, files_per_day=int(x), seed=seed)


def _sweep_ttl(config: SimulationConfig, x: float, seed: int) -> SimulationConfig:
    return replace(config, ttl_days=float(x), seed=seed)


def _sweep_meta_budget(config: SimulationConfig, x: float, seed: int) -> SimulationConfig:
    return replace(config, metadata_per_contact=int(x), seed=seed)


def _sweep_file_budget(config: SimulationConfig, x: float, seed: int) -> SimulationConfig:
    return replace(config, files_per_contact=int(x), seed=seed)


def _sweep_seed_only(config: SimulationConfig, x: float, seed: int) -> SimulationConfig:
    return replace(config, seed=seed)


def _sweep_loss(config: SimulationConfig, x: float, seed: int) -> SimulationConfig:
    return replace(
        config, faults=replace(config.faults, loss_rate=float(x)), seed=seed
    )


def _dieselnet_spec(scale: Scale) -> Callable[[float, int], TraceSpec]:
    """Spec factory for the DieselNet trace (x-independent)."""
    return lambda x, seed: TraceSpec.of(dieselnet_trace, scale, seed)


def _nus_spec(scale: Scale) -> Callable[[float, int], TraceSpec]:
    """Spec factory for the NUS trace (x-independent)."""
    return lambda x, seed: TraceSpec.of(nus_trace, scale, seed)


# ----------------------------------------------------------------- Figure 2


def fig2a(
    scale: Scale = "fast", seeds: Sequence[int] = (0,), jobs: int = 1
) -> SweepResult:
    """Fig. 2(a): delivery vs % of Internet-access nodes (DieselNet)."""
    return run_sweep(
        name="Fig 2(a) DieselNet — Internet-access fraction",
        x_label="access fraction",
        x_values=ACCESS_FRACTIONS,
        trace_factory=_dieselnet_spec(scale),
        config_factory=_sweep_access,
        base_config=dieselnet_base_config(),
        seeds=seeds,
        jobs=jobs,
    )


def fig2b(
    scale: Scale = "fast", seeds: Sequence[int] = (0,), jobs: int = 1
) -> SweepResult:
    """Fig. 2(b): delivery vs new files per day (DieselNet)."""
    return run_sweep(
        name="Fig 2(b) DieselNet — new files per day",
        x_label="files/day",
        x_values=FILES_PER_DAY,
        trace_factory=_dieselnet_spec(scale),
        config_factory=_sweep_files_per_day,
        base_config=dieselnet_base_config(),
        seeds=seeds,
        jobs=jobs,
    )


def fig2c(
    scale: Scale = "fast", seeds: Sequence[int] = (0,), jobs: int = 1
) -> SweepResult:
    """Fig. 2(c): delivery vs file TTL in days (DieselNet)."""
    return run_sweep(
        name="Fig 2(c) DieselNet — file TTL (days)",
        x_label="TTL (days)",
        x_values=TTL_DAYS,
        trace_factory=_dieselnet_spec(scale),
        config_factory=_sweep_ttl,
        base_config=dieselnet_base_config(),
        seeds=seeds,
        jobs=jobs,
    )


def fig2d(
    scale: Scale = "fast", seeds: Sequence[int] = (0,), jobs: int = 1
) -> SweepResult:
    """Fig. 2(d): delivery vs metadata per contact (DieselNet)."""
    return run_sweep(
        name="Fig 2(d) DieselNet — metadata per contact",
        x_label="metadata/contact",
        x_values=PER_CONTACT_BUDGETS,
        trace_factory=_dieselnet_spec(scale),
        config_factory=_sweep_meta_budget,
        base_config=dieselnet_base_config(),
        seeds=seeds,
        jobs=jobs,
    )


def fig2e(
    scale: Scale = "fast", seeds: Sequence[int] = (0,), jobs: int = 1
) -> SweepResult:
    """Fig. 2(e): delivery vs files per contact (DieselNet)."""
    return run_sweep(
        name="Fig 2(e) DieselNet — files per contact",
        x_label="files/contact",
        x_values=PER_CONTACT_BUDGETS,
        trace_factory=_dieselnet_spec(scale),
        config_factory=_sweep_file_budget,
        base_config=dieselnet_base_config(),
        seeds=seeds,
        jobs=jobs,
    )


# ----------------------------------------------------------------- Figure 3


def fig3a(
    scale: Scale = "fast", seeds: Sequence[int] = (0,), jobs: int = 1
) -> SweepResult:
    """Fig. 3(a): delivery vs % of Internet-access nodes (NUS)."""
    return run_sweep(
        name="Fig 3(a) NUS — Internet-access fraction",
        x_label="access fraction",
        x_values=ACCESS_FRACTIONS,
        trace_factory=_nus_spec(scale),
        config_factory=_sweep_access,
        base_config=nus_base_config(),
        seeds=seeds,
        jobs=jobs,
    )


def fig3b(
    scale: Scale = "fast", seeds: Sequence[int] = (0,), jobs: int = 1
) -> SweepResult:
    """Fig. 3(b): delivery vs new files per day (NUS)."""
    return run_sweep(
        name="Fig 3(b) NUS — new files per day",
        x_label="files/day",
        x_values=FILES_PER_DAY,
        trace_factory=_nus_spec(scale),
        config_factory=_sweep_files_per_day,
        base_config=nus_base_config(),
        seeds=seeds,
        jobs=jobs,
    )


def fig3c(
    scale: Scale = "fast", seeds: Sequence[int] = (0,), jobs: int = 1
) -> SweepResult:
    """Fig. 3(c): delivery vs file TTL in days (NUS)."""
    return run_sweep(
        name="Fig 3(c) NUS — file TTL (days)",
        x_label="TTL (days)",
        x_values=TTL_DAYS,
        trace_factory=_nus_spec(scale),
        config_factory=_sweep_ttl,
        base_config=nus_base_config(),
        seeds=seeds,
        jobs=jobs,
    )


def fig3d(
    scale: Scale = "fast", seeds: Sequence[int] = (0,), jobs: int = 1
) -> SweepResult:
    """Fig. 3(d): delivery vs metadata per contact (NUS)."""
    return run_sweep(
        name="Fig 3(d) NUS — metadata per contact",
        x_label="metadata/contact",
        x_values=PER_CONTACT_BUDGETS,
        trace_factory=_nus_spec(scale),
        config_factory=_sweep_meta_budget,
        base_config=nus_base_config(),
        seeds=seeds,
        jobs=jobs,
    )


def fig3e(
    scale: Scale = "fast", seeds: Sequence[int] = (0,), jobs: int = 1
) -> SweepResult:
    """Fig. 3(e): delivery vs files per contact (NUS)."""
    return run_sweep(
        name="Fig 3(e) NUS — files per contact",
        x_label="files/contact",
        x_values=PER_CONTACT_BUDGETS,
        trace_factory=_nus_spec(scale),
        config_factory=_sweep_file_budget,
        base_config=nus_base_config(),
        seeds=seeds,
        jobs=jobs,
    )


def fig3f(
    scale: Scale = "fast", seeds: Sequence[int] = (0,), jobs: int = 1
) -> SweepResult:
    """Fig. 3(f): delivery vs class attendance rate (NUS).

    This sweep varies the *trace generator*: each x regenerates the NUS
    trace with a different attendance rate.
    """
    return run_sweep(
        name="Fig 3(f) NUS — attendance rate",
        x_label="attendance rate",
        x_values=ATTENDANCE_RATES,
        trace_factory=lambda x, seed: TraceSpec.of(
            nus_trace, scale, seed, attendance_rate=x
        ),
        config_factory=_sweep_seed_only,
        base_config=nus_base_config(),
        seeds=seeds,
        jobs=jobs,
    )


# ----------------------------------------------------------- Robustness


def figloss(
    scale: Scale = "fast", seeds: Sequence[int] = (0,), jobs: int = 1
) -> SweepResult:
    """Robustness panel (beyond the paper): delivery vs loss rate.

    Sweeps the per-receiver transmission-loss probability of
    :class:`~repro.faults.FaultPlan` on the DieselNet trace — how
    gracefully each protocol variant degrades when the radio channel is
    unreliable. The x = 0 column is exactly the clean run.
    """
    return run_sweep(
        name="Robustness DieselNet — transmission loss rate",
        x_label="loss rate",
        x_values=LOSS_RATES,
        trace_factory=_dieselnet_spec(scale),
        config_factory=_sweep_loss,
        base_config=dieselnet_base_config(),
        seeds=seeds,
        jobs=jobs,
    )


def figrobust(
    scale: Scale = "fast", seeds: Sequence[int] = (1,), jobs: int = 1
) -> SweepResult:
    """Robustness panel (beyond the paper): delivery vs adversary fraction.

    Sweeps the fraction of adversarial nodes (:data:`FIGROBUST_MIX`,
    assigned by a seed-frozen :class:`~repro.core.strategies.AdversaryPlan`)
    against four series — protocol variant × credit policy — on the
    DieselNet trace with tit-for-tat and encrypted choking on:

    * ``mbt+tft`` / ``mbt_qm+tft``: the paper's plain §IV-B credits,
      which trust every claim and pay for every novel item. Delivery
      among the *honest* population collapses as the adversary fraction
      grows (polluters tax every contact's budget with evergreen fakes,
      exploiters farm credit with inflated popularity claims).
    * ``mbt+rep`` / ``mbt_qm+rep``: the reputation-hardened ledger
      (:class:`~repro.core.credits.ReputationCreditLedger`): failed
      verifications and over-claims are penalized, low-reputation peers
      are discounted everywhere, and first-hand-rejected URIs stop
      being transmission targets — honest delivery degrades gracefully
      instead.

    The y values are delivery ratios over the honest, non-access
    population (``adversary.honest_*``; at fraction 0 the plan is clean
    and the global ratios are used — the populations coincide). The
    default seed is 1: with ``fast``-scale traces (20 buses) the
    per-fraction adversary count moves in steps of 3, so some single
    seeds draw non-monotone assignments; averaging several seeds
    smooths any of them.
    """
    variants = (ProtocolVariant.MBT, ProtocolVariant.MBT_QM)
    policies = (("tft", "plain"), ("rep", "reputation"))
    series = [
        (f"{variant.value.replace('-', '_')}+{label}", variant, policy)
        for variant in variants
        for label, policy in policies
    ]
    base = dieselnet_base_config()
    specs: List[RunSpec] = []
    for x in ADVERSARY_FRACTIONS:
        for name, variant, policy in series:
            for seed in seeds:
                config = replace(
                    base.with_variant(variant),
                    seed=seed,
                    tit_for_tat=True,
                    encrypted_choking=True,
                    credit_policy=policy,
                    adversaries=AdversaryPlan(fraction=x, mix=FIGROBUST_MIX, seed=1),
                )
                specs.append(
                    RunSpec(
                        trace=TraceSpec.of(dieselnet_trace, scale, seed),
                        config=config,
                        tag=RunSpec.make_tag(x=float(x), series=name, seed=int(seed)),
                    )
                )
    runs = iter(run_many(specs, jobs=jobs))
    points: List[SweepPoint] = []
    for x in ADVERSARY_FRACTIONS:
        cell: Dict[str, Tuple[float, float]] = {}
        for name, __, ___ in series:
            metas, files = [], []
            for __ in seeds:
                result = next(runs).result
                extra = result.extra
                if "adversary.honest_file_ratio" in extra:
                    metas.append(extra["adversary.honest_metadata_ratio"])
                    files.append(extra["adversary.honest_file_ratio"])
                else:
                    metas.append(result.metadata_delivery_ratio)
                    files.append(result.file_delivery_ratio)
            cell[name] = (sum(metas) / len(metas), sum(files) / len(files))
        points.append(SweepPoint(x=float(x), ratios=cell))
    return SweepResult(
        name="Robustness DieselNet — adversary fraction (honest-node delivery)",
        x_label="adversary fraction",
        x_values=tuple(float(x) for x in ADVERSARY_FRACTIONS),
        points=tuple(points),
        protocols=tuple(name for name, __, ___ in series),
    )


#: Registry used by the benchmark suite and the figure-runner example.
FIGURES: Dict[str, Callable[..., SweepResult]] = {
    "fig2a": fig2a,
    "fig2b": fig2b,
    "fig2c": fig2c,
    "fig2d": fig2d,
    "fig2e": fig2e,
    "fig3a": fig3a,
    "fig3b": fig3b,
    "fig3c": fig3c,
    "fig3d": fig3d,
    "fig3e": fig3e,
    "fig3f": fig3f,
    "figloss": figloss,
    "figrobust": figrobust,
}
