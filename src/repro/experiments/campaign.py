"""Multi-seed campaigns: repeat runs and report spread, not just means.

Single-seed sweeps answer "what shape"; campaigns answer "how sure".
:func:`repeat` runs one configuration across seeds and summarizes both
delivery ratios; :func:`compare` runs several named configurations on
the same seeds and reports them side by side, including a crude
separation check (do the one-standard-deviation intervals overlap?).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Sequence, Tuple, Union

from repro.exec import RunSpec, TraceSpec, as_trace_spec, run_many
from repro.sim.metrics import SimulationResult
from repro.sim.runner import SimulationConfig
from repro.traces.base import ContactTrace

#: Builds the trace for a seed (campaigns regenerate per seed so trace
#: randomness is part of the measured spread). May return a built
#: :class:`ContactTrace` or a picklable :class:`~repro.exec.TraceSpec`.
TraceFactory = Callable[[int], Union[ContactTrace, TraceSpec]]


@dataclass(frozen=True)
class Spread:
    """Summary of one scalar across seeds."""

    mean: float
    std: float
    minimum: float
    maximum: float
    count: int

    @classmethod
    def of(cls, values: Sequence[float]) -> "Spread":
        if not values:
            raise ValueError("no values")
        n = len(values)
        mean = sum(values) / n
        variance = sum((v - mean) ** 2 for v in values) / n
        return cls(
            mean=mean,
            std=math.sqrt(variance),
            minimum=min(values),
            maximum=max(values),
            count=n,
        )

    def describe(self) -> str:
        return f"{self.mean:.3f} ± {self.std:.3f} (n={self.count})"

    def interval(self) -> Tuple[float, float]:
        """The mean ± one standard deviation band."""
        return (self.mean - self.std, self.mean + self.std)


@dataclass(frozen=True)
class CampaignResult:
    """Per-configuration spread of both delivery ratios."""

    name: str
    metadata: Spread
    file: Spread
    results: Tuple[SimulationResult, ...]


def campaign_specs(
    name: str,
    trace_factory: TraceFactory,
    config: SimulationConfig,
    seeds: Sequence[int],
) -> List[RunSpec]:
    """Kernel run specs for one configuration across ``seeds``."""
    return [
        RunSpec(
            trace=as_trace_spec(trace_factory(seed)),
            config=replace(config, seed=seed),
            tag=RunSpec.make_tag(campaign=name, seed=int(seed)),
        )
        for seed in seeds
    ]


def _assemble(name: str, results: Sequence[SimulationResult]) -> CampaignResult:
    return CampaignResult(
        name=name,
        metadata=Spread.of([r.metadata_delivery_ratio for r in results]),
        file=Spread.of([r.file_delivery_ratio for r in results]),
        results=tuple(results),
    )


def repeat(
    name: str,
    trace_factory: TraceFactory,
    config: SimulationConfig,
    seeds: Sequence[int],
    jobs: int = 1,
) -> CampaignResult:
    """Run one configuration across ``seeds`` (trace + roles re-seeded).

    ``jobs`` fans the seeds out over worker processes via the shared
    execution kernel; the spread is identical for any job count.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    runs = run_many(campaign_specs(name, trace_factory, config, seeds), jobs=jobs)
    return _assemble(name, [run.result for run in runs])


def compare(
    configs: Dict[str, SimulationConfig],
    trace_factory: TraceFactory,
    seeds: Sequence[int],
    jobs: int = 1,
) -> List[CampaignResult]:
    """Run several named configurations on identical seeds.

    The whole configuration × seed grid is flattened into one spec list
    before fan-out, so ``jobs`` workers stay busy across configuration
    boundaries instead of draining one configuration at a time.
    """
    specs: List[RunSpec] = []
    for name, config in configs.items():
        specs.extend(campaign_specs(name, trace_factory, config, seeds))
    runs = iter(run_many(specs, jobs=jobs))
    return [
        _assemble(name, [next(runs).result for __ in seeds]) for name in configs
    ]


def separated(a: Spread, b: Spread) -> bool:
    """Whether two spreads' 1-sigma intervals do not overlap.

    A cheap robustness check: if True, the ordering of the means is
    unlikely to be seed noise (for the small seed counts used here a
    proper test would need more samples — this is a screening tool).
    """
    a_lo, a_hi = a.interval()
    b_lo, b_hi = b.interval()
    return a_hi < b_lo or b_hi < a_lo


def format_campaign(results: Sequence[CampaignResult]) -> str:
    """Aligned text table of a comparison campaign."""
    lines = [f"{'config':>16}{'metadata':>20}{'file':>20}"]
    for result in results:
        lines.append(
            f"{result.name:>16}{result.metadata.describe():>20}"
            f"{result.file.describe():>20}"
        )
    return "\n".join(lines)
