"""Multi-seed campaigns: repeat runs and report spread, not just means.

Single-seed sweeps answer "what shape"; campaigns answer "how sure".
:func:`repeat` runs one configuration across seeds and summarizes both
delivery ratios; :func:`compare` runs several named configurations on
the same seeds and reports them side by side, including a crude
separation check (do the one-standard-deviation intervals overlap?).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from repro.sim.metrics import SimulationResult
from repro.sim.runner import Simulation, SimulationConfig
from repro.traces.base import ContactTrace

#: Builds the trace for a seed (campaigns regenerate per seed so trace
#: randomness is part of the measured spread).
TraceFactory = Callable[[int], ContactTrace]


@dataclass(frozen=True)
class Spread:
    """Summary of one scalar across seeds."""

    mean: float
    std: float
    minimum: float
    maximum: float
    count: int

    @classmethod
    def of(cls, values: Sequence[float]) -> "Spread":
        if not values:
            raise ValueError("no values")
        n = len(values)
        mean = sum(values) / n
        variance = sum((v - mean) ** 2 for v in values) / n
        return cls(
            mean=mean,
            std=math.sqrt(variance),
            minimum=min(values),
            maximum=max(values),
            count=n,
        )

    def describe(self) -> str:
        return f"{self.mean:.3f} ± {self.std:.3f} (n={self.count})"

    def interval(self) -> Tuple[float, float]:
        """The mean ± one standard deviation band."""
        return (self.mean - self.std, self.mean + self.std)


@dataclass(frozen=True)
class CampaignResult:
    """Per-configuration spread of both delivery ratios."""

    name: str
    metadata: Spread
    file: Spread
    results: Tuple[SimulationResult, ...]


def repeat(
    name: str,
    trace_factory: TraceFactory,
    config: SimulationConfig,
    seeds: Sequence[int],
) -> CampaignResult:
    """Run one configuration across ``seeds`` (trace + roles re-seeded)."""
    if not seeds:
        raise ValueError("need at least one seed")
    results: List[SimulationResult] = []
    for seed in seeds:
        trace = trace_factory(seed)
        seeded = config.with_variant(config.variant)
        from dataclasses import replace

        results.append(Simulation(trace, replace(seeded, seed=seed)).run())
    return CampaignResult(
        name=name,
        metadata=Spread.of([r.metadata_delivery_ratio for r in results]),
        file=Spread.of([r.file_delivery_ratio for r in results]),
        results=tuple(results),
    )


def compare(
    configs: Dict[str, SimulationConfig],
    trace_factory: TraceFactory,
    seeds: Sequence[int],
) -> List[CampaignResult]:
    """Run several named configurations on identical seeds."""
    return [
        repeat(name, trace_factory, config, seeds)
        for name, config in configs.items()
    ]


def separated(a: Spread, b: Spread) -> bool:
    """Whether two spreads' 1-sigma intervals do not overlap.

    A cheap robustness check: if True, the ordering of the means is
    unlikely to be seed noise (for the small seed counts used here a
    proper test would need more samples — this is a screening tool).
    """
    a_lo, a_hi = a.interval()
    b_lo, b_hi = b.interval()
    return a_hi < b_lo or b_hi < a_lo


def format_campaign(results: Sequence[CampaignResult]) -> str:
    """Aligned text table of a comparison campaign."""
    lines = [f"{'config':>16}{'metadata':>20}{'file':>20}"]
    for result in results:
        lines.append(
            f"{result.name:>16}{result.metadata.describe():>20}"
            f"{result.file.describe():>20}"
        )
    return "\n".join(lines)
