"""Generic parameter-sweep engine for the figure reproductions.

A sweep varies one x-axis parameter, runs every protocol variant at
each point (averaging over seeds) and collects both delivery ratios.
The result renders as an aligned text table — the textual equivalent of
one figure panel from the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import mean
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.mbt import ProtocolVariant
from repro.sim.runner import Simulation, SimulationConfig
from repro.traces.base import ContactTrace

#: A sweep hook: (base config, x value, seed) -> concrete config.
ConfigFactory = Callable[[SimulationConfig, float, int], SimulationConfig]
#: A sweep hook: (x value, seed) -> trace (lets sweeps regenerate the
#: trace per point, e.g. the attendance-rate sweep of Fig. 3(f)).
TraceFactory = Callable[[float, int], ContactTrace]

DEFAULT_PROTOCOLS: Tuple[ProtocolVariant, ...] = (
    ProtocolVariant.MBT,
    ProtocolVariant.MBT_Q,
    ProtocolVariant.MBT_QM,
)


@dataclass(frozen=True)
class ProtocolSeries:
    """Per-protocol y-series of one sweep."""

    protocol: str
    metadata_ratios: Tuple[float, ...]
    file_ratios: Tuple[float, ...]


@dataclass(frozen=True)
class SweepPoint:
    """All measurements at one x value."""

    x: float
    #: protocol name -> (metadata ratio, file ratio), seed-averaged.
    ratios: Dict[str, Tuple[float, float]] = field(default_factory=dict)


@dataclass(frozen=True)
class SweepResult:
    """One reproduced figure panel."""

    name: str
    x_label: str
    x_values: Tuple[float, ...]
    points: Tuple[SweepPoint, ...]
    protocols: Tuple[str, ...]

    def series(self, protocol: str) -> ProtocolSeries:
        """Extract the y-series of one protocol."""
        return ProtocolSeries(
            protocol=protocol,
            metadata_ratios=tuple(p.ratios[protocol][0] for p in self.points),
            file_ratios=tuple(p.ratios[protocol][1] for p in self.points),
        )

    def metadata_series(self, protocol: str) -> Tuple[float, ...]:
        return self.series(protocol).metadata_ratios

    def file_series(self, protocol: str) -> Tuple[float, ...]:
        return self.series(protocol).file_ratios

    def format_table(self) -> str:
        """Render the panel as an aligned text table."""
        header = [f"{self.x_label:>24}"]
        for protocol in self.protocols:
            header.append(f"{protocol + ' meta':>12}")
            header.append(f"{protocol + ' file':>12}")
        lines = [f"== {self.name} ==", "".join(header)]
        for point in self.points:
            row = [f"{point.x:>24.3g}"]
            for protocol in self.protocols:
                meta, file_ratio = point.ratios[protocol]
                row.append(f"{meta:>12.3f}")
                row.append(f"{file_ratio:>12.3f}")
            lines.append("".join(row))
        return "\n".join(lines)


def run_sweep(
    name: str,
    x_label: str,
    x_values: Sequence[float],
    trace_factory: TraceFactory,
    config_factory: ConfigFactory,
    base_config: SimulationConfig,
    protocols: Sequence[ProtocolVariant] = DEFAULT_PROTOCOLS,
    seeds: Sequence[int] = (0,),
) -> SweepResult:
    """Run a full sweep and assemble the panel.

    For every (x, protocol) cell, results are averaged over ``seeds``;
    the trace is regenerated per (x, seed) so that sweeps over trace
    parameters and sweeps over protocol parameters share one code path
    (trace factories that ignore x simply cache).
    """
    points: List[SweepPoint] = []
    for x in x_values:
        cell: Dict[str, Tuple[float, float]] = {}
        for protocol in protocols:
            metas: List[float] = []
            files: List[float] = []
            for seed in seeds:
                trace = trace_factory(x, seed)
                config = config_factory(base_config, x, seed)
                config = config.with_variant(protocol)
                result = Simulation(trace, config).run()
                metas.append(result.metadata_delivery_ratio)
                files.append(result.file_delivery_ratio)
            cell[protocol.value] = (mean(metas), mean(files))
        points.append(SweepPoint(x=float(x), ratios=cell))
    return SweepResult(
        name=name,
        x_label=x_label,
        x_values=tuple(float(x) for x in x_values),
        points=tuple(points),
        protocols=tuple(p.value for p in protocols),
    )


def cached_trace_factory(build: Callable[[int], ContactTrace]) -> TraceFactory:
    """Wrap a seed-only trace builder with an x-ignoring cache."""
    cache: Dict[int, ContactTrace] = {}

    def factory(x: float, seed: int) -> ContactTrace:
        if seed not in cache:
            cache[seed] = build(seed)
        return cache[seed]

    return factory
