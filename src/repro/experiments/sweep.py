"""Generic parameter-sweep engine for the figure reproductions.

A sweep varies one x-axis parameter, runs every protocol variant at
each point (averaging over seeds) and collects both delivery ratios.
The result renders as an aligned text table — the textual equivalent of
one figure panel from the paper.

Execution goes through the shared kernel (:mod:`repro.exec`): the
x × protocol × seed grid is flattened into one list of picklable
:class:`~repro.exec.RunSpec` values and handed to
:func:`~repro.exec.run_many`, so ``jobs=N`` fans the whole panel out
over N worker processes with results identical to serial execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import mean
from typing import Callable, Dict, List, Sequence, Tuple, Union

from repro.core.mbt import ProtocolVariant
from repro.exec import RunSpec, TraceSpec, as_trace_spec, resolve_callable, run_many
from repro.sim.runner import SimulationConfig
from repro.traces.base import ContactTrace

#: A sweep hook: (base config, x value, seed) -> concrete config.
ConfigFactory = Callable[[SimulationConfig, float, int], SimulationConfig]
#: A sweep hook: (x value, seed) -> trace to run at that point (lets
#: sweeps regenerate the trace per point, e.g. the attendance-rate
#: sweep of Fig. 3(f)). Factories may return either a built
#: :class:`ContactTrace` or — preferred, because it keeps the spec
#: picklable and lets each worker build/cache the trace locally — a
#: :class:`~repro.exec.TraceSpec`.
TraceFactory = Callable[[float, int], Union[ContactTrace, TraceSpec]]

DEFAULT_PROTOCOLS: Tuple[ProtocolVariant, ...] = (
    ProtocolVariant.MBT,
    ProtocolVariant.MBT_Q,
    ProtocolVariant.MBT_QM,
)


@dataclass(frozen=True)
class ProtocolSeries:
    """Per-protocol y-series of one sweep."""

    protocol: str
    metadata_ratios: Tuple[float, ...]
    file_ratios: Tuple[float, ...]


@dataclass(frozen=True)
class SweepPoint:
    """All measurements at one x value."""

    x: float
    #: protocol name -> (metadata ratio, file ratio), seed-averaged.
    ratios: Dict[str, Tuple[float, float]] = field(default_factory=dict)


@dataclass(frozen=True)
class SweepResult:
    """One reproduced figure panel."""

    name: str
    x_label: str
    x_values: Tuple[float, ...]
    points: Tuple[SweepPoint, ...]
    protocols: Tuple[str, ...]

    def series(self, protocol: str) -> ProtocolSeries:
        """Extract the y-series of one protocol."""
        return ProtocolSeries(
            protocol=protocol,
            metadata_ratios=tuple(p.ratios[protocol][0] for p in self.points),
            file_ratios=tuple(p.ratios[protocol][1] for p in self.points),
        )

    def metadata_series(self, protocol: str) -> Tuple[float, ...]:
        return self.series(protocol).metadata_ratios

    def file_series(self, protocol: str) -> Tuple[float, ...]:
        return self.series(protocol).file_ratios

    def format_table(self) -> str:
        """Render the panel as an aligned text table.

        Column width grows with the longest series label (the paper's
        three protocol names fit the historic 12, so their panels render
        byte-identically; robustness panels label series
        ``variant+credit-policy`` and need more room).
        """
        width = max(12, *(len(p) + 6 for p in self.protocols))
        header = [f"{self.x_label:>24}"]
        for protocol in self.protocols:
            header.append(f"{protocol + ' meta':>{width}}")
            header.append(f"{protocol + ' file':>{width}}")
        lines = [f"== {self.name} ==", "".join(header)]
        for point in self.points:
            row = [f"{point.x:>24.3g}"]
            for protocol in self.protocols:
                meta, file_ratio = point.ratios[protocol]
                row.append(f"{meta:>{width}.3f}")
                row.append(f"{file_ratio:>{width}.3f}")
            lines.append("".join(row))
        return "\n".join(lines)


def sweep_specs(
    x_values: Sequence[float],
    trace_factory: TraceFactory,
    config_factory: ConfigFactory,
    base_config: SimulationConfig,
    protocols: Sequence[ProtocolVariant] = DEFAULT_PROTOCOLS,
    seeds: Sequence[int] = (0,),
) -> List[RunSpec]:
    """Flatten the x × protocol × seed grid into kernel run specs.

    Spec order is the grid in row-major order (x outermost, seed
    innermost) — :func:`run_sweep` relies on it when regrouping.
    """
    specs: List[RunSpec] = []
    for x in x_values:
        for protocol in protocols:
            for seed in seeds:
                config = config_factory(base_config, x, seed).with_variant(protocol)
                specs.append(
                    RunSpec(
                        trace=as_trace_spec(trace_factory(x, seed)),
                        config=config,
                        tag=RunSpec.make_tag(
                            x=float(x), protocol=protocol.value, seed=int(seed)
                        ),
                    )
                )
    return specs


def run_sweep(
    name: str,
    x_label: str,
    x_values: Sequence[float],
    trace_factory: TraceFactory,
    config_factory: ConfigFactory,
    base_config: SimulationConfig,
    protocols: Sequence[ProtocolVariant] = DEFAULT_PROTOCOLS,
    seeds: Sequence[int] = (0,),
    jobs: int = 1,
) -> SweepResult:
    """Run a full sweep and assemble the panel.

    For every (x, protocol) cell, results are averaged over ``seeds``;
    the trace is regenerated per (x, seed) so that sweeps over trace
    parameters and sweeps over protocol parameters share one code path
    (the kernel's spec-keyed cache makes the regeneration free when the
    trace does not actually depend on x). ``jobs`` fans the grid out
    over worker processes; results are identical for any job count.
    """
    specs = sweep_specs(
        x_values, trace_factory, config_factory, base_config, protocols, seeds
    )
    runs = iter(run_many(specs, jobs=jobs))
    points: List[SweepPoint] = []
    for x in x_values:
        cell: Dict[str, Tuple[float, float]] = {}
        for protocol in protocols:
            results = [next(runs).result for __ in seeds]
            cell[protocol.value] = (
                mean(r.metadata_delivery_ratio for r in results),
                mean(r.file_delivery_ratio for r in results),
            )
        points.append(SweepPoint(x=float(x), ratios=cell))
    return SweepResult(
        name=name,
        x_label=x_label,
        x_values=tuple(float(x) for x in x_values),
        points=tuple(points),
        protocols=tuple(p.value for p in protocols),
    )


def cached_trace_factory(build: Callable[[int], ContactTrace]) -> TraceFactory:
    """Adapt a seed-only trace builder to the spec-based sweep path.

    Historically this wrapped ``build`` with a closure-local dict keyed
    only by seed — correct serially, but useless under process fan-out
    (each worker would rebuild from scratch) and wrong for any builder
    whose output also depended on x. Now:

    * an importable module-level ``build`` becomes a
      :class:`~repro.exec.TraceSpec` per call, so caching happens in
      the kernel's per-worker table keyed by the *full* spec (builder
      path + seed);
    * a closure or lambda cannot cross a process boundary by name, so
      it is built once here (per seed — its full call signature) and
      shipped to workers as a literal spec, which every worker shares.
    """
    path = resolve_callable(build)
    if path is not None:

        def factory(x: float, seed: int) -> TraceSpec:
            return TraceSpec(builder=path, args=(seed,))

        return factory

    cache: Dict[int, TraceSpec] = {}

    def factory(x: float, seed: int) -> TraceSpec:
        if seed not in cache:
            cache[seed] = TraceSpec.literal(build(seed))
        return cache[seed]

    return factory
