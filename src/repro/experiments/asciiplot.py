"""Terminal line charts for sweep results.

No plotting dependency is available offline, so the figure runner can
render each panel as an ASCII chart: x positions map to columns, the
[0, 1] delivery-ratio range maps to rows, and each protocol gets a
marker. Good enough to *see* the crossovers and flat lines the paper's
figures show, directly in a terminal or CI log.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.experiments.sweep import SweepResult

#: Marker per protocol, in registration order.
MARKERS = ("*", "o", "x", "+", "#", "@")


def render_series(
    x_values: Sequence[float],
    series: Dict[str, Sequence[float]],
    width: int = 60,
    height: int = 16,
    y_max: float = 1.0,
) -> str:
    """Render named y-series over shared x values as an ASCII chart."""
    if width < 10 or height < 4:
        raise ValueError("chart too small")
    if not x_values:
        raise ValueError("no x values")
    for name, values in series.items():
        if len(values) != len(x_values):
            raise ValueError(f"series {name!r} length mismatch")

    grid: List[List[str]] = [[" "] * width for __ in range(height)]
    x_lo, x_hi = min(x_values), max(x_values)
    x_span = (x_hi - x_lo) or 1.0

    def col(x: float) -> int:
        return min(width - 1, int((x - x_lo) / x_span * (width - 1)))

    def row(y: float) -> int:
        clamped = min(max(y, 0.0), y_max)
        return min(height - 1, int((1.0 - clamped / y_max) * (height - 1)))

    legend: List[str] = []
    for index, (name, values) in enumerate(series.items()):
        marker = MARKERS[index % len(MARKERS)]
        legend.append(f"{marker} {name}")
        # Connect consecutive points with interpolated marks.
        for (x0, y0), (x1, y1) in zip(
            zip(x_values, values), zip(x_values[1:], values[1:])
        ):
            c0, c1 = col(x0), col(x1)
            steps = max(1, c1 - c0)
            for step in range(steps + 1):
                t = step / steps
                c = c0 + step
                r = row(y0 + t * (y1 - y0))
                grid[r][min(c, width - 1)] = marker
        # End points drawn last so they always show.
        for x, y in zip(x_values, values):
            grid[row(y)][col(x)] = marker

    lines = []
    for index, cells in enumerate(grid):
        y_label = y_max * (1.0 - index / (height - 1))
        lines.append(f"{y_label:5.2f} |" + "".join(cells))
    lines.append("      +" + "-" * width)
    lines.append(f"       {x_lo:<10.3g}{'':^{max(0, width - 20)}}{x_hi:>10.3g}")
    lines.append("       " + "   ".join(legend))
    return "\n".join(lines)


def render_panel(result: SweepResult, metric: str = "file", **kwargs) -> str:
    """Render one sweep panel (``metric``: "file" or "metadata")."""
    if metric not in ("file", "metadata"):
        raise ValueError(f"unknown metric {metric!r}")
    series = {}
    for protocol in result.protocols:
        if metric == "file":
            series[protocol] = result.file_series(protocol)
        else:
            series[protocol] = result.metadata_series(protocol)
    chart = render_series(result.x_values, series, **kwargs)
    return f"{result.name} — {metric} delivery ratio\n{chart}"
