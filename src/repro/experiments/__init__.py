"""Experiment harness: regenerates every figure of the paper's §VI.

Each ``fig*`` function runs the corresponding parameter sweep over the
three protocols (MBT, MBT-Q, MBT-QM) and returns a
:class:`~repro.experiments.sweep.SweepResult` whose ``format_table()``
prints the same series the paper plots. ``scale="fast"`` (the default
used by the benchmark suite) runs a reduced trace; ``scale="paper"``
approximates the paper's full scale.
"""

from repro.experiments.figures import (
    FIGURES,
    fig2a,
    fig2b,
    fig2c,
    fig2d,
    fig2e,
    fig3a,
    fig3b,
    fig3c,
    fig3d,
    fig3e,
    fig3f,
)
from repro.experiments.campaign import (
    CampaignResult,
    Spread,
    compare,
    format_campaign,
    repeat,
    separated,
)
from repro.experiments.sweep import ProtocolSeries, SweepPoint, SweepResult, run_sweep
from repro.experiments.workloads import Scale, dieselnet_trace, nus_trace

__all__ = [
    "FIGURES",
    "fig2a",
    "fig2b",
    "fig2c",
    "fig2d",
    "fig2e",
    "fig3a",
    "fig3b",
    "fig3c",
    "fig3d",
    "fig3e",
    "fig3f",
    "CampaignResult",
    "Spread",
    "compare",
    "format_campaign",
    "repeat",
    "separated",
    "ProtocolSeries",
    "SweepPoint",
    "SweepResult",
    "run_sweep",
    "Scale",
    "dieselnet_trace",
    "nus_trace",
]
