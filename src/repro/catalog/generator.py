"""Daily catalog generation: files, metadata and per-node queries.

Implements the workload of paper §VI-A: every day at 12:00 noon, ``n``
new files appear on the Internet with TTL ``t`` days and popularities
drawn from the truncated-exponential model with ``λ = n/2``. At the
same instant, every node generates a query for each new file with
probability equal to the file's popularity, giving ≈ 2 queries per node
per day at the paper's operating point.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.catalog.files import PIECE_SIZE, FileDescriptor
from repro.catalog.keywords import KeywordVocabulary
from repro.catalog.metadata import Metadata, PublisherRegistry, metadata_for_file
from repro.catalog.popularity import PopularityModel
from repro.catalog.query import Query
from repro.types import DAY, NodeId, Uri


@dataclass(frozen=True)
class CatalogConfig:
    """Workload parameters of the daily generation process."""

    files_per_day: int = 40
    ttl_days: float = 3.0
    #: Pieces per file; the paper's evaluation exchanges whole files,
    #: which corresponds to one piece per file.
    pieces_per_file: int = 1
    #: Target average queries per node per day (fixes λ = n / this).
    queries_per_node_per_day: float = 2.0
    #: Length of synthetic piece payloads (bytes) for checksumming.
    payload_length: int = 64

    def __post_init__(self) -> None:
        if self.files_per_day < 1:
            raise ValueError("files_per_day must be >= 1")
        if self.ttl_days <= 0:
            raise ValueError("ttl_days must be positive")
        if self.pieces_per_file < 1:
            raise ValueError("pieces_per_file must be >= 1")

    @property
    def ttl_seconds(self) -> float:
        return self.ttl_days * DAY

    @property
    def file_size_bytes(self) -> int:
        """Size that yields exactly ``pieces_per_file`` pieces."""
        return self.pieces_per_file * PIECE_SIZE

    def popularity_model(self) -> PopularityModel:
        return PopularityModel.for_files_per_day(
            self.files_per_day, self.queries_per_node_per_day
        )


@dataclass(frozen=True)
class DailyBatch:
    """Everything generated at one noon instant."""

    day: int
    descriptors: Tuple[FileDescriptor, ...]
    metadata: Tuple[Metadata, ...]
    queries: Tuple[Query, ...] = field(default=())

    @property
    def queries_by_node(self) -> Dict[NodeId, List[Query]]:
        grouped: Dict[NodeId, List[Query]] = {}
        for query in self.queries:
            grouped.setdefault(query.node, []).append(query)
        return grouped


class CatalogGenerator:
    """Deterministic daily generator of files, metadata and queries."""

    def __init__(
        self,
        config: CatalogConfig,
        nodes: Sequence[NodeId],
        seed: int = 0,
        registry: Optional[PublisherRegistry] = None,
    ) -> None:
        if not nodes:
            raise ValueError("need at least one node to generate queries for")
        self._config = config
        self._nodes = tuple(nodes)
        self._rng = random.Random(seed ^ 0xCA7A106)
        self._vocab = KeywordVocabulary(seed)
        self._model = config.popularity_model()
        self._registry = registry if registry is not None else PublisherRegistry(seed)
        self._episode_counter = 0

    @property
    def registry(self) -> PublisherRegistry:
        """The publisher registry used to sign generated metadata."""
        return self._registry

    def generate_day(self, day: int, noon: float) -> DailyBatch:
        """Generate the batch for zero-based ``day`` at time ``noon``."""
        descriptors: List[FileDescriptor] = []
        metadata: List[Metadata] = []
        for __ in range(self._config.files_per_day):
            descriptor = self._make_descriptor(noon)
            descriptors.append(descriptor)
            record = metadata_for_file(
                descriptor,
                description=self._vocab.description(
                    descriptor.title_tokens, descriptor.publisher
                ),
                registry=self._registry,
                payload_length=self._config.payload_length,
            )
            metadata.append(record)
        queries = tuple(self._make_queries(descriptors, noon))
        return DailyBatch(
            day=day,
            descriptors=tuple(descriptors),
            metadata=tuple(metadata),
            queries=queries,
        )

    def _make_descriptor(self, noon: float) -> FileDescriptor:
        episode = self._episode_counter
        self._episode_counter += 1
        publisher = self._vocab.publisher()
        title = self._vocab.title_tokens(episode)
        uri = Uri(f"dtn://{publisher}/f{episode:06d}")
        return FileDescriptor(
            uri=uri,
            title_tokens=title,
            publisher=publisher,
            size_bytes=self._config.file_size_bytes,
            popularity=self._model.sample(self._rng),
            created_at=noon,
            ttl=self._config.ttl_seconds,
        )

    def _make_queries(
        self, descriptors: Sequence[FileDescriptor], noon: float
    ) -> List[Query]:
        """Each node queries each new file w.p. the file's popularity."""
        queries: List[Query] = []
        for descriptor in descriptors:
            tokens = self._vocab.query_tokens_for(descriptor.title_tokens)
            for node in self._nodes:
                if self._rng.random() < descriptor.popularity:
                    queries.append(
                        Query(
                            node=node,
                            tokens=tokens,
                            target_uri=descriptor.uri,
                            created_at=noon,
                            expires_at=descriptor.expires_at,
                        )
                    )
        return queries
