"""DHT-sharded metadata catalog: XOR routing over SHA-1 keys.

The paper's Internet side (§IV) is a single central metadata server;
:class:`~repro.catalog.server.MetadataServer` implements it as flat
dicts, which is faithful at the paper's 1.5k-file scale and a wall at
the ROADMAP's million-file north star. This module shards that server
across N *simulated* catalog nodes the way BitTorrent's Mainline DHT
shards its tracker state (see PAPERS.md, "Efficient Indexing of the
BitTorrent Distributed Hash Table"):

* every record is placed on the shard whose 160-bit node id is
  XOR-closest to ``SHA-1(uri)``, every inverted-index posting list on
  the shard closest to ``SHA-1(token)``;
* placement is found by the Kademlia iterative lookup over per-shard
  :class:`KBucketTable` routing tables — greedy hops toward the key,
  starting from a fixed bootstrap shard, so routing is a pure function
  of ``(num_shards, key)``;
* each shard maintains its own :class:`~repro.catalog.expiry.ExpiryHeap`
  so liveness maintenance costs O(dead log shard), and the coordinator
  keeps one popularity-ranked view of the whole catalog, rebuilt
  lazily and invalidated by publish/expire/refresh — ``top_popular``
  and ``all_records`` walk the cache instead of re-sorting the catalog
  per call.

Result contract: :class:`ShardedMetadataServer` is observably identical
to the flat server for every public method, at every shard count — the
same records, the same ranking keys ``(-popularity, uri)``, the same
expiry order ``(expires_at, uri)``. Sharding changes *where* state
lives and *how much* of it each operation touches, never what callers
see; a hypothesis property test pins this equivalence.

Instrumentation lands in ``perf.catalog.*`` counters (shard lookups,
route hops, heap expiries, ranked-view rebuilds), which — like
``perf.sched.*`` — are excluded from result fingerprints.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.catalog.expiry import ExpiryHeap
from repro.catalog.metadata import Metadata
from repro.catalog.popularity import PopularityTracker
from repro.perf import PerfRecorder
from repro.types import NodeId, Uri

#: Width of the DHT key space (SHA-1, as in Mainline DHT).
KEY_BITS = 160

#: Default k-bucket capacity (Kademlia's ``k``).
DEFAULT_BUCKET_SIZE = 8


def sha1_key(text: str) -> int:
    """The 160-bit DHT key of a string (SHA-1, big-endian)."""
    return int.from_bytes(hashlib.sha1(text.encode("utf-8")).digest(), "big")


def xor_distance(a: int, b: int) -> int:
    """Kademlia's XOR metric between two 160-bit keys."""
    return a ^ b


class KBucketTable:
    """One shard's Kademlia routing table.

    Peers are filed into buckets by the bit length of their XOR
    distance from the owner (bucket ``i`` holds peers whose distance
    has its highest set bit at position ``i``). Each bucket keeps at
    most ``k`` peers — deterministically the ``k`` XOR-closest to the
    owner, so the table is a pure function of the peer *set*, not of
    insertion order.
    """

    __slots__ = ("owner_id", "k", "_buckets", "_flat")

    def __init__(self, owner_id: int, k: int = DEFAULT_BUCKET_SIZE) -> None:
        if k < 1:
            raise ValueError(f"bucket size must be >= 1, got {k}")
        self.owner_id = owner_id
        self.k = k
        self._buckets: Dict[int, List[int]] = {}
        #: Flattened peer list, rebuilt lazily after :meth:`add` —
        #: ``closest`` runs once per routing hop, so re-flattening the
        #: buckets there dominated million-publish routing cost.
        self._flat: Optional[List[int]] = None

    def add(self, node_id: int) -> None:
        """File a peer id; the owner itself is never stored."""
        if node_id == self.owner_id:
            return
        index = xor_distance(self.owner_id, node_id).bit_length() - 1
        bucket = self._buckets.setdefault(index, [])
        if node_id in bucket:
            return
        bucket.append(node_id)
        bucket.sort(key=lambda nid: (xor_distance(self.owner_id, nid), nid))
        del bucket[self.k :]
        self._flat = None

    def _peers(self) -> List[int]:
        if self._flat is None:
            self._flat = [
                nid for __, bucket in sorted(self._buckets.items()) for nid in bucket
            ]
        return self._flat

    def __len__(self) -> int:
        return len(self._peers())

    def closest(self, key: int, count: int = 1) -> List[int]:
        """The ``count`` known peers XOR-closest to ``key``."""
        peers = self._peers()
        if count == 1:
            if not peers:
                return []
            return [min(peers, key=lambda nid: (xor_distance(nid, key), nid))]
        ranked = sorted(peers, key=lambda nid: (xor_distance(nid, key), nid))
        return ranked[:count]


class ShardRouter:
    """Deterministic XOR-distance routing over a fixed shard cluster.

    Shard ids are ``SHA-1("catalog-shard:<index>")`` — fixed for a
    given shard count, independent of any run state. ``route`` runs the
    iterative Kademlia lookup: starting from the bootstrap shard (the
    numerically smallest id), greedily hop to the known peer closest to
    the key until no peer improves on the current shard. Publish and
    lookup both route through this walk, so the two always agree on
    placement even if a k-bucket truncation stops the walk short of the
    global optimum.
    """

    def __init__(self, num_shards: int, k: int = DEFAULT_BUCKET_SIZE) -> None:
        if num_shards < 1:
            raise ValueError(f"need at least one shard, got {num_shards}")
        self.num_shards = num_shards
        self._ids: List[int] = [sha1_key(f"catalog-shard:{i}") for i in range(num_shards)]
        self._index_of: Dict[int, int] = {nid: i for i, nid in enumerate(self._ids)}
        if len(self._index_of) != num_shards:
            raise ValueError("SHA-1 shard id collision")  # pragma: no cover
        self._tables: List[KBucketTable] = []
        for nid in self._ids:
            table = KBucketTable(nid, k=k)
            for peer in sorted(self._ids):
                table.add(peer)
            self._tables.append(table)
        self._bootstrap = min(self._ids)
        #: Route memo: key -> (shard index, hops). Lookups are pure, so
        #: the memo only changes costs, never results.
        self._memo: Dict[int, Tuple[int, int]] = {}

    def table_of(self, shard_index: int) -> KBucketTable:
        return self._tables[shard_index]

    def route(self, key: int) -> Tuple[int, int]:
        """``(shard index, lookup hops)`` owning ``key``."""
        memo = self._memo.get(key)
        if memo is not None:
            return memo
        current = self._bootstrap
        hops = 0
        while True:
            nearer = self._tables[self._index_of[current]].closest(key, 1)
            if not nearer:
                break
            best = nearer[0]
            if xor_distance(best, key) < xor_distance(current, key):
                current = best
                hops += 1
            else:
                break
        result = (self._index_of[current], hops)
        self._memo[key] = result
        return result

    def shard_for_uri(self, uri: str) -> Tuple[int, int]:
        return self.route(sha1_key(f"uri:{uri}"))

    def shard_for_token(self, token: str) -> Tuple[int, int]:
        return self.route(sha1_key(f"token:{token}"))


class _CatalogShard:
    """One shard's slice of the catalog: records, postings, expiry."""

    __slots__ = ("records", "postings", "expiry")

    def __init__(self) -> None:
        self.records: Dict[Uri, Metadata] = {}
        #: Inverted index slice: token -> URIs (the URIs themselves may
        #: live on other shards — postings shard by token key).
        self.postings: Dict[str, Set[Uri]] = {}
        self.expiry = ExpiryHeap()


class ShardedMetadataServer:
    """Drop-in :class:`~repro.catalog.server.MetadataServer` replacement.

    Same public surface and observable behavior; state sharded across
    ``num_shards`` simulated catalog nodes with XOR-distance placement.
    """

    def __init__(
        self,
        num_shards: int,
        popularity_tracker: Optional[PopularityTracker] = None,
        perf: Optional[PerfRecorder] = None,
        bucket_size: int = DEFAULT_BUCKET_SIZE,
    ) -> None:
        self.router = ShardRouter(num_shards, k=bucket_size)
        self._shards = [_CatalogShard() for __ in range(num_shards)]
        self._tracker = popularity_tracker
        self._perf = perf if perf is not None else PerfRecorder()
        self._count = 0
        #: Cached popularity-ranked view of the whole catalog, or None
        #: when dirty. Entries may be expired (filtered per call, like
        #: the flat server) but never stale: publish, expire and
        #: refresh all invalidate.
        self._ranked: Optional[List[Metadata]] = None

    # -- routing ------------------------------------------------------------------

    def _uri_shard(self, uri: str) -> _CatalogShard:
        index, hops = self.router.shard_for_uri(uri)
        self._perf.count("catalog.shard_lookups")
        if hops:
            self._perf.count("catalog.route_hops", hops)
        return self._shards[index]

    def _token_shard(self, token: str) -> _CatalogShard:
        index, hops = self.router.shard_for_token(token)
        self._perf.count("catalog.shard_lookups")
        if hops:
            self._perf.count("catalog.route_hops", hops)
        return self._shards[index]

    # -- flat-server surface ------------------------------------------------------

    def __len__(self) -> int:
        return self._count

    def __contains__(self, uri: Uri) -> bool:
        return uri in self._uri_shard(uri).records

    def publish(self, metadata: Metadata) -> None:
        """Register a record on its URI shard; index tokens by shard.

        Re-publishing replaces the record and drops postings of tokens
        the new name no longer carries — the flat server's contract.
        """
        shard = self._uri_shard(metadata.uri)
        previous = shard.records.get(metadata.uri)
        if previous is None:
            self._count += 1
        shard.records[metadata.uri] = metadata
        shard.expiry.push(metadata.uri, metadata.expires_at)
        if previous is not None:
            for token in sorted(previous.token_set - metadata.token_set):
                self._drop_posting(token, metadata.uri)
        for token in sorted(metadata.token_set):
            self._token_shard(token).postings.setdefault(token, set()).add(metadata.uri)
        self._ranked = None

    def _drop_posting(self, token: str, uri: Uri) -> None:
        token_shard = self._token_shard(token)
        bucket = token_shard.postings.get(token)
        if bucket is not None:
            bucket.discard(uri)
            if not bucket:
                del token_shard.postings[token]

    def get(self, uri: Uri) -> Optional[Metadata]:
        return self._uri_shard(uri).records.get(uri)

    def expire(self, now: float) -> List[Uri]:
        """Drop expired records across all shards (heap-served).

        Returns the removed URIs in global ``(expires_at, uri)`` order —
        exactly the flat server's order.
        """
        dead_pairs: List[Tuple[float, Uri]] = []
        for shard in self._shards:
            lookup: Callable[[str], Optional[float]] = lambda key, records=shard.records: (
                records[Uri(key)].expires_at if Uri(key) in records else None
            )
            for key in shard.expiry.pop_due(now, lookup):
                uri = Uri(key)
                record = shard.records.pop(uri)
                dead_pairs.append((record.expires_at, uri))
                for token in sorted(record.token_set):
                    self._drop_posting(token, uri)
        if not dead_pairs:
            return []
        self._count -= len(dead_pairs)
        self._perf.count("catalog.heap_expiries", len(dead_pairs))
        self._ranked = None
        dead_pairs.sort()
        return [uri for __, uri in dead_pairs]

    def search(
        self,
        tokens: FrozenSet[str],
        now: float,
        limit: Optional[int] = None,
    ) -> List[Metadata]:
        """Ranked conjunctive search over the sharded inverted index."""
        if not tokens:
            return []
        token_iter = iter(sorted(tokens))
        first = next(token_iter)
        candidate_uris = set(self._token_shard(first).postings.get(first, ()))
        for token in token_iter:
            candidate_uris &= self._token_shard(token).postings.get(token, set())
            if not candidate_uris:
                return []
        hits = [self._uri_shard(uri).records[uri] for uri in sorted(candidate_uris)]
        hits = [md for md in hits if md.is_live(now)]
        hits.sort(key=lambda md: (-md.popularity, md.uri))
        return hits[:limit] if limit is not None else hits

    def _ranked_view(self) -> List[Metadata]:
        """The cached popularity-ranked catalog, rebuilding if dirty."""
        ranked = self._ranked
        if ranked is None:
            ranked = []
            for shard in self._shards:
                ranked.extend(shard.records.values())
            ranked.sort(key=lambda md: (-md.popularity, md.uri))
            self._ranked = ranked
            self._perf.count("catalog.ranked_rebuilds")
        return ranked

    def top_popular(
        self,
        now: float,
        limit: int,
        exclude: FrozenSet[Uri] = frozenset(),
    ) -> List[Metadata]:
        """Most popular live records, served from the cached view."""
        if limit <= 0:
            return []
        hits: List[Metadata] = []
        for record in self._ranked_view():
            if record.is_live(now) and record.uri not in exclude:
                hits.append(record)
                if len(hits) == limit:
                    break
        return hits

    def record_request(self, uri: Uri, node: NodeId, now: float) -> None:
        if self._tracker is not None:
            self._tracker.record_request(uri, node, now)

    def refresh_popularities(self, now: float) -> None:
        """Per-shard popularity refresh; skips unchanged records."""
        if self._tracker is None:
            return
        changed = False
        for shard in self._shards:
            for uri, record in list(shard.records.items()):
                estimate = self._tracker.popularity_of(uri, now)
                # Exact-identity skip is intended: replace only when the
                # estimate is bitwise different from the stored value.
                if estimate != record.popularity:  # detlint: ignore[DET004]
                    shard.records[uri] = record.with_popularity(estimate)
                    changed = True
        if changed:
            self._ranked = None

    def all_records(self, now: Optional[float] = None) -> List[Metadata]:
        """All (live, if ``now`` given) records, popularity-ranked."""
        ranked = self._ranked_view()
        if now is not None:
            return [md for md in ranked if md.is_live(now)]
        return list(ranked)

    # -- diagnostics --------------------------------------------------------------

    def shard_sizes(self) -> List[int]:
        """Records per shard (placement-balance diagnostic)."""
        return [len(shard.records) for shard in self._shards]
