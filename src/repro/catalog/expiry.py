"""Expiry heap: O(log n) liveness maintenance for catalog stores.

The flat servers used to find expired records with a full-dict scan on
every ``expire`` call — O(catalog) per noon tick, a wall at the
million-file scale the ROADMAP targets. This helper replaces the scan
with a lazy-deletion min-heap keyed by ``(expires_at, key)``:

* ``push`` records a key's expiry instant when it is published;
* ``pop_due`` pops every entry whose instant has passed and asks the
  caller's ``expires_at_of`` lookup whether the key is *still* due —
  entries made stale by a re-publish with a longer TTL (or an earlier
  removal) are discarded without touching the store.

Cost per expire call is O(d log n) for d dead entries instead of
O(catalog); the heap never shrinks below the live store but stale
entries are bounded by the number of republishes.

Determinism: the heap orders by ``(expires_at, key)`` so keys sharing
an expiry instant (a daily batch) drain in lexicographic key order,
independent of publish order or hash seeding.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple


class ExpiryHeap:
    """Lazy-deletion min-heap of ``(expires_at, key)`` entries."""

    __slots__ = ("_heap",)

    def __init__(self) -> None:
        self._heap: List[Tuple[float, str]] = []

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, key: str, expires_at: float) -> None:
        """Record that ``key`` expires at ``expires_at``.

        Pushing the same key again (re-publish) is fine: the stale
        entry is dropped by :meth:`pop_due`'s lookup cross-check.
        """
        heapq.heappush(self._heap, (expires_at, key))

    def pop_due(
        self,
        now: float,
        expires_at_of: Callable[[str], Optional[float]],
    ) -> List[str]:
        """Keys whose records are dead at ``now`` (``expires_at <= now``).

        ``expires_at_of`` maps a key to its *current* expiry instant,
        or ``None`` when the key no longer exists; it is the oracle
        that invalidates stale heap entries. Returned keys are unique
        and ordered by ``(expires_at, key)``.
        """
        heap = self._heap
        dead: List[str] = []
        while heap and heap[0][0] <= now:
            entry_expiry, key = heapq.heappop(heap)
            current = expires_at_of(key)
            if current is None:
                continue  # already removed; stale entry
            if current > now:
                continue  # re-published with a longer TTL; stale entry
            dead.append(key)
        if len(dead) > 1:
            # Duplicates from republished-then-expired keys can be
            # non-adjacent when expiry instants differ; dedup while
            # preserving first-occurrence order.
            seen = set()
            unique: List[str] = []
            for key in dead:
                if key not in seen:
                    seen.add(key)
                    unique.append(key)
            dead = unique
        return dead
