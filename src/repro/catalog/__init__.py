"""Internet-side substrate: files, metadata, popularity, queries, servers.

In the paper's hybrid-DTN model (§III), files are produced by known
publishers on the Internet; each file has a *metadata* record carrying
its name, publisher, description, URI, per-piece checksums and
authentication information. Metadata live on a central metadata server
that supports keyword search and tracks popularity; files live on file
servers. This package implements all of it.
"""

from repro.catalog.adversary import FakeBatch, FakeFileFactory
from repro.catalog.dht import KBucketTable, ShardRouter, ShardedMetadataServer
from repro.catalog.expiry import ExpiryHeap
from repro.catalog.files import (
    PIECE_SIZE,
    FileDescriptor,
    PieceStore,
    piece_checksums,
    piece_payload,
)
from repro.catalog.generator import CatalogConfig, CatalogGenerator, DailyBatch
from repro.catalog.keywords import KeywordVocabulary
from repro.catalog.metadata import Metadata, PublisherRegistry, sign_metadata, verify_metadata
from repro.catalog.popularity import PopularityModel, PopularityTracker, sample_popularity
from repro.catalog.query import Query, matches
from repro.catalog.server import FileServer, MetadataServer

__all__ = [
    "FakeBatch",
    "FakeFileFactory",
    "KBucketTable",
    "ShardRouter",
    "ShardedMetadataServer",
    "ExpiryHeap",
    "CatalogConfig",
    "CatalogGenerator",
    "DailyBatch",
    "PIECE_SIZE",
    "FileDescriptor",
    "PieceStore",
    "piece_checksums",
    "piece_payload",
    "KeywordVocabulary",
    "Metadata",
    "PublisherRegistry",
    "sign_metadata",
    "verify_metadata",
    "PopularityModel",
    "PopularityTracker",
    "sample_popularity",
    "Query",
    "matches",
    "FileServer",
    "MetadataServer",
]
