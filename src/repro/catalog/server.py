"""Internet-side servers: metadata search and file serving.

The metadata server (§IV) stores every published metadata record,
answers ranked keyword searches, serves the most popular records for
push distribution and keeps the network-wide popularity estimates. The
file server hands out verified pieces to Internet-access nodes.

Liveness maintenance runs through a per-server
:class:`~repro.catalog.expiry.ExpiryHeap`: ``expire`` pops only the
entries whose instant has passed (O(dead log n)) instead of scanning
the whole catalog, with behavior identical to the old scan — the same
records are removed, and the removed-URI list drains in deterministic
``(expires_at, uri)`` order. For the sharded million-file variant of
this interface see :mod:`repro.catalog.dht`.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.catalog.expiry import ExpiryHeap
from repro.catalog.files import FileDescriptor, piece_payload
from repro.catalog.metadata import Metadata
from repro.catalog.popularity import PopularityTracker
from repro.perf import PerfRecorder
from repro.types import NodeId, Uri


class MetadataServer:
    """Central metadata registry with an inverted keyword index.

    Search results are ranked by decreasing popularity, matching the
    pull-based distribution rule ("the pull-based metadata distribution
    is based on the popularities of the metadata, which can be
    calculated from a central server", §IV).
    """

    def __init__(
        self,
        popularity_tracker: Optional[PopularityTracker] = None,
        perf: Optional[PerfRecorder] = None,
    ) -> None:
        self._records: Dict[Uri, Metadata] = {}
        self._index: Dict[str, Set[Uri]] = defaultdict(set)
        self._tracker = popularity_tracker
        self._expiry = ExpiryHeap()
        #: Optional ``perf.catalog.*`` instrumentation sink. The
        #: counters record implementation activity only (heap pops),
        #: and are excluded from result fingerprints like the
        #: ``perf.sched.*`` dispatch counters.
        self._perf = perf if perf is not None else PerfRecorder()

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, uri: Uri) -> bool:
        return uri in self._records

    def publish(self, metadata: Metadata) -> None:
        """Register a metadata record and index its name tokens.

        Re-publishing a URI replaces the record; postings of tokens the
        new name no longer carries are dropped so the index never holds
        stale entries for live URIs.
        """
        previous = self._records.get(metadata.uri)
        self._records[metadata.uri] = metadata
        self._expiry.push(metadata.uri, metadata.expires_at)
        if previous is not None:
            for token in previous.token_set - metadata.token_set:
                self._drop_posting(token, metadata.uri)
        for token in metadata.token_set:
            self._index[token].add(metadata.uri)

    def _drop_posting(self, token: str, uri: Uri) -> None:
        bucket = self._index.get(token)
        if bucket is not None:
            bucket.discard(uri)
            if not bucket:
                del self._index[token]

    def get(self, uri: Uri) -> Optional[Metadata]:
        """Return the record for ``uri`` (with current popularity)."""
        return self._records.get(uri)

    def _expires_at_of(self, uri: str) -> Optional[float]:
        record = self._records.get(Uri(uri))
        return None if record is None else record.expires_at

    def expire(self, now: float) -> List[Uri]:
        """Drop expired records; return the URIs in (expiry, URI) order.

        Served from the expiry heap: cost is proportional to the number
        of dead records, not the catalog size. The returned order —
        each record's *current* expiry instant, URI tie-break — is the
        contract the sharded server reproduces globally.
        """
        pairs = []
        for key in self._expiry.pop_due(now, self._expires_at_of):
            uri = Uri(key)
            record = self._records.pop(uri)
            pairs.append((record.expires_at, uri))
            for token in sorted(record.token_set):
                self._drop_posting(token, uri)
        if not pairs:
            return []
        self._perf.count("catalog.heap_expiries", len(pairs))
        pairs.sort()
        return [uri for __, uri in pairs]

    def search(
        self,
        tokens: FrozenSet[str],
        now: float,
        limit: Optional[int] = None,
    ) -> List[Metadata]:
        """Ranked conjunctive keyword search.

        Returns live records whose name tokens contain every query
        token, ordered by decreasing popularity (URI as a deterministic
        tie-break).
        """
        if not tokens:
            return []
        token_iter = iter(tokens)
        candidate_uris = set(self._index.get(next(token_iter), ()))
        for token in token_iter:
            candidate_uris &= self._index.get(token, set())
            if not candidate_uris:
                return []
        hits = [self._records[uri] for uri in candidate_uris]
        hits = [md for md in hits if md.is_live(now)]
        hits.sort(key=lambda md: (-md.popularity, md.uri))
        return hits[:limit] if limit is not None else hits

    def top_popular(
        self,
        now: float,
        limit: int,
        exclude: FrozenSet[Uri] = frozenset(),
    ) -> List[Metadata]:
        """Most popular live records, for push distribution (§IV)."""
        hits = [
            md
            for uri, md in self._records.items()
            if md.is_live(now) and uri not in exclude
        ]
        hits.sort(key=lambda md: (-md.popularity, md.uri))
        return hits[:limit]

    def record_request(self, uri: Uri, node: NodeId, now: float) -> None:
        """Log an access-node request for popularity tracking."""
        if self._tracker is not None:
            self._tracker.record_request(uri, node, now)

    def refresh_popularities(self, now: float) -> None:
        """Replace stored popularities with tracker estimates.

        No-op when the server was built without a tracker (the
        simulations then keep the generation-time popularity, which is
        the paper's simplified evaluation model). Records whose tracker
        estimate equals the stored popularity are left untouched —
        allocating a replacement record for every URI on every refresh
        was pure garbage-collector pressure at catalog scale.
        """
        if self._tracker is None:
            return
        for uri, record in list(self._records.items()):
            estimate = self._tracker.popularity_of(uri, now)
            if estimate != record.popularity:
                self._records[uri] = record.with_popularity(estimate)

    def all_records(self, now: Optional[float] = None) -> List[Metadata]:
        """All (live, if ``now`` given) records, popularity-ranked."""
        records = list(self._records.values())
        if now is not None:
            records = [md for md in records if md.is_live(now)]
        records.sort(key=lambda md: (-md.popularity, md.uri))
        return records


class FileServer:
    """Internet-side piece source for Internet-access nodes."""

    def __init__(
        self, payload_length: int = 64, perf: Optional[PerfRecorder] = None
    ) -> None:
        self._files: Dict[Uri, FileDescriptor] = {}
        self._payload_length = payload_length
        self._expiry = ExpiryHeap()
        self._perf = perf if perf is not None else PerfRecorder()

    def __contains__(self, uri: Uri) -> bool:
        return uri in self._files

    def publish(self, descriptor: FileDescriptor) -> None:
        """Make a file's pieces available for download."""
        self._files[descriptor.uri] = descriptor
        self._expiry.push(descriptor.uri, descriptor.expires_at)

    def descriptor(self, uri: Uri) -> Optional[FileDescriptor]:
        return self._files.get(uri)

    def fetch_piece(self, uri: Uri, index: int) -> bytes:
        """Return the payload of one piece.

        Raises
        ------
        KeyError
            If the file is unknown.
        IndexError
            If the piece index is out of range.
        """
        descriptor = self._files[uri]
        if not 0 <= index < descriptor.num_pieces:
            raise IndexError(f"piece {index} out of range for {uri}")
        return piece_payload(uri, index, self._payload_length)

    def fetch_all(self, uri: Uri) -> Iterable[Tuple[int, bytes]]:
        """Yield ``(index, payload)`` for every piece of ``uri``."""
        descriptor = self._files[uri]
        for index in range(descriptor.num_pieces):
            yield index, piece_payload(uri, index, self._payload_length)

    def _expires_at_of(self, uri: str) -> Optional[float]:
        descriptor = self._files.get(Uri(uri))
        return None if descriptor is None else descriptor.expires_at

    def expire(self, now: float) -> List[Uri]:
        """Drop expired files; URIs returned in (expiry, URI) order."""
        pairs = []
        for key in self._expiry.pop_due(now, self._expires_at_of):
            uri = Uri(key)
            pairs.append((self._files.pop(uri).expires_at, uri))
        if not pairs:
            return []
        self._perf.count("catalog.heap_expiries", len(pairs))
        pairs.sort()
        return [uri for __, uri in pairs]
