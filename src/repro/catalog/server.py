"""Internet-side servers: metadata search and file serving.

The metadata server (§IV) stores every published metadata record,
answers ranked keyword searches, serves the most popular records for
push distribution and keeps the network-wide popularity estimates. The
file server hands out verified pieces to Internet-access nodes.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.catalog.files import FileDescriptor, piece_payload
from repro.catalog.metadata import Metadata
from repro.catalog.popularity import PopularityTracker
from repro.types import NodeId, Uri


class MetadataServer:
    """Central metadata registry with an inverted keyword index.

    Search results are ranked by decreasing popularity, matching the
    pull-based distribution rule ("the pull-based metadata distribution
    is based on the popularities of the metadata, which can be
    calculated from a central server", §IV).
    """

    def __init__(self, popularity_tracker: Optional[PopularityTracker] = None) -> None:
        self._records: Dict[Uri, Metadata] = {}
        self._index: Dict[str, Set[Uri]] = defaultdict(set)
        self._tracker = popularity_tracker

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, uri: Uri) -> bool:
        return uri in self._records

    def publish(self, metadata: Metadata) -> None:
        """Register a metadata record and index its name tokens."""
        self._records[metadata.uri] = metadata
        for token in metadata.token_set:
            self._index[token].add(metadata.uri)

    def get(self, uri: Uri) -> Optional[Metadata]:
        """Return the record for ``uri`` (with current popularity)."""
        return self._records.get(uri)

    def expire(self, now: float) -> List[Uri]:
        """Drop expired records; return the URIs removed."""
        dead = [uri for uri, md in self._records.items() if not md.is_live(now)]
        for uri in dead:
            record = self._records.pop(uri)
            for token in record.token_set:
                bucket = self._index.get(token)
                if bucket is not None:
                    bucket.discard(uri)
                    if not bucket:
                        del self._index[token]
        return dead

    def search(
        self,
        tokens: FrozenSet[str],
        now: float,
        limit: Optional[int] = None,
    ) -> List[Metadata]:
        """Ranked conjunctive keyword search.

        Returns live records whose name tokens contain every query
        token, ordered by decreasing popularity (URI as a deterministic
        tie-break).
        """
        if not tokens:
            return []
        token_iter = iter(tokens)
        candidate_uris = set(self._index.get(next(token_iter), ()))
        for token in token_iter:
            candidate_uris &= self._index.get(token, set())
            if not candidate_uris:
                return []
        hits = [self._records[uri] for uri in candidate_uris]
        hits = [md for md in hits if md.is_live(now)]
        hits.sort(key=lambda md: (-md.popularity, md.uri))
        return hits[:limit] if limit is not None else hits

    def top_popular(
        self,
        now: float,
        limit: int,
        exclude: FrozenSet[Uri] = frozenset(),
    ) -> List[Metadata]:
        """Most popular live records, for push distribution (§IV)."""
        hits = [
            md
            for uri, md in self._records.items()
            if md.is_live(now) and uri not in exclude
        ]
        hits.sort(key=lambda md: (-md.popularity, md.uri))
        return hits[:limit]

    def record_request(self, uri: Uri, node: NodeId, now: float) -> None:
        """Log an access-node request for popularity tracking."""
        if self._tracker is not None:
            self._tracker.record_request(uri, node, now)

    def refresh_popularities(self, now: float) -> None:
        """Replace stored popularities with tracker estimates.

        No-op when the server was built without a tracker (the
        simulations then keep the generation-time popularity, which is
        the paper's simplified evaluation model).
        """
        if self._tracker is None:
            return
        for uri, record in list(self._records.items()):
            self._records[uri] = record.with_popularity(
                self._tracker.popularity_of(uri, now)
            )

    def all_records(self, now: Optional[float] = None) -> List[Metadata]:
        """All (live, if ``now`` given) records, popularity-ranked."""
        records = list(self._records.values())
        if now is not None:
            records = [md for md in records if md.is_live(now)]
        records.sort(key=lambda md: (-md.popularity, md.uri))
        return records


class FileServer:
    """Internet-side piece source for Internet-access nodes."""

    def __init__(self, payload_length: int = 64) -> None:
        self._files: Dict[Uri, FileDescriptor] = {}
        self._payload_length = payload_length

    def __contains__(self, uri: Uri) -> bool:
        return uri in self._files

    def publish(self, descriptor: FileDescriptor) -> None:
        """Make a file's pieces available for download."""
        self._files[descriptor.uri] = descriptor

    def descriptor(self, uri: Uri) -> Optional[FileDescriptor]:
        return self._files.get(uri)

    def fetch_piece(self, uri: Uri, index: int) -> bytes:
        """Return the payload of one piece.

        Raises
        ------
        KeyError
            If the file is unknown.
        IndexError
            If the piece index is out of range.
        """
        descriptor = self._files[uri]
        if not 0 <= index < descriptor.num_pieces:
            raise IndexError(f"piece {index} out of range for {uri}")
        return piece_payload(uri, index, self._payload_length)

    def fetch_all(self, uri: Uri) -> Iterable[Tuple[int, bytes]]:
        """Yield ``(index, payload)`` for every piece of ``uri``."""
        descriptor = self._files[uri]
        for index in range(descriptor.num_pieces):
            yield index, piece_payload(uri, index, self._payload_length)

    def expire(self, now: float) -> List[Uri]:
        """Drop expired files; return the URIs removed."""
        dead = [uri for uri, d in self._files.items() if not d.is_live(now)]
        for uri in dead:
            del self._files[uri]
        return dead
