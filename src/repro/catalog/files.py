"""Files, 256 KB pieces, deterministic payloads and SHA-1 checksums.

Per the paper (§III-B): "Large files are divided into pieces of 256KB.
Each file is associated with a metadata that contains ... the checksums
of its pieces." Payload bytes are generated deterministically from
``(uri, piece_index)`` so that any node — and the test-suite — can
regenerate and verify a piece without shipping real media data (see the
substitution table in DESIGN.md).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, List, Tuple

from functools import cached_property

from repro.types import Uri

#: Piece size from the paper, in bytes.
PIECE_SIZE: int = 256 * 1024


class IntegrityError(ValueError):
    """Raised when a piece payload fails checksum verification."""


def num_pieces_for_size(size_bytes: int) -> int:
    """Number of 256 KB pieces needed for a file of ``size_bytes``."""
    if size_bytes <= 0:
        raise ValueError(f"file size must be positive, got {size_bytes}")
    return -(-size_bytes // PIECE_SIZE)  # ceiling division


def piece_payload(uri: Uri, index: int, length: int = 64) -> bytes:
    """Deterministic pseudo-random payload for one piece.

    Real pieces are 256 KB; simulations only need payloads long enough
    to make checksumming meaningful, so ``length`` defaults to a small
    stand-in. The bytes are a SHA-256 stream keyed by ``(uri, index)``.
    """
    if index < 0:
        raise ValueError(f"piece index must be non-negative, got {index}")
    out = bytearray()
    counter = 0
    while len(out) < length:
        block = hashlib.sha256(f"{uri}#{index}#{counter}".encode()).digest()
        out.extend(block)
        counter += 1
    return bytes(out[:length])


def piece_checksum(payload: bytes) -> str:
    """SHA-1 hex digest of a piece payload (BitTorrent-style, §II-B)."""
    return hashlib.sha1(payload).hexdigest()


def piece_checksums(uri: Uri, num_pieces: int, payload_length: int = 64) -> Tuple[str, ...]:
    """Checksums for all pieces of a file, in piece order."""
    return tuple(
        piece_checksum(piece_payload(uri, index, payload_length))
        for index in range(num_pieces)
    )


@dataclass(frozen=True)
class FileDescriptor:
    """A published file: identity, size, title tokens and lifetime.

    Attributes
    ----------
    uri:
        Globally unique identifier, e.g. ``dtn://fox/f00042``.
    title_tokens:
        Tokenized title used for keyword matching.
    publisher:
        Publisher name (signs the file's metadata).
    size_bytes:
        Total size; defines the piece count.
    popularity:
        Probability that any given node is interested in this file,
        drawn from the paper's truncated-exponential model.
    created_at, ttl:
        Generation time and time-to-live in seconds; the file (and
        queries for it) expire at ``created_at + ttl``.
    """

    uri: Uri
    title_tokens: Tuple[str, ...]
    publisher: str
    size_bytes: int
    popularity: float
    created_at: float
    ttl: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.popularity <= 1.0:
            raise ValueError(f"popularity must be in [0,1], got {self.popularity}")
        if self.ttl <= 0:
            raise ValueError(f"ttl must be positive, got {self.ttl}")
        if self.size_bytes <= 0:
            raise ValueError(f"size must be positive, got {self.size_bytes}")

    @property
    def num_pieces(self) -> int:
        """Number of 256 KB pieces in this file."""
        return num_pieces_for_size(self.size_bytes)

    @property
    def expires_at(self) -> float:
        """Absolute expiry time."""
        return self.created_at + self.ttl

    @cached_property
    def token_set(self) -> FrozenSet[str]:
        """Title tokens as a set, for subset matching (cached)."""
        return frozenset(self.title_tokens)

    def is_live(self, now: float) -> bool:
        """Whether the file is already generated and not yet expired."""
        return self.created_at <= now < self.expires_at


def bit_indices(bitmap: int) -> Iterator[int]:
    """Yield the set bit positions of ``bitmap`` in ascending order."""
    while bitmap:
        low = bitmap & -bitmap
        yield low.bit_length() - 1
        bitmap ^= low


def pack_bitmap(indices: Iterable[int]) -> int:
    """Inverse of :func:`bit_indices`: fold indices into a bitmap."""
    bitmap = 0
    for index in indices:
        bitmap |= 1 << index
    return bitmap


class PieceStore:
    """Per-node storage of verified file pieces.

    Pieces are verified against the checksums carried in the file's
    metadata before being admitted (``add`` raises
    :class:`IntegrityError` on mismatch). The store answers the two
    questions the download scheduler asks: which pieces of a URI do I
    hold, and is the file complete.

    Held pieces are represented as one **bitmap int per URI** (bit *i*
    set = piece *i* stored): membership, completeness and missing-piece
    computations are single bitwise operations, and the download
    scheduler can combine whole cliques' holdings with ``|``/``&``/``~``
    instead of set algebra. :meth:`pieces_of` still materializes a
    frozenset for callers that want one.
    """

    def __init__(self, payload_length: int = 64) -> None:
        self._bitmaps: Dict[Uri, int] = {}
        self._completed: Dict[Uri, int] = {}
        self._payload_length = payload_length
        #: Optional mutation observer (``changed``/``cleared``) keeping
        #: the array core's bitmap matrix in sync with this store.
        self._observer = None

    def set_observer(self, observer) -> None:
        """Install the mutation observer (one per store; None detaches)."""
        self._observer = observer

    def __contains__(self, uri: Uri) -> bool:
        return uri in self._bitmaps

    @property
    def uris(self) -> FrozenSet[Uri]:
        """URIs with at least one stored piece."""
        return frozenset(self._bitmaps)

    def iter_uris(self) -> Iterator[Uri]:
        """Stored URIs in insertion order (no frozenset allocation)."""
        return iter(self._bitmaps)

    def bitmap_of(self, uri: Uri) -> int:
        """Bitmap of the stored pieces of ``uri`` (0 if none)."""
        return self._bitmaps.get(uri, 0)

    def has_piece(self, uri: Uri, index: int) -> bool:
        """Whether piece ``index`` of ``uri`` is stored."""
        return bool(self._bitmaps.get(uri, 0) >> index & 1)

    def count_of(self, uri: Uri) -> int:
        """Number of stored pieces of ``uri``."""
        return self._bitmaps.get(uri, 0).bit_count()

    def pieces_of(self, uri: Uri) -> FrozenSet[int]:
        """Indices of the stored pieces of ``uri`` (empty if none)."""
        return frozenset(bit_indices(self._bitmaps.get(uri, 0)))

    def add(self, uri: Uri, index: int, payload: bytes, expected_checksum: str) -> bool:
        """Verify and store one piece; return True if it was new.

        Raises
        ------
        IntegrityError
            If the payload does not hash to ``expected_checksum``.
        """
        if piece_checksum(payload) != expected_checksum:
            raise IntegrityError(f"piece {uri}#{index} failed checksum verification")
        return self.add_unverified(uri, index)

    def add_unverified(self, uri: Uri, index: int) -> bool:
        """Store a piece by reference (trusted source, e.g. Internet)."""
        mask = 1 << index
        held = self._bitmaps.get(uri, 0)
        if held & mask:
            return False
        self._bitmaps[uri] = held | mask
        if self._observer is not None:
            self._observer.changed(uri, held | mask)
        return True

    def add_whole_file(self, uri: Uri, num_pieces: int) -> None:
        """Store every piece of a file (Internet direct download)."""
        self._bitmaps[uri] = self._bitmaps.get(uri, 0) | ((1 << num_pieces) - 1)
        self._completed[uri] = num_pieces
        if self._observer is not None:
            self._observer.changed(uri, self._bitmaps[uri])

    def is_complete(self, uri: Uri, num_pieces: int) -> bool:
        """Whether all ``num_pieces`` pieces of ``uri`` are stored."""
        return self._bitmaps.get(uri, 0).bit_count() >= num_pieces

    def missing_pieces(self, uri: Uri, num_pieces: int) -> Iterator[int]:
        """Yield the indices of pieces of ``uri`` not yet stored."""
        return bit_indices(self.missing_bitmap(uri, num_pieces))

    def missing_bitmap(self, uri: Uri, num_pieces: int) -> int:
        """Bitmap of the pieces of ``uri`` not yet stored."""
        return ~self._bitmaps.get(uri, 0) & ((1 << num_pieces) - 1)

    def drop(self, uri: Uri) -> None:
        """Evict every piece of ``uri`` (e.g. on expiry)."""
        held = self._bitmaps.pop(uri, None)
        self._completed.pop(uri, None)
        if held is not None and self._observer is not None:
            self._observer.changed(uri, 0)

    def drop_piece(self, uri: Uri, index: int) -> bool:
        """Evict one piece; return True if it was stored."""
        held = self._bitmaps.get(uri, 0)
        mask = 1 << index
        if not held & mask:
            return False
        held &= ~mask
        if held:
            self._bitmaps[uri] = held
        else:
            del self._bitmaps[uri]
            self._completed.pop(uri, None)
        if self._observer is not None:
            self._observer.changed(uri, held)
        return True

    def drop_expired(self, live_uris: FrozenSet[Uri]) -> List[Uri]:
        """Evict all URIs not in ``live_uris``; return what was dropped."""
        dead = [uri for uri in self._bitmaps if uri not in live_uris]
        for uri in dead:
            self.drop(uri)
        return dead

    def total_pieces(self) -> int:
        """Total number of stored pieces across all URIs."""
        return sum(bitmap.bit_count() for bitmap in self._bitmaps.values())

    def clear(self) -> None:
        """Drop every stored piece (node crash with storage loss)."""
        self._bitmaps.clear()
        self._completed.clear()
        if self._observer is not None:
            self._observer.cleared()
