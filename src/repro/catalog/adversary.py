"""Fake-file adversary: the pollution attack of §I.

"Sometimes, it is very difficult to choose the right metadata ...
there are fake files, files with inferior quality, and different files
with similar names" — and metadata carry "authentication information
... against fake publishers" (§III-B f).

This module builds that attack so the defence can be measured. A
*pirate* mirrors freshly published files: for a sampled subset of each
day's batch it crafts a fake metadata record with

* the **same title tokens** as the real file — every keyword query for
  the real file also matches the fake;
* its **own URI and self-consistent checksums** — the fake content
  verifies against the fake metadata, so checksum verification alone
  cannot reject it;
* an **inflated popularity claim** — to win popularity-ranked slots;
* **no valid publisher signature** — the only tell.

Pirate nodes carry the fake metadata and the full fake files, serving
them enthusiastically. Nodes that verify signatures drop the fakes on
arrival; nodes that do not waste queries, storage and piece budget on
them (the fake then satisfies the user's *keywords* but never the
measured ground-truth target).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence

from repro.catalog.files import PIECE_SIZE, piece_checksums
from repro.catalog.generator import DailyBatch
from repro.catalog.metadata import Metadata
from repro.types import Uri

#: URI namespace of every pirated mirror. Ground-truth instrumentation
#: (never the protocol, which cannot see through a URI) uses it to
#: recognize fake traffic, e.g. the ``adversary.fake_*_transmissions``
#: counters in :mod:`repro.core.mbt`.
PIRATE_URI_PREFIX = "dtn://pirate/"


@dataclass(frozen=True)
class FakeBatch:
    """Fake records mirroring one day's real batch."""

    day: int
    metadata: Sequence[Metadata]


class FakeFileFactory:
    """Deterministic generator of pollution for daily batches."""

    def __init__(
        self,
        seed: int = 0,
        claimed_popularity: float = 0.9,
        payload_length: int = 64,
        tag: str = "x",
    ) -> None:
        if not 0.0 <= claimed_popularity <= 1.0:
            raise ValueError("claimed_popularity must be in [0, 1]")
        self._rng = random.Random(seed ^ 0xFA4E)
        self._claimed_popularity = claimed_popularity
        self._payload_length = payload_length
        #: URI discriminator: factories with distinct tags can coexist
        #: in one run (e.g. the legacy pirate and strategy polluters)
        #: without their serial numbers minting colliding fake URIs.
        self._tag = tag
        self._counter = 0

    def make_fakes(self, batch: DailyBatch, count: int) -> FakeBatch:
        """Craft up to ``count`` fakes mirroring files of ``batch``."""
        if count < 0:
            raise ValueError("count must be non-negative")
        count = min(count, len(batch.metadata))
        targets = self._rng.sample(list(batch.metadata), count)
        fakes: List[Metadata] = []
        for real in targets:
            serial = self._counter
            self._counter += 1
            fake_uri = Uri(f"{PIRATE_URI_PREFIX}{self._tag}{serial:06d}")
            fakes.append(
                Metadata(
                    uri=fake_uri,
                    name=real.name,  # same keywords: every query matches
                    publisher=real.publisher,  # impersonation attempt
                    description=real.description,
                    checksums=piece_checksums(
                        fake_uri, real.num_pieces, self._payload_length
                    ),
                    size_bytes=real.num_pieces * PIECE_SIZE,
                    created_at=real.created_at,
                    ttl=real.ttl,
                    popularity=self._claimed_popularity,
                    signature="",  # cannot forge the publisher secret
                )
            )
        return FakeBatch(day=batch.day, metadata=fakes)
