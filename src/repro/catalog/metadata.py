"""Metadata records with publisher authentication.

A metadata record (§III-B) carries: (a) the file name, (b) the
publisher, (c) a human-readable description, (d) the file's URI,
(e) the checksums of its pieces, and (f) authentication information of
the metadata against fake publishers. We implement (f) as an HMAC over
the canonical serialization, keyed by a per-publisher secret held in a
:class:`PublisherRegistry` — a stand-in for real public-key signatures
that exercises the same accept/reject code path.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass, replace
from functools import cached_property
from typing import Dict, FrozenSet, Optional, Tuple

from repro.catalog.files import FileDescriptor, piece_checksums
from repro.types import Uri


class AuthenticationError(ValueError):
    """Raised when a metadata signature does not verify."""


@dataclass(frozen=True)
class Metadata:
    """Advertisement of a file, distributed independently of the file.

    ``signature`` is filled in by :func:`sign_metadata`; an unsigned
    record has ``signature=""`` and fails verification.
    """

    uri: Uri
    name: str
    publisher: str
    description: str
    checksums: Tuple[str, ...]
    size_bytes: int
    created_at: float
    ttl: float
    popularity: float = 0.0
    signature: str = ""

    @property
    def num_pieces(self) -> int:
        """Number of pieces the file has (one checksum per piece)."""
        return len(self.checksums)

    @property
    def expires_at(self) -> float:
        """Absolute expiry time of the advertised file."""
        return self.created_at + self.ttl

    @cached_property
    def token_set(self) -> FrozenSet[str]:
        """Tokenized name for keyword matching.

        Cached per record: query matching consults it once per
        (candidate, query) pair in the contact hot path, and the record
        is immutable, so tokenizing the name more than once is waste.
        """
        return frozenset(self.name.lower().split())

    def is_live(self, now: float) -> bool:
        """Whether the advertised file has not yet expired."""
        return now < self.expires_at

    def canonical_bytes(self) -> bytes:
        """Canonical serialization covered by the signature.

        Popularity is deliberately excluded: it is a mutable network
        statistic updated by the server, not part of the publisher's
        statement.
        """
        body = "|".join(
            (
                self.uri,
                self.name,
                self.publisher,
                self.description,
                ",".join(self.checksums),
                str(self.size_bytes),
                f"{self.created_at:.6f}",
                f"{self.ttl:.6f}",
            )
        )
        return body.encode()

    def with_popularity(self, popularity: float) -> "Metadata":
        """Return a copy with an updated popularity estimate."""
        return replace(self, popularity=popularity)


class PublisherRegistry:
    """Holds per-publisher signing secrets and trusted identities.

    Every node is assumed to know the trusted publishers (the paper's
    "well known organizations or companies, such as FOX and ABC").
    """

    def __init__(self, master_seed: int = 0) -> None:
        self._master_seed = master_seed
        self._secrets: Dict[str, bytes] = {}
        # Verification outcomes per record. Safe to memoize: records are
        # immutable and a registered publisher's secret never changes
        # (``register`` keeps existing secrets). Unknown-publisher
        # rejections are NOT cached — the publisher could register later.
        self._verify_cache: Dict["Metadata", bool] = {}

    def register(self, publisher: str) -> None:
        """Create (or keep) the signing secret of ``publisher``."""
        if publisher not in self._secrets:
            raw = f"publisher:{publisher}:{self._master_seed}".encode()
            self._secrets[publisher] = hashlib.sha256(raw).digest()

    def is_trusted(self, publisher: str) -> bool:
        return publisher in self._secrets

    def secret_for(self, publisher: str) -> bytes:
        """Return the signing secret; raises KeyError for unknown names."""
        return self._secrets[publisher]

    @property
    def publishers(self) -> Tuple[str, ...]:
        return tuple(sorted(self._secrets))


def sign_metadata(metadata: Metadata, registry: PublisherRegistry) -> Metadata:
    """Return a signed copy of ``metadata``.

    Raises
    ------
    KeyError
        If the publisher is not registered.
    """
    secret = registry.secret_for(metadata.publisher)
    signature = hmac.new(secret, metadata.canonical_bytes(), hashlib.sha256).hexdigest()
    return replace(metadata, signature=signature)


def verify_metadata(metadata: Metadata, registry: PublisherRegistry) -> bool:
    """Check the signature against the claimed publisher's secret.

    Returns ``False`` for unknown publishers, unsigned records and any
    field tampering — the fake-publisher defence of §III-B item (f).
    """
    if not registry.is_trusted(metadata.publisher) or not metadata.signature:
        return False
    cache = registry._verify_cache
    cached = cache.get(metadata)
    if cached is not None:
        return cached
    secret = registry.secret_for(metadata.publisher)
    expected = hmac.new(secret, metadata.canonical_bytes(), hashlib.sha256).hexdigest()
    ok = hmac.compare_digest(expected, metadata.signature)
    cache[metadata] = ok
    return ok


def metadata_for_file(
    descriptor: FileDescriptor,
    description: str,
    registry: Optional[PublisherRegistry] = None,
    payload_length: int = 64,
) -> Metadata:
    """Build (and optionally sign) the metadata of a file descriptor."""
    record = Metadata(
        uri=descriptor.uri,
        name=" ".join(descriptor.title_tokens),
        publisher=descriptor.publisher,
        description=description,
        checksums=piece_checksums(descriptor.uri, descriptor.num_pieces, payload_length),
        size_bytes=descriptor.size_bytes,
        created_at=descriptor.created_at,
        ttl=descriptor.ttl,
        popularity=descriptor.popularity,
    )
    if registry is not None:
        registry.register(descriptor.publisher)
        record = sign_metadata(record, registry)
    return record
