"""The paper's file-popularity model and server-side tracking.

Paper §VI-A: each file is generated with a popularity ``p`` — the
probability that each node is interested in it. The probability density
of popularity is ``λ·e^(−λx)`` truncated to [0, 1]; sampling uses the
inverse CDF

    p = −ln(1 − x·(1 − e^(−λ))) / λ,   x ~ U(0, 1),

whose mean is approximately ``1/λ`` for large λ. With ``λ = n/2`` and
``n`` new files per day, each node generates about ``n·(2/n) = 2``
queries per day, which is the paper's operating point.

The server side (§IV) maintains popularity as "the percentage of
Internet access nodes requesting the file of the metadata in the past
24 hours"; :class:`PopularityTracker` implements that sliding window.
"""

from __future__ import annotations

import math
import random
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterable, Tuple

from repro.types import DAY, NodeId, Uri


def sample_popularity(x: float, lam: float) -> float:
    """Inverse-CDF popularity sample for uniform variate ``x``.

    Parameters
    ----------
    x:
        Uniform variate in [0, 1).
    lam:
        Rate parameter λ > 0 of the truncated exponential.

    Returns
    -------
    float
        A popularity in [0, 1]; 0 maps to 0 and x→1 maps to 1.
    """
    if lam <= 0:
        raise ValueError(f"lambda must be positive, got {lam}")
    if not 0.0 <= x <= 1.0:
        raise ValueError(f"uniform variate must be in [0,1], got {x}")
    # Exactly, 1 − x·(1 − e^−λ) >= e^−λ; clamp to that bound so that
    # floating-point cancellation near x = 1 cannot push the log
    # argument to zero (the result is then exactly 1).
    argument = max(1.0 - x * (1.0 - math.exp(-lam)), math.exp(-lam))
    return min(-math.log(argument) / lam, 1.0)


def truncated_exponential_mean(lam: float) -> float:
    """Exact mean of the popularity distribution (≈ 1/λ for large λ)."""
    if lam <= 0:
        raise ValueError(f"lambda must be positive, got {lam}")
    z = 1.0 - math.exp(-lam)
    return 1.0 / lam - math.exp(-lam) / z


@dataclass(frozen=True)
class PopularityModel:
    """Sampler for file popularities at a given λ.

    The paper sets ``λ = n/2`` for ``n`` files generated per day so
    that nodes average two queries per day; use
    :meth:`for_files_per_day` to get that coupling.
    """

    lam: float

    def __post_init__(self) -> None:
        if self.lam <= 0:
            raise ValueError(f"lambda must be positive, got {self.lam}")

    @classmethod
    def for_files_per_day(cls, files_per_day: int, queries_per_node_per_day: float = 2.0) -> "PopularityModel":
        """λ chosen so each node averages the given queries/day.

        Mean popularity ≈ 1/λ, so expected queries/day = n/λ. Solving
        for λ gives ``λ = n / queries_per_day`` (the paper's λ = n/2).
        """
        if files_per_day < 1:
            raise ValueError("need at least one file per day")
        if queries_per_node_per_day <= 0:
            raise ValueError("queries per day must be positive")
        return cls(lam=files_per_day / queries_per_node_per_day)

    def sample(self, rng: random.Random) -> float:
        """Draw one popularity value."""
        return sample_popularity(rng.random(), self.lam)

    def sample_many(self, rng: random.Random, count: int) -> Tuple[float, ...]:
        """Draw ``count`` popularity values."""
        return tuple(self.sample(rng) for __ in range(count))

    @property
    def mean(self) -> float:
        """Exact mean popularity."""
        return truncated_exponential_mean(self.lam)


class PopularityTracker:
    """Sliding-window request counter kept by the metadata server.

    ``record_request`` logs that an Internet-access node asked for a
    file; ``popularity_of`` returns the fraction of the access-node
    population that requested it within the last window (24 h by
    default) — the paper's suggested server-side definition (§IV-A).
    """

    def __init__(self, population: int, window: float = DAY) -> None:
        if population < 1:
            raise ValueError("population must be at least 1")
        if window <= 0:
            raise ValueError("window must be positive")
        self._population = population
        self._window = window
        self._requests: Dict[Uri, Deque[Tuple[float, NodeId]]] = {}

    def record_request(self, uri: Uri, node: NodeId, now: float) -> None:
        """Log a request by ``node`` for ``uri`` at time ``now``."""
        self._requests.setdefault(uri, deque()).append((now, node))

    def _prune(self, uri: Uri, now: float) -> None:
        queue = self._requests.get(uri)
        if not queue:
            return
        cutoff = now - self._window
        while queue and queue[0][0] < cutoff:
            queue.popleft()

    def popularity_of(self, uri: Uri, now: float) -> float:
        """Fraction of the population requesting ``uri`` in the window."""
        self._prune(uri, now)
        queue = self._requests.get(uri)
        if not queue:
            return 0.0
        distinct = {node for __, node in queue}
        return min(1.0, len(distinct) / self._population)

    def snapshot(self, uris: Iterable[Uri], now: float) -> Dict[Uri, float]:
        """Popularity estimates for many URIs at once."""
        return {uri: self.popularity_of(uri, now) for uri in uris}
