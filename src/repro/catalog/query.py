"""Keyword queries and matching semantics.

A query is the string a user types into the file-discovery process
(§III-B). We model it as a token set; a query *matches* a metadata when
every query token appears in the metadata's name tokens (classic
conjunctive keyword search). Queries carry their origin node and expiry
so delivery bookkeeping and TTL eviction are possible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Optional

from repro.catalog.metadata import Metadata
from repro.types import NodeId, Uri


@dataclass(frozen=True)
class Query:
    """A user's standing keyword query.

    Attributes
    ----------
    node:
        The node whose user issued the query.
    tokens:
        Conjunctive keyword set.
    target_uri:
        The file the user is actually after. Matching is still done by
        keywords — several metadata may match — but delivery metrics
        are judged against this ground-truth target.
    created_at, expires_at:
        Lifetime; a query dies with its target file's TTL.
    """

    node: NodeId
    tokens: FrozenSet[str]
    target_uri: Uri
    created_at: float
    expires_at: float

    def __post_init__(self) -> None:
        if not self.tokens:
            raise ValueError("query needs at least one token")
        if self.expires_at <= self.created_at:
            raise ValueError("query must expire after creation")

    def is_live(self, now: float) -> bool:
        """Whether the query is still standing at ``now``."""
        return self.created_at <= now < self.expires_at

    def matches(self, metadata: Metadata) -> bool:
        """Conjunctive keyword match against a metadata record."""
        return self.tokens <= metadata.token_set


def matches(tokens: FrozenSet[str], metadata: Metadata) -> bool:
    """Module-level matching helper (tokens ⊆ metadata name tokens)."""
    return tokens <= metadata.token_set


def live_queries(queries: Iterable[Query], now: float) -> List[Query]:
    """Filter ``queries`` down to those still live at ``now``."""
    return [q for q in queries if q.is_live(now)]


def best_match(
    queries: Iterable[Query], metadata: Metadata
) -> Optional[Query]:
    """Return the first query satisfied by ``metadata``, if any."""
    for query in queries:
        if query.matches(metadata):
            return query
    return None
