"""Deterministic keyword vocabulary for file names and queries.

File discovery in the paper is a *keyword search* over metadata
(§I, §III-B): users type query strings and the discovery process
returns matching metadata. To exercise that code path with realistic
structure, every generated file gets a name composed of tokens drawn
from a fixed media-flavoured vocabulary; queries are token subsets.
"""

from __future__ import annotations

import random
from typing import FrozenSet, List, Sequence, Tuple

#: Publishers from the paper's motivating example (§III-B) plus filler.
PUBLISHERS: Tuple[str, ...] = (
    "fox",
    "abc",
    "nbc",
    "cbs",
    "bbc",
    "cnn",
    "espn",
    "mtv",
)

_GENRES: Tuple[str, ...] = (
    "news", "drama", "comedy", "sports", "music", "documentary",
    "talkshow", "anime", "thriller", "reality", "sitcom", "science",
)
_SUBJECTS: Tuple[str, ...] = (
    "island", "city", "campus", "ocean", "desert", "mountain",
    "election", "finals", "league", "galaxy", "market", "jungle",
    "harbor", "festival", "orchestra", "robot", "dynasty", "frontier",
)
_QUALIFIERS: Tuple[str, ...] = (
    "live", "special", "finale", "premiere", "classic", "extended",
    "remastered", "uncut", "highlights", "recap", "pilot", "bonus",
)


class KeywordVocabulary:
    """Deterministic generator of file names, descriptions and queries.

    All sampling goes through a private :class:`random.Random`, so a
    given seed reproduces the same catalog every run.
    """

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed ^ 0x5EEDC0DE)

    def publisher(self) -> str:
        """Pick a publisher name."""
        return self._rng.choice(PUBLISHERS)

    def title_tokens(self, episode: int) -> Tuple[str, ...]:
        """Compose the tokenized title of a new file.

        Titles look like ``("sports", "harbor", "finale", "s03e07")`` —
        a genre, a subject, a qualifier and an episode tag. The episode
        tag makes every title unique; the leading tokens deliberately
        collide across files so that keyword queries can match several
        metadata (the "similar names" problem of §I).
        """
        genre = self._rng.choice(_GENRES)
        subject = self._rng.choice(_SUBJECTS)
        qualifier = self._rng.choice(_QUALIFIERS)
        season = 1 + episode // 24
        tag = f"s{season:02d}e{episode % 24 + 1:02d}"
        return (genre, subject, qualifier, tag)

    def description(self, title_tokens: Sequence[str], publisher: str) -> str:
        """Produce a short advertisement-style description."""
        pretty = " ".join(t.capitalize() for t in title_tokens[:-1])
        return f"{pretty} ({title_tokens[-1]}) — presented by {publisher.upper()}."

    def query_tokens_for(self, title_tokens: Sequence[str]) -> FrozenSet[str]:
        """Build the query a user would type to find this file.

        Users rarely type the full exact title; we model a query as the
        unique episode tag plus one or two of the descriptive tokens.
        The tag guarantees the query matches its target file, while the
        extra tokens exercise multi-token subset matching.
        """
        extras = self._rng.sample(list(title_tokens[:-1]), self._rng.randint(1, 2))
        return frozenset([title_tokens[-1], *extras])


def tokenize(text: str) -> FrozenSet[str]:
    """Lower-case and split free text into a token set."""
    return frozenset(token for token in text.lower().split() if token)


def all_vocabulary_tokens() -> List[str]:
    """Every descriptive token the vocabulary can emit (no episode tags)."""
    return sorted(set(_GENRES) | set(_SUBJECTS) | set(_QUALIFIERS))
