"""Struct-of-arrays mirror of every node's hot protocol state.

The per-contact hot path (clique views, candidate building, wanted-set
refreshes) spends its time scanning per-object Python state: dicts of
:class:`~repro.catalog.metadata.Metadata` records and per-URI bitmap
ints. :class:`NodeStateArrays` keeps the *scan-relevant* projection of
that state in numpy arrays — one row per node, one column per interned
URI — so the array core (:mod:`repro.core.arraycore`) can answer "who
holds what, live, complete?" for a whole clique with a handful of
vectorized operations instead of a Python loop over every record of
every member.

Layout
------
* ``pop[node_row, uri_col]`` — ``float64``, the popularity of the
  node's stored copy of that URI, or ``-1.0`` when the node does not
  hold it (legal popularities live in ``[0, 1]``, so the sentinel is
  unambiguous). ``pop >= 0`` *is* the held-matrix.
* ``bits[node_row, uri_col]`` — ``uint64``, the node's piece bitmap
  for that URI (bit *i* set = piece *i* stored), mirroring
  :class:`~repro.catalog.files.PieceStore` exactly.
* per-URI columns ``expires_at`` (``float64``) and ``num_pieces``
  (``int64``), plus an inverted token→URI-id postings map and a
  memoized conjunctive-match cache keyed by query token sets.

Synchronisation
---------------
The arrays are written *only* through tiny observers attached to each
node's :class:`~repro.core.node.MetadataStore` and
:class:`~repro.catalog.files.PieceStore` (see :meth:`attach`). The
object stores remain the source of truth; the arrays are a derived
index, exactly like the stores' own token indexes.

Coherence
---------
The array layout assumes what the simulation guarantees: all copies of
a URI share identity fields (tokens, creation time, TTL, piece count —
only popularity drifts), and files have at most 64 pieces (one
``uint64`` lane). State that violates either assumption — possible in
adversarial unit tests, not in simulation runs — flips
:attr:`coherent` to ``False``; every consumer checks the flag and
falls back to the object-path builders, which are equivalent by
construction, so results are unaffected.

numpy is a declared dependency but the import is guarded: without it
the module still imports, ``HAVE_NUMPY`` is ``False``, and
constructing :class:`NodeStateArrays` raises an informative error
(``core="object"``, the default, never touches this module).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.catalog.metadata import Metadata
from repro.types import NodeId, Uri

try:  # pragma: no cover - exercised via HAVE_NUMPY in tests
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None  # type: ignore[assignment]

HAVE_NUMPY = _np is not None

#: One uint64 lane per (node, URI): files with more pieces fall back
#: to the object path (the generator's 256 KB pieces make >64-piece
#: files a 16 MB+ corner the evaluation never exercises).
MAX_PIECE_BITS = 64

_MISSING_NUMPY = (
    "core='array' requires numpy, which is not importable in this "
    "environment; install the 'numpy' dependency or run with the "
    "default core='object'"
)


def require_numpy() -> None:
    """Raise an informative error when numpy is unavailable."""
    if not HAVE_NUMPY:
        raise RuntimeError(_MISSING_NUMPY)


def popcount_u64(values: "_np.ndarray") -> "_np.ndarray":
    """Per-element population count of a ``uint64`` array (as int64)."""
    if hasattr(_np, "bitwise_count"):  # numpy >= 2.0
        return _np.bitwise_count(values).astype(_np.int64)
    # SWAR fallback for older numpy (parallel bit-count in 64-bit lanes).
    v = values.astype(_np.uint64)
    v = v - ((v >> _np.uint64(1)) & _np.uint64(0x5555555555555555))
    v = (v & _np.uint64(0x3333333333333333)) + (
        (v >> _np.uint64(2)) & _np.uint64(0x3333333333333333)
    )
    v = (v + (v >> _np.uint64(4))) & _np.uint64(0x0F0F0F0F0F0F0F0F)
    return ((v * _np.uint64(0x0101010101010101)) >> _np.uint64(56)).astype(_np.int64)


class _MetadataObserver:
    """Forwards one node's metadata-store mutations into the arrays."""

    __slots__ = ("_arrays", "_row")

    def __init__(self, arrays: "NodeStateArrays", row: int) -> None:
        self._arrays = arrays
        self._row = row

    def added(self, record: Metadata) -> None:
        self._arrays.md_added(self._row, record)

    def removed(self, uri: Uri) -> None:
        self._arrays.md_removed(self._row, uri)

    def cleared(self) -> None:
        self._arrays.md_cleared(self._row)


class _PieceObserver:
    """Forwards one node's piece-store mutations into the arrays."""

    __slots__ = ("_arrays", "_row")

    def __init__(self, arrays: "NodeStateArrays", row: int) -> None:
        self._arrays = arrays
        self._row = row

    def changed(self, uri: Uri, bitmap: int) -> None:
        self._arrays.pieces_set(self._row, uri, bitmap)

    def cleared(self) -> None:
        self._arrays.pieces_cleared(self._row)


class NodeStateArrays:
    """Run-global numpy mirror of all nodes' stores (see module docstring)."""

    def __init__(self, nodes: Sequence[NodeId], initial_capacity: int = 256) -> None:
        require_numpy()
        self.nodes: Tuple[NodeId, ...] = tuple(nodes)
        self._row_of: Dict[NodeId, int] = {n: i for i, n in enumerate(self.nodes)}
        if len(self._row_of) != len(self.nodes):
            raise ValueError("duplicate node ids")
        n = len(self.nodes)
        cap = max(1, initial_capacity)
        self._cap = cap
        #: Number of interned URIs; doubles as the match-cache version.
        self.size = 0
        self._uris: List[Uri] = []
        self._id_of: Dict[Uri, int] = {}
        self.expires_at = _np.full(cap, -_np.inf, dtype=_np.float64)
        self.num_pieces = _np.zeros(cap, dtype=_np.int64)
        #: Identity fields of each URI's first-seen record, for the
        #: coherence check (None until a metadata record is seen).
        self._fields: List[Optional[Tuple[float, float, int, FrozenSet[str]]]] = []
        self.pop = _np.full((n, cap), -1.0, dtype=_np.float64)
        self.bits = _np.zeros((n, cap), dtype=_np.uint64)
        self._postings: Dict[str, Set[int]] = {}
        #: tokens -> (version, sorted id array, id set); stale entries
        #: are recomputed when new URIs have been interned since.
        self._match_cache: Dict[
            FrozenSet[str], Tuple[int, "_np.ndarray", FrozenSet[int]]
        ] = {}
        self.coherent = True
        self.incoherence_reason: Optional[str] = None

    # -- wiring ---------------------------------------------------------------

    @classmethod
    def adopt(cls, states: Mapping[NodeId, "NodeState"]) -> "NodeStateArrays":  # noqa: F821
        """Build arrays over ``states`` and attach + backfill every node."""
        arrays = cls(sorted(states))
        for node in arrays.nodes:
            arrays.attach(node, states[node])
        return arrays

    def attach(self, node: NodeId, state: "NodeState") -> None:  # noqa: F821
        """Hook one node's stores into the arrays and backfill them."""
        row = self._row_of[node]
        state.attach_accel(self, row)
        state.metadata.set_observer(_MetadataObserver(self, row))
        state.pieces.set_observer(_PieceObserver(self, row))
        for record in state.metadata.records():
            self.md_added(row, record)
        for uri in state.pieces.iter_uris():
            self.pieces_set(row, uri, state.pieces.bitmap_of(uri))

    def row_of(self, node: NodeId) -> int:
        return self._row_of[node]

    def uri_of(self, uri_id: int) -> Uri:
        return self._uris[uri_id]

    def id_of(self, uri: Uri) -> Optional[int]:
        return self._id_of.get(uri)

    # -- interning ------------------------------------------------------------

    def _grow(self, needed: int) -> None:
        cap = self._cap
        while cap < needed:
            cap *= 2
        pad = cap - self._cap
        self.expires_at = _np.concatenate(
            [self.expires_at, _np.full(pad, -_np.inf, dtype=_np.float64)]
        )
        self.num_pieces = _np.concatenate(
            [self.num_pieces, _np.zeros(pad, dtype=_np.int64)]
        )
        n = len(self.nodes)
        self.pop = _np.concatenate(
            [self.pop, _np.full((n, pad), -1.0, dtype=_np.float64)], axis=1
        )
        self.bits = _np.concatenate(
            [self.bits, _np.zeros((n, pad), dtype=_np.uint64)], axis=1
        )
        self._cap = cap

    def _intern(self, uri: Uri) -> int:
        uri_id = self._id_of.get(uri)
        if uri_id is not None:
            return uri_id
        uri_id = self.size
        if uri_id >= self._cap:
            self._grow(uri_id + 1)
        self._id_of[uri] = uri_id
        self._uris.append(uri)
        self._fields.append(None)
        self.size = uri_id + 1
        return uri_id

    def _set_fields(self, uri_id: int, record: Metadata) -> bool:
        """Pin the URI's identity fields from its first-seen record."""
        if record.num_pieces > MAX_PIECE_BITS:
            self.mark_incoherent(
                f"{record.uri} has {record.num_pieces} pieces (> {MAX_PIECE_BITS})"
            )
            return False
        self._fields[uri_id] = (
            record.created_at,
            record.ttl,
            record.num_pieces,
            record.token_set,
        )
        self.expires_at[uri_id] = record.expires_at
        self.num_pieces[uri_id] = record.num_pieces
        for token in record.token_set:
            self._postings.setdefault(token, set()).add(uri_id)
        return True

    def mark_incoherent(self, reason: str) -> None:
        """Permanently disable the array fast path for this run."""
        if self.coherent:
            self.coherent = False
            self.incoherence_reason = reason

    # -- observer events ------------------------------------------------------

    def md_added(self, row: int, record: Metadata) -> None:
        if not self.coherent:
            return
        uri_id = self._intern(record.uri)
        fields = self._fields[uri_id]
        if fields is None:
            if not self._set_fields(uri_id, record):
                return
        elif fields != (
            record.created_at,
            record.ttl,
            record.num_pieces,
            record.token_set,
        ):
            self.mark_incoherent(
                f"copies of {record.uri} disagree on identity fields"
            )
            return
        self.pop[row, uri_id] = record.popularity

    def md_removed(self, row: int, uri: Uri) -> None:
        if not self.coherent:
            return
        uri_id = self._id_of.get(uri)
        if uri_id is not None:
            self.pop[row, uri_id] = -1.0

    def md_cleared(self, row: int) -> None:
        if not self.coherent:
            return
        self.pop[row, : self.size] = -1.0

    def pieces_set(self, row: int, uri: Uri, bitmap: int) -> None:
        if not self.coherent:
            return
        if bitmap >> MAX_PIECE_BITS:
            self.mark_incoherent(
                f"piece bitmap of {uri} exceeds {MAX_PIECE_BITS} bits"
            )
            return
        uri_id = self._intern(uri)
        self.bits[row, uri_id] = bitmap

    def pieces_cleared(self, row: int) -> None:
        if not self.coherent:
            return
        self.bits[row, : self.size] = 0

    # -- queries --------------------------------------------------------------

    def match_ids(self, tokens: FrozenSet[str]) -> Tuple["_np.ndarray", FrozenSet[int]]:
        """URI ids whose records match the conjunctive token set.

        The global analogue of ``MetadataStore.matching_uris`` /
        ``CliqueView.matching_uris``: an intersection of per-token
        posting sets over *all interned URIs* (liveness and holdership
        are the caller's concern). Memoized per token set; entries are
        recomputed when new URIs have been interned since (queries
        repeat across contacts far more often than the catalog grows).
        """
        version = self.size
        cached = self._match_cache.get(tokens)
        if cached is not None and cached[0] == version:
            return cached[1], cached[2]
        if not tokens:
            ids: List[int] = list(range(version))
        else:
            postings = []
            smallest: Optional[Set[int]] = None
            for token in tokens:
                posting = self._postings.get(token)
                if not posting:
                    postings = []
                    smallest = set()
                    break
                postings.append(posting)
            if smallest is None:
                postings.sort(key=len)
                smallest = set(postings[0])
                for posting in postings[1:]:
                    smallest &= posting
                    if not smallest:
                        break
            ids = sorted(smallest)
        arr = _np.array(ids, dtype=_np.int64)
        entry = (version, arr, frozenset(ids))
        self._match_cache[tokens] = entry
        return arr, entry[2]

    def wanted_uris(
        self, row: int, token_sets: Iterable[FrozenSet[str]], now: float
    ) -> FrozenSet[Uri]:
        """Vectorized wanted-set: matched ∩ held ∩ live ∩ incomplete.

        Array twin of the scan in ``NodeState.wanted_uris`` (selection
        policy ``"all"``): the union over the node's query token sets
        of the URIs it holds a live, incomplete record for. The caller
        maintains the memo and the parity counters.
        """
        ids: Set[int] = set()
        for tokens in token_sets:
            __, match = self.match_ids(tokens)
            if match:
                ids |= match
        if not ids:
            return frozenset()
        arr = _np.fromiter(sorted(ids), dtype=_np.int64, count=len(ids))
        mask = (self.pop[row, arr] >= 0.0) & (self.expires_at[arr] > now)
        arr = arr[mask]
        if arr.size:
            held = popcount_u64(self.bits[row, arr])
            arr = arr[held < self.num_pieces[arr]]
        uris = self._uris
        return frozenset(uris[i] for i in arr.tolist())
