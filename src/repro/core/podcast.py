"""Channel-based opportunistic podcasting baseline (§II-C related work).

The content-distribution systems the paper compares against (wireless
opportunistic podcasting — refs [3], [17]; urban content distribution —
ref [5]) are *receiver-driven* and *channel-based*: users subscribe to
feeds (here: publishers), and on contact a node pulls from its peer the
entries of subscribed channels it lacks, then caches popular foreign
entries with leftover capacity. There is no query/metadata discovery
step — which is precisely the gap the paper's MBT fills.

This module implements that baseline over the same traces, catalog and
metrics so the two designs are directly comparable on the paper's
workload: a node "subscribes" to a publisher the first time one of its
queries targets that publisher's file, entries travel as whole files
(with their metadata attached, as in those systems), and delivery of a
query is still judged against the ground-truth target file.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List

from repro.catalog.generator import CatalogConfig, CatalogGenerator
from repro.catalog.metadata import Metadata
from repro.sim.engine import Simulator
from repro.sim.metrics import MetricsCollector, SimulationResult
from repro.traces.base import Contact, ContactTrace
from repro.types import DAY, NodeId, Uri, noon_of_day


@dataclass(frozen=True)
class PodcastConfig:
    """Parameters of the podcasting baseline."""

    internet_access_fraction: float = 0.3
    files_per_day: int = 40
    ttl_days: float = 3.0
    #: Whole-entry transmissions per contact (matches MBT's piece
    #: budget for a fair comparison at one piece per file).
    entries_per_contact: int = 3
    #: Maximum channels a node subscribes to.
    max_subscriptions: int = 8
    queries_per_node_per_day: float = 2.0
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.internet_access_fraction <= 1.0:
            raise ValueError("internet_access_fraction must be in [0, 1]")
        if self.entries_per_contact < 0:
            raise ValueError("entries_per_contact must be non-negative")
        if self.max_subscriptions < 1:
            raise ValueError("max_subscriptions must be >= 1")

    def catalog_config(self) -> CatalogConfig:
        return CatalogConfig(
            files_per_day=self.files_per_day,
            ttl_days=self.ttl_days,
            pieces_per_file=1,
            queries_per_node_per_day=self.queries_per_node_per_day,
        )


@dataclass
class _PodcastNode:
    """Per-node state: channel subscriptions and cached entries."""

    node: NodeId
    internet_access: bool
    subscriptions: List[str] = field(default_factory=list)
    entries: Dict[Uri, Metadata] = field(default_factory=dict)

    def subscribe(self, channel: str, cap: int) -> None:
        if channel not in self.subscriptions and len(self.subscriptions) < cap:
            self.subscriptions.append(channel)

    def holds(self, uri: Uri) -> bool:
        return uri in self.entries

    def live_entries(self, now: float) -> List[Metadata]:
        # detlint: ignore[DET002] -- insertion-ordered dict: entries are
        # stored in deterministic sync order, which the podcast exchange
        # budget deliberately preserves (oldest subscription first).
        return [e for e in self.entries.values() if e.is_live(now)]

    def expire(self, now: float) -> None:
        dead = [uri for uri, e in self.entries.items() if not e.is_live(now)]
        for uri in dead:
            del self.entries[uri]


class PodcastSimulation:
    """The podcasting baseline over a contact trace."""

    def __init__(self, trace: ContactTrace, config: PodcastConfig) -> None:
        if trace.num_nodes < 2:
            raise ValueError("trace must involve at least two nodes")
        self.trace = trace
        self.config = config
        rng = random.Random(config.seed)
        nodes = list(trace.nodes)
        count = min(len(nodes), round(config.internet_access_fraction * len(nodes)))
        self._access_nodes: FrozenSet[NodeId] = frozenset(rng.sample(nodes, count))
        self._states: Dict[NodeId, _PodcastNode] = {
            node: _PodcastNode(node=node, internet_access=node in self._access_nodes)
            for node in nodes
        }
        self._generator = CatalogGenerator(
            config.catalog_config(), nodes, seed=config.seed
        )
        self._published: Dict[Uri, Metadata] = {}
        self._metrics = MetricsCollector()

    @property
    def access_nodes(self) -> FrozenSet[NodeId]:
        return self._access_nodes

    @property
    def metrics(self) -> MetricsCollector:
        return self._metrics

    # -- daily workload ----------------------------------------------------------------

    def _on_noon(self, day: int, noon: float) -> None:
        self._published = {
            uri: record
            for uri, record in self._published.items()
            if record.is_live(noon)
        }
        for node in sorted(self._states):
            self._states[node].expire(noon)
        batch = self._generator.generate_day(day, noon)
        by_uri = {record.uri: record for record in batch.metadata}
        self._published.update(by_uri)
        for query in batch.queries:
            state = self._states[query.node]
            self._metrics.register_query(query, access_node=state.internet_access)
            # Receiver-driven subscription: interest in a file means
            # subscribing to its publisher's channel.
            publisher = by_uri[query.target_uri].publisher
            state.subscribe(publisher, self.config.max_subscriptions)
        # Access nodes sync: fetch all live entries of their channels.
        for node in sorted(self._access_nodes):
            self._sync(self._states[node], noon)

    def _sync(self, state: _PodcastNode, now: float) -> None:
        # detlint: ignore[DET002] -- insertion-ordered dict: publications
        # land in deterministic daily-batch order, and the sync stores
        # entries in that order on purpose (mirrors the feed timeline).
        for record in self._published.values():
            if record.publisher in state.subscriptions and record.is_live(now):
                if not state.holds(record.uri):
                    state.entries[record.uri] = record
                    self._metrics.on_metadata(state.node, record.uri, now)
                    self._metrics.on_file_complete(state.node, record.uri, now)

    # -- contacts ----------------------------------------------------------------------

    def _on_contact(self, contact: Contact, now: float) -> None:
        """Pair-wise, receiver-driven entry exchange."""
        budget = self.config.entries_per_contact
        for u, v in contact.pairs():
            for receiver_id, sender_id in ((u, v), (v, u)):
                self._pull(
                    self._states[receiver_id], self._states[sender_id], now, budget
                )

    def _pull(
        self, receiver: _PodcastNode, sender: _PodcastNode, now: float, budget: int
    ) -> None:
        if budget <= 0:
            return
        available = [
            e for e in sender.live_entries(now) if not receiver.holds(e.uri)
        ]
        # Subscribed channels first, newest first; then popular caching.
        subscribed = [e for e in available if e.publisher in receiver.subscriptions]
        others = [e for e in available if e.publisher not in receiver.subscriptions]
        subscribed.sort(key=lambda e: (-e.created_at, e.uri))
        others.sort(key=lambda e: (-e.popularity, e.uri))
        for record in (subscribed + others)[:budget]:
            receiver.entries[record.uri] = record
            self._metrics.count_piece_transmission()
            self._metrics.on_metadata(receiver.node, record.uri, now)
            self._metrics.on_file_complete(receiver.node, record.uri, now)

    # -- execution ---------------------------------------------------------------------

    def num_days(self) -> int:
        return max(1, int(-(-self.trace.duration // DAY)))

    def run(self) -> SimulationResult:
        sim = Simulator()
        days = self.num_days()
        horizon = days * DAY
        for day in range(days):
            noon = noon_of_day(day)
            sim.schedule(noon, self._make_noon(day, noon), priority=0)
        for contact in self.trace:
            if contact.start >= horizon:
                break
            sim.schedule(contact.start, self._make_contact(contact), priority=1)
        sim.run(until=horizon)
        return self._metrics.result({"num_days": float(days)})

    def _make_noon(self, day: int, noon: float):
        return lambda: self._on_noon(day, noon)

    def _make_contact(self, contact: Contact):
        return lambda: self._on_contact(contact, contact.start)
