"""Broadcast-based file download: piece selection policies (§V).

After discovery, the clique spends its piece budget. Candidate
transmissions are (file, piece-index) pairs somebody holds and somebody
lacks:

* **Cooperative** (§V-A): pieces requested by nodes in the clique go
  first — those requested by *more* nodes first, decreasing file
  popularity breaking ties; then the remaining pieces in decreasing
  popularity.
* **Tit-for-tat** (§V-B): the same credit mechanism as discovery —
  candidates weighed by the sum of the sender's credits for the
  requesting nodes.

A node "requests" a URI when it advertises it in the *downloading*
field of its hello, i.e. it holds a metadata matching one of its own
queries and the file is incomplete.

Every piece carries its file's metadata (needed for checksum
verification by receivers that lack it); in MBT-QM this piggyback is
the *only* way metadata spread.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Sequence, Set, Tuple

from repro.catalog.metadata import Metadata
from repro.core.node import NodeState
from repro.types import NodeId, Uri


@dataclass(frozen=True)
class PieceCandidate:
    """One piece transmission the clique could schedule.

    Attributes
    ----------
    metadata:
        The file's metadata (source of checksum and popularity).
    index:
        Piece index within the file.
    holders:
        Members holding this piece *and* the file's metadata.
    requesters:
        Members downloading the URI that lack this piece.
    missing:
        All members lacking this piece.
    """

    metadata: Metadata
    index: int
    holders: FrozenSet[NodeId]
    requesters: FrozenSet[NodeId]
    missing: FrozenSet[NodeId]

    @property
    def uri(self) -> Uri:
        return self.metadata.uri

    @property
    def requested(self) -> bool:
        return bool(self.requesters)


def advertised_downloads(
    states: Mapping[NodeId, NodeState], now: float
) -> Dict[NodeId, FrozenSet[Uri]]:
    """URIs each member advertises as downloading in its hello."""
    return {node: state.wanted_uris(now) for node, state in states.items()}


def build_piece_candidates(
    states: Mapping[NodeId, NodeState],
    now: float,
) -> List[PieceCandidate]:
    """Enumerate every useful piece transmission in the clique.

    A sender must hold both the piece and the file's metadata (the
    checksums travel with the piece). Requesters come from the
    downloading URIs advertised in hellos.
    """
    downloads = advertised_downloads(states, now)
    members = frozenset(states)

    # Which live metadata does each member hold (for send eligibility)?
    metadata_by_uri: Dict[Uri, Metadata] = {}
    md_holders: Dict[Uri, Set[NodeId]] = {}
    for node, state in states.items():
        for record in state.metadata.records():
            if record.is_live(now):
                metadata_by_uri[record.uri] = record
                md_holders.setdefault(record.uri, set()).add(node)

    piece_holders: Dict[Tuple[Uri, int], Set[NodeId]] = {}
    for node, state in states.items():
        for uri in state.pieces.uris:
            if uri not in metadata_by_uri:
                continue  # no metadata anywhere in the clique: unservable
            for index in state.pieces.pieces_of(uri):
                piece_holders.setdefault((uri, index), set()).add(node)

    candidates: List[PieceCandidate] = []
    for (uri, index), holders in piece_holders.items():
        record = metadata_by_uri[uri]
        eligible_senders = frozenset(holders & md_holders.get(uri, set()))
        if not eligible_senders:
            continue
        missing = frozenset(
            node
            for node in members
            if index not in states[node].pieces.pieces_of(uri)
        )
        if not missing:
            continue
        requesters = frozenset(
            node for node in missing if uri in downloads[node]
        )
        candidates.append(
            PieceCandidate(
                metadata=record,
                index=index,
                holders=eligible_senders,
                requesters=requesters,
                missing=missing,
            )
        )
    return candidates


def cooperative_rank_key(candidate: PieceCandidate) -> Tuple:
    """Two-phase cooperative order (§V-A)."""
    phase = 0 if candidate.requested else 1
    return (
        phase,
        -len(candidate.requesters),
        -candidate.metadata.popularity,
        candidate.uri,
        candidate.index,
    )


def tit_for_tat_rank_key(candidate: PieceCandidate, sender: NodeState) -> Tuple:
    """Credit-weighted order for a specific sender (§V-B)."""
    weight = sender.credits.weight_of_requesters(candidate.requesters)
    phase = 0 if candidate.requested else 1
    return (
        -weight,
        phase,
        -candidate.metadata.popularity,
        candidate.uri,
        candidate.index,
    )


def select_cooperative(candidates: Sequence[PieceCandidate]) -> List[PieceCandidate]:
    """Globally rank piece candidates for the coordinator (§V-A)."""
    return sorted(candidates, key=cooperative_rank_key)


def select_for_sender(
    candidates: Sequence[PieceCandidate],
    sender: NodeState,
    tit_for_tat: bool,
) -> List[PieceCandidate]:
    """Rank the piece candidates a given sender can transmit."""
    own = [c for c in candidates if sender.node in c.holders]
    if tit_for_tat:
        return sorted(own, key=lambda c: tit_for_tat_rank_key(c, sender))
    return sorted(own, key=cooperative_rank_key)
