"""Broadcast-based file download: piece selection policies (§V).

After discovery, the clique spends its piece budget. Candidate
transmissions are (file, piece-index) pairs somebody holds and somebody
lacks:

* **Cooperative** (§V-A): pieces requested by nodes in the clique go
  first — those requested by *more* nodes first, decreasing file
  popularity breaking ties; then the remaining pieces in decreasing
  popularity.
* **Tit-for-tat** (§V-B): the same credit mechanism as discovery —
  candidates weighed by the sum of the sender's credits for the
  requesting nodes.

A node "requests" a URI when it advertises it in the *downloading*
field of its hello, i.e. it holds a metadata matching one of its own
queries and the file is incomplete.

Every piece carries its file's metadata (needed for checksum
verification by receivers that lack it); in MBT-QM this piggyback is
the *only* way metadata spread.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Set, Tuple

from repro.catalog.files import bit_indices
from repro.catalog.metadata import Metadata
from repro.core.cliqueview import CliqueView
from repro.core.node import NodeState
from repro.types import NodeId, Uri


@dataclass(frozen=True)
class PieceCandidate:
    """One piece transmission the clique could schedule.

    Attributes
    ----------
    metadata:
        The file's metadata (source of checksum and popularity).
    index:
        Piece index within the file.
    holders:
        Members holding this piece *and* the file's metadata.
    requesters:
        Members downloading the URI that lack this piece.
    missing:
        All members lacking this piece.
    """

    metadata: Metadata
    index: int
    holders: FrozenSet[NodeId]
    requesters: FrozenSet[NodeId]
    missing: FrozenSet[NodeId]

    @property
    def uri(self) -> Uri:
        return self.metadata.uri

    @property
    def requested(self) -> bool:
        return bool(self.requesters)


def advertised_downloads(
    states: Mapping[NodeId, NodeState], now: float
) -> Dict[NodeId, FrozenSet[Uri]]:
    """URIs each member advertises as downloading in its hello."""
    return {node: state.wanted_uris(now) for node, state in states.items()}


def build_piece_candidates(
    states: Mapping[NodeId, NodeState],
    now: float,
    view: Optional[CliqueView] = None,
) -> List[PieceCandidate]:
    """Enumerate every useful piece transmission in the clique.

    A sender must hold both the piece and the file's metadata (the
    checksums travel with the piece). Requesters come from the
    downloading URIs advertised in hellos.

    The clique's metadata side (live URIs, canonical records, holder
    sets) comes from ``view`` — built on demand when absent, shared
    with the discovery phase by the protocol engine — and per-piece
    membership is computed with the stores' bitmaps: one ``int`` per
    (member, URI), combined bitwise instead of per-index set algebra.
    """
    if view is None:
        view = CliqueView(states, now)
    downloads = advertised_downloads(states, now)
    members = frozenset(states)
    member_list = list(states)

    candidates: List[PieceCandidate] = []
    for uri, record in view.record_by_uri.items():
        holder_bitmaps = []
        union = 0
        for node in member_list:
            bitmap = states[node].pieces.bitmap_of(uri)
            if bitmap:
                holder_bitmaps.append((node, bitmap))
                union |= bitmap
        if not union:
            continue
        eligible_pool = view.md_holders[uri]
        wanting = [node for node in member_list if uri in downloads[node]]
        for index in bit_indices(union):
            mask = 1 << index
            holders = {node for node, bitmap in holder_bitmaps if bitmap & mask}
            eligible_senders = frozenset(holders & eligible_pool)
            if not eligible_senders:
                continue
            missing = members - holders
            if not missing:
                continue
            requesters = frozenset(
                node for node in wanting if node not in holders
            )
            candidates.append(
                PieceCandidate(
                    metadata=record,
                    index=index,
                    holders=eligible_senders,
                    requesters=requesters,
                    missing=frozenset(missing),
                )
            )
    return candidates


def build_piece_candidates_reference(
    states: Mapping[NodeId, NodeState],
    now: float,
) -> List[PieceCandidate]:
    """Naive reference implementation of :func:`build_piece_candidates`.

    Walks per-index piece sets and scans every member's metadata store.
    Kept as the specification the bitmap-based builder is
    property-tested against (identical candidates on random cliques).
    """
    downloads = advertised_downloads(states, now)
    members = frozenset(states)

    # Which live metadata does each member hold (for send eligibility)?
    metadata_by_uri: Dict[Uri, Metadata] = {}
    md_holders: Dict[Uri, Set[NodeId]] = {}
    for node in sorted(states):
        for record in states[node].metadata.records():
            if not record.is_live(now):
                continue
            md_holders.setdefault(record.uri, set()).add(node)
            existing = metadata_by_uri.get(record.uri)
            if existing is None or record.popularity > existing.popularity:
                metadata_by_uri[record.uri] = record

    piece_holders: Dict[Tuple[Uri, int], Set[NodeId]] = {}
    for node, state in states.items():
        for uri in state.pieces.uris:
            if uri not in metadata_by_uri:
                continue  # no metadata anywhere in the clique: unservable
            for index in state.pieces.pieces_of(uri):
                piece_holders.setdefault((uri, index), set()).add(node)

    candidates: List[PieceCandidate] = []
    for (uri, index), holders in piece_holders.items():
        record = metadata_by_uri[uri]
        eligible_senders = frozenset(holders & md_holders.get(uri, set()))
        if not eligible_senders:
            continue
        missing = frozenset(
            node
            for node in members
            if index not in states[node].pieces.pieces_of(uri)
        )
        if not missing:
            continue
        requesters = frozenset(
            node for node in missing if uri in downloads[node]
        )
        candidates.append(
            PieceCandidate(
                metadata=record,
                index=index,
                holders=eligible_senders,
                requesters=requesters,
                missing=missing,
            )
        )
    return candidates


def cooperative_rank_key(candidate: PieceCandidate) -> Tuple:
    """Two-phase cooperative order (§V-A)."""
    phase = 0 if candidate.requested else 1
    return (
        phase,
        -len(candidate.requesters),
        -candidate.metadata.popularity,
        candidate.uri,
        candidate.index,
    )


def tit_for_tat_rank_key(candidate: PieceCandidate, sender: NodeState) -> Tuple:
    """Credit-weighted order for a specific sender (§V-B)."""
    weight = sender.credits.weight_of_requesters(candidate.requesters)
    phase = 0 if candidate.requested else 1
    return (
        -weight,
        phase,
        -candidate.metadata.popularity,
        candidate.uri,
        candidate.index,
    )


def select_cooperative(
    candidates: Sequence[PieceCandidate],
    limit: Optional[int] = None,
) -> List[PieceCandidate]:
    """Globally rank piece candidates for the coordinator (§V-A).

    With ``limit`` (the contact's piece budget), a lazy top-k replaces
    the full sort; the (URI, index) tie-break makes the prefix
    identical to ``sorted(...)[:limit]``.
    """
    if limit is not None:
        return heapq.nsmallest(limit, candidates, key=cooperative_rank_key)
    return sorted(candidates, key=cooperative_rank_key)


def select_for_sender(
    candidates: Sequence[PieceCandidate],
    sender: NodeState,
    tit_for_tat: bool,
    limit: Optional[int] = None,
) -> List[PieceCandidate]:
    """Rank the piece candidates a sender can transmit (top-k with ``limit``)."""
    own = [c for c in candidates if sender.node in c.holders]
    if tit_for_tat:
        key = lambda c: tit_for_tat_rank_key(c, sender)  # noqa: E731
    else:
        key = cooperative_rank_key
    if limit is not None:
        return heapq.nsmallest(limit, own, key=key)
    return sorted(own, key=key)
