"""The MBT protocol engine: contact processing and Internet syncs.

Ties together discovery (§IV) and download (§V) for the three
evaluated protocol variants (§VI-A):

* **MBT** — nodes store and advertise the queries of their frequent
  contacting nodes, distribute metadata, and distribute file pieces.
* **MBT-Q** — no query distribution: nodes advertise only their own
  queries (they "can only pull metadata from other nodes").
* **MBT-QM** — no query and no independent metadata distribution: the
  contact has no metadata phase, and metadata spread only attached to
  file pieces (the prior content-distribution model the paper compares
  against).

Scheduling modes:

* ``COORDINATOR`` (cooperative, §IV-A/§V-A): an elected coordinator
  picks the globally best transmission each slot.
* ``CYCLIC`` (selfish-tolerant, §IV-B/§V-B): members transmit in the
  agreed-upon seeded cyclic order; each sender picks its own best item
  (credit-weighted under tit-for-tat). Selfish nodes skip their turn.
"""

from __future__ import annotations

import enum
import heapq
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Set, Tuple

from repro.catalog.adversary import PIRATE_URI_PREFIX
from repro.catalog.files import IntegrityError, piece_payload
from repro.catalog.generator import DailyBatch
from repro.catalog.metadata import Metadata
from repro.catalog.server import FileServer, MetadataServer
from repro.core import arraycore, discovery, download
from repro.core.arraycore import ArrayCliqueView
from repro.core.arrays import NodeStateArrays
from repro.core.cliqueview import CliqueView
from repro.core.coordinator import cyclic_order, elect_coordinator
from repro.core.node import NodeState
from repro.core.strategies import AdversaryState
from repro.faults import FaultInjector, corrupt_payload
from repro.net.medium import BroadcastMedium, ContactBudget, PairwiseMedium, TransmissionMedium
from repro.perf import PerfRecorder
from repro.sim.metrics import MetricsCollector
from repro.traces.base import Contact
from repro.types import NodeId, Uri


class ProtocolVariant(enum.Enum):
    """The three protocols compared in §VI."""

    MBT = "mbt"
    MBT_Q = "mbt-q"
    MBT_QM = "mbt-qm"

    @property
    def distributes_queries(self) -> bool:
        return self is ProtocolVariant.MBT

    @property
    def distributes_metadata(self) -> bool:
        return self is not ProtocolVariant.MBT_QM


class SchedulingMode(enum.Enum):
    """Who decides the broadcast order inside a clique (§V)."""

    COORDINATOR = "coordinator"
    CYCLIC = "cyclic"


@dataclass(frozen=True)
class ProtocolConfig:
    """Static protocol parameters shared by every node."""

    variant: ProtocolVariant = ProtocolVariant.MBT
    budget: ContactBudget = field(default_factory=lambda: ContactBudget(5, 5))
    tit_for_tat: bool = False
    scheduling: Optional[SchedulingMode] = None
    broadcast: bool = True
    #: Internet-sync limits: metadata pulled per query, pushed per sync,
    #: and popular files downloaded per sync for seeding.
    pull_limit: int = 5
    push_limit: int = 10
    popular_file_downloads: int = 2
    #: Files an access node proxy-downloads per sync on behalf of the
    #: DTN peers whose requests it heard (0 disables cooperation).
    proxy_downloads: int = 5
    #: Re-derive communication cliques from synthesized hello beacons
    #: (§III-B/§V protocol path) instead of trusting contact membership.
    derive_cliques: bool = False
    #: Derive per-contact budgets from contact duration and channel
    #: bandwidth instead of the paper's fixed counts. Short contacts
    #: then carry discovery only (§V: "file discovery uses the starting
    #: period of each connection") while long contacts move many pieces.
    duration_budgets: bool = False
    #: Effective channel bandwidth for duration-derived budgets.
    bandwidth_bytes_per_s: float = 100_000.0
    #: Share of a contact's byte volume reserved for the discovery phase.
    metadata_share: float = 0.2
    #: The paper's future-work extension (§IV-B footnote: "Peers can
    #: still be choked if encryption is used"): piece payloads are
    #: encrypted per transmission and the key is released only to
    #: *unchoked* receivers — peers that have earned credit with the
    #: sender. Discovery stays open (metadata are the advertisement
    #: channel), which is also the bootstrap: sending useful metadata
    #: earns the credit that unchokes the piece channel. Only
    #: meaningful together with tit_for_tat.
    encrypted_choking: bool = False
    #: Credit a receiver must *exceed* with the sender to be unchoked.
    #: The default (0.0, strict) admits any peer that ever contributed
    #: anything — one metadata transfer suffices — and blocks exactly
    #: the pure free-riders. Raise it to demand sustained contribution.
    choke_credit_threshold: float = 0.0
    #: How long heard peer requests are remembered (seconds).
    request_memory: float = 3 * 86400.0
    payload_length: int = 64
    #: Hello beacons carry a bloom summary of the sender's
    #: held/downloading URIs, and the metadata phase screens candidate
    #: targets against the summaries (§III-B's listing, compressed to
    #: constant size — see :mod:`repro.net.bloom`). A false positive
    #: (rate ``bloom_fpr``) makes a peer look like it already holds a
    #: record, suppressing that delivery for the contact; negatives are
    #: exact, so nothing else changes. Off by default: disabled runs
    #: are bitwise-identical to builds without the feature.
    hello_blooms: bool = False
    #: Target false-positive rate of the hello summaries (the
    #: documented accuracy/size knob; smaller = bigger filters).
    bloom_fpr: float = 0.01
    #: Seed folded into the summary hashes (derived from the run seed).
    bloom_seed: int = 0

    def effective_scheduling(self) -> SchedulingMode:
        """Default: coordinator when altruistic, cyclic under TFT (§V)."""
        if self.scheduling is not None:
            return self.scheduling
        return SchedulingMode.CYCLIC if self.tit_for_tat else SchedulingMode.COORDINATOR

    def medium(self) -> TransmissionMedium:
        return BroadcastMedium() if self.broadcast else PairwiseMedium()


@dataclass
class EngineCounters:
    """Aggregate protocol-engine activity counters for one run.

    Where the per-node :class:`~repro.core.node.NodeStats` answer "what
    did node i do", these answer "what did the engine do" — the
    denominators every performance investigation starts from.
    """

    #: Trace contacts handled by :meth:`MobileBitTorrent.handle_contact`.
    contacts_processed: int = 0
    #: Same-instant contact batches dispatched via
    #: :meth:`MobileBitTorrent.handle_contacts` (<= contacts).
    contact_batches: int = 0
    #: Communication cliques processed (>= contacts when hello-derived).
    cliques_processed: int = 0
    #: Hello beacons exchanged (one per node per clique).
    hello_exchanges: int = 0
    #: Successful metadata broadcasts/unicasts.
    metadata_transmissions: int = 0
    #: Successful piece broadcasts/unicasts.
    piece_transmissions: int = 0
    #: Receivers denied a piece key by encrypted choking (§IV-B).
    choked_sends: int = 0
    #: Internet sessions performed by access nodes.
    internet_syncs: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "contacts_processed": self.contacts_processed,
            "contact_batches": self.contact_batches,
            "cliques_processed": self.cliques_processed,
            "hello_exchanges": self.hello_exchanges,
            "metadata_transmissions": self.metadata_transmissions,
            "piece_transmissions": self.piece_transmissions,
            "choked_sends": self.choked_sends,
            "internet_syncs": self.internet_syncs,
        }


class _MutableMetaCandidate:
    """Scheduler-internal mutable view of a metadata candidate."""

    __slots__ = ("metadata", "holders", "own_requesters", "proxy_requesters", "missing")

    def __init__(self, cand: discovery.MetadataCandidate) -> None:
        self.metadata = cand.metadata
        self.holders: Set[NodeId] = set(cand.holders)
        self.own_requesters: Set[NodeId] = set(cand.own_requesters)
        self.proxy_requesters: Set[NodeId] = set(cand.proxy_requesters)
        self.missing: Set[NodeId] = set(cand.missing)

    @property
    def requesters(self) -> Set[NodeId]:
        return self.own_requesters | self.proxy_requesters


class _MutablePieceCandidate:
    """Scheduler-internal mutable view of a piece candidate."""

    __slots__ = ("metadata", "index", "holders", "requesters", "missing")

    def __init__(self, cand: download.PieceCandidate) -> None:
        self.metadata = cand.metadata
        self.index = cand.index
        self.holders: Set[NodeId] = set(cand.holders)
        self.requesters: Set[NodeId] = set(cand.requesters)
        self.missing: Set[NodeId] = set(cand.missing)

    @property
    def uri(self) -> Uri:
        return self.metadata.uri


class MobileBitTorrent:
    """Protocol engine driving every node's discovery and download."""

    def __init__(
        self,
        states: Mapping[NodeId, NodeState],
        metadata_server: MetadataServer,
        file_server: FileServer,
        metrics: MetricsCollector,
        config: ProtocolConfig,
        faults: Optional[FaultInjector] = None,
        perf: Optional[PerfRecorder] = None,
        arrays: Optional[NodeStateArrays] = None,
        adversary: Optional[AdversaryState] = None,
    ) -> None:
        self._states = dict(states)
        self._metadata_server = metadata_server
        self._file_server = file_server
        self._metrics = metrics
        self._config = config
        self._medium = config.medium()
        self._faults = faults
        #: Active adversary population (strategy assignment + counters);
        #: None on the honest path — every strategy hook below then
        #: reduces to the node's default honest profile.
        self._adversary = adversary
        #: Struct-of-arrays mirror of all node stores (``core="array"``);
        #: None selects the per-object reference path.
        self._arrays = arrays
        #: Nodes currently crashed by churn injection.
        self._down: Set[NodeId] = set()
        #: Same-instant batch scratch (``[size, live-vector]``), active
        #: only inside :meth:`handle_contacts`: lets every clique view
        #: of one trace instant share the record-liveness evaluation.
        self._batch_cache: Optional[List[object]] = None
        self.counters = EngineCounters()
        #: ``perf.*`` instrumentation; counters are always collected,
        #: wall-clock timers only when the recorder profiles.
        self.perf = perf if perf is not None else PerfRecorder()

    @property
    def states(self) -> Mapping[NodeId, NodeState]:
        return self._states

    @property
    def config(self) -> ProtocolConfig:
        return self._config

    # ------------------------------------------------------------------ churn

    @property
    def down_nodes(self) -> FrozenSet[NodeId]:
        """Nodes currently crashed by churn injection."""
        return frozenset(self._down)

    def crash_node(self, node: NodeId, wipe: bool) -> None:
        """Take a node down; with ``wipe``, its learned state is lost.

        A down node takes part in no contact and performs no Internet
        sync until :meth:`revive_node`. Crashing an already-down node
        is a no-op (overlapping churn draws are filtered upstream, but
        callers need not rely on that).
        """
        if node in self._down:
            return
        self._down.add(node)
        if wipe:
            self._states[node].wipe()
        if self._faults is not None:
            self._faults.count("crashes")

    def revive_node(self, node: NodeId) -> None:
        """Bring a crashed node back up (reboot after downtime)."""
        if node not in self._down:
            return
        self._down.discard(node)
        if self._faults is not None:
            self._faults.count("rebirths")

    # ------------------------------------------------------------------ catalog

    def on_daily_batch(self, batch: DailyBatch, now: float) -> None:
        """Publish a day's files and hand out the generated queries."""
        for descriptor in batch.descriptors:
            self._file_server.publish(descriptor)
        for record in batch.metadata:
            self._metadata_server.publish(record)
        for query in batch.queries:
            state = self._states[query.node]
            state.add_own_query(query)
            self._metrics.register_query(query, access_node=state.internet_access)

    def expire_all(self, now: float) -> None:
        """Drop expired records everywhere (servers and nodes)."""
        self._metadata_server.expire(now)
        self._file_server.expire(now)
        for node in sorted(self._states):
            self._states[node].expire(now)

    # ------------------------------------------------------------------ internet

    def internet_sync(self, node: NodeId, now: float) -> None:
        """One Internet session of an access node (pull, download, push).

        Non-access nodes are silently ignored so callers can iterate
        over the whole population.
        """
        state = self._states[node]
        if node in self._down or not state.internet_access:
            return
        state.stats.internet_syncs += 1
        self.counters.internet_syncs += 1

        # Pull: metadata matching own queries (and foreign ones under MBT).
        own = state.own_queries(now)
        for query in own:
            self._metadata_server.record_request(query.target_uri, node, now)
            for record in self._metadata_server.search(
                query.tokens, now, limit=self._config.pull_limit
            ):
                self._accept_metadata(state, record, now)
        if self._config.variant.distributes_queries:
            for query in state.foreign_queries(now):
                for record in self._metadata_server.search(
                    query.tokens, now, limit=self._config.pull_limit
                ):
                    self._accept_metadata(state, record, now)

        # Download: access nodes have enough bandwidth for what they need.
        # Sorted: each download touches LRU recency and the bounded
        # piece buffer, so raw set-iteration order (which varies with
        # the interpreter's string-hash seed) would leak into results.
        for uri in sorted(state.wanted_uris(now)):
            self._download_from_internet(state, uri, now)

        # Push: the server continues with popular metadata (§IV), except
        # under MBT-QM where independent metadata distribution is off.
        if self._config.variant.distributes_metadata:
            for record in self._metadata_server.top_popular(
                now, self._config.push_limit, exclude=state.metadata.uris
            ):
                self._accept_metadata(state, record, now)

        # Cooperative proxy downloads: fetch the files DTN peers were
        # heard requesting, most-demanded first. This is the hybrid-DTN
        # payoff — nodes without Internet access get their files
        # "with the help of other nodes" (§III-A). Requests only exist
        # where discovery delivered metadata, so MBT-QM barely uses it.
        proxied = 0
        for uri in state.top_peer_requests(now, self._config.request_memory):
            if proxied >= self._config.proxy_downloads:
                break
            record = self._metadata_server.get(uri)
            if record is None or not record.is_live(now):
                continue
            if state.pieces.is_complete(uri, record.num_pieces):
                continue
            self._accept_metadata(state, record, now)
            self._download_from_internet(state, uri, now)
            proxied += 1

        # Under full MBT, also fetch the files matching the queries
        # carried for frequent contacts (the node collects on their
        # behalf, §IV).
        if self._config.variant.distributes_queries and proxied < self._config.proxy_downloads:
            for query in state.foreign_queries(now):
                if proxied >= self._config.proxy_downloads:
                    break
                for record in self._metadata_server.search(query.tokens, now, limit=1):
                    if state.pieces.is_complete(record.uri, record.num_pieces):
                        continue
                    self._accept_metadata(state, record, now)
                    self._download_from_internet(state, record.uri, now)
                    proxied += 1

        # Seed the DTN: grab a few globally popular files as well.
        seeded = 0
        for record in self._metadata_server.top_popular(now, self._config.push_limit):
            if seeded >= self._config.popular_file_downloads:
                break
            if not state.pieces.is_complete(record.uri, record.num_pieces):
                self._accept_metadata(state, record, now, force=True)
                self._download_from_internet(state, record.uri, now)
                seeded += 1

    def _download_from_internet(self, state: NodeState, uri: Uri, now: float) -> None:
        record = state.metadata.get(uri)
        if record is None or uri not in self._file_server:
            return
        state.receive_whole_file(uri, record.num_pieces)
        state.stats.files_completed += 1
        self._metrics.on_file_complete(state.node, uri, now)

    def _accept_metadata(
        self, state: NodeState, record: Metadata, now: float, force: bool = False
    ) -> bool:
        """Store a record from the Internet (always trusted/signed)."""
        new = state.accept_metadata(record, now)
        if new:
            self._metrics.on_metadata(state.node, record.uri, now)
        return new

    # ------------------------------------------------------------------ contacts

    def handle_contacts(self, contacts: Sequence[Contact], now: float) -> None:
        """Process every contact sharing one trace instant as a batch.

        Contacts are handled in order with semantics identical to
        calling :meth:`handle_contact` once per contact; the batch seam
        exists so instant-wide work is shared. Under the array core the
        global record-liveness vector (``expires_at > now``) is
        evaluated once per instant (re-keyed only when new URIs are
        interned mid-batch) instead of once per clique view.
        """
        self.counters.contact_batches += 1
        self._batch_cache = [-1, None]
        try:
            for contact in contacts:
                self.handle_contact(contact, now)
        finally:
            self._batch_cache = None

    def handle_contact(self, contact: Contact, now: float) -> None:
        """Process one contact: hellos, discovery phase, download phase."""
        self.counters.contacts_processed += 1
        budget_scale = 1.0
        if self._faults is not None:
            transformed, budget_scale = self._faults.transform_contact(contact)
            if transformed is None:
                return
            contact = transformed
        if self._down:
            alive = contact.members - self._down
            if len(alive) < 2:
                if self._faults is not None:
                    self._faults.count("contacts_skipped_down")
                return
            if alive != contact.members:
                contact = Contact(contact.start, contact.end, alive)
        if self._config.derive_cliques:
            cliques = self._cliques_via_hellos(contact, now)
        else:
            cliques = [contact.members]
        budget = self._contact_budget(contact, budget_scale)
        perf = self.perf
        for members in cliques:
            self.counters.cliques_processed += 1
            states = {node: self._states[node] for node in members}
            token = perf.start()
            self._exchange_hellos(states, now)
            perf.stop("hellos", token)
            # One clique view serves both phases of this contact; the
            # metadata phase patches it incrementally as records spread
            # (object core) or reads the live arrays (array core).
            token = perf.start()
            view = self._build_view(states, now)
            perf.stop("view_build", token)
            perf.count("view_builds")
            if self._config.variant.distributes_metadata:
                token = perf.start()
                self._run_metadata_phase(states, members, now, budget.metadata, view)
                perf.stop("metadata_phase", token)
            token = perf.start()
            self._run_piece_phase(states, members, now, budget.pieces, view)
            perf.stop("piece_phase", token)

    def _build_view(self, states: Mapping[NodeId, NodeState], now: float):
        """Clique view for this contact: array-backed when possible.

        The array view requires the struct-of-arrays mirror to be
        attached *and* coherent; otherwise (object core, or arrays
        disabled by an incoherence guard) the per-object
        :class:`CliqueView` is built as before.
        """
        arrays = self._arrays
        if arrays is not None and arrays.coherent:
            live = None
            cache = self._batch_cache
            if cache is not None:
                if cache[0] != arrays.size:
                    cache[0] = arrays.size
                    cache[1] = arrays.expires_at[: arrays.size] > now
                    self.perf.count("sched.live_recomputes")
                else:
                    self.perf.count("sched.live_reuses")
                live = cache[1]
            return ArrayCliqueView(arrays, states, now, live=live)
        return CliqueView(states, now)

    def _metadata_candidates(
        self,
        states: Mapping[NodeId, NodeState],
        now: float,
        include_foreign: bool,
        view,
    ) -> List[discovery.MetadataCandidate]:
        """Dispatch to the vectorized builder under the array core.

        If the arrays went incoherent mid-run (only adversarial state
        can do that), the object builder runs with a fresh object view —
        results are unchanged, only the speedup is lost.
        """
        if isinstance(view, ArrayCliqueView):
            if view.soa.coherent:
                return arraycore.build_metadata_candidates(
                    view, states, now, include_foreign
                )
            self.perf.count("sched.meta_builder_fallback")
            return discovery.build_metadata_candidates(states, now, include_foreign, None)
        return discovery.build_metadata_candidates(states, now, include_foreign, view)

    def _piece_candidates(
        self, states: Mapping[NodeId, NodeState], now: float, view
    ) -> List[download.PieceCandidate]:
        """Piece-phase twin of :meth:`_metadata_candidates`."""
        if isinstance(view, ArrayCliqueView):
            if view.soa.coherent:
                return arraycore.build_piece_candidates(view, states, now)
            self.perf.count("sched.piece_builder_fallback")
            return download.build_piece_candidates(states, now, None)
        return download.build_piece_candidates(states, now, view)

    def _contact_budget(self, contact: Contact, scale: float = 1.0) -> ContactBudget:
        """Fixed per-contact budget, or one derived from the duration.

        ``scale`` (< 1 for truncated contacts) shrinks a fixed budget;
        duration-derived budgets already see the shortened contact and
        are not scaled twice.
        """
        if not self._config.duration_budgets:
            return self._config.budget.scaled(scale)
        from repro.net.medium import budget_from_duration
        from repro.net.messages import METADATA_BASE_SIZE
        from repro.catalog.files import PIECE_SIZE

        return budget_from_duration(
            duration=contact.duration,
            bandwidth_bytes_per_s=self._config.bandwidth_bytes_per_s,
            metadata_size=METADATA_BASE_SIZE,
            piece_size=PIECE_SIZE,
            metadata_share=self._config.metadata_share,
        )

    def _cliques_via_hellos(self, contact: Contact, now: float) -> List[FrozenSet[NodeId]]:
        """Recompute cliques from synthesized hello beacons (§III-B)."""
        from repro.net.hello import derive_cliques, full_connectivity

        states = {node: self._states[node] for node in contact.members}
        summary_of = None
        if self._config.hello_blooms:
            fpr = self._config.bloom_fpr
            seed = self._config.bloom_seed
            summary_of = lambda state: state.hello_summary(fpr, seed)
        return derive_cliques(
            states, full_connectivity(contact.members), now, summary_of=summary_of
        )

    def _exchange_hellos(self, states: Mapping[NodeId, NodeState], now: float) -> None:
        """Mutual hello reception; MBT also stores frequent contacts' queries."""
        wanted = {node: state.wanted_uris(now) for node, state in states.items()}
        self.counters.hello_exchanges += len(states)
        for node, state in states.items():
            for peer in states:
                if peer != node:
                    state.neighbor_last_heard[peer] = now
                    state.remember_peer_requests(peer, wanted[peer], now)
        if not self._config.variant.distributes_queries:
            return
        for node, state in states.items():
            if state.selfish or not state.strategy.carries_queries:
                continue  # free-riders do not carry anyone's queries
            for peer, peer_state in states.items():
                if peer != node and peer in state.frequent_contacts:
                    state.store_foreign_queries(peer, peer_state.own_queries(now))

    def _screen_rejected(self, candidates, states: Mapping[NodeId, NodeState]) -> None:
        """Receiver-side pollution screen (reputation credit policy).

        A rejected fake is never stored, so it re-enters the candidate
        pool as "missing everywhere" at every later contact and taxes
        the clique's channel budget forever. Under the reputation
        policy a node that has *first-hand* seen a URI fail
        verification (``NodeState.rejected_uris``) refuses to be a
        transmission target for it again: such nodes are dropped from
        the candidate's ``missing`` set, so a fake stops being sendable
        once every reachable member has rejected it, while the
        polluter's honest service is left untouched. Runs on the
        mutable scheduler copies, like :meth:`_hide_holdings`, so
        object/array parity is preserved; under the plain policy (and
        in clean runs) every screening set is empty and nothing changes.
        """
        screeners = [
            (node, state.rejected_uris)
            for node, state in states.items()
            if state.credits.policy != "plain" and state.rejected_uris
        ]
        if not screeners:
            return
        for cand in candidates:
            uri = cand.metadata.uri
            for node, rejected in screeners:
                if uri in rejected:
                    cand.missing.discard(node)

    def _screen_blooms(self, candidates, states: Mapping[NodeId, NodeState]) -> None:
        """Screen candidate targets against the peers' hello summaries.

        Models the information constraint of the wire protocol under
        ``hello_blooms``: a sender only knows what a peer's bloom
        summary says about it. Every member of a candidate is tested
        for the candidate's URI; a positive on a *holder* is a true
        positive (the summary correctly suppresses a redundant send), a
        positive on a *missing* member is a false positive — the member
        is dropped from the candidate's target sets, costing it that
        delivery this contact (the ``bloom_fpr``-tunable accuracy/size
        trade). Runs on the mutable scheduler copies before
        :meth:`_hide_holdings`, so a hider's secret holding is not
        re-revealed by its own summary and object/array parity is
        preserved by construction.
        """
        fpr = self._config.bloom_fpr
        seed = self._config.bloom_seed
        perf = self.perf
        from repro.net.bloom import item_hashes

        for cand in candidates:
            uri = cand.metadata.uri
            hashes = item_hashes(uri, seed)
            for node in sorted(cand.holders):
                perf.count("catalog.bloom_screens")
                if states[node].hello_summary(fpr, seed).contains_hashes(hashes):
                    perf.count("catalog.bloom_hits")
            for node in sorted(cand.missing):
                perf.count("catalog.bloom_screens")
                if states[node].hello_summary(fpr, seed).contains_hashes(hashes):
                    perf.count("catalog.bloom_hits")
                    perf.count("catalog.bloom_false_positives")
                    cand.missing.discard(node)
                    cand.own_requesters.discard(node)
                    cand.proxy_requesters.discard(node)

    def _hide_holdings(self, candidates) -> None:
        """Apply under-reporting to freshly built candidates.

        A hider claims not to hold the record/piece: it is moved from
        every candidate's ``holders`` into ``missing``, so it is never
        picked as a sender and even baits peers into wasting channel
        budget re-sending it items it secretly holds (the duplicate
        earns the sender nothing). Runs on the *mutable* scheduler
        copies, after the per-core builders agreed on their output, so
        object/array parity is untouched; hiders are visited in sorted
        order to keep the mutated sets' layout history deterministic.
        """
        adversary = self._adversary
        if adversary is None or not adversary.hiders:
            return
        for cand in candidates:
            for node in sorted(adversary.hiders & cand.holders):
                cand.holders.discard(node)
                cand.missing.add(node)
                adversary.count("holdings_hidden")

    # -- metadata phase ------------------------------------------------------------

    def _run_metadata_phase(
        self,
        states: Mapping[NodeId, NodeState],
        members: FrozenSet[NodeId],
        now: float,
        budget: Optional[int] = None,
        view: Optional[CliqueView] = None,
    ) -> None:
        if budget is None:
            budget = self._config.budget.metadata
        if budget <= 0:
            return
        include_foreign = self._config.variant.distributes_queries
        raw = self._metadata_candidates(states, now, include_foreign, view)
        candidates = [_MutableMetaCandidate(c) for c in raw]
        if self._config.hello_blooms:
            self._screen_blooms(candidates, states)
        self._hide_holdings(candidates)
        self._screen_rejected(candidates, states)
        self.perf.count("meta_candidates", len(candidates))
        if not candidates:
            return

        mode = self._config.effective_scheduling()
        # Scheduling dispatch: the vectorized kernel ranks with column
        # arrays, the object loops with tuple keys — bitwise-identical
        # by contract. The ``perf.sched.*`` counters record which path
        # ran (they are excluded from result fingerprints for exactly
        # that reason) so silent fallbacks are visible, not inferred.
        if arraycore.sched_kernel_ready(view):
            self.perf.count("sched.meta_vectorized")
            if mode is SchedulingMode.COORDINATOR:
                arraycore.run_metadata_coordinator(
                    self, states, members, candidates, budget, now, view
                )
            else:
                arraycore.run_metadata_cyclic(
                    self, states, members, candidates, budget, now, view
                )
            return
        self.perf.count("sched.meta_object")
        if mode is SchedulingMode.COORDINATOR:
            self._metadata_coordinator_loop(states, members, candidates, budget, now, view)
        else:
            self._metadata_cyclic_loop(states, members, candidates, budget, now, view)

    def _meta_key(self, cand: _MutableMetaCandidate) -> Tuple:
        phase = 0 if (cand.own_requesters or cand.proxy_requesters) else 1
        return (
            phase,
            -len(cand.own_requesters),
            -len(cand.proxy_requesters),
            -cand.metadata.popularity,
            cand.metadata.uri,
        )

    def _meta_tft_key(
        self, cand: _MutableMetaCandidate, sender: NodeState, now: float
    ) -> Tuple:
        weight = sender.credits.weight_of_requesters(cand.requesters, now)
        phase = 0 if (cand.own_requesters or cand.proxy_requesters) else 1
        return (-weight, phase, -cand.metadata.popularity, cand.metadata.uri)

    def _metadata_coordinator_loop(
        self,
        states: Mapping[NodeId, NodeState],
        members: FrozenSet[NodeId],
        candidates: List[_MutableMetaCandidate],
        budget: int,
        now: float,
        view: Optional[CliqueView] = None,
    ) -> None:
        # Coordinator election is deterministic; with full clique
        # knowledge it always schedules the globally best candidate.
        elect_coordinator(members)
        for __ in range(budget):
            # One sender scan per candidate per turn; the rank keys are
            # unique (URI tie-break), so min() over (key, cand, senders)
            # tuples never compares past the key.
            sendable = []
            for c in candidates:
                senders = self._senders_of(c, states)
                if senders:
                    sendable.append((self._meta_key(c), c, senders))
            if not sendable:
                break
            __key, best, senders = min(sendable)
            sender = min(senders)
            if not self._transmit_metadata(states, members, best, sender, now, view):
                candidates.remove(best)
                continue
            if not best.missing:
                candidates.remove(best)

    def _metadata_cyclic_loop(
        self,
        states: Mapping[NodeId, NodeState],
        members: FrozenSet[NodeId],
        candidates: List[_MutableMetaCandidate],
        budget: int,
        now: float,
        view: Optional[CliqueView] = None,
    ) -> None:
        order = cyclic_order(members)
        spent = 0
        idle_turns = 0
        position = 0
        while spent < budget and idle_turns < len(order):
            sender_id = order[position % len(order)]
            position += 1
            sender = states[sender_id]
            if sender.selfish or not sender.strategy.serves:
                if self._adversary is not None and not sender.strategy.serves:
                    self._adversary.count("turns_skipped")
                idle_turns += 1
                continue
            # Lazy top-k: heapify the sender's candidates and pop until
            # one transmits — the rank keys are unique (URI tie-break),
            # so the pop order equals the former full sort's order while
            # usually materializing only the first element.
            heap = [
                (self._meta_tft_key(c, sender, now), c)
                for c in candidates
                if sender_id in c.holders and c.missing
            ]
            heapq.heapify(heap)
            sent = False
            while heap:
                __, cand = heapq.heappop(heap)
                sent = self._transmit_metadata(states, members, cand, sender_id, now, view)
                if not cand.missing:
                    candidates.remove(cand)
                if sent:
                    break
            if sent:
                spent += 1
                idle_turns = 0
            else:
                idle_turns += 1

    def _senders_of(
        self, cand: _MutableMetaCandidate, states: Mapping[NodeId, NodeState]
    ) -> List[NodeId]:
        if not cand.missing:
            return []
        return [
            n
            for n in cand.holders
            if not states[n].selfish and states[n].strategy.serves
        ]

    def _transmit_metadata(
        self,
        states: Mapping[NodeId, NodeState],
        members: FrozenSet[NodeId],
        cand: _MutableMetaCandidate,
        sender: NodeId,
        now: float,
        view: Optional[CliqueView] = None,
    ) -> bool:
        """Broadcast (or unicast) one record; return True if sent."""
        if self._medium.name == "broadcast":
            receivers = self._medium.receivers(sender, members) & frozenset(cand.missing)
        else:
            receivers = self._pairwise_receiver(cand.requesters, cand.missing, sender)
        if not receivers:
            return False
        # Loss is drawn per receiver after the send is committed: a
        # fully lost transmission still consumed the channel slot.
        if self._faults is not None:
            receivers = self._faults.deliverable(receivers, "metadata")
        states[sender].stats.metadata_sent += 1
        self.counters.metadata_transmissions += 1
        self._metrics.count_metadata_transmission(len(receivers))
        record = cand.metadata
        # The popularity the sender *claims* for this broadcast; only
        # exploiter strategies raise it above the signed record value.
        claimed = record.popularity
        if self._adversary is not None:
            claimed = self._adversary.claimed_popularity(sender, record.popularity)
            if record.uri.startswith(PIRATE_URI_PREFIX):
                self._adversary.count("fake_metadata_transmissions")
        for receiver in receivers:
            state = states[receiver]
            requested = any(q.matches(record) for q in state.own_queries(now))
            mutations_before = state.metadata.mutations
            evictions_before = state.metadata.evictions
            rejected_before = state.stats.metadata_rejected_auth
            new = state.accept_metadata(record, now)
            if view is not None:
                if state.metadata.evictions != evictions_before:
                    # The insert displaced some other record; the view's
                    # holder sets for that record are now stale.
                    view.mark_dirty()
                elif state.metadata.mutations != mutations_before:
                    view.note_holder(receiver, record)
            if new:
                self._metrics.on_metadata(receiver, record.uri, now)
                if requested:
                    state.credits.reward_requested(sender, now)
                else:
                    state.credits.reward_unrequested(
                        sender, record.popularity, now, claimed=claimed
                    )
            elif state.stats.metadata_rejected_auth > rejected_before:
                # The record failed signature verification in the
                # receiver's hands: first-hand evidence against the
                # sender (no-op under the plain credit policy).
                state.credits.penalize(sender, now)
            cand.missing.discard(receiver)
            cand.own_requesters.discard(receiver)
            cand.proxy_requesters.discard(receiver)
            cand.holders.add(receiver)
        return True

    def _unchoked(
        self, sender: NodeState, receivers: FrozenSet[NodeId], now: float = 0.0
    ) -> FrozenSet[NodeId]:
        """Receivers that get the decryption key (§IV-B future work).

        A receiver is unchoked when its credit with the sender strictly
        exceeds ``choke_credit_threshold``. The open metadata phase is
        the bootstrap: any peer that ever sent the sender a useful
        record has positive credit, so only nodes that transmit
        *nothing* stay choked.

        Internet-access nodes never choke: they are the seeds of the
        hybrid DTN, and a seed that demands reciprocation starves the
        whole network (they usually hold everything, so peers cannot
        earn credit with them) — the same reason BitTorrent seeds
        upload unconditionally.
        """
        if sender.internet_access:
            return receivers
        threshold = self._config.choke_credit_threshold
        return frozenset(
            r for r in receivers if sender.credits.effective_credit(r, now) > threshold
        )

    @staticmethod
    def _pairwise_receiver(
        requesters: Set[NodeId], missing: Set[NodeId], sender: NodeId
    ) -> FrozenSet[NodeId]:
        """Single receiver for the pair-wise baseline: best requester."""
        pool = (requesters or missing) - {sender}
        if not pool:
            return frozenset()
        return frozenset({min(pool)})

    # -- piece phase ------------------------------------------------------------

    def _run_piece_phase(
        self,
        states: Mapping[NodeId, NodeState],
        members: FrozenSet[NodeId],
        now: float,
        budget: Optional[int] = None,
        view: Optional[CliqueView] = None,
    ) -> None:
        if budget is None:
            budget = self._config.budget.pieces
        if budget <= 0:
            return
        if view is not None:
            # Reuse the discovery phase's view; a mid-contact eviction
            # (rare) forces one full rebuild here.
            if view.refresh():
                self.perf.count("view_rebuilds")
            else:
                self.perf.count("view_reuses")
        raw = self._piece_candidates(states, now, view)
        candidates = [_MutablePieceCandidate(c) for c in raw]
        self._hide_holdings(candidates)
        self._screen_rejected(candidates, states)
        self.perf.count("piece_candidates", len(candidates))
        if not candidates:
            return

        mode = self._config.effective_scheduling()
        if arraycore.sched_kernel_ready(view):
            self.perf.count("sched.piece_vectorized")
            if mode is SchedulingMode.COORDINATOR:
                arraycore.run_piece_coordinator(
                    self, states, members, candidates, budget, now
                )
            else:
                arraycore.run_piece_cyclic(
                    self, states, members, candidates, budget, now
                )
            return
        self.perf.count("sched.piece_object")
        if mode is SchedulingMode.COORDINATOR:
            self._piece_coordinator_loop(states, members, candidates, budget, now)
        else:
            self._piece_cyclic_loop(states, members, candidates, budget, now)

    def _piece_key(self, cand: _MutablePieceCandidate) -> Tuple:
        phase = 0 if cand.requesters else 1
        return (
            phase,
            -len(cand.requesters),
            -cand.metadata.popularity,
            cand.uri,
            cand.index,
        )

    def _piece_tft_key(
        self, cand: _MutablePieceCandidate, sender: NodeState, now: float
    ) -> Tuple:
        weight = sender.credits.weight_of_requesters(cand.requesters, now)
        phase = 0 if cand.requesters else 1
        return (-weight, phase, -cand.metadata.popularity, cand.uri, cand.index)

    def _piece_coordinator_loop(
        self,
        states: Mapping[NodeId, NodeState],
        members: FrozenSet[NodeId],
        candidates: List[_MutablePieceCandidate],
        budget: int,
        now: float,
    ) -> None:
        elect_coordinator(members)
        for __ in range(budget):
            # One sender scan per candidate per turn (see the metadata
            # coordinator loop); keys are unique via the (uri, index)
            # tie-break.
            sendable = []
            for c in candidates:
                senders = self._piece_senders(c, states)
                if senders:
                    sendable.append((self._piece_key(c), c, senders))
            if not sendable:
                break
            __key, best, senders = min(sendable)
            sender = min(senders)
            if not self._transmit_piece(states, members, candidates, best, sender, now):
                candidates.remove(best)
                continue
            if not best.missing:
                candidates.remove(best)

    def _piece_cyclic_loop(
        self,
        states: Mapping[NodeId, NodeState],
        members: FrozenSet[NodeId],
        candidates: List[_MutablePieceCandidate],
        budget: int,
        now: float,
    ) -> None:
        order = cyclic_order(members)
        spent = 0
        idle_turns = 0
        position = 0
        while spent < budget and idle_turns < len(order):
            sender_id = order[position % len(order)]
            position += 1
            sender = states[sender_id]
            if (
                sender.selfish
                or not sender.strategy.serves
                or not sender.strategy.serves_pieces
            ):
                if self._adversary is not None and not (
                    sender.strategy.serves and sender.strategy.serves_pieces
                ):
                    self._adversary.count("turns_skipped")
                idle_turns += 1
                continue
            # Lazy top-k, as in the metadata cyclic loop: unique rank
            # keys make heap-pop order equal the former full sort.
            heap = [
                (self._piece_tft_key(c, sender, now), c)
                for c in candidates
                if sender_id in c.holders and c.missing
            ]
            heapq.heapify(heap)
            sent = False
            while heap:
                __, cand = heapq.heappop(heap)
                sent = self._transmit_piece(
                    states, members, candidates, cand, sender_id, now
                )
                if not cand.missing:
                    candidates.remove(cand)
                if sent:
                    break
            if sent:
                spent += 1
                idle_turns = 0
            else:
                idle_turns += 1

    def _piece_senders(
        self, cand: _MutablePieceCandidate, states: Mapping[NodeId, NodeState]
    ) -> List[NodeId]:
        if not cand.missing:
            return []
        return [
            n
            for n in cand.holders
            if not states[n].selfish
            and states[n].strategy.serves
            and states[n].strategy.serves_pieces
        ]

    def _transmit_piece(
        self,
        states: Mapping[NodeId, NodeState],
        members: FrozenSet[NodeId],
        candidates: List[_MutablePieceCandidate],
        cand: _MutablePieceCandidate,
        sender: NodeId,
        now: float,
    ) -> bool:
        """Broadcast one piece (with attached metadata); True if sent."""
        if self._medium.name == "broadcast":
            receivers = self._medium.receivers(sender, members) & frozenset(cand.missing)
        else:
            receivers = self._pairwise_receiver(cand.requesters, cand.missing, sender)
        if not receivers:
            return False
        if self._config.encrypted_choking:
            unchoked = self._unchoked(states[sender], receivers, now)
            self.counters.choked_sends += len(receivers) - len(unchoked)
            receivers = unchoked
            if not receivers:
                return False
        corrupted = False
        if self._faults is not None:
            # As with loss, corruption strikes after the send committed.
            corrupted = self._faults.corrupt_transmission()
            receivers = self._faults.deliverable(receivers, "piece")
        states[sender].stats.pieces_sent += 1
        self.counters.piece_transmissions += 1
        self._metrics.count_piece_transmission(len(receivers))
        record = cand.metadata
        payload = piece_payload(record.uri, cand.index, self._config.payload_length)
        checksum = record.checksums[cand.index]
        claimed = record.popularity
        if self._adversary is not None:
            claimed = self._adversary.claimed_popularity(sender, record.popularity)
            if record.uri.startswith(PIRATE_URI_PREFIX):
                self._adversary.count("fake_piece_transmissions")
        newly_interested: List[NodeId] = []
        for receiver in receivers:
            state = states[receiver]
            if corrupted:
                # The whole frame is garbage: the piggybacked metadata
                # is unusable and checksum verification rejects the
                # piece, so the receiver keeps needing it (stays in
                # ``missing`` and ``requesters``). The receiver cannot
                # tell channel corruption from a malicious sender and
                # blames the sender (no-op under plain credits).
                try:
                    state.accept_piece(
                        record.uri, cand.index, corrupt_payload(payload), checksum, now
                    )
                except IntegrityError:
                    assert self._faults is not None
                    self._faults.count("corrupt_receipts")
                    state.credits.penalize(sender, now)
                continue
            wanted_before = record.uri in state.wanted_uris(now)
            rejected_before = state.stats.metadata_rejected_auth
            # Pieces carry their metadata so receivers can verify them;
            # under MBT-QM this piggyback is how metadata spread at all.
            if state.accept_metadata(record, now):
                self._metrics.on_metadata(receiver, record.uri, now)
                if record.uri in state.wanted_uris(now) and not wanted_before:
                    newly_interested.append(receiver)
            elif state.stats.metadata_rejected_auth > rejected_before:
                # Piggybacked metadata failed signature verification:
                # first-hand evidence against the sender.
                state.credits.penalize(sender, now)
            new = state.accept_piece(record.uri, cand.index, payload, checksum, now)
            if new:
                if wanted_before or receiver in newly_interested:
                    state.credits.reward_requested(sender, now)
                else:
                    state.credits.reward_unrequested(
                        sender, record.popularity, now, claimed=claimed
                    )
                if state.pieces.is_complete(record.uri, record.num_pieces):
                    state.stats.files_completed += 1
                    self._metrics.on_file_complete(receiver, record.uri, now)
            cand.missing.discard(receiver)
            cand.requesters.discard(receiver)
            cand.holders.add(receiver)
        # A receiver that just became interested in this URI now requests
        # the file's other pieces, raising their phase-one priority.
        if newly_interested:
            for other in candidates:
                if other is cand or other.uri != record.uri:
                    continue
                for node in newly_interested:
                    if node in other.missing:
                        other.requesters.add(node)
        return True
