"""Vectorized clique phase over :class:`~repro.core.arrays.NodeStateArrays`.

The object-path clique phase rebuilds a :class:`~repro.core.cliqueview.
CliqueView` per clique by scanning every record of every member store.
This module replaces that scan with array lookups: membership,
liveness, canonical-record selection and piece-bitmap unions are numpy
reductions over the run-global struct-of-arrays mirror, and only the
(small) surviving candidate set is materialized as Python objects.

Equivalence contract
--------------------
The builders here must be *bitwise-equivalent* to
:func:`repro.core.discovery.build_metadata_candidates` and
:func:`repro.core.download.build_piece_candidates` — not just produce
equal candidate sets. Two implementation rules make that hold:

* **Counter parity.** The deterministic ``perf.*`` counters are part
  of the result fingerprint, so every memoized accessor the object
  builders touch (``own_query_tokens``, ``foreign_query_tokens``,
  ``wanted_uris``) is called here for the same members at the same
  instants.
* **Set-layout parity.** The scheduler iterates some of the candidate
  frozensets (e.g. broadcast receivers derive from ``missing``), and
  equal sets built in different element orders can iterate differently.
  Every frozenset below is built by the *same comprehension shape over
  the same iteration order* as its object-path twin: ``missing`` filters
  ``members``, requesters filter ``missing`` (metadata) or the
  member-order ``wanting`` list (pieces), piece holders filter the
  member-order bitmap list. Sets the engine only uses for membership
  tests and ``min()`` (holders, eligible senders) are exempt.

The builders read the arrays *fresh* on every call instead of patching
a per-clique snapshot: the store observers keep the arrays current
through mid-contact transmissions, which is exactly the state the
object view reaches via ``note_holder``/``refresh``. The canonical
record per URI is re-derived as "first sorted member holding the
maximum popularity" (``argmax`` returns the first maximum), which picks
a record object equal to the object view's build-time choice: metadata
transmissions always deliver the canonical copy, so mid-contact
deliveries never raise the maximum and any new first-holder stores the
very record the object view already chose.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Set

from repro.catalog.files import bit_indices
from repro.core import discovery, download
from repro.core.arrays import NodeStateArrays, _np as np
from repro.core.coordinator import cyclic_order, elect_coordinator
from repro.core.node import NodeState
from repro.types import NodeId, Uri


class ArrayCliqueView:
    """Array-core stand-in for :class:`~repro.core.cliqueview.CliqueView`.

    Carries the clique's identity (members, instant, arrays handle)
    between the discovery and download phases and mirrors the object
    view's maintenance API. ``note_holder`` is a no-op — the store
    observers already recorded the transmission in the arrays — and
    ``mark_dirty``/``refresh`` only replicate the object view's
    rebuild *accounting* (the ``perf.view_reuses`` /
    ``perf.view_rebuilds`` counters are fingerprinted), since the
    builders re-read the arrays fresh either way.
    """

    __slots__ = (
        "soa",
        "states",
        "now",
        "members_sorted",
        "_rows_sorted",
        "_dirty",
        "_live",
        "rebuilds",
    )

    def __init__(
        self,
        soa: NodeStateArrays,
        states: Mapping[NodeId, NodeState],
        now: float,
        live: Optional["np.ndarray"] = None,
    ) -> None:
        self.soa = soa
        self.states = states
        self.now = now
        self.members_sorted: List[NodeId] = sorted(states)
        self._rows_sorted = np.fromiter(
            (soa.row_of(n) for n in self.members_sorted),
            dtype=np.intp,
            count=len(self.members_sorted),
        )
        self._dirty = False
        #: Optional precomputed record-liveness vector
        #: (``expires_at[:size] > now``), shared across the views of one
        #: same-instant contact batch. Purely an evaluation cache: the
        #: values are bitwise those :meth:`held_live` would compute.
        self._live = live
        self.rebuilds = 0

    def held_live(self) -> "np.ndarray":
        """Bool matrix: ``[sorted-member i, uri id j]`` holds a live record."""
        soa = self.soa
        size = soa.size
        pop = soa.pop[self._rows_sorted, :size]
        live = self._live
        if live is None or live.shape[0] != size:
            # No batch cache, or new URIs were interned since it was
            # computed (the cache owner re-keys on size): evaluate fresh.
            live = soa.expires_at[:size] > self.now
        return (pop >= 0.0) & live[None, :]

    def pop_sub(self) -> "np.ndarray":
        """Popularity matrix over sorted members (``-1`` = not held)."""
        return self.soa.pop[self._rows_sorted, : self.soa.size]

    # -- CliqueView maintenance API -------------------------------------------

    def note_holder(self, node: NodeId, record) -> None:
        """No-op: the receiving store's observer already updated the arrays."""

    def mark_dirty(self) -> None:
        self._dirty = True

    def refresh(self) -> bool:
        """Report (and clear) dirtiness, mirroring the object view's rebuild."""
        if not self._dirty:
            return False
        self._dirty = False
        self.rebuilds += 1
        return True


def _matched_ids(soa: NodeStateArrays, token_sets: Sequence[FrozenSet[str]]) -> Set[int]:
    """Union of global conjunctive-match id sets over several queries."""
    out: Set[int] = set()
    for tokens in token_sets:
        __, ids = soa.match_ids(tokens)
        if ids:
            out |= ids
    return out


def _canonical_rows(held: "np.ndarray", pop: "np.ndarray", cols: "np.ndarray") -> "np.ndarray":
    """First sorted-member row holding the max-popularity live copy, per column."""
    masked = np.where(held[:, cols], pop[:, cols], -1.0)
    return masked.argmax(axis=0)


def build_metadata_candidates(
    view: ArrayCliqueView,
    states: Mapping[NodeId, NodeState],
    now: float,
    include_foreign: bool,
) -> List[discovery.MetadataCandidate]:
    """Array twin of :func:`repro.core.discovery.build_metadata_candidates`."""
    soa = view.soa
    members = frozenset(states)
    msorted = view.members_sorted
    no_match: Set[int] = set()
    # Token matching runs against the run-global postings (memoized per
    # token set) instead of a freshly built per-clique index; the
    # accessors are still called for every member for counter parity.
    own_ids = {n: _matched_ids(soa, s.own_query_tokens(now)) for n, s in states.items()}
    if include_foreign:
        foreign_ids = {
            n: _matched_ids(soa, s.foreign_query_tokens(now))
            for n, s in states.items()
        }
    else:
        foreign_ids = {n: no_match for n in states}

    held = view.held_live()
    if held.size == 0:
        return []
    holder_count = held.sum(axis=0, dtype=np.int64)
    # A candidate needs at least one holder and at least one member
    # missing the record.
    cand_mask = (holder_count > 0) & (holder_count < len(msorted))
    cand_cols = np.nonzero(cand_mask)[0]
    if cand_cols.size == 0:
        return []
    canon = _canonical_rows(held, view.pop_sub(), cand_cols).tolist()
    # One bulk transpose+tolist instead of a numpy call per candidate:
    # per-candidate work below is pure-Python over short member lists.
    held_rows = held[:, cand_cols].T.tolist()

    candidates: List[discovery.MetadataCandidate] = []
    for t, j in enumerate(cand_cols.tolist()):
        uri = soa.uri_of(j)
        flags = held_rows[t]
        holders = {node for node, flag in zip(msorted, flags) if flag}
        missing = members - holders
        own = frozenset(node for node in missing if j in own_ids[node])
        proxy = frozenset(
            node
            for node in missing
            if node not in own and j in foreign_ids[node]
        )
        record = states[msorted[canon[t]]].metadata.peek(uri)
        assert record is not None  # canon row holds a live copy by construction
        candidates.append(
            discovery.MetadataCandidate(
                metadata=record,
                holders=frozenset(holders),
                own_requesters=own,
                proxy_requesters=proxy,
                missing=frozenset(missing),
            )
        )
    return candidates


def build_piece_candidates(
    view: ArrayCliqueView,
    states: Mapping[NodeId, NodeState],
    now: float,
) -> List[download.PieceCandidate]:
    """Array twin of :func:`repro.core.download.build_piece_candidates`."""
    soa = view.soa
    downloads = download.advertised_downloads(states, now)
    members = frozenset(states)
    member_list = list(states)
    msorted = view.members_sorted

    held = view.held_live()
    if held.size == 0:
        return []
    holder_count = held.sum(axis=0, dtype=np.int64)
    # URIs with a live record somewhere in the clique — the object
    # view's ``record_by_uri`` key set at piece-phase time.
    live_cols = np.nonzero(holder_count > 0)[0]
    if live_cols.size == 0:
        return []
    rows_mlist = np.fromiter(
        (soa.row_of(n) for n in member_list), dtype=np.intp, count=len(member_list)
    )
    bits_sub = soa.bits[rows_mlist[:, None], live_cols[None, :]]
    union_col = np.bitwise_or.reduce(bits_sub, axis=0)
    active = np.nonzero(union_col != np.uint64(0))[0]
    if active.size == 0:
        return []
    # Restrict every per-URI array to the active columns, then convert
    # to Python lists in bulk: the loop body must not touch numpy.
    cols_act = live_cols[active]
    canon = _canonical_rows(held, view.pop_sub(), cols_act).tolist()
    bits_rows = bits_sub[:, active].T.tolist()
    held_rows = held[:, cols_act].T.tolist()
    union_list = union_col[active].tolist()

    candidates: List[download.PieceCandidate] = []
    for t, j in enumerate(cols_act.tolist()):
        uri = soa.uri_of(j)
        member_bits = bits_rows[t]
        holder_bitmaps = [
            (node, bitmap) for node, bitmap in zip(member_list, member_bits) if bitmap
        ]
        union = union_list[t]
        eligible_pool = {node for node, flag in zip(msorted, held_rows[t]) if flag}
        wanting = [node for node in member_list if uri in downloads[node]]
        record = states[msorted[canon[t]]].metadata.peek(uri)
        assert record is not None
        for index in bit_indices(union):
            mask = 1 << index
            holders = {node for node, bitmap in holder_bitmaps if bitmap & mask}
            eligible_senders = frozenset(holders & eligible_pool)
            if not eligible_senders:
                continue
            missing = members - holders
            if not missing:
                continue
            requesters = frozenset(node for node in wanting if node not in holders)
            candidates.append(
                download.PieceCandidate(
                    metadata=record,
                    index=index,
                    holders=eligible_senders,
                    requesters=requesters,
                    missing=frozenset(missing),
                )
            )
    return candidates


# -- scheduling kernel ---------------------------------------------------------
#
# The builders above vectorized candidate *construction*; the classes
# and loop drivers below vectorize candidate *scheduling* — the
# per-turn ranking, sender election and budget accounting that
# ``MobileBitTorrent``'s object loops perform with Python tuple keys
# and heaps. The kernel keeps the mutable candidate objects (and the
# engine's ``_transmit_*`` methods operating on them) fully
# authoritative: ranking state lives in per-candidate column arrays
# that are *resynced from the mutated Python sets* after every
# successful transmission. Selection uses ``np.lexsort`` over the
# eligible rows — the rank keys are unique (URI / piece-index
# tie-break), so the lexsort's first element equals the object loop's
# ``min()`` / first heap pop, with no float equality anywhere.
#
# Bitwise equivalence notes (the contract tests/test_array_core.py
# enforces):
#
# * Tit-for-tat requester weights are accumulated column-by-column in
#   ascending member order, reproducing ``weight_of_requesters``'s
#   canonical ``sorted(requesters)`` summation term for term (float
#   addition is non-associative, so the *order* is part of the
#   contract; see repro/core/credits.py).
# * Budget, idle-turn, turn-skip and candidate-removal semantics are
#   copied line for line from the object loops, including the
#   coordinator's "failed transmission still consumed the slot" rule.
# * The piece loops pass the engine the *original candidate list* and
#   mirror the object path's ``list.remove`` calls on it, so
#   ``_transmit_piece``'s newly-interested sibling scan sees exactly
#   the object path's list state.

#: Module-level switch for the vectorized scheduling loops. The
#: scheduler benchmark flips it off to measure the prior array core
#: (vectorized builders + object scheduling) as its baseline. Not a
#: config knob: both settings are bitwise-identical by contract, so
#: there is nothing to select per run.
SCHED_KERNEL_ENABLED = True


def sched_kernel_ready(view: object) -> bool:
    """Whether the vectorized scheduling loops can drive this view."""
    return SCHED_KERNEL_ENABLED and isinstance(view, ArrayCliqueView)


def _serves_vector(
    states: Mapping[NodeId, NodeState], members_sorted: Sequence[NodeId], pieces: bool
) -> "np.ndarray":
    """Bool vector over sorted members: willing to serve (this phase)."""
    flags = []
    for node in members_sorted:
        state = states[node]
        ok = (not state.selfish) and state.strategy.serves
        if pieces:
            ok = ok and state.strategy.serves_pieces
        flags.append(ok)
    return np.array(flags, dtype=bool)


def _membership_matrix(
    sets: Sequence, members_sorted: Sequence[NodeId]
) -> "np.ndarray":
    """Bool matrix ``[len(sets) x len(members)]`` of set membership.

    Filled column by column with ``np.fromiter`` — cliques are small
    (a handful of members) while candidate lists run into the hundreds,
    so a few long fills beat building a Python list-of-lists and
    converting it.
    """
    n = len(sets)
    mat = np.empty((n, len(members_sorted)), dtype=bool)
    for j, node in enumerate(members_sorted):
        mat[:, j] = np.fromiter((node in s for s in sets), dtype=bool, count=n)
    return mat


class _MetaColumns:
    """Column-array mirror of the mutable metadata candidates.

    One row per candidate, one column per sorted clique member. The
    candidate objects stay the source of truth — transmissions mutate
    their sets exactly as on the object path — and :meth:`resync`
    rebuilds a row from those sets after each successful send, so the
    arrays are always consistent at ranking time.
    """

    __slots__ = (
        "members",
        "cands",
        "n",
        "alive",
        "ready",
        "holders",
        "reqmask",
        "own_count",
        "proxy_count",
        "static_sub",
        "static_key",
        "coord_key",
    )

    def __init__(self, members_sorted: List[NodeId], cands: Sequence) -> None:
        self.members = members_sorted
        self.cands = list(cands)
        n = self.n = len(self.cands)
        nm = len(members_sorted)
        self.alive = np.ones(n, dtype=bool)
        # Builders can emit rows nobody in the clique is missing (e.g. a
        # polluter holding its own fakes), mirroring the object loops'
        # live ``c.missing`` filter; resync/deactivate maintain the mask.
        self.ready = np.fromiter(
            (bool(c.missing) for c in self.cands), dtype=bool, count=n
        )
        self.holders = _membership_matrix([c.holders for c in self.cands], members_sorted)
        own_sets = [c.own_requesters for c in self.cands]
        proxy_sets = [c.proxy_requesters for c in self.cands]
        self.reqmask = np.empty((n, nm), dtype=bool)
        for j, node in enumerate(members_sorted):
            self.reqmask[:, j] = np.fromiter(
                (node in o or node in p for o, p in zip(own_sets, proxy_sets)),
                dtype=bool,
                count=n,
            )
        self.own_count = np.fromiter(
            (len(s) for s in own_sets), dtype=np.int64, count=n
        )
        self.proxy_count = np.fromiter(
            (len(s) for s in proxy_sets), dtype=np.int64, count=n
        )
        neg_pop = np.fromiter(
            (-c.metadata.popularity for c in self.cands), dtype=np.float64, count=n
        )
        # Unique integer tie-break equal to the URI's sort rank: integer
        # lexsort keys stand in for the object keys' string comparison.
        rank = {
            uri: r
            for r, uri in enumerate(sorted(c.metadata.uri for c in self.cands))
        }
        tie = np.fromiter(
            (rank[c.metadata.uri] for c in self.cands), dtype=np.int64, count=n
        )
        # Collapse the immutable key suffix (-pop, uri) into its sort
        # rank, then fold the mutable prefixes on top as integer
        # composites — one ranking key each instead of four/five, so a
        # turn costs one argmin / two-key lexsort (keys are unique, so
        # lexicographic order is preserved exactly):
        #   static_key = (phase, -pop, uri)               [cyclic suffix]
        #   coord_key  = (phase, -own, -proxy, -pop, uri) [coordinator]
        order = np.lexsort((tie, neg_pop))
        static_sub = np.empty(n, dtype=np.int64)
        static_sub[order] = np.arange(n, dtype=np.int64)
        self.static_sub = static_sub
        no_req = (self.own_count + self.proxy_count) == 0
        self.static_key = no_req * n + static_sub
        base = (no_req * (nm + 1) + (nm - self.own_count)) * (nm + 1) + (
            nm - self.proxy_count
        )
        self.coord_key = base * n + static_sub

    def deactivate(self, i: int) -> None:
        """Retire row ``i`` from every eligibility mask."""
        self.alive[i] = False
        self.ready[i] = False

    def resync(self, i: int) -> None:
        """Rebuild row ``i`` from its candidate's (mutated) sets."""
        cand = self.cands[i]
        members = self.members
        own = cand.own_requesters
        proxy = cand.proxy_requesters
        self.holders[i] = [node in cand.holders for node in members]
        self.reqmask[i] = [node in own or node in proxy for node in members]
        oc = len(own)
        pc = len(proxy)
        self.own_count[i] = oc
        self.proxy_count[i] = pc
        self.ready[i] = bool(self.alive[i]) and bool(cand.missing)
        nm = len(members)
        no_req = oc + pc == 0
        sub = int(self.static_sub[i])
        self.static_key[i] = (self.n if no_req else 0) + sub
        base = ((nm + 1 if no_req else 0) + (nm - oc)) * (nm + 1) + (nm - pc)
        self.coord_key[i] = base * self.n + sub

    def neg_requester_weights(
        self, sender: NodeState, now: float, rows: "np.ndarray"
    ) -> Optional["np.ndarray"]:
        """Negated tit-for-tat requester weights for the selected rows.

        Accumulates the sender's per-member weight vector column by
        column in ascending member order — term for term the object
        path's ``weight_of_requesters`` over ``sorted(requesters)``, so
        the sums are bitwise identical despite float addition being
        non-associative. Each term is negated *before* accumulation:
        IEEE rounding commutes with negation, so the running sum equals
        the negation of the object path's running sum at every step,
        and the result ranks like the object key's ``-weight``.

        Zero-valued terms are skipped — adding ``±0.0`` to the running
        sum never changes its bits here (the sum starts at ``+0.0`` and
        ``+0.0 + -0.0 == +0.0``) — and when every term is zero the
        method returns ``None``: all keys tie at zero, so ranking falls
        through to the static key alone.
        """
        wvec = sender.credits.requester_weight_vector(self.members, now)
        negw = None
        req = None
        for j, w in enumerate(wvec):
            if w:
                if req is None:
                    req = self.reqmask[rows]
                    negw = np.zeros(rows.shape[0], dtype=np.float64)
                negw[req[:, j]] += -w
        return negw


class _PieceColumns:
    """Piece-phase twin of :class:`_MetaColumns`.

    Adds the requester column pair, the URI group id used to resync
    same-file siblings after a send (``_transmit_piece`` may add
    newly-interested receivers to their requester sets), and the live
    candidate-list mirror handed to the engine so its sibling scan sees
    the object path's exact list state.
    """

    __slots__ = (
        "members",
        "cands",
        "live_list",
        "n",
        "alive",
        "ready",
        "holders",
        "req",
        "req_count",
        "static_sub",
        "static_key",
        "coord_key",
        "gid",
    )

    def __init__(self, members_sorted: List[NodeId], cands: List) -> None:
        self.members = members_sorted
        self.cands = list(cands)
        #: The engine-visible list (the very object the caller built);
        #: :meth:`kill` removes from it exactly where the object loops
        #: call ``candidates.remove``.
        self.live_list = cands
        n = self.n = len(self.cands)
        nm = len(members_sorted)
        self.alive = np.ones(n, dtype=bool)
        self.holders = _membership_matrix([c.holders for c in self.cands], members_sorted)
        req_sets = [c.requesters for c in self.cands]
        self.req = _membership_matrix(req_sets, members_sorted)
        self.req_count = np.fromiter(
            (len(s) for s in req_sets), dtype=np.int64, count=n
        )
        # Rows nobody is missing (e.g. a polluter's own fakes) start
        # not-ready, mirroring the object loops' live ``c.missing`` filter.
        self.ready = np.fromiter(
            (bool(c.missing) for c in self.cands), dtype=bool, count=n
        )
        neg_pop = np.fromiter(
            (-c.metadata.popularity for c in self.cands), dtype=np.float64, count=n
        )
        pair_rank = {
            pair: r
            for r, pair in enumerate(sorted((c.uri, c.index) for c in self.cands))
        }
        tie = np.fromiter(
            (pair_rank[(c.uri, c.index)] for c in self.cands),
            dtype=np.int64,
            count=n,
        )
        # Composite integer ranking keys, as in _MetaColumns:
        #   static_key = (phase, -pop, uri, index)        [cyclic suffix]
        #   coord_key  = (phase, -req, -pop, uri, index)  [coordinator]
        order = np.lexsort((tie, neg_pop))
        static_sub = np.empty(n, dtype=np.int64)
        static_sub[order] = np.arange(n, dtype=np.int64)
        self.static_sub = static_sub
        no_req = self.req_count == 0
        self.static_key = no_req * n + static_sub
        self.coord_key = (no_req * (nm + 1) + (nm - self.req_count)) * n + static_sub
        gid_of = {uri: g for g, uri in enumerate(sorted({c.uri for c in self.cands}))}
        self.gid = np.fromiter(
            (gid_of[c.uri] for c in self.cands), dtype=np.int64, count=n
        )

    def kill(self, i: int) -> None:
        """Retire row ``i`` and mirror the object path's list removal."""
        self.alive[i] = False
        self.ready[i] = False
        self.live_list.remove(self.cands[i])

    def _resync_requesters(self, j: int, requesters) -> None:
        rc = len(requesters)
        self.req[j] = [node in requesters for node in self.members]
        self.req_count[j] = rc
        nm = len(self.members)
        sub = int(self.static_sub[j])
        if rc == 0:
            self.static_key[j] = self.n + sub
            self.coord_key[j] = ((nm + 1) + nm) * self.n + sub
        else:
            self.static_key[j] = sub
            self.coord_key[j] = (nm - rc) * self.n + sub

    def resync_after_transmit(self, i: int) -> None:
        """Resync the sent row and its same-URI siblings' requesters."""
        cand = self.cands[i]
        self.holders[i] = [node in cand.holders for node in self.members]
        self._resync_requesters(i, cand.requesters)
        self.ready[i] = bool(self.alive[i]) and bool(cand.missing)
        # Other pieces of the same file may have gained requesters from
        # the engine's newly-interested scan; their holder/missing sets
        # are untouched by a sibling's transmission.
        for j in np.nonzero(self.alive & (self.gid == self.gid[i]))[0].tolist():
            if j == i:
                continue
            self._resync_requesters(j, self.cands[j].requesters)

    def neg_requester_weights(
        self, sender: NodeState, now: float, rows: "np.ndarray"
    ) -> Optional["np.ndarray"]:
        """See :meth:`_MetaColumns.neg_requester_weights`."""
        wvec = sender.credits.requester_weight_vector(self.members, now)
        negw = None
        req = None
        for j, w in enumerate(wvec):
            if w:
                if req is None:
                    req = self.req[rows]
                    negw = np.zeros(rows.shape[0], dtype=np.float64)
                negw[req[:, j]] += -w
        return negw


def run_metadata_coordinator(
    engine,
    states: Mapping[NodeId, NodeState],
    members: FrozenSet[NodeId],
    candidates: List,
    budget: int,
    now: float,
    view: ArrayCliqueView,
) -> None:
    """Array twin of ``MobileBitTorrent._metadata_coordinator_loop``."""
    cols = _MetaColumns(sorted(states), candidates)
    serves = _serves_vector(states, cols.members, pieces=False)
    elect_coordinator(members)
    for __ in range(budget):
        sendable = cols.ready & (cols.holders & serves).any(axis=1)
        idxs = np.nonzero(sendable)[0]
        if idxs.size == 0:
            break
        # coord_key is the integer composite of the object loop's
        # _meta_key = (phase, -own, -proxy, -pop, uri); unique, so its
        # argmin is exactly min(sendable).
        i = int(idxs[np.argmin(cols.coord_key[idxs])])
        cand = cols.cands[i]
        # First willing holder in ascending member order == min(senders).
        sender = cols.members[int(np.argmax(cols.holders[i] & serves))]
        if not engine._transmit_metadata(states, members, cand, sender, now, view):
            # The failed attempt still consumed this budget slot.
            cols.deactivate(i)
            continue
        cols.resync(i)
        if not cand.missing:
            cols.deactivate(i)


def run_metadata_cyclic(
    engine,
    states: Mapping[NodeId, NodeState],
    members: FrozenSet[NodeId],
    candidates: List,
    budget: int,
    now: float,
    view: ArrayCliqueView,
) -> None:
    """Array twin of ``MobileBitTorrent._metadata_cyclic_loop``."""
    cols = _MetaColumns(sorted(states), candidates)
    col_of = {node: j for j, node in enumerate(cols.members)}
    order = cyclic_order(members)
    adversary = engine._adversary
    spent = 0
    idle_turns = 0
    position = 0
    while spent < budget and idle_turns < len(order):
        sender_id = order[position % len(order)]
        position += 1
        sender = states[sender_id]
        if sender.selfish or not sender.strategy.serves:
            if adversary is not None and not sender.strategy.serves:
                adversary.count("turns_skipped")
            idle_turns += 1
            continue
        eligible = cols.ready & cols.holders[:, col_of[sender_id]]
        idxs = np.nonzero(eligible)[0]
        sent = False
        if idxs.size:
            # _meta_tft_key = (-weight, phase, -pop, uri): the negated
            # weight ranks first, static_key composes the rest. Keys
            # are fixed at turn start, like the object heap's. All-zero
            # weights (None) leave static_key as the whole key.
            negw = cols.neg_requester_weights(sender, now, idxs)
            if negw is None:
                ranked = np.argsort(cols.static_key[idxs])
            else:
                ranked = np.lexsort((cols.static_key[idxs], negw))
            for t in ranked.tolist():
                i = int(idxs[t])
                cand = cols.cands[i]
                sent = engine._transmit_metadata(
                    states, members, cand, sender_id, now, view
                )
                if sent:
                    cols.resync(i)
                if not cand.missing:
                    cols.deactivate(i)
                if sent:
                    break
        if sent:
            spent += 1
            idle_turns = 0
        else:
            idle_turns += 1


def run_piece_coordinator(
    engine,
    states: Mapping[NodeId, NodeState],
    members: FrozenSet[NodeId],
    candidates: List,
    budget: int,
    now: float,
) -> None:
    """Array twin of ``MobileBitTorrent._piece_coordinator_loop``."""
    cols = _PieceColumns(sorted(states), candidates)
    serves = _serves_vector(states, cols.members, pieces=True)
    elect_coordinator(members)
    for __ in range(budget):
        sendable = cols.ready & (cols.holders & serves).any(axis=1)
        idxs = np.nonzero(sendable)[0]
        if idxs.size == 0:
            break
        # coord_key composes _piece_key = (phase, -req, -pop, uri, index).
        i = int(idxs[np.argmin(cols.coord_key[idxs])])
        cand = cols.cands[i]
        sender = cols.members[int(np.argmax(cols.holders[i] & serves))]
        if not engine._transmit_piece(
            states, members, cols.live_list, cand, sender, now
        ):
            # Choked or receiver-less: slot consumed, candidate retired.
            cols.kill(i)
            continue
        cols.resync_after_transmit(i)
        if not cand.missing:
            cols.kill(i)


def run_piece_cyclic(
    engine,
    states: Mapping[NodeId, NodeState],
    members: FrozenSet[NodeId],
    candidates: List,
    budget: int,
    now: float,
) -> None:
    """Array twin of ``MobileBitTorrent._piece_cyclic_loop``."""
    cols = _PieceColumns(sorted(states), candidates)
    col_of = {node: j for j, node in enumerate(cols.members)}
    order = cyclic_order(members)
    adversary = engine._adversary
    spent = 0
    idle_turns = 0
    position = 0
    while spent < budget and idle_turns < len(order):
        sender_id = order[position % len(order)]
        position += 1
        sender = states[sender_id]
        if (
            sender.selfish
            or not sender.strategy.serves
            or not sender.strategy.serves_pieces
        ):
            if adversary is not None and not (
                sender.strategy.serves and sender.strategy.serves_pieces
            ):
                adversary.count("turns_skipped")
            idle_turns += 1
            continue
        eligible = cols.ready & cols.holders[:, col_of[sender_id]]
        idxs = np.nonzero(eligible)[0]
        sent = False
        if idxs.size:
            # _piece_tft_key = (-weight, phase, -pop, uri, index).
            negw = cols.neg_requester_weights(sender, now, idxs)
            if negw is None:
                ranked = np.argsort(cols.static_key[idxs])
            else:
                ranked = np.lexsort((cols.static_key[idxs], negw))
            for t in ranked.tolist():
                i = int(idxs[t])
                cand = cols.cands[i]
                sent = engine._transmit_piece(
                    states, members, cols.live_list, cand, sender_id, now
                )
                if sent:
                    cols.resync_after_transmit(i)
                if not cand.missing:
                    cols.kill(i)
                if sent:
                    break
        if sent:
            spent += 1
            idle_turns = 0
        else:
            idle_turns += 1
