"""Vectorized clique phase over :class:`~repro.core.arrays.NodeStateArrays`.

The object-path clique phase rebuilds a :class:`~repro.core.cliqueview.
CliqueView` per clique by scanning every record of every member store.
This module replaces that scan with array lookups: membership,
liveness, canonical-record selection and piece-bitmap unions are numpy
reductions over the run-global struct-of-arrays mirror, and only the
(small) surviving candidate set is materialized as Python objects.

Equivalence contract
--------------------
The builders here must be *bitwise-equivalent* to
:func:`repro.core.discovery.build_metadata_candidates` and
:func:`repro.core.download.build_piece_candidates` — not just produce
equal candidate sets. Two implementation rules make that hold:

* **Counter parity.** The deterministic ``perf.*`` counters are part
  of the result fingerprint, so every memoized accessor the object
  builders touch (``own_query_tokens``, ``foreign_query_tokens``,
  ``wanted_uris``) is called here for the same members at the same
  instants.
* **Set-layout parity.** The scheduler iterates some of the candidate
  frozensets (e.g. broadcast receivers derive from ``missing``), and
  equal sets built in different element orders can iterate differently.
  Every frozenset below is built by the *same comprehension shape over
  the same iteration order* as its object-path twin: ``missing`` filters
  ``members``, requesters filter ``missing`` (metadata) or the
  member-order ``wanting`` list (pieces), piece holders filter the
  member-order bitmap list. Sets the engine only uses for membership
  tests and ``min()`` (holders, eligible senders) are exempt.

The builders read the arrays *fresh* on every call instead of patching
a per-clique snapshot: the store observers keep the arrays current
through mid-contact transmissions, which is exactly the state the
object view reaches via ``note_holder``/``refresh``. The canonical
record per URI is re-derived as "first sorted member holding the
maximum popularity" (``argmax`` returns the first maximum), which picks
a record object equal to the object view's build-time choice: metadata
transmissions always deliver the canonical copy, so mid-contact
deliveries never raise the maximum and any new first-holder stores the
very record the object view already chose.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Set

from repro.catalog.files import bit_indices
from repro.core import discovery, download
from repro.core.arrays import NodeStateArrays, _np as np
from repro.core.node import NodeState
from repro.types import NodeId, Uri


class ArrayCliqueView:
    """Array-core stand-in for :class:`~repro.core.cliqueview.CliqueView`.

    Carries the clique's identity (members, instant, arrays handle)
    between the discovery and download phases and mirrors the object
    view's maintenance API. ``note_holder`` is a no-op — the store
    observers already recorded the transmission in the arrays — and
    ``mark_dirty``/``refresh`` only replicate the object view's
    rebuild *accounting* (the ``perf.view_reuses`` /
    ``perf.view_rebuilds`` counters are fingerprinted), since the
    builders re-read the arrays fresh either way.
    """

    __slots__ = ("soa", "states", "now", "members_sorted", "_rows_sorted", "_dirty", "rebuilds")

    def __init__(
        self,
        soa: NodeStateArrays,
        states: Mapping[NodeId, NodeState],
        now: float,
    ) -> None:
        self.soa = soa
        self.states = states
        self.now = now
        self.members_sorted: List[NodeId] = sorted(states)
        self._rows_sorted = np.fromiter(
            (soa.row_of(n) for n in self.members_sorted),
            dtype=np.intp,
            count=len(self.members_sorted),
        )
        self._dirty = False
        self.rebuilds = 0

    def held_live(self) -> "np.ndarray":
        """Bool matrix: ``[sorted-member i, uri id j]`` holds a live record."""
        soa = self.soa
        size = soa.size
        pop = soa.pop[self._rows_sorted, :size]
        live = soa.expires_at[:size] > self.now
        return (pop >= 0.0) & live[None, :]

    def pop_sub(self) -> "np.ndarray":
        """Popularity matrix over sorted members (``-1`` = not held)."""
        return self.soa.pop[self._rows_sorted, : self.soa.size]

    # -- CliqueView maintenance API -------------------------------------------

    def note_holder(self, node: NodeId, record) -> None:
        """No-op: the receiving store's observer already updated the arrays."""

    def mark_dirty(self) -> None:
        self._dirty = True

    def refresh(self) -> bool:
        """Report (and clear) dirtiness, mirroring the object view's rebuild."""
        if not self._dirty:
            return False
        self._dirty = False
        self.rebuilds += 1
        return True


def _matched_ids(soa: NodeStateArrays, token_sets: Sequence[FrozenSet[str]]) -> Set[int]:
    """Union of global conjunctive-match id sets over several queries."""
    out: Set[int] = set()
    for tokens in token_sets:
        __, ids = soa.match_ids(tokens)
        if ids:
            out |= ids
    return out


def _canonical_rows(held: "np.ndarray", pop: "np.ndarray", cols: "np.ndarray") -> "np.ndarray":
    """First sorted-member row holding the max-popularity live copy, per column."""
    masked = np.where(held[:, cols], pop[:, cols], -1.0)
    return masked.argmax(axis=0)


def build_metadata_candidates(
    view: ArrayCliqueView,
    states: Mapping[NodeId, NodeState],
    now: float,
    include_foreign: bool,
) -> List[discovery.MetadataCandidate]:
    """Array twin of :func:`repro.core.discovery.build_metadata_candidates`."""
    soa = view.soa
    members = frozenset(states)
    msorted = view.members_sorted
    no_match: Set[int] = set()
    # Token matching runs against the run-global postings (memoized per
    # token set) instead of a freshly built per-clique index; the
    # accessors are still called for every member for counter parity.
    own_ids = {n: _matched_ids(soa, s.own_query_tokens(now)) for n, s in states.items()}
    if include_foreign:
        foreign_ids = {
            n: _matched_ids(soa, s.foreign_query_tokens(now))
            for n, s in states.items()
        }
    else:
        foreign_ids = {n: no_match for n in states}

    held = view.held_live()
    if held.size == 0:
        return []
    holder_count = held.sum(axis=0, dtype=np.int64)
    # A candidate needs at least one holder and at least one member
    # missing the record.
    cand_mask = (holder_count > 0) & (holder_count < len(msorted))
    cand_cols = np.nonzero(cand_mask)[0]
    if cand_cols.size == 0:
        return []
    canon = _canonical_rows(held, view.pop_sub(), cand_cols).tolist()
    # One bulk transpose+tolist instead of a numpy call per candidate:
    # per-candidate work below is pure-Python over short member lists.
    held_rows = held[:, cand_cols].T.tolist()

    candidates: List[discovery.MetadataCandidate] = []
    for t, j in enumerate(cand_cols.tolist()):
        uri = soa.uri_of(j)
        flags = held_rows[t]
        holders = {node for node, flag in zip(msorted, flags) if flag}
        missing = members - holders
        own = frozenset(node for node in missing if j in own_ids[node])
        proxy = frozenset(
            node
            for node in missing
            if node not in own and j in foreign_ids[node]
        )
        record = states[msorted[canon[t]]].metadata.peek(uri)
        assert record is not None  # canon row holds a live copy by construction
        candidates.append(
            discovery.MetadataCandidate(
                metadata=record,
                holders=frozenset(holders),
                own_requesters=own,
                proxy_requesters=proxy,
                missing=frozenset(missing),
            )
        )
    return candidates


def build_piece_candidates(
    view: ArrayCliqueView,
    states: Mapping[NodeId, NodeState],
    now: float,
) -> List[download.PieceCandidate]:
    """Array twin of :func:`repro.core.download.build_piece_candidates`."""
    soa = view.soa
    downloads = download.advertised_downloads(states, now)
    members = frozenset(states)
    member_list = list(states)
    msorted = view.members_sorted

    held = view.held_live()
    if held.size == 0:
        return []
    holder_count = held.sum(axis=0, dtype=np.int64)
    # URIs with a live record somewhere in the clique — the object
    # view's ``record_by_uri`` key set at piece-phase time.
    live_cols = np.nonzero(holder_count > 0)[0]
    if live_cols.size == 0:
        return []
    rows_mlist = np.fromiter(
        (soa.row_of(n) for n in member_list), dtype=np.intp, count=len(member_list)
    )
    bits_sub = soa.bits[rows_mlist[:, None], live_cols[None, :]]
    union_col = np.bitwise_or.reduce(bits_sub, axis=0)
    active = np.nonzero(union_col != np.uint64(0))[0]
    if active.size == 0:
        return []
    # Restrict every per-URI array to the active columns, then convert
    # to Python lists in bulk: the loop body must not touch numpy.
    cols_act = live_cols[active]
    canon = _canonical_rows(held, view.pop_sub(), cols_act).tolist()
    bits_rows = bits_sub[:, active].T.tolist()
    held_rows = held[:, cols_act].T.tolist()
    union_list = union_col[active].tolist()

    candidates: List[download.PieceCandidate] = []
    for t, j in enumerate(cols_act.tolist()):
        uri = soa.uri_of(j)
        member_bits = bits_rows[t]
        holder_bitmaps = [
            (node, bitmap) for node, bitmap in zip(member_list, member_bits) if bitmap
        ]
        union = union_list[t]
        eligible_pool = {node for node, flag in zip(msorted, held_rows[t]) if flag}
        wanting = [node for node in member_list if uri in downloads[node]]
        record = states[msorted[canon[t]]].metadata.peek(uri)
        assert record is not None
        for index in bit_indices(union):
            mask = 1 << index
            holders = {node for node, bitmap in holder_bitmaps if bitmap & mask}
            eligible_senders = frozenset(holders & eligible_pool)
            if not eligible_senders:
                continue
            missing = members - holders
            if not missing:
                continue
            requesters = frozenset(node for node in wanting if node not in holders)
            candidates.append(
                download.PieceCandidate(
                    metadata=record,
                    index=index,
                    holders=eligible_senders,
                    requesters=requesters,
                    missing=frozenset(missing),
                )
            )
    return candidates
