"""Per-node protocol state.

A node runs a file-discovery process and a file-download process
(§III-B). Its state comprises:

* a **metadata store** (bounded, evicting the least popular record);
* a **piece store** with checksum verification;
* its **own queries** plus, under full MBT, the stored queries of its
  *frequent contacting nodes* (§IV: "nodes can also store the query
  strings of their most frequently connected nodes to cooperatively
  shorten file discovery time");
* a **neighbor table** fed by hello messages;
* a tit-for-tat **credit ledger**;
* flags: Internet access (§VI-A) and selfishness (§IV-B/§V-B).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

from repro.catalog.files import IntegrityError, PieceStore
from repro.catalog.metadata import Metadata, PublisherRegistry, verify_metadata
from repro.catalog.query import Query
from repro.core.credits import make_ledger
from repro.core.strategies import HONEST, Strategy
from repro.types import NodeId, Uri


@dataclass
class NodeStats:
    """Operational counters for one node."""

    metadata_received: int = 0
    metadata_duplicates: int = 0
    metadata_rejected_auth: int = 0
    pieces_received: int = 0
    piece_duplicates: int = 0
    metadata_sent: int = 0
    pieces_sent: int = 0
    files_completed: int = 0
    internet_syncs: int = 0
    metadata_evictions: int = 0
    piece_evictions: int = 0
    checksum_rejections: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "metadata_received": self.metadata_received,
            "metadata_duplicates": self.metadata_duplicates,
            "metadata_rejected_auth": self.metadata_rejected_auth,
            "pieces_received": self.pieces_received,
            "piece_duplicates": self.piece_duplicates,
            "metadata_sent": self.metadata_sent,
            "pieces_sent": self.pieces_sent,
            "files_completed": self.files_completed,
            "internet_syncs": self.internet_syncs,
            "metadata_evictions": self.metadata_evictions,
            "piece_evictions": self.piece_evictions,
            "checksum_rejections": self.checksum_rejections,
        }


#: Supported eviction policies for a bounded metadata store.
EVICTION_POLICIES = ("popularity", "fifo", "lru", "utility")


class MetadataStore:
    """Bounded metadata store with pluggable eviction.

    The abundance of metadata is the point of the discovery scheme, but
    storage is finite. When full, a victim is chosen by ``policy``:

    * ``"popularity"`` (default, the paper's spirit): evict the record
      with the lowest ``(popularity, uri)`` key;
    * ``"fifo"``: evict the oldest-inserted record;
    * ``"lru"``: evict the least recently ``get``-accessed record;
    * ``"utility"``: evict the lowest ``popularity × remaining TTL`` —
      a record's expected future usefulness. Motivated by the storage
      ablation (`bench_storage.py`): pure popularity eviction keeps old
      popular records that are about to expire anyway, which is why
      plain FIFO can beat it; utility combines both signals.

    Records matching one of the owner's *protected* URIs (metadata for
    files the node itself wants) are never evicted while an
    unprotected victim exists.

    The store maintains an **inverted token→URI index** over its
    records so conjunctive keyword matching (:meth:`matching_uris`) is
    an intersection of per-token posting sets instead of a scan of
    every record. The index covers *all* stored records; liveness is
    the caller's concern (filter at query time). ``mutations`` counts
    every content change and lets callers key derived caches off store
    state without subscribing to individual operations.
    """

    def __init__(self, capacity: Optional[int] = None, policy: str = "popularity") -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be >= 1 or None")
        if policy not in EVICTION_POLICIES:
            raise ValueError(f"unknown eviction policy {policy!r}")
        self._capacity = capacity
        self._policy = policy
        #: Optional mutation observer (``added``/``removed``/``cleared``)
        #: keeping the array core's struct-of-arrays mirror in sync; the
        #: store itself stays the source of truth.
        self._observer = None
        #: Records evicted (not expired) over the store's lifetime.
        self.evictions = 0
        #: Content mutations (adds, evictions, expiries, clears) over
        #: the store's lifetime; cache-key material for derived views.
        self.mutations = 0
        #: Conjunctive-match queries answered through the token index.
        self.index_queries = 0
        #: Insertion-ordered; LRU moves entries to the end on access.
        self._records: Dict[Uri, Metadata] = {}
        #: Inverted index: name token -> URIs of records carrying it.
        self._token_index: Dict[str, Set[Uri]] = {}

    def set_observer(self, observer) -> None:
        """Install the mutation observer (one per store; None detaches)."""
        self._observer = observer

    def __contains__(self, uri: Uri) -> bool:
        return uri in self._records

    def __len__(self) -> int:
        return len(self._records)

    def get(self, uri: Uri) -> Optional[Metadata]:
        record = self._records.get(uri)
        if record is not None and self._policy == "lru":
            self._records[uri] = self._records.pop(uri)  # touch
        return record

    def peek(self, uri: Uri) -> Optional[Metadata]:
        """Look up a record *without* touching LRU recency.

        Index-driven scans (candidate builders, wanted-set refreshes)
        must use this instead of :meth:`get`: they are bookkeeping, not
        user accesses, and must not perturb the eviction order.
        """
        return self._records.get(uri)

    @property
    def uris(self) -> FrozenSet[Uri]:
        return frozenset(self._records)

    def records(self) -> List[Metadata]:
        """All records, unordered."""
        return list(self._records.values())

    def uris_in_order(self) -> Iterator[Uri]:
        """URIs in store order (insertion order; LRU recency order)."""
        return iter(self._records)

    def matching_uris(self, tokens: FrozenSet[str]) -> Set[Uri]:
        """URIs whose records match the conjunctive token set.

        Equivalent to ``{uri for uri, md in records if tokens <=
        md.token_set}`` but computed as an intersection of inverted-
        index posting sets, smallest first. Includes expired records —
        filter by liveness at the call site when it matters.
        """
        self.index_queries += 1
        if not tokens:
            return set(self._records)
        postings = []
        for token in tokens:
            posting = self._token_index.get(token)
            if not posting:
                return set()
            postings.append(posting)
        postings.sort(key=len)
        result = set(postings[0])
        for posting in postings[1:]:
            result &= posting
            if not result:
                break
        return result

    def _index_add(self, record: Metadata) -> None:
        for token in record.token_set:
            self._token_index.setdefault(token, set()).add(record.uri)

    def _index_remove(self, record: Metadata) -> None:
        for token in record.token_set:
            posting = self._token_index.get(token)
            if posting is not None:
                posting.discard(record.uri)
                if not posting:
                    del self._token_index[token]

    def may_evict_on_insert(self, uri: Uri) -> bool:
        """Whether inserting ``uri`` could trigger an eviction."""
        if self._capacity is None:
            return False
        return uri not in self._records and len(self._records) >= self._capacity

    def add(
        self,
        metadata: Metadata,
        protected: FrozenSet[Uri] = frozenset(),
        now: Optional[float] = None,
    ) -> bool:
        """Insert a record; return True if it was new.

        Re-inserting an existing URI refreshes the record (popularity
        updates) but reports it as a duplicate. ``now`` feeds the
        utility policy's remaining-TTL computation (defaults to the
        record's creation time when absent).
        """
        old = self._records.get(metadata.uri)
        new = old is None
        if old is not None and old.token_set != metadata.token_set:
            self._index_remove(old)
            old = None
        self._records[metadata.uri] = metadata
        if old is None:
            self._index_add(metadata)
        self.mutations += 1
        if self._observer is not None:
            self._observer.added(metadata)
        if new and self._capacity is not None and len(self._records) > self._capacity:
            at = now if now is not None else metadata.created_at
            self._evict_one(protected | {metadata.uri}, at)
        return new

    def _evict_one(self, protected: FrozenSet[Uri], now: float) -> None:
        victims = [md for uri, md in self._records.items() if uri not in protected]
        if not victims:
            # Everything is protected; fall back to evicting globally.
            victims = list(self._records.values())
        if self._policy == "popularity":
            victim = min(victims, key=lambda md: (md.popularity, md.uri))
        elif self._policy == "utility":
            victim = min(
                victims,
                key=lambda md: (
                    md.popularity * max(0.0, md.expires_at - now),
                    md.uri,
                ),
            )
        else:
            # fifo: oldest inserted; lru: least recently touched — both
            # are the earliest entry in the ordered dict.
            victim = victims[0]
        del self._records[victim.uri]
        self._index_remove(victim)
        self.evictions += 1
        self.mutations += 1
        if self._observer is not None:
            self._observer.removed(victim.uri)

    def drop_expired(self, now: float) -> List[Uri]:
        """Remove expired records; return removed URIs."""
        dead = [uri for uri, md in self._records.items() if not md.is_live(now)]
        for uri in dead:
            self._index_remove(self._records.pop(uri))
            if self._observer is not None:
                self._observer.removed(uri)
        if dead:
            self.mutations += 1
        return dead

    def clear(self) -> None:
        """Drop every record (node crash with storage loss).

        Lifetime counters (``evictions``) survive — they describe the
        node's history, not its current contents.
        """
        self._records.clear()
        self._token_index.clear()
        self.mutations += 1
        if self._observer is not None:
            self._observer.cleared()


class NodeState:
    """The full protocol state of one DTN node."""

    def __init__(
        self,
        node: NodeId,
        registry: PublisherRegistry,
        internet_access: bool = False,
        selfish: bool = False,
        metadata_capacity: Optional[int] = None,
        metadata_policy: str = "popularity",
        piece_capacity: Optional[int] = None,
        payload_length: int = 64,
        verify_signatures: bool = True,
        selection_policy: str = "all",
        strategy: Optional[Strategy] = None,
        credit_policy: str = "plain",
    ) -> None:
        if piece_capacity is not None and piece_capacity < 1:
            raise ValueError("piece_capacity must be >= 1 or None")
        if selection_policy not in ("all", "best"):
            raise ValueError(f"unknown selection policy {selection_policy!r}")
        self.node = node
        self.internet_access = internet_access
        self.selfish = selfish
        self.registry = registry
        self.verify_signatures = verify_signatures
        self.selection_policy = selection_policy
        #: Behavior profile consulted by the protocol engine; honest
        #: unless an :class:`~repro.core.strategies.AdversaryPlan`
        #: assigned this node otherwise.
        self.strategy = HONEST if strategy is None else strategy
        self.metadata = MetadataStore(metadata_capacity, metadata_policy)
        self.pieces = PieceStore(payload_length)
        self.piece_capacity = piece_capacity
        self.credits = make_ledger(credit_policy, node)
        #: URIs whose metadata failed verification in this node's own
        #: hands. First-hand evidence of forgery: under the reputation
        #: credit policy the engine stops targeting this node with them
        #: (see ``MobileBitTorrent._screen_rejected``), so an evergreen
        #: fake stops taxing the clique's budget after one exposure.
        #: Like the credit ledger, this judgment survives :meth:`wipe`.
        self.rejected_uris: Set[Uri] = set()
        self.stats = NodeStats()
        self._own_queries: List[Query] = []
        #: Queries of frequent contacts, stored under full MBT.
        self._foreign_queries: Dict[NodeId, List[Query]] = {}
        self.frequent_contacts: Set[NodeId] = set()
        #: (peer -> last hello time), from received hellos.
        self.neighbor_last_heard: Dict[NodeId, float] = {}
        #: Peer download requests heard in hellos: uri -> (last heard
        #: time, number of distinct peers heard requesting it). Access
        #: nodes use this to proxy-download files for the DTN (§III-A:
        #: nodes without Internet access "download files with the help
        #: of other nodes in the hybrid DTN").
        self._peer_requests: Dict[Uri, Tuple[float, Set[NodeId]]] = {}
        #: Monotonic version, bumped on every state mutation; lets
        #: derived sets (wanted URIs) be cached between mutations.
        self._version = 0
        self._wanted_cache: Tuple[int, float, FrozenSet[Uri]] = (-1, -1.0, frozenset())
        #: Hello bloom summary memo, keyed on the metadata store's
        #: mutation counter and the (fpr, seed) knobs; see
        #: :meth:`hello_summary`. The filter itself lives in
        #: ``repro.net.bloom``.
        self._summary_cache: Tuple[int, float, int, object] = (-1, -1.0, 0, None)
        #: Bumped whenever the carried query population changes (own
        #: query added, foreign queries stored, expiry, wipe); keys the
        #: memoized live-query and token-tuple views below.
        self._query_version = 0
        self._own_live_cache: Tuple[int, float, List[Query]] = (-1, -1.0, [])
        self._foreign_live_cache: Tuple[int, float, List[Query]] = (-1, -1.0, [])
        self._own_tokens_cache: Tuple[int, float, Tuple[FrozenSet[str], ...]] = (-1, -1.0, ())
        self._foreign_tokens_cache: Tuple[int, float, Tuple[FrozenSet[str], ...]] = (-1, -1.0, ())
        #: Deterministic cache instrumentation, aggregated into the
        #: run-level ``perf.*`` counters by the simulation runner.
        self.wanted_cache_hits = 0
        self.wanted_cache_misses = 0
        self.query_cache_hits = 0
        self.query_cache_misses = 0
        #: Array-core attachment (see :mod:`repro.core.arrays`): the
        #: run-global struct-of-arrays mirror and this node's row in it.
        #: ``None`` under the default object core.
        self._accel_arrays = None
        self._accel_row = -1

    def attach_accel(self, arrays, row: int) -> None:
        """Attach the run's :class:`~repro.core.arrays.NodeStateArrays`."""
        self._accel_arrays = arrays
        self._accel_row = row

    # -- queries ------------------------------------------------------------------

    def add_own_query(self, query: Query) -> None:
        if query.node != self.node:
            raise ValueError(f"query of node {query.node} given to node {self.node}")
        self._own_queries.append(query)
        self._version += 1
        self._query_version += 1

    def own_queries(self, now: float) -> List[Query]:
        """The node's live standing queries.

        Memoized per ``(query population, now)`` — contact processing
        asks several times at the same instant. Returns a fresh list;
        callers may extend it.
        """
        version, cached_now, cached = self._own_live_cache
        if version == self._query_version and cached_now == now:  # detlint: ignore[DET004] cache identity: exact instant match intended
            self.query_cache_hits += 1
            return list(cached)
        self.query_cache_misses += 1
        live = [q for q in self._own_queries if q.is_live(now)]
        self._own_live_cache = (self._query_version, now, live)
        return list(live)

    def store_foreign_queries(self, peer: NodeId, queries: Iterable[Query]) -> None:
        """Remember a frequent contact's queries (full MBT only)."""
        stored = self._foreign_queries.setdefault(peer, [])
        known = {(q.target_uri, q.tokens) for q in stored}
        for query in queries:
            key = (query.target_uri, query.tokens)
            if key not in known:
                stored.append(query)
                known.add(key)
                self._query_version += 1

    def foreign_queries(self, now: float) -> List[Query]:
        """Live stored queries of frequent contacts (memoized)."""
        version, cached_now, cached = self._foreign_live_cache
        if version == self._query_version and cached_now == now:  # detlint: ignore[DET004] cache identity: exact instant match intended
            self.query_cache_hits += 1
            return list(cached)
        self.query_cache_misses += 1
        live: List[Query] = []
        # detlint: ignore[DET002] -- insertion-ordered dict: peers are added
        # in deterministic contact-processing order, and reordering here
        # would change the advertised query order (and thus the results).
        for queries in self._foreign_queries.values():
            live.extend(q for q in queries if q.is_live(now))
        self._foreign_live_cache = (self._query_version, now, live)
        return list(live)

    def carried_queries(self, now: float, include_foreign: bool) -> List[Query]:
        """Queries the node advertises and pulls for.

        Under full MBT this is own + stored frequent-contact queries;
        under MBT-Q (and MBT-QM) it is the node's own queries only.
        """
        queries = self.own_queries(now)
        if include_foreign:
            queries.extend(self.foreign_queries(now))
        return queries

    def query_tokens(self, now: float, include_foreign: bool) -> Tuple[FrozenSet[str], ...]:
        """Token sets for the hello message."""
        tokens = self.own_query_tokens(now)
        if include_foreign:
            tokens = tokens + self.foreign_query_tokens(now)
        return tokens

    def own_query_tokens(self, now: float) -> Tuple[FrozenSet[str], ...]:
        """Token sets of the node's own live queries (memoized)."""
        version, cached_now, cached = self._own_tokens_cache
        if version == self._query_version and cached_now == now:  # detlint: ignore[DET004] cache identity: exact instant match intended
            return cached
        tokens = tuple(q.tokens for q in self.own_queries(now))
        self._own_tokens_cache = (self._query_version, now, tokens)
        return tokens

    def foreign_query_tokens(self, now: float) -> Tuple[FrozenSet[str], ...]:
        """Token sets carried for frequent contacts (memoized)."""
        version, cached_now, cached = self._foreign_tokens_cache
        if version == self._query_version and cached_now == now:  # detlint: ignore[DET004] cache identity: exact instant match intended
            return cached
        tokens = tuple(q.tokens for q in self.foreign_queries(now))
        self._foreign_tokens_cache = (self._query_version, now, tokens)
        return tokens

    def unmatched_own_queries(self, now: float) -> List[Query]:
        """Own live queries with no matching metadata in the store."""
        return [
            query
            for query in self.own_queries(now)
            if not self.metadata.matching_uris(query.tokens)
        ]

    # -- wanted files ---------------------------------------------------------------

    def wanted_uris(self, now: float) -> FrozenSet[Uri]:
        """URIs the node is downloading (selected metadata, incomplete).

        Which matching metadata the user "selects" is governed by
        ``selection_policy``:

        * ``"all"`` (default, the evaluation's simplification): every
          stored record matching a live query is selected;
        * ``"best"`` (§III-B's manual selection: "the user may select
          one of the metadata"): per query, only the best-ranked match
          — verified publishers first, then popularity — is selected.
          Under pollution, this is what shields users from keyword-
          identical fakes.

        A URI stays wanted until all its pieces are stored. The result
        is cached until the next state mutation at the same instant
        (contact processing calls this in hot loops). Matching runs
        through the metadata store's inverted token index instead of a
        full-store scan.
        """
        version, cached_now, cached = self._wanted_cache
        if version == self._version and cached_now == now:  # detlint: ignore[DET004] cache identity: exact instant match intended
            self.wanted_cache_hits += 1
            return cached
        self.wanted_cache_misses += 1
        accel = self._accel_arrays
        if accel is not None and accel.coherent and self.selection_policy == "all":
            # Array core: matched ∩ held ∩ live ∩ incomplete in a few
            # vectorized filters. Counter parity with the scan below:
            # one index query per own query, misses already counted.
            own = self.own_queries(now)
            self.metadata.index_queries += len(own)
            result = accel.wanted_uris(
                self._accel_row, [q.tokens for q in own], now
            )
            self._wanted_cache = (self._version, now, result)
            return result
        peek = self.metadata.peek
        wanted: Set[Uri] = set()
        # Equal frozensets built in different element orders can still
        # iterate differently (hash-collision layout), and callers such
        # as internet_sync iterate this set to sequence downloads — so
        # insert in the historical (query, store-scan) order the full
        # scan produced, not in index-intersection order. The position
        # map is O(store), so build it only once a query matches.
        position: Optional[Dict[Uri, int]] = None
        for query in self.own_queries(now):
            hits = self.metadata.matching_uris(query.tokens)
            if not hits:
                continue
            if position is None:
                position = {
                    uri: i for i, uri in enumerate(self.metadata.uris_in_order())
                }
            matched = sorted(hits, key=position.__getitem__)
            matches = [
                record
                for record in map(peek, matched)
                if record is not None and record.is_live(now)
            ]
            if not matches:
                continue
            if self.selection_policy == "best":
                matches = [self._best_match(matches)]
            for record in matches:
                if not self.pieces.is_complete(record.uri, record.num_pieces):
                    wanted.add(record.uri)
        result = frozenset(wanted)
        self._wanted_cache = (self._version, now, result)
        return result

    def hello_summary(self, fpr: float, seed: int):
        """Bloom summary of the URIs this node holds or is downloading.

        This is the filter a hello beacon carries under
        ``ProtocolConfig.hello_blooms`` (§III-B's held/downloading
        listing, compressed): peers screen metadata candidates against
        it, so exchange cost scales with new items rather than with
        this node's store. Downloading URIs are always a subset of the
        stored metadata's URIs (a download needs its record), so one
        filter over the store covers both sets.

        Cached per ``(metadata.mutations, fpr, seed)``: the store only
        grows/shrinks through its mutation counter, and the filter's
        bits are a pure function of the URI set and the two knobs.
        """
        mutations, cached_fpr, cached_seed, cached = self._summary_cache
        if (
            cached is not None
            and mutations == self.metadata.mutations
            and cached_fpr == fpr  # detlint: ignore[DET004] config knob identity, not sim time
            and cached_seed == seed
        ):
            return cached
        from repro.net.bloom import BloomFilter

        summary = BloomFilter.from_items(
            sorted(self.metadata.uris), fpr=fpr, seed=seed
        )
        self._summary_cache = (self.metadata.mutations, fpr, seed, summary)
        return summary

    def _best_match(self, matches: List[Metadata]) -> Metadata:
        """The record a careful user would pick among query matches.

        Authenticated publishers outrank unverifiable ones, popularity
        breaks ties, URI makes the choice deterministic.
        """
        return min(
            matches,
            key=lambda md: (
                not verify_metadata(md, self.registry),
                -md.popularity,
                md.uri,
            ),
        )

    def protected_uris(self, now: float) -> FrozenSet[Uri]:
        """Metadata URIs shielded from eviction (they match own queries)."""
        protected: Set[Uri] = set()
        for query in self.own_queries(now):
            protected |= self.metadata.matching_uris(query.tokens)
        return frozenset(protected)

    # -- receiving ------------------------------------------------------------------

    def accept_metadata(self, metadata: Metadata, now: float) -> bool:
        """Verify and store a received metadata record.

        Returns True if the record was new and accepted. Records from
        unknown publishers or with bad signatures are rejected
        (fake-publisher defence).
        """
        if self.verify_signatures and not verify_metadata(metadata, self.registry):
            self.stats.metadata_rejected_auth += 1
            self.rejected_uris.add(metadata.uri)
            return False
        if not metadata.is_live(now):
            return False
        # Computing the protected set is only needed when eviction can
        # actually happen (the store is bounded and full).
        if self.metadata.may_evict_on_insert(metadata.uri):
            protected = self.protected_uris(now)
        else:
            protected = frozenset()
        evictions_before = self.metadata.evictions
        new = self.metadata.add(metadata, protected=protected, now=now)
        self.stats.metadata_evictions += self.metadata.evictions - evictions_before
        if new:
            self.stats.metadata_received += 1
            self._version += 1
        else:
            self.stats.metadata_duplicates += 1
        return new

    def accept_piece(
        self, uri: Uri, index: int, payload: bytes, checksum: str, now: float = 0.0
    ) -> bool:
        """Verify and store a received piece; True if new and admitted.

        With a bounded piece buffer, room is made by evicting pieces of
        files the node does not want (lowest popularity first); if
        everything stored is wanted, an unwanted incoming piece is
        refused instead.
        """
        if not self._make_room_for_piece(uri, now):
            return False
        try:
            new = self.pieces.add(uri, index, payload, checksum)
        except IntegrityError:
            self.stats.checksum_rejections += 1
            raise
        if new:
            self.stats.pieces_received += 1
            self._version += 1
        else:
            self.stats.piece_duplicates += 1
        return new

    def _make_room_for_piece(self, incoming_uri: Uri, now: float) -> bool:
        """Evict until the buffer has room; False if the piece must be refused.

        Pieces of files matching the owner's queries — still downloading
        *or already completed* — are kept; relay-cached pieces of other
        files are evicted lowest-popularity first.
        """
        if self.piece_capacity is None:
            return True
        keep = self.protected_uris(now)
        while self.pieces.total_pieces() >= self.piece_capacity:
            # Sorted: the eviction key reads each victim's metadata via
            # get(), which touches LRU recency — set-iteration order
            # here would make the touch sequence hash-seed dependent.
            victims = sorted(
                uri
                for uri in self.pieces.uris
                if uri != incoming_uri and uri not in keep
            )
            if not victims:
                # Everything stored is the owner's (or the incoming
                # file): only admit the piece if it is itself wanted,
                # evicting the least popular other kept file.
                if incoming_uri not in keep:
                    return False
                victims = sorted(uri for uri in self.pieces.uris if uri != incoming_uri)
                if not victims:
                    return True  # buffer holds only this file's pieces
            victim = min(victims, key=self._eviction_key)
            self.stats.piece_evictions += self.pieces.count_of(victim)
            self.pieces.drop(victim)
            self._version += 1
        return True

    def _eviction_key(self, uri: Uri) -> Tuple[float, Uri]:
        record = self.metadata.get(uri)
        popularity = record.popularity if record is not None else -1.0
        return (popularity, uri)

    # -- peer requests ---------------------------------------------------------------

    def remember_peer_requests(self, peer: NodeId, uris: Iterable[Uri], now: float) -> None:
        """Store the downloading URIs a peer advertised in its hello."""
        for uri in uris:
            last, requesters = self._peer_requests.get(uri, (now, set()))
            requesters.add(peer)
            self._peer_requests[uri] = (max(last, now), requesters)

    def top_peer_requests(self, now: float, window: float) -> List[Uri]:
        """Recently heard peer requests, most-demanded first.

        Requests older than ``window`` seconds are pruned. Order:
        number of distinct requesters descending, recency descending,
        URI as the deterministic tie-break.
        """
        stale = [
            uri for uri, (last, __) in self._peer_requests.items() if now - last > window
        ]
        for uri in stale:
            del self._peer_requests[uri]
        return sorted(
            self._peer_requests,
            key=lambda uri: (
                -len(self._peer_requests[uri][1]),
                -self._peer_requests[uri][0],
                uri,
            ),
        )

    def receive_whole_file(self, uri: Uri, num_pieces: int) -> None:
        """Store every piece of a file at once (Internet download)."""
        self.pieces.add_whole_file(uri, num_pieces)
        self._version += 1

    # -- housekeeping -----------------------------------------------------------------

    def wipe(self) -> None:
        """Forget everything learned from the network (crash with storage loss).

        Metadata and piece stores, stored foreign queries, heard peer
        requests and the neighbor table are dropped. The node's own
        standing queries survive (the user re-enters them on reboot),
        as do the credit ledger, the frequent-contact configuration and
        the lifetime ``stats`` counters.
        """
        self.metadata.clear()
        self.pieces.clear()
        self._foreign_queries.clear()
        self._peer_requests.clear()
        self.neighbor_last_heard.clear()
        self._version += 1
        self._query_version += 1

    def expire(self, now: float) -> None:
        """Drop expired metadata, queries and orphaned pieces."""
        self._version += 1
        self._query_version += 1
        self.metadata.drop_expired(now)
        self._own_queries = [q for q in self._own_queries if q.is_live(now)]
        for peer in list(self._foreign_queries):
            live = [q for q in self._foreign_queries[peer] if q.is_live(now)]
            if live:
                self._foreign_queries[peer] = live
            else:
                del self._foreign_queries[peer]
        live_uris = self.metadata.uris
        self.pieces.drop_expired(live_uris)

    def heard_recently(self, now: float, window: float) -> FrozenSet[NodeId]:
        """Neighbors heard within ``window`` seconds."""
        return frozenset(
            peer
            for peer, t in self.neighbor_last_heard.items()
            if now - t <= window
        )

    def __repr__(self) -> str:
        access = "inet" if self.internet_access else "dtn"
        return (
            f"NodeState(node={self.node}, {access}, "
            f"meta={len(self.metadata)}, pieces={self.pieces.total_pieces()})"
        )
