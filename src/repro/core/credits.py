"""Tit-for-tat credit ledger (§IV-B).

Each node ``u`` maintains a credit value for every other node ``v``,
proportional to how useful ``v``'s transmissions were to ``u``:

* a new metadata (or piece) matching one of ``u``'s queries earns the
  sender ``REQUESTED_METADATA_CREDIT`` (= 5, the paper's constant);
* a new but un-requested item earns the sender its popularity
  (a value in [0, 1]).

Senders then weigh candidate items by the *sum of the credits of the
nodes requesting* them, so contributing nodes receive their desired
items earlier. Duplicates earn nothing.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Mapping

from repro.types import NodeId

#: Credit for delivering a new item the receiver asked for (§IV-B).
REQUESTED_METADATA_CREDIT: float = 5.0


class CreditLedger:
    """Per-node map ``peer -> credit`` with the paper's update rules."""

    def __init__(self, owner: NodeId) -> None:
        self.owner = owner
        self._credits: Dict[NodeId, float] = defaultdict(float)

    def credit_of(self, peer: NodeId) -> float:
        """Current credit of ``peer`` (0.0 if never seen)."""
        return self._credits.get(peer, 0.0)

    def reward_requested(self, sender: NodeId) -> None:
        """Sender delivered a new item the owner had requested."""
        if sender == self.owner:
            return
        self._credits[sender] += REQUESTED_METADATA_CREDIT

    def reward_unrequested(self, sender: NodeId, popularity: float) -> None:
        """Sender delivered a new item the owner had not requested."""
        if sender == self.owner:
            return
        if not 0.0 <= popularity <= 1.0:
            raise ValueError(f"popularity must be in [0,1], got {popularity}")
        self._credits[sender] += popularity

    def weight_of_requesters(self, requesters: Iterable[NodeId]) -> float:
        """Sum of the owner's credits for ``requesters`` (§IV-B rule)."""
        return sum(self._credits.get(peer, 0.0) for peer in requesters)

    def as_mapping(self) -> Mapping[NodeId, float]:
        """Read-only snapshot of the ledger."""
        return dict(self._credits)

    def total_granted(self) -> float:
        """Sum of all credits the owner has granted."""
        return sum(self._credits.values())
