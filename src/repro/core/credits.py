"""Tit-for-tat credit ledger (§IV-B) and its reputation-hardened variant.

Each node ``u`` maintains a credit value for every other node ``v``,
proportional to how useful ``v``'s transmissions were to ``u``:

* a new metadata (or piece) matching one of ``u``'s queries earns the
  sender ``REQUESTED_METADATA_CREDIT`` (= 5, the paper's constant);
* a new but un-requested item earns the sender its popularity
  (a value in [0, 1]).

Senders then weigh candidate items by the *sum of the credits of the
nodes requesting* them, so contributing nodes receive their desired
items earlier. Duplicates earn nothing.

The plain scheme trusts every claim, which the adversarial strategies
(:mod:`repro.core.strategies`) exploit: exploiters inflate the
popularity they claim for unrequested deliveries, and polluters keep
earning credit between detections. :class:`ReputationCreditLedger`
hardens it with *first-hand* observations only (no gossip, so sybils
cannot launder reputation): every peer starts neutral, verified-useful
deliveries raise its reputation, failed signature/checksum
verifications and caught over-claims lower it, and the value decays
toward neutral over time so stale judgments fade. Requester weights
and the choking credit are scaled by the decayed reputation (that is
how low-reputation peers are discounted) and proven over-claims are
penalized instead of paid. The companion receiver-side defense lives
in the engine: a node under this policy remembers the URIs that
failed verification in its hands (``NodeState.rejected_uris``) and
refuses to be a transmission target for them again, ending the
repeat-broadcast tax a polluter's evergreen fakes otherwise levy on
every contact.

Both ledgers expose one interface (``now=0.0`` defaults keep the plain
ledger's call sites and results bitwise identical to pre-reputation
builds); :func:`make_ledger` picks the variant from
``SimulationConfig.credit_policy``.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.types import NodeId

#: Credit for delivering a new item the receiver asked for (§IV-B).
REQUESTED_METADATA_CREDIT: float = 5.0

#: Selectable credit schemes (``SimulationConfig.credit_policy``).
CREDIT_POLICIES: Tuple[str, ...] = ("plain", "reputation")

#: Reputation constants. A peer starts neutral; each verified-useful
#: delivery moves it a ``GAIN`` fraction toward 1.0, each offence a
#: ``PENALTY`` fraction toward 0.0 (offences outpace recovery, so a
#: persistent polluter cannot wash its record by volume), and the
#: value half-lives back toward neutral so one-off judgments expire.
REPUTATION_NEUTRAL: float = 0.5
REPUTATION_GAIN: float = 0.1
REPUTATION_PENALTY: float = 0.5
REPUTATION_HALF_LIFE: float = 86_400.0  # one simulated day


class CreditLedger:
    """Per-node map ``peer -> credit`` with the paper's update rules.

    The ``now``/``claimed`` parameters exist so both credit policies
    share one call interface; the plain ledger ignores time, trusts
    claims, and never penalizes — exactly the paper's scheme.
    """

    policy = "plain"

    def __init__(self, owner: NodeId) -> None:
        self.owner = owner
        self._credits: Dict[NodeId, float] = defaultdict(float)

    def credit_of(self, peer: NodeId) -> float:
        """Current credit of ``peer`` (0.0 if never seen)."""
        return self._credits.get(peer, 0.0)

    def effective_credit(self, peer: NodeId, now: float = 0.0) -> float:
        """Credit as seen by the choking decision (plain: the credit)."""
        return self._credits.get(peer, 0.0)

    def reputation_of(self, peer: NodeId, now: float = 0.0) -> float:
        """Trust in ``peer``; the plain scheme trusts everyone fully."""
        return 1.0

    def reward_requested(self, sender: NodeId, now: float = 0.0) -> None:
        """Sender delivered a new item the owner had requested."""
        if sender == self.owner:
            return
        self._credits[sender] += REQUESTED_METADATA_CREDIT

    def reward_unrequested(
        self,
        sender: NodeId,
        popularity: float,
        now: float = 0.0,
        claimed: Optional[float] = None,
    ) -> None:
        """Sender delivered a new item the owner had not requested.

        ``popularity`` is the signed record value; ``claimed`` is what
        the sender asserted (an exploiter inflates it). The plain
        scheme has no way to notice the difference and pays the claim.
        """
        if sender == self.owner:
            return
        granted = popularity if claimed is None else claimed
        if not 0.0 <= granted <= 1.0:
            raise ValueError(f"popularity must be in [0,1], got {granted}")
        self._credits[sender] += granted

    def penalize(self, sender: NodeId, now: float = 0.0) -> None:
        """Sender was caught misbehaving; the plain scheme shrugs."""

    def weight_of_requesters(
        self, requesters: Iterable[NodeId], now: float = 0.0
    ) -> float:
        """Sum of the owner's credits for ``requesters`` (§IV-B rule).

        Summed in ascending node order: float addition is not
        associative, so a canonical order is what lets the vectorized
        scheduling kernel (:mod:`repro.core.arraycore`) reproduce the
        value bit for bit with a masked column accumulation.
        """
        return sum(self._credits.get(peer, 0.0) for peer in sorted(requesters))

    def requester_weight_vector(
        self, peers: Sequence[NodeId], now: float = 0.0
    ) -> List[float]:
        """Per-peer scheduling weights, aligned with ``peers``.

        The vectorized scheduler's bulk twin of
        :meth:`weight_of_requesters`: entry *i* is the weight peer
        ``peers[i]`` contributes when it requests an item. Credits are
        all non-negative, so a masked ascending-order accumulation of
        this vector over any requester subset reproduces
        :meth:`weight_of_requesters` exactly (skipped and zero-weight
        peers contribute an exact ``+0.0``).
        """
        credits = self._credits
        return [credits.get(peer, 0.0) for peer in peers]

    def as_mapping(self) -> Mapping[NodeId, float]:
        """Read-only snapshot of the ledger."""
        return dict(self._credits)

    def total_granted(self) -> float:
        """Sum of all credits the owner has granted."""
        return sum(self._credits.values())


class ReputationCreditLedger(CreditLedger):
    """Credit ledger augmented with decayed first-hand reputation.

    Reputation is a per-peer value in [0, 1], neutral 0.5 for
    strangers. It moves on *verified* observations only — a delivery
    that survived signature/checksum verification raises it, a caught
    offence (failed verification, popularity over-claim) lowers it —
    and decays exponentially toward neutral with
    :data:`REPUTATION_HALF_LIFE`, evaluated lazily at read time so no
    periodic sweep is needed. Requester weights are scaled by each
    requester's decayed reputation, :meth:`effective_credit` exposes
    the scaled credit for encrypted choking, and proven popularity
    over-claims are penalized instead of paid, so a low-reputation
    peer is discounted everywhere at once.
    """

    policy = "reputation"

    def __init__(self, owner: NodeId) -> None:
        super().__init__(owner)
        #: peer -> (reputation at last update, last update time)
        self._reputation: Dict[NodeId, Tuple[float, float]] = {}

    def reputation_of(self, peer: NodeId, now: float = 0.0) -> float:
        """Decayed trust in ``peer`` (neutral for strangers)."""
        entry = self._reputation.get(peer)
        if entry is None:
            return REPUTATION_NEUTRAL
        value, updated = entry
        if now > updated:
            decay = 0.5 ** ((now - updated) / REPUTATION_HALF_LIFE)
            value = REPUTATION_NEUTRAL + (value - REPUTATION_NEUTRAL) * decay
        return value

    def _observe(self, peer: NodeId, now: float, good: bool) -> None:
        value = self.reputation_of(peer, now)
        if good:
            value += REPUTATION_GAIN * (1.0 - value)
        else:
            value -= REPUTATION_PENALTY * value
        self._reputation[peer] = (value, now)

    def effective_credit(self, peer: NodeId, now: float = 0.0) -> float:
        """Credit scaled by decayed reputation (drives choking)."""
        return self._credits.get(peer, 0.0) * self.reputation_of(peer, now)

    def reward_requested(self, sender: NodeId, now: float = 0.0) -> None:
        # Verified-useful delivery: full §IV-B credit (deliberately NOT
        # scaled by reputation — honest strangers start neutral, and
        # taxing their bootstrap degrades the network the defense is
        # supposed to protect) plus a reputation gain.
        if sender == self.owner:
            return
        self._observe(sender, now, good=True)
        self._credits[sender] += REQUESTED_METADATA_CREDIT

    def reward_unrequested(
        self,
        sender: NodeId,
        popularity: float,
        now: float = 0.0,
        claimed: Optional[float] = None,
    ) -> None:
        if sender == self.owner:
            return
        if not 0.0 <= popularity <= 1.0:
            raise ValueError(f"popularity must be in [0,1], got {popularity}")
        if claimed is not None and claimed > popularity:
            # The claim exceeds the signed record's own popularity:
            # an over-claim the receiver can prove. Punish, pay nothing.
            self.penalize(sender, now)
            return
        self._observe(sender, now, good=True)
        self._credits[sender] += popularity

    def penalize(self, sender: NodeId, now: float = 0.0) -> None:
        """Caught offence: reputation drops, earned credit is docked."""
        if sender == self.owner:
            return
        self._observe(sender, now, good=False)
        credit = self._credits.get(sender, 0.0)
        if credit > 0.0:
            self._credits[sender] = credit * (1.0 - REPUTATION_PENALTY)

    def weight_of_requesters(
        self, requesters: Iterable[NodeId], now: float = 0.0
    ) -> float:
        """Requester credits weighted by decayed reputation.

        Low-reputation peers count for less, so items requested mainly
        by known offenders lose scheduling priority. Summed in
        ascending node order for the same reason as the plain ledger:
        the canonical order is the vectorized scheduler's equivalence
        contract.
        """
        return sum(
            self._credits.get(peer, 0.0) * self.reputation_of(peer, now)
            for peer in sorted(requesters)
        )

    def requester_weight_vector(
        self, peers: Sequence[NodeId], now: float = 0.0
    ) -> List[float]:
        """Reputation-scaled per-peer weights, aligned with ``peers``."""
        credits = self._credits
        return [
            credits.get(peer, 0.0) * self.reputation_of(peer, now) for peer in peers
        ]

    def reputations(self, now: float = 0.0) -> Mapping[NodeId, float]:
        """Snapshot of decayed reputations (observed peers only)."""
        return {peer: self.reputation_of(peer, now) for peer in self._reputation}


def make_ledger(policy: str, owner: NodeId) -> CreditLedger:
    """Construct the ledger variant named by ``policy``."""
    if policy == "plain":
        return CreditLedger(owner)
    if policy == "reputation":
        return ReputationCreditLedger(owner)
    raise ValueError(
        f"unknown credit policy {policy!r}; choose from {', '.join(CREDIT_POLICIES)}"
    )
