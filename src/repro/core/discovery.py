"""Cooperative file discovery: metadata selection policies (§IV).

During a contact, the clique has a budget of metadata transmissions.
Which records go on the air, and in what order, is the discovery
policy:

* **Cooperative** (§IV-A): two phases. Phase one sends metadata that
  match the queries of connected nodes — those matching *more* nodes'
  queries first, popularity breaking ties. Phase two sends the
  remaining metadata in decreasing popularity.
* **Tit-for-tat** (§IV-B): each candidate is weighed by the *sum of
  the credits of the nodes requesting it* from the sender's ledger;
  un-requested records fall back to popularity order.

This module is pure policy: it builds and ranks candidates. The phase
loop that spends the budget lives in :mod:`repro.core.mbt`.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Set, Tuple

from repro.catalog.metadata import Metadata
from repro.core.cliqueview import CliqueView
from repro.core.node import NodeState
from repro.types import NodeId, Uri


@dataclass(frozen=True)
class MetadataCandidate:
    """One metadata record that could be broadcast in the clique.

    Attributes
    ----------
    metadata:
        The record.
    holders:
        Clique members that can transmit it.
    own_requesters:
        Members whose *own* queries match the record and who lack it —
        delivering to them satisfies a user directly.
    proxy_requesters:
        Members requesting it on behalf of a frequent contact (carried
        queries, full MBT only); they collect the record to pass on.
    missing:
        Members that do not hold the record (superset of requesters).
    """

    metadata: Metadata
    holders: FrozenSet[NodeId]
    own_requesters: FrozenSet[NodeId]
    proxy_requesters: FrozenSet[NodeId]
    missing: FrozenSet[NodeId]

    @property
    def requesters(self) -> FrozenSet[NodeId]:
        """All requesters, own and proxy."""
        return self.own_requesters | self.proxy_requesters

    @property
    def requested(self) -> bool:
        return bool(self.own_requesters or self.proxy_requesters)


def advertised_query_tokens(
    states: Mapping[NodeId, NodeState], now: float, include_foreign: bool
) -> Dict[NodeId, Tuple[FrozenSet[str], ...]]:
    """Query token sets each member advertises in its hello."""
    return {
        node: state.query_tokens(now, include_foreign)
        for node, state in states.items()
    }


def build_metadata_candidates(
    states: Mapping[NodeId, NodeState],
    now: float,
    include_foreign: bool,
    view: Optional[CliqueView] = None,
) -> List[MetadataCandidate]:
    """Enumerate every useful metadata transmission in the clique.

    A record is a candidate when at least one member holds it and at
    least one member lacks it. Requesters are computed from the query
    tokens the members advertise in their hellos; under full MBT
    (``include_foreign``) members also request on behalf of the
    frequent contacts whose queries they carry.

    Matching runs through the clique-level inverted token index of
    ``view`` (built on demand when absent): per member, the set of
    clique URIs its queries match is the union of posting-set
    intersections, instead of a subset test per (member, record) pair.
    The result is order-independent — the canonical record per URI is
    picked deterministically (see :class:`~repro.core.cliqueview.
    CliqueView`) regardless of ``states`` iteration order.
    """
    if view is None:
        view = CliqueView(states, now)
    members = frozenset(states)
    no_match: Set[Uri] = set()
    own_match = {
        n: view.matched_uris(s.own_query_tokens(now)) for n, s in states.items()
    }
    if include_foreign:
        foreign_match = {
            n: view.matched_uris(s.foreign_query_tokens(now))
            for n, s in states.items()
        }
    else:
        foreign_match = {n: no_match for n in states}

    candidates: List[MetadataCandidate] = []
    for uri, holders in view.md_holders.items():
        missing = members - holders
        if not missing:
            continue
        own = frozenset(node for node in missing if uri in own_match[node])
        proxy = frozenset(
            node
            for node in missing
            if node not in own and uri in foreign_match[node]
        )
        candidates.append(
            MetadataCandidate(
                metadata=view.record_by_uri[uri],
                holders=frozenset(holders),
                own_requesters=own,
                proxy_requesters=proxy,
                missing=frozenset(missing),
            )
        )
    return candidates


def build_metadata_candidates_reference(
    states: Mapping[NodeId, NodeState],
    now: float,
    include_foreign: bool,
) -> List[MetadataCandidate]:
    """Naive reference implementation of :func:`build_metadata_candidates`.

    Scans every member's full store and subset-tests every (member,
    record) pair. Kept as the specification the indexed builder is
    property-tested against (identical candidates on random cliques).
    """
    own_tokens = {n: s.own_query_tokens(now) for n, s in states.items()}
    if include_foreign:
        foreign_tokens = {n: s.foreign_query_tokens(now) for n, s in states.items()}
    else:
        foreign_tokens = {n: () for n in states}

    holders_by_uri: Dict[Uri, Set[NodeId]] = {}
    record_by_uri: Dict[Uri, Metadata] = {}
    for node in sorted(states):
        for record in states[node].metadata.records():
            if not record.is_live(now):
                continue
            holders_by_uri.setdefault(record.uri, set()).add(node)
            existing = record_by_uri.get(record.uri)
            if existing is None or record.popularity > existing.popularity:
                record_by_uri[record.uri] = record

    members = frozenset(states)
    candidates: List[MetadataCandidate] = []
    for uri, holders in holders_by_uri.items():
        missing = members - holders
        if not missing:
            continue
        record = record_by_uri[uri]
        own = frozenset(
            node
            for node in missing
            if any(tokens <= record.token_set for tokens in own_tokens[node])
        )
        proxy = frozenset(
            node
            for node in missing - own
            if any(tokens <= record.token_set for tokens in foreign_tokens[node])
        )
        candidates.append(
            MetadataCandidate(
                metadata=record,
                holders=frozenset(holders),
                own_requesters=own,
                proxy_requesters=proxy,
                missing=frozenset(missing),
            )
        )
    return candidates


def cooperative_rank_key(candidate: MetadataCandidate) -> Tuple:
    """Two-phase cooperative order (§IV-A).

    Requested records first — "those that match the query strings of
    more nodes themselves are sent [first]": records matching members'
    *own* queries outrank records only requested on behalf of absent
    frequent contacts. Popularity breaks ties; un-requested records
    follow in decreasing popularity. URI is the deterministic final
    tie-break.
    """
    phase = 0 if candidate.requested else 1
    return (
        phase,
        -len(candidate.own_requesters),
        -len(candidate.proxy_requesters),
        -candidate.metadata.popularity,
        candidate.metadata.uri,
    )


def tit_for_tat_rank_key(candidate: MetadataCandidate, sender: NodeState) -> Tuple:
    """Credit-weighted order for a specific sender (§IV-B).

    Primary key: the sum of the sender's credits for the requesters.
    Requested records still precede un-requested at equal weight, and
    popularity breaks remaining ties.
    """
    weight = sender.credits.weight_of_requesters(candidate.requesters)
    phase = 0 if candidate.requested else 1
    return (
        -weight,
        phase,
        -candidate.metadata.popularity,
        candidate.metadata.uri,
    )


def select_cooperative(
    candidates: Sequence[MetadataCandidate],
    limit: Optional[int] = None,
) -> List[MetadataCandidate]:
    """Globally rank candidates for the coordinator (§IV-A).

    With ``limit`` (e.g. the contact's metadata budget), only the best
    ``limit`` candidates are materialized via a lazy top-k instead of a
    full sort; the rank key's URI tie-break makes the prefix identical
    to ``sorted(...)[:limit]``.
    """
    if limit is not None:
        return heapq.nsmallest(limit, candidates, key=cooperative_rank_key)
    return sorted(candidates, key=cooperative_rank_key)


def select_for_sender(
    candidates: Sequence[MetadataCandidate],
    sender: NodeState,
    tit_for_tat: bool,
    limit: Optional[int] = None,
) -> List[MetadataCandidate]:
    """Rank the candidates a given sender can transmit (top-k with ``limit``)."""
    own = [c for c in candidates if sender.node in c.holders]
    if tit_for_tat:
        key = lambda c: tit_for_tat_rank_key(c, sender)  # noqa: E731
    else:
        key = cooperative_rank_key
    if limit is not None:
        return heapq.nsmallest(limit, own, key=key)
    return sorted(own, key=key)
