"""Adversarial node strategies: the strategic threat surface (§IV-B).

The fault layer (:mod:`repro.faults`) stresses the *channel*; this
module stresses the *peers*. The paper's cooperative sharing scheme
rests on a tit-for-tat credit mechanism that assumes nodes honestly
report, relay and serve pieces — the related work ("Building Better
Incentives for Robustness in BitTorrent"; "Incentive-rewarding
mechanisms … heterogeneous DTNs") names the strategies that break that
assumption. Each is a :class:`Strategy` value plugged into
:class:`~repro.core.node.NodeState` and consulted by the
:class:`~repro.core.mbt.MobileBitTorrent` hooks:

* ``honest`` — the default; follows the protocol everywhere.
* ``free_rider`` — takes pieces but refuses every upload turn and
  carries nobody's queries (an *open* defector: peers can see it skip).
* ``under_reporter`` — hides its held records and pieces in the
  hello/metadata exchange, so it is never selected as a sender and
  even baits duplicate transmissions (a *covert* defector).
* ``polluter`` — the :mod:`repro.catalog.adversary` pirate wired into
  live contacts: seeded daily with keyword-identical fakes (full
  content, self-consistent checksums, no valid signature) which it
  serves enthusiastically through the normal candidate machinery.
* ``exploiter`` — games tit-for-tat by inflating the popularity it
  claims for unrequested deliveries, farming credit it did not earn
  (§IV-B rewards unrequested items by their popularity).

Determinism
-----------
An :class:`AdversaryPlan` is a frozen, picklable dataclass mirroring
:class:`~repro.faults.FaultPlan` and travels inside
:class:`~repro.sim.runner.SimulationConfig`, so it is part of a run's
identity for caching, checkpointing and reproducibility. Strategy
assignment draws from one ``random.Random`` seeded via SHA-256 from
``(plan.seed, run_seed)``; strategies themselves are *pure* — every
in-run decision is a deterministic function of protocol state, so
adversarial runs stay bitwise reproducible (and ``core="array"``
parity holds: all strategy effects act on the shared scheduler layer,
after the per-core candidate builders agreed on their output).

The all-zero plan (:meth:`AdversaryPlan.is_clean`) is the default and
is never instantiated into an :class:`AdversaryState`, so the honest
path stays bitwise identical to pre-adversary builds.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Dict, FrozenSet, Mapping, Optional, Sequence, Tuple

from repro.types import NodeId

__all__ = [
    "Strategy",
    "STRATEGIES",
    "STRATEGY_NAMES",
    "HONEST",
    "AdversaryPlan",
    "AdversaryState",
    "ADVERSARY_COUNTER_NAMES",
    "parse_mix",
]


@dataclass(frozen=True)
class Strategy:
    """One node behavior profile, consulted by the protocol engine.

    A strategy is pure configuration: every field is read at a
    deterministic point of contact processing, and the honest defaults
    leave the engine's behavior bitwise unchanged.
    """

    name: str
    #: Participates as a sender at all (free-riders refuse every turn).
    serves: bool = True
    #: Serves the expensive piece channel. Exploiters keep serving the
    #: cheap metadata channel (where their inflated claims farm credit)
    #: while refusing piece uploads — the classic upload-cheap,
    #: take-expensive attack on tit-for-tat.
    serves_pieces: bool = True
    #: Stores frequent contacts' queries under full MBT.
    carries_queries: bool = True
    #: Hides held records/pieces from the clique (under-reporting).
    hides_holdings: bool = False
    #: Seeded daily with the pirate's fake mirrors (pollution).
    pollutes: bool = False
    #: Popularity this node claims for unrequested deliveries
    #: (``None`` = the signed record value; the exploiter claims 1.0).
    inflated_claim: Optional[float] = None


HONEST = Strategy("honest")

#: Registry of every pluggable strategy, keyed by name.
STRATEGIES: Dict[str, Strategy] = {
    "honest": HONEST,
    "free_rider": Strategy("free_rider", serves=False, carries_queries=False),
    "under_reporter": Strategy("under_reporter", hides_holdings=True),
    "polluter": Strategy("polluter", pollutes=True),
    "exploiter": Strategy("exploiter", serves_pieces=False, inflated_claim=1.0),
}

STRATEGY_NAMES: Tuple[str, ...] = tuple(sorted(STRATEGIES))

#: Default mix: the full threat surface in equal parts.
DEFAULT_MIX: Tuple[Tuple[str, float], ...] = (
    ("exploiter", 1.0),
    ("free_rider", 1.0),
    ("polluter", 1.0),
    ("under_reporter", 1.0),
)

#: Counter names an active adversary state reports (surfaced by the
#: runner as ``adversary.<name>`` in ``SimulationResult.counters``).
ADVERSARY_COUNTER_NAMES: Tuple[str, ...] = (
    "holdings_hidden",
    "turns_skipped",
    "rewards_inflated",
    "fakes_seeded",
    "fake_metadata_transmissions",
    "fake_piece_transmissions",
)


def _derive(*components: object) -> int:
    """Stable 64-bit stream seed from arbitrary components (SHA-256)."""
    digest = hashlib.sha256(repr(components).encode()).digest()
    return int.from_bytes(digest[:8], "big")


def parse_mix(text: str) -> Tuple[Tuple[str, float], ...]:
    """Parse a CLI strategy mix: ``"free_rider=2,polluter"``.

    Each comma-separated entry is ``name`` (weight 1) or
    ``name=weight``. The result is sorted by name so equal mixes are
    equal plans regardless of spelling order.
    """
    entries: Dict[str, float] = {}
    for raw in text.split(","):
        raw = raw.strip()
        if not raw:
            continue
        name, sep, weight_text = raw.partition("=")
        name = name.strip()
        if name not in STRATEGIES:
            raise ValueError(
                f"unknown strategy {name!r}; choose from {', '.join(STRATEGY_NAMES)}"
            )
        weight = float(weight_text) if sep else 1.0
        if name in entries:
            raise ValueError(f"strategy {name!r} listed twice in mix {text!r}")
        entries[name] = weight
    if not entries:
        raise ValueError(f"empty strategy mix {text!r}")
    return tuple(sorted(entries.items()))


@dataclass(frozen=True)
class AdversaryPlan:
    """Declarative, picklable description of the adversary population.

    Mirrors :class:`~repro.faults.FaultPlan`: the default plan
    (``fraction=0``) is clean and changes nothing; any other plan
    assigns ``fraction`` of the nodes a strategy drawn from ``mix``,
    using a dedicated SHA-256-derived stream so the pick perturbs no
    other randomness of the run.
    """

    #: Fraction of nodes that are adversarial (0 = clean plan).
    fraction: float = 0.0
    #: ``(strategy name, weight)`` pairs; weights need not sum to 1.
    mix: Tuple[Tuple[str, float], ...] = DEFAULT_MIX
    #: Fake mirrors seeded into each day's batch when the mix contains
    #: polluters (reuses :class:`~repro.catalog.adversary.FakeFileFactory`).
    polluter_fakes_per_day: int = 3
    #: Assignment-stream seed component (combined with the run seed).
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {self.fraction}")
        if not self.mix:
            raise ValueError("mix must name at least one strategy")
        for name, weight in self.mix:
            if name not in STRATEGIES:
                raise ValueError(
                    f"unknown strategy {name!r}; choose from {', '.join(STRATEGY_NAMES)}"
                )
            if not weight > 0.0:
                raise ValueError(f"weight of {name!r} must be positive, got {weight}")
        if self.polluter_fakes_per_day < 0:
            raise ValueError("polluter_fakes_per_day must be non-negative")

    def is_clean(self) -> bool:
        """True when no node can ever be adversarial (the honest path)."""
        return self.fraction == 0.0  # detlint: ignore[DET004] plan identity: the literal default, not a computed float

    def normalized_mix(self) -> Tuple[Tuple[str, float], ...]:
        """The mix with weights normalized to sum to 1 (sorted by name)."""
        ordered = tuple(sorted(self.mix))
        total = sum(weight for __, weight in ordered)
        return tuple((name, weight / total) for name, weight in ordered)


class AdversaryState:
    """Executes an :class:`AdversaryPlan` for one simulation run.

    Holds the seed-derived per-node strategy assignment plus the
    ``adversary.*`` event counters the engine hooks bump. Construction
    is cheap; one state serves one run.
    """

    def __init__(
        self, plan: AdversaryPlan, nodes: Sequence[NodeId], run_seed: int
    ) -> None:
        self.plan = plan
        rng = random.Random(_derive("adversary", plan.seed, run_seed))
        population = sorted(nodes)
        count = min(len(population), round(plan.fraction * len(population)))
        chosen = sorted(rng.sample(population, count))
        names = tuple(name for name, __ in plan.normalized_mix())
        weights = tuple(weight for __, weight in plan.normalized_mix())
        self._assignments: Dict[NodeId, Strategy] = {}
        for node in chosen:
            name = rng.choices(names, weights=weights)[0]
            self._assignments[node] = STRATEGIES[name]
        self.counters: Dict[str, int] = {name: 0 for name in ADVERSARY_COUNTER_NAMES}
        #: Precomputed role sets for the engine's hot-path checks.
        self.hiders: FrozenSet[NodeId] = frozenset(
            node for node, s in self._assignments.items() if s.hides_holdings
        )
        self.polluters: FrozenSet[NodeId] = frozenset(
            node for node, s in self._assignments.items() if s.pollutes
        )
        #: Seed for the polluters' FakeFileFactory — its own derived
        #: stream so polluter fakes never collide with (or perturb) the
        #: legacy ``malicious_fraction`` pirate's randomness.
        self.polluter_factory_seed: int = _derive("polluter-fakes", plan.seed, run_seed)

    @property
    def nodes(self) -> FrozenSet[NodeId]:
        """Every node the plan made adversarial."""
        return frozenset(self._assignments)

    def strategy_of(self, node: NodeId) -> Strategy:
        """The node's assigned strategy (honest if unassigned)."""
        return self._assignments.get(node, HONEST)

    def assignments(self) -> Mapping[NodeId, Strategy]:
        """Read-only snapshot of the per-node assignment."""
        return dict(self._assignments)

    def nodes_by_strategy(self) -> Dict[str, int]:
        """Adversarial node count per strategy name (all names listed)."""
        out = {name: 0 for name in STRATEGY_NAMES if name != "honest"}
        for node in sorted(self._assignments):
            name = self._assignments[node].name
            out[name] = out.get(name, 0) + 1
        return out

    def count(self, name: str, increment: int = 1) -> None:
        """Bump an adversary counter (engine callback)."""
        self.counters[name] = self.counters.get(name, 0) + increment

    def claimed_popularity(self, sender: NodeId, popularity: float) -> float:
        """Popularity ``sender`` claims for an unrequested delivery.

        Honest senders claim the signed record value; exploiters claim
        their inflated constant (never less than the truth — a claim
        below the signed value would only lose them credit).
        """
        strategy = self._assignments.get(sender)
        if strategy is None or strategy.inflated_claim is None:
            return popularity
        claim = max(popularity, strategy.inflated_claim)
        if claim > popularity:
            self.count("rewards_inflated")
        return claim
