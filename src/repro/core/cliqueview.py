"""Shared per-clique metadata view, reused across contact phases.

Both candidate builders (:func:`repro.core.discovery.
build_metadata_candidates` and :func:`repro.core.download.
build_piece_candidates`) need the same three facts about a clique:
which URIs have a live metadata record somewhere in it, who holds one,
and which records match a given conjunctive token set. Recomputing
them for every phase of every contact is the single largest cost in a
campaign, so :class:`CliqueView` computes them once per clique and the
protocol engine carries the view from the discovery phase into the
download phase of the same contact.

Canonical records
-----------------
Different members can hold different copies of the same URI (the
metadata server refreshes popularity, so copies drift). The view picks
one **canonical record per URI** by a deterministic rule — highest
popularity wins, ties resolved toward the copy held by the
lowest-numbered member — which makes candidate construction
independent of ``states`` dict insertion order (previously it was
last-writer-wins over whatever order the mapping happened to iterate).

Incremental maintenance
-----------------------
Metadata transmissions during the discovery phase add holders; the
engine reports them via :meth:`note_holder`, which is exact. The one
event the view cannot patch incrementally is an *eviction* on a
receiving store (a bounded store displacing some other record); the
engine calls :meth:`mark_dirty` and the next :meth:`refresh` rebuilds
the view from scratch. Evictions mid-contact are rare, so the common
case stays O(transmissions).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Mapping, Set

from repro.catalog.metadata import Metadata
from repro.core.node import NodeState
from repro.types import NodeId, Uri


class CliqueView:
    """Canonical live-metadata map of one clique at one instant."""

    __slots__ = (
        "states",
        "now",
        "record_by_uri",
        "md_holders",
        "_token_index",
        "_match_cache",
        "_dirty",
        "rebuilds",
    )

    def __init__(self, states: Mapping[NodeId, NodeState], now: float) -> None:
        self.states = states
        self.now = now
        #: Canonical live record per URI (see module docstring).
        self.record_by_uri: Dict[Uri, Metadata] = {}
        #: Members holding a live record of each URI.
        self.md_holders: Dict[Uri, Set[NodeId]] = {}
        self._token_index: Dict[str, Set[Uri]] = {}
        self._dirty = False
        #: Full rebuilds forced by mid-contact evictions.
        self.rebuilds = 0
        self._build()

    def _build(self) -> None:
        record_by_uri: Dict[Uri, Metadata] = {}
        md_holders: Dict[Uri, Set[NodeId]] = {}
        now = self.now
        # Sorted member order makes the canonical tie-break (first
        # holder at max popularity) independent of dict insertion order.
        for node in sorted(self.states):
            for record in self.states[node].metadata.records():
                # record.is_live(now), inlined: this loop touches every
                # record of every member store once per contact.
                if now >= record.created_at + record.ttl:
                    continue
                uri = record.uri
                holders = md_holders.get(uri)
                if holders is None:
                    md_holders[uri] = {node}
                    record_by_uri[uri] = record
                else:
                    holders.add(node)
                    if record.popularity > record_by_uri[uri].popularity:
                        record_by_uri[uri] = record
        token_index: Dict[str, Set[Uri]] = {}
        for uri, record in record_by_uri.items():
            for token in record.token_set:
                token_index.setdefault(token, set()).add(uri)
        self.record_by_uri = record_by_uri
        self.md_holders = md_holders
        self._token_index = token_index
        self._match_cache = {}
        self._dirty = False

    # -- queries --------------------------------------------------------------

    def matching_uris(self, tokens: FrozenSet[str]) -> Set[Uri]:
        """Clique URIs whose canonical record matches ``tokens``.

        Conjunctive match via the clique-level inverted token index:
        intersection of per-token posting sets, smallest first. Results
        are memoized per token set for the view's lifetime (several
        members often advertise the same query); callers must treat the
        returned set as read-only.
        """
        cached = self._match_cache.get(tokens)
        if cached is not None:
            return cached
        postings = []
        for token in tokens:
            posting = self._token_index.get(token)
            if not posting:
                self._match_cache[tokens] = empty = set()
                return empty
            postings.append(posting)
        postings.sort(key=len)
        result = set(postings[0])
        for posting in postings[1:]:
            result &= posting
            if not result:
                break
        self._match_cache[tokens] = result
        return result

    def matched_uris(self, token_sets: Iterable[FrozenSet[str]]) -> Set[Uri]:
        """Union of :meth:`matching_uris` over several token sets."""
        out: Set[Uri] = set()
        for tokens in token_sets:
            out |= self.matching_uris(tokens)
        return out

    # -- incremental updates ---------------------------------------------------

    def note_holder(self, node: NodeId, record: Metadata) -> None:
        """Record that ``node`` now stores ``record`` (after a transmission).

        Transmissions deliver the canonical copy, so holder-set growth
        is the only update needed for known URIs.
        """
        uri = record.uri
        holders = self.md_holders.get(uri)
        if holders is None:
            self.md_holders[uri] = {node}
            self.record_by_uri[uri] = record
            for token in record.token_set:
                self._token_index.setdefault(token, set()).add(uri)
            self._match_cache = {}  # the token index changed
        else:
            holders.add(node)

    def mark_dirty(self) -> None:
        """Flag that a member store changed in a way the view cannot patch."""
        self._dirty = True

    def refresh(self) -> bool:
        """Rebuild if dirty; returns True when a rebuild happened."""
        if not self._dirty:
            return False
        self._build()
        self.rebuilds += 1
        return True
