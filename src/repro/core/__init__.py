"""The paper's primary contribution: cooperative file sharing (MBT).

* :mod:`repro.core.node` — per-node protocol state (stores, queries,
  neighbors, frequent contacts).
* :mod:`repro.core.credits` — the tit-for-tat credit ledger (§IV-B).
* :mod:`repro.core.discovery` — cooperative and tit-for-tat metadata
  selection (§IV).
* :mod:`repro.core.download` — cooperative and tit-for-tat piece
  selection, broadcast and pair-wise scheduling (§V).
* :mod:`repro.core.coordinator` — clique coordinator election and the
  seeded cyclic broadcast order (§V-A/B).
* :mod:`repro.core.mbt` — the MBT / MBT-Q / MBT-QM protocol engine.
"""

from repro.core.credits import CreditLedger, REQUESTED_METADATA_CREDIT
from repro.core.mbt import MobileBitTorrent, ProtocolConfig, ProtocolVariant
from repro.core.node import NodeState

__all__ = [
    "CreditLedger",
    "REQUESTED_METADATA_CREDIT",
    "MobileBitTorrent",
    "ProtocolConfig",
    "ProtocolVariant",
    "NodeState",
]
