"""Setup shim for environments without the `wheel` package.

The offline toolchain here (setuptools 65, no `wheel`) cannot build
PEP 660 editable wheels, so `pip install -e .` falls back to the legacy
`setup.py develop` path, which needs this file. All real metadata lives
in pyproject.toml.
"""

from setuptools import setup

setup()
