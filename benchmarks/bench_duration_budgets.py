"""Ablation — fixed per-contact budgets vs duration-derived budgets.

The paper evaluates with fixed counts per contact (§VI-A) but argues
from contact duration in §V ("short connections are less useful for
downloading bulky file pieces ... file discovery uses the starting
period of each connection"). This ablation runs both budget models on
both traces:

* DieselNet: bus contacts average ~45 s — at 100 kB/s that is a
  handful of 256 kB pieces but hundreds of 2 kB metadata, §V's
  asymmetry in the flesh;
* NUS: 1.5 h classes move hundreds of pieces, so the duration model
  dominates the paper's fixed budget of a few pieces per contact.
"""

from dataclasses import replace

from repro.experiments.workloads import (
    dieselnet_base_config,
    dieselnet_trace,
    nus_base_config,
    nus_trace,
)
from repro.sim.runner import Simulation


def run_grid():
    cases = {
        "dieselnet": (dieselnet_trace("fast", 0), dieselnet_base_config(0)),
        "nus": (nus_trace("fast", 0), nus_base_config(0)),
    }
    out = {}
    for name, (trace, base) in cases.items():
        out[(name, "fixed")] = Simulation(trace, base).run()
        out[(name, "duration")] = Simulation(
            trace,
            replace(base, use_duration_budgets=True, bandwidth_bytes_per_s=100_000.0),
        ).run()
    return out


def test_duration_budget_models(benchmark):
    results = benchmark.pedantic(run_grid, rounds=1, iterations=1)

    print()
    print(f"{'trace':>10}{'budget':>10}{'meta':>8}{'file':>8}{'piece tx':>10}")
    for (name, model), result in results.items():
        print(
            f"{name:>10}{model:>10}{result.metadata_delivery_ratio:>8.3f}"
            f"{result.file_delivery_ratio:>8.3f}"
            f"{result.extra['piece_transmissions']:>10.0f}"
        )

    # Long NUS classes benefit dramatically from duration budgets.
    nus_fixed = results[("nus", "fixed")]
    nus_duration = results[("nus", "duration")]
    assert nus_duration.file_delivery_ratio > nus_fixed.file_delivery_ratio

    # Every configuration remains a sound protocol.
    for result in results.values():
        assert 0.0 <= result.file_delivery_ratio <= 1.0
        assert result.file_delivery_ratio <= result.metadata_delivery_ratio
