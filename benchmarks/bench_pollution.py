"""Ablation — fake-publisher pollution and signature authentication.

Paper §I motivates discovery with the fake-file problem; §III-B(f)
puts "authentication information of the metadata against fake
publishers" in every record. This bench measures the attack the
defence is for: pirate nodes mirror fresh files with keyword-identical,
checksum-consistent fakes claiming high popularity, and sweep the
pollution level with signature verification on vs off.

Expected shape: with verification on, fakes are rejected at first hop
and delivery stays near the clean baseline; with verification off,
delivery of the *true* files degrades as pollution grows (queries and
piece budgets are spent on fakes).
"""

from dataclasses import replace

from repro.experiments.workloads import dieselnet_base_config, dieselnet_trace
from repro.sim.runner import Simulation

FAKES_PER_DAY = (0, 5, 15, 30)


def run_sweep():
    trace = dieselnet_trace("fast", seed=0)
    base = replace(dieselnet_base_config(seed=0), malicious_fraction=0.15)
    rows = []
    for fakes in FAKES_PER_DAY:
        polluted = replace(base, fake_files_per_day=fakes)
        defended = Simulation(trace, polluted).run()
        undefended = Simulation(
            trace, replace(polluted, verify_signatures=False)
        ).run()
        # Third arm: gullible stores but a careful user who picks one
        # metadata per query, checking the publisher (§III-B manual
        # selection).
        careful = Simulation(
            trace,
            replace(polluted, verify_signatures=False, selection_policy="best"),
        ).run()
        rows.append((fakes, defended, undefended, careful))
    return rows


def test_pollution_vs_authentication(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    print()
    print(f"{'fakes/day':>10}{'defended file':>15}{'undefended file':>17}"
          f"{'careful-user file':>19}{'rejected':>10}")
    for fakes, defended, undefended, careful in rows:
        print(
            f"{fakes:>10}{defended.file_delivery_ratio:>15.3f}"
            f"{undefended.file_delivery_ratio:>17.3f}"
            f"{careful.file_delivery_ratio:>19.3f}"
            f"{defended.extra['metadata_rejected_auth']:>10.0f}"
        )

    clean_defended = rows[0][1]
    worst_defended = rows[-1][1]
    worst_undefended = rows[-1][2]
    worst_careful = rows[-1][3]

    # Manual selection (the §III-B user step) recovers part of the
    # loss even when stores accept fakes.
    assert worst_careful.file_delivery_ratio >= (
        worst_undefended.file_delivery_ratio - 0.02
    )

    # Authentication holds the line (small slack: pirates still waste
    # channel slots on transmissions that get rejected).
    assert worst_defended.file_delivery_ratio >= (
        clean_defended.file_delivery_ratio - 0.10
    )
    # Without it, heavy pollution visibly hurts true-file delivery.
    assert worst_undefended.file_delivery_ratio < (
        worst_defended.file_delivery_ratio - 0.02
    )
    # The defence is actually firing.
    assert worst_defended.extra["metadata_rejected_auth"] > 0
