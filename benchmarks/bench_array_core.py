"""Array-core speedup benchmark: object vs numpy contact hot path.

Runs the *saturated-catalog* workload — every node syncs the same large
popular-metadata set from the Internet, so per-contact work is dominated
by the clique-view scan over members x records, which is exactly the
term ``core="array"`` vectorizes — once per core and checks that

* the two runs are **bitwise identical** (same result fingerprint; the
  ``core`` knob is an implementation choice, not a protocol change), and
* the array core processes contact events at least ``SPEEDUP_TARGET``
  times faster than the reference object core.

Invoked by CI both through pytest (equivalence always asserted) and as
a script gate::

    PYTHONPATH=src python benchmarks/bench_array_core.py --min-speedup 3.0

The script exits non-zero when the speedup falls below the floor.
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import replace
from typing import Any, Dict

from repro.detlint.sanitizer import result_fingerprint
from repro.experiments.workloads import dieselnet_base_config, dieselnet_trace
from repro.sim.runner import run_simulation

#: Events/s floor the array core must clear over the object core on the
#: workload below (the ISSUE's acceptance bar; measured ~3.8x).
SPEEDUP_TARGET = 3.0

#: Best-of-N wall-clock measurement (guards against scheduler noise —
#: the single-shot timing that once recorded a phantom 0.87x regression).
REPEATS = 3


def bench_config():
    """Saturated-catalog workload on the fast DieselNet trace.

    Full Internet access and a large push budget replicate the same
    top-popular records to every node, so cliques meet with big,
    near-identical stores: almost no candidates to schedule, and the
    per-contact cost is the clique-view membership/liveness scan.
    """
    return replace(
        dieselnet_base_config(),
        internet_access_fraction=1.0,
        files_per_day=400,
        ttl_days=8.0,
        push_limit=2000,
        pull_limit=5,
        metadata_per_contact=3,
        files_per_contact=3,
        queries_per_node_per_day=0.5,
        popular_file_downloads=0,
    )


def measure_array_core(repeats: int = REPEATS) -> Dict[str, Any]:
    """Best-of-N object-vs-array timing plus fingerprint cross-check."""
    trace = dieselnet_trace("fast")
    config = bench_config()
    out: Dict[str, Any] = {"repeats": repeats, "workload": "dieselnet-fast/saturated-catalog"}
    fingerprints = {}
    for core in ("object", "array"):
        best = float("inf")
        result = None
        for _ in range(repeats):
            t0 = time.perf_counter()
            result = run_simulation(trace, replace(config, core=core))
            best = min(best, time.perf_counter() - t0)
        events = float(result.extra.get("events", 0.0))
        fingerprints[core] = result_fingerprint(result)
        out[f"{core}_wall_s"] = round(best, 4)
        out[f"{core}_events_per_s"] = round(events / best, 1) if best > 0 else 0.0
        out["events"] = int(events)
    out["speedup"] = (
        round(out["object_wall_s"] / out["array_wall_s"], 2)
        if out["array_wall_s"] > 0
        else float("inf")
    )
    out["fingerprint_match"] = fingerprints["object"] == fingerprints["array"]
    out["fingerprint"] = fingerprints["object"][:16]
    return out


def _report(measurement: Dict[str, Any]) -> None:
    print(
        f"array core: {measurement['events']} events, "
        f"object {measurement['object_wall_s']:.3f}s "
        f"({measurement['object_events_per_s']:.0f} ev/s), "
        f"array {measurement['array_wall_s']:.3f}s "
        f"({measurement['array_events_per_s']:.0f} ev/s) "
        f"-> {measurement['speedup']:.2f}x, fingerprints "
        f"{'match' if measurement['fingerprint_match'] else 'MISMATCH'}"
    )


def test_array_core_equivalent_and_faster(benchmark):
    measurement = benchmark.pedantic(
        lambda: measure_array_core(repeats=1), rounds=1, iterations=1
    )
    print()
    _report(measurement)
    # Bitwise identity is the hard invariant — any mismatch is a bug.
    assert measurement["fingerprint_match"], (
        "core='array' diverged from core='object' on the bench workload"
    )
    # The timing bar is asserted leniently under pytest (shared CI boxes
    # jitter); the scripted CI gate below enforces the full target.
    assert measurement["speedup"] >= 1.0, (
        f"array core slower than object core: {measurement['speedup']:.2f}x"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=SPEEDUP_TARGET,
        help=f"fail below this object->array speedup (default {SPEEDUP_TARGET})",
    )
    parser.add_argument(
        "--repeats", type=int, default=REPEATS, help="best-of-N repetitions"
    )
    args = parser.parse_args(argv)
    measurement = measure_array_core(repeats=args.repeats)
    _report(measurement)
    if not measurement["fingerprint_match"]:
        print("::error title=array core divergence::core='array' result "
              "fingerprint differs from core='object'")
        return 1
    if measurement["speedup"] < args.min_speedup:
        print(
            f"::error title=array core regression::speedup "
            f"{measurement['speedup']:.2f}x below the {args.min_speedup:.2f}x floor"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
