"""Record the repository's performance baseline into ``BENCH_core.json``.

Runs the core benchmark workloads — ``bench_runtime`` (simulator +
wire-level runtime on the DieselNet and NUS fast traces),
``bench_array_core`` (object-vs-numpy contact core on the
saturated-catalog workload), ``bench_scheduler`` (vectorized
scheduling kernel vs the kernel-off array core on the candidate-heavy
workload), ``bench_parallel_sweep`` (one DieselNet sweep grid through
:func:`repro.exec.run_many`), ``bench_trace_gen`` (grid-vs-reference
contact extraction plus a cold/warm disk-cache round trip) and
``bench_catalog`` (DHT-sharded vs flat metadata server on the
million-file Internet-side campaign) — and writes
a JSON record of wall-clock times, simulator events/s and any
``perf.*`` instrumentation counters the engine exposes. The committed ``BENCH_core.json`` is the trajectory
anchor every perf claim in this repository is measured against.

Timing numbers are only comparable between machines with the same core
count, so measurements are keyed by core count: recording on an N-core
machine updates the ``by_cores[N]`` entry and leaves entries recorded
on other machines untouched. The CI perf smoke (``--compare``) looks up
the entry matching the runner's own core count and *skips with a
warning* when none was ever recorded, instead of false-failing against
numbers from different hardware (a 1-core runner once "regressed" 0.86x
against a 4-core record purely because ``run_many`` fell back to
inline mode).

Usage
-----
::

    # Measure and write a fresh baseline (optionally embedding an older
    # measurement as the pre-change reference):
    PYTHONPATH=src python benchmarks/record_baseline.py --out BENCH_core.json \
        [--baseline old.json] [--label "post-index"]

    # CI perf smoke: re-measure the fast workloads and compare events/s
    # against the committed record; warns (exit 0) on >25% regression:
    PYTHONPATH=src python benchmarks/record_baseline.py --compare BENCH_core.json

The comparison is advisory: CI hardware varies run to run, so a
regression prints a GitHub ``::warning::`` annotation instead of
failing the build.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from typing import Any, Dict

SCHEMA = 2
DEFAULT_WARN_THRESHOLD = 0.25

#: Best-of-N repetitions for the simulator wall-clock numbers. A single
#: shot once recorded a phantom 0.87x "regression" that was pure
#: scheduler noise; the minimum over a few runs is the stable statistic.
SIM_REPEATS = 3


def _perf_counters(result) -> Dict[str, int]:
    """The ``perf.*`` subset of a result's counters (empty pre-index)."""
    try:
        counters = result.counters
    except AttributeError:
        return {}
    return {k: v for k, v in counters.items() if k.startswith("perf.")}


def measure_bench_runtime() -> Dict[str, Any]:
    """bench_runtime's workloads: simulator + runtime on both traces."""
    from repro.experiments.workloads import (
        dieselnet_base_config,
        dieselnet_trace,
        nus_base_config,
        nus_trace,
    )
    from repro.runtime import RuntimeHarness
    from repro.sim.runner import Simulation

    cases = {
        "dieselnet": (dieselnet_trace("fast", 0), dieselnet_base_config(0)),
        "nus": (nus_trace("fast", 0), nus_base_config(0)),
    }
    out: Dict[str, Any] = {"sim_repeats": SIM_REPEATS}
    total_events = 0.0
    total_sim_s = 0.0
    perf: Dict[str, int] = {}
    for name, (trace, config) in cases.items():
        sim_s = float("inf")
        for _ in range(SIM_REPEATS):
            t0 = time.perf_counter()
            sim_result = Simulation(trace, config).run()
            sim_s = min(sim_s, time.perf_counter() - t0)
        t0 = time.perf_counter()
        runtime_result = RuntimeHarness(trace, config).run()
        runtime_s = time.perf_counter() - t0
        events = float(sim_result.extra.get("events", 0.0))
        total_events += events
        total_sim_s += sim_s
        for key, value in _perf_counters(sim_result).items():
            perf[key] = perf.get(key, 0) + value
        out[name] = {
            "sim_wall_s": round(sim_s, 4),
            "runtime_wall_s": round(runtime_s, 4),
            "events": int(events),
            "events_per_s": round(events / sim_s, 1) if sim_s > 0 else 0.0,
            "metadata_delivery_ratio": round(sim_result.metadata_delivery_ratio, 6),
            "file_delivery_ratio": round(sim_result.file_delivery_ratio, 6),
            "runtime_metadata_delivery_ratio": round(
                runtime_result.metadata_delivery_ratio, 6
            ),
            "runtime_file_delivery_ratio": round(
                runtime_result.file_delivery_ratio, 6
            ),
        }
    out["events_per_s"] = (
        round(total_events / total_sim_s, 1) if total_sim_s > 0 else 0.0
    )
    if perf:
        out["perf_counters"] = perf
    return out


def measure_parallel_sweep(jobs: int = 4) -> Dict[str, Any]:
    """bench_parallel_sweep's grid, serial and with worker processes."""
    import os

    from bench_parallel_sweep import _grid_specs
    from repro.exec import resolve_execution_mode, run_many

    specs = _grid_specs()
    t0 = time.perf_counter()
    run_many(specs, jobs=1)
    serial_s = time.perf_counter() - t0
    mode, effective_jobs = resolve_execution_mode(jobs)
    t0 = time.perf_counter()
    run_many(specs, jobs=jobs)
    parallel_s = time.perf_counter() - t0
    return {
        "runs": len(specs),
        "jobs": jobs,
        # What "auto" actually chose: "inline" on single-core machines
        # (no pool, no pickling), "processes" elsewhere. Explains a
        # ~1.0x "speedup" honestly instead of recording pool overhead.
        "mode": mode,
        "effective_jobs": effective_jobs,
        "serial_s": round(serial_s, 4),
        "parallel_s": round(parallel_s, 4),
        "speedup": round(serial_s / parallel_s, 2) if parallel_s > 0 else 0.0,
        "cores": os.cpu_count() or 1,
    }


def measure_trace_gen() -> Dict[str, Any]:
    """bench_trace_gen: grid-vs-reference extraction + disk-cache round trip."""
    import tempfile

    from bench_trace_gen import DEFAULT, SCALED, cache_timings, extraction_timings

    with tempfile.TemporaryDirectory() as cache_dir:
        return {
            "extraction_scaled": extraction_timings(SCALED),
            "extraction_default": extraction_timings(DEFAULT),
            "disk_cache": cache_timings(cache_dir),
        }


def measure_array_core() -> Dict[str, Any]:
    """bench_array_core: object-vs-array speedup on the saturated workload."""
    from bench_array_core import measure_array_core as _measure

    return _measure()


def measure_scheduler() -> Dict[str, Any]:
    """bench_scheduler: kernel-on vs kernel-off array core + parity grid."""
    from bench_scheduler import check_mode_policy_grid, measure_scheduler as _measure

    record = _measure()
    record["grid"] = check_mode_policy_grid()
    return record


def measure_catalog() -> Dict[str, Any]:
    """bench_catalog: sharded-vs-flat server at the million-file scale."""
    from bench_catalog import FULL_FILES, FULL_NODES, measure_catalog as _measure

    return _measure(FULL_FILES, FULL_NODES)


def measure(label: str, quick: bool = False) -> Dict[str, Any]:
    import os

    record: Dict[str, Any] = {
        "schema": SCHEMA,
        "label": label,
        "python": platform.python_version(),
        "platform": platform.platform(),
        # Recorded at the top level: every speedup claim below is only
        # comparable across machines with the same core count.
        "cores": os.cpu_count() or 1,
        "bench_runtime": measure_bench_runtime(),
    }
    if not quick:
        record["bench_array_core"] = measure_array_core()
        record["bench_scheduler"] = measure_scheduler()
        record["bench_parallel_sweep"] = measure_parallel_sweep()
        record["bench_trace_gen"] = measure_trace_gen()
        record["bench_catalog"] = measure_catalog()
    return record


def _reference_for_cores(recorded: Dict[str, Any], cores: int):
    """The recorded entry matching ``cores``, or ``None`` if no match.

    Schema 2 records keep one measurement per core count under
    ``by_cores``; schema 1 records had a single ``current`` whose
    ``cores`` field (when present) says what machine it came from.
    """
    by_cores = recorded.get("by_cores")
    if isinstance(by_cores, dict):
        return by_cores.get(str(cores))
    reference = recorded.get("current", recorded)
    ref_cores = reference.get("cores") or reference.get(
        "bench_parallel_sweep", {}
    ).get("cores")
    if ref_cores is not None and int(ref_cores) != cores:
        return None
    return reference


def compare(path: str, threshold: float) -> int:
    """Re-measure the fast workloads and warn on an events/s regression."""
    import os

    with open(path, "r", encoding="utf-8") as handle:
        recorded = json.load(handle)
    # Scale awareness: wall-clock numbers from a machine with a
    # different core count are not a baseline for this one — skip with
    # a warning rather than false-fail (ROADMAP item 5: a 1-core
    # runner once "regressed" 0.86x against a 4-core record).
    cores = os.cpu_count() or 1
    reference = _reference_for_cores(recorded, cores)
    if reference is None:
        print(
            f"::warning title=perf smoke skipped::no recorded baseline for "
            f"{cores}-core machines in {path}; timings from other core "
            f"counts are not comparable. Record one with "
            f"record_baseline.py --out on matching hardware."
        )
        _compare_trace_gen({}, threshold)
        return 0
    ref_eps = float(reference["bench_runtime"]["events_per_s"])
    fresh = measure_bench_runtime()
    eps = float(fresh["events_per_s"])
    ratio = eps / ref_eps if ref_eps > 0 else float("inf")
    print(
        f"perf smoke: measured {eps:.1f} events/s vs recorded "
        f"{ref_eps:.1f} events/s ({ratio:.2f}x)"
    )
    if ratio < 1.0 - threshold:
        # Non-blocking: hardware varies across CI runners, so this is an
        # annotation for a human to look at, not a gate.
        print(
            f"::warning title=perf regression::bench_runtime events/s dropped to "
            f"{ratio:.2f}x of the recorded baseline "
            f"({eps:.1f} vs {ref_eps:.1f}; threshold {1.0 - threshold:.2f}x)"
        )
    _compare_trace_gen(reference, threshold)
    return 0


def _compare_trace_gen(reference: Dict[str, Any], threshold: float) -> None:
    """Advisory trace-pipeline smoke: extraction speed + cache round trip.

    The cold-then-warm cache invocation is the real gate here — its
    internal bitwise-identity assertions prove the disk cache
    round-trips on this machine; the timing comparison only warns.
    """
    import tempfile

    from bench_trace_gen import SCALED, cache_timings, extraction_timings

    fresh = extraction_timings(SCALED)
    with tempfile.TemporaryDirectory() as cache_dir:
        cache = cache_timings(cache_dir)
    print(
        f"trace-gen smoke: grid extraction {fresh['grid_s']:.2f}s "
        f"({fresh['speedup']:.2f}x vs reference); disk cache cold "
        f"{cache['cold_s']:.2f}s -> warm {cache['warm_s']:.4f}s"
    )
    recorded = reference.get("bench_trace_gen", {}).get("extraction_scaled")
    if not recorded:
        return
    ref_grid_s = float(recorded["grid_s"])
    if ref_grid_s > 0 and fresh["grid_s"] > ref_grid_s * (1.0 + threshold):
        print(
            f"::warning title=trace-gen regression::grid extraction took "
            f"{fresh['grid_s']:.2f}s vs recorded {ref_grid_s:.2f}s "
            f"(> {1.0 + threshold:.2f}x)"
        )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", help="write the measurement to this JSON file")
    parser.add_argument(
        "--baseline",
        help="embed a previously recorded measurement file as the "
        "pre-change baseline section",
    )
    parser.add_argument("--label", default="current", help="measurement label")
    parser.add_argument(
        "--quick",
        action="store_true",
        help="skip the parallel-sweep measurement (CI smoke)",
    )
    parser.add_argument(
        "--compare",
        metavar="BENCH_JSON",
        help="compare fresh events/s against a recorded file and warn on "
        "regression instead of recording",
    )
    parser.add_argument(
        "--warn-threshold",
        type=float,
        default=DEFAULT_WARN_THRESHOLD,
        help="fractional events/s drop that triggers the warning "
        f"(default {DEFAULT_WARN_THRESHOLD})",
    )
    args = parser.parse_args(argv)

    if args.compare:
        return compare(args.compare, args.warn_threshold)

    record = measure(args.label, quick=args.quick)
    payload: Dict[str, Any] = {"schema": SCHEMA, "current": record}
    # Per-core-count baselines: keep one entry per machine size, so a
    # record taken on a laptop never overwrites the CI runner's numbers
    # (and vice versa). Entries from other core counts in an existing
    # --out file are carried forward.
    by_cores: Dict[str, Any] = {}
    if args.out:
        try:
            with open(args.out, "r", encoding="utf-8") as handle:
                previous = json.load(handle)
        except (FileNotFoundError, json.JSONDecodeError):
            previous = {}
        existing = previous.get("by_cores")
        if isinstance(existing, dict):
            by_cores.update(existing)
        elif "current" in previous:
            # Schema 1 migration: file the old single record under the
            # core count it says it was measured on.
            old = previous["current"]
            old_cores = old.get("cores") or old.get(
                "bench_parallel_sweep", {}
            ).get("cores")
            if old_cores is not None:
                by_cores[str(int(old_cores))] = old
    by_cores[str(record["cores"])] = record
    payload["by_cores"] = by_cores
    if args.baseline:
        with open(args.baseline, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
        payload["baseline"] = baseline.get("current", baseline)
        base_eps = float(payload["baseline"]["bench_runtime"]["events_per_s"])
        cur_eps = float(record["bench_runtime"]["events_per_s"])
        payload["events_per_s_speedup"] = (
            round(cur_eps / base_eps, 2) if base_eps > 0 else None
        )
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"written to {args.out}")
    else:
        print(text)
    return 0


if __name__ == "__main__":
    sys.path.insert(0, "benchmarks")
    sys.exit(main())
