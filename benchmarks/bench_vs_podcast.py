"""Ablation — MBT vs channel-based podcasting at equal budgets (§II-C).

"The most significant difference between our DTN file sharing system
and the previous content distribution systems is that there is a file
discovery step" — this bench quantifies the value of that step. Both
systems run the paper's workload over the same trace with the same
whole-file transmission budget per contact; podcasting subscribes to a
queried file's publisher channel, MBT discovers the exact file.

Expected shape: MBT's per-query file delivery beats the channel
baseline at every budget, and the advantage is largest when bandwidth
is scarce (podcasting spends its budget on unqueried episodes of
subscribed channels); with abundant budget both saturate and the gap
narrows.
"""

from dataclasses import replace

from repro.core.podcast import PodcastConfig, PodcastSimulation
from repro.experiments.workloads import dieselnet_base_config, dieselnet_trace
from repro.sim.runner import Simulation

BUDGETS = (1, 3, 6)


def run_comparison():
    trace = dieselnet_trace("fast", seed=0)
    rows = []
    for budget in BUDGETS:
        mbt = Simulation(
            trace,
            replace(
                dieselnet_base_config(seed=0),
                files_per_contact=budget,
                metadata_per_contact=budget,
            ),
        ).run()
        podcast = PodcastSimulation(
            trace,
            PodcastConfig(seed=0, entries_per_contact=budget),
        ).run()
        rows.append((budget, mbt, podcast))
    return rows


def test_mbt_vs_podcast(benchmark):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)

    print()
    print(f"{'budget':>8}{'mbt file':>10}{'podcast file':>14}{'gain':>7}")
    for budget, mbt, podcast in rows:
        gain = (
            mbt.file_delivery_ratio / podcast.file_delivery_ratio
            if podcast.file_delivery_ratio
            else float("inf")
        )
        print(
            f"{budget:>8}{mbt.file_delivery_ratio:>10.3f}"
            f"{podcast.file_delivery_ratio:>14.3f}{gain:>7.2f}"
        )

    for __, mbt, podcast in rows:
        assert mbt.file_delivery_ratio > podcast.file_delivery_ratio
    # The discovery advantage is largest under bandwidth scarcity.
    scarce_mbt = rows[0][1].file_delivery_ratio
    scarce_podcast = rows[0][2].file_delivery_ratio
    assert scarce_mbt >= 1.5 * scarce_podcast
