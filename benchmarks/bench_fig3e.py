"""Fig. 3(e) — NUS: delivery ratio vs files per contact.

Paper shape: file delivery increases with the piece budget; MBT stays
ahead of MBT-QM.
"""

from repro.experiments import fig3e

from conftest import assert_mostly_ordered, assert_trend_up, run_panel


def test_fig3e_files_budget(benchmark):
    result = run_panel(benchmark, fig3e)

    for protocol in ("mbt", "mbt-q", "mbt-qm"):
        assert_trend_up(result.file_series(protocol))

    assert_mostly_ordered(result.file_series("mbt"), result.file_series("mbt-qm"))
