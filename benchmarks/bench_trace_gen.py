"""Trace-generation pipeline: spatial-hash speedup + disk-cache round trip.

Two claims, both recorded into ``BENCH_core.json`` by
``record_baseline.py``:

* **Grid vs reference extraction** — the spatial-hash kernel
  (:func:`repro.traces.mobility._extract_contacts`) must produce
  bitwise-identical contacts to the all-pairs reference scan and, on a
  community workload large enough that the O(n²) pair scan dominates,
  cut extraction wall-clock by at least 3x. (At the default 40 nodes
  per-tick constant costs — bucketing, generator overhead — cap the
  win well below the asymptotics; that smaller configuration is
  reported but not asserted.)
* **Cold vs warm disk cache** — building a trace through
  :func:`repro.exec.build_trace` with a cache directory set must be
  strictly cheaper the second time (unpack vs simulate), with
  bitwise-identical contacts.
"""

from __future__ import annotations

import random
import time
from typing import List, Tuple

from repro.traces.mobility import (
    CommunityConfig,
    _community_walkers,
    _extract_contacts,
    _extract_contacts_reference,
    _sample_positions,
)
from repro.types import DAY

SPEEDUP_TARGET = 3.0

#: Default model configuration — reported for context, not asserted.
DEFAULT = CommunityConfig()

#: Scaled community workload where the pair scan is the bottleneck:
#: 3x the default node count, a larger area so the grid stays sparse,
#: half a day so the whole bench finishes in seconds.
SCALED = CommunityConfig(
    num_nodes=120,
    num_communities=8,
    area_size=3000.0,
    duration=0.5 * DAY,
)


def _records(contacts) -> List[Tuple[float, float, Tuple[int, ...]]]:
    """Bit-exact comparable form (Contact equality ignores members)."""
    return [(c.start, c.end, tuple(sorted(c.members))) for c in contacts]


def _time_kernel(kernel, config: CommunityConfig, seed: int):
    """Run one extraction kernel on freshly simulated walkers."""
    rng = random.Random(seed ^ 0xC0FFEE)  # same stream as the generator
    walkers = _community_walkers(config, rng)
    t0 = time.perf_counter()
    contacts = kernel(
        _sample_positions(walkers, config.tick, config.duration),
        config.radio_range,
        config.tick,
        config.num_nodes,
    )
    return contacts, time.perf_counter() - t0


def extraction_timings(config: CommunityConfig, seed: int = 0) -> dict:
    """Grid vs reference on ``config``; verifies bitwise identity."""
    reference, reference_s = _time_kernel(
        _extract_contacts_reference, config, seed
    )
    grid, grid_s = _time_kernel(_extract_contacts, config, seed)
    assert _records(grid) == _records(reference), (
        "grid kernel diverged from the all-pairs reference"
    )
    return {
        "nodes": config.num_nodes,
        "ticks": int(config.duration / config.tick),
        "contacts": len(grid),
        "reference_s": round(reference_s, 4),
        "grid_s": round(grid_s, 4),
        "speedup": round(reference_s / grid_s, 2) if grid_s > 0 else 0.0,
    }


def cache_timings(cache_dir, seed: int = 0) -> dict:
    """Cold build vs warm disk load through the execution kernel."""
    from repro.exec import (
        TraceSpec,
        build_trace,
        set_trace_cache_dir,
        trace_cache_clear,
    )
    from repro.traces import cache as trace_disk_cache
    from repro.traces.mobility import generate_community_trace

    spec = TraceSpec.of(generate_community_trace, SCALED, seed)
    previous = set_trace_cache_dir(cache_dir)
    try:
        trace_cache_clear()
        trace_disk_cache.reset_cache_counters()
        t0 = time.perf_counter()
        cold = build_trace(spec)  # miss everywhere: simulate + store
        cold_s = time.perf_counter() - t0

        trace_cache_clear()  # forget in-process, keep the disk artifact
        t0 = time.perf_counter()
        warm = build_trace(spec)  # served by unpacking the disk entry
        warm_s = time.perf_counter() - t0
        counters = trace_disk_cache.cache_counters()
    finally:
        set_trace_cache_dir(previous)

    assert _records(cold) == _records(warm), "disk round-trip changed the trace"
    assert counters["perf.trace.disk_writes"] == 1
    assert counters["perf.trace.disk_hits"] == 1
    return {
        "contacts": len(cold),
        "cold_s": round(cold_s, 4),
        "warm_s": round(warm_s, 4),
        "speedup": round(cold_s / warm_s, 2) if warm_s > 0 else 0.0,
    }


def test_grid_extraction_matches_reference_and_scales(benchmark):
    reference, reference_s = _time_kernel(
        _extract_contacts_reference, SCALED, seed=0
    )

    grid_holder = {}

    def run_grid():
        grid_holder["contacts"], grid_holder["s"] = _time_kernel(
            _extract_contacts, SCALED, seed=0
        )
        return grid_holder["contacts"]

    grid = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    grid_s = grid_holder["s"]

    assert _records(grid) == _records(reference)

    speedup = reference_s / grid_s if grid_s > 0 else float("inf")
    small = extraction_timings(DEFAULT, seed=0)
    print()
    print(
        f"scaled (n={SCALED.num_nodes}): reference {reference_s:.2f}s, "
        f"grid {grid_s:.2f}s -> {speedup:.2f}x"
    )
    print(
        f"default (n={DEFAULT.num_nodes}): reference {small['reference_s']:.2f}s, "
        f"grid {small['grid_s']:.2f}s -> {small['speedup']:.2f}x"
    )
    assert speedup >= SPEEDUP_TARGET, (
        f"expected >= {SPEEDUP_TARGET}x extraction speedup on the scaled "
        f"community workload, measured {speedup:.2f}x"
    )


def test_disk_cache_cold_then_warm(tmp_path):
    timings = cache_timings(tmp_path / "trace-cache", seed=0)
    print()
    print(
        f"cache: cold {timings['cold_s']:.2f}s, warm {timings['warm_s']:.4f}s "
        f"-> {timings['speedup']:.0f}x ({timings['contacts']} contacts)"
    )
    assert timings["warm_s"] < timings["cold_s"]
