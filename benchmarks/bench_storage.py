"""Ablation — bounded metadata stores and eviction policies.

The paper assumes metadata are cheap enough to store in abundance;
this ablation quantifies what happens when they are not: sweep the
per-node metadata store capacity and compare the popularity eviction
policy (the paper's spirit — §IV ranks everything by popularity)
against FIFO and LRU.

Expected shape: delivery degrades as capacity shrinks; popularity
eviction degrades most gracefully because the records kept are the
ones most likely to be queried.
"""

from dataclasses import replace

from repro.experiments.workloads import dieselnet_base_config, dieselnet_trace
from repro.sim.runner import Simulation

CAPACITIES = (5, 15, 40, None)  # None = unbounded
POLICIES = ("popularity", "fifo", "lru", "utility")


def run_grid():
    trace = dieselnet_trace("fast", seed=0)
    base = dieselnet_base_config(seed=0)
    grid = {}
    for capacity in CAPACITIES:
        for policy in POLICIES:
            config = replace(
                base, metadata_capacity=capacity, metadata_policy=policy
            )
            grid[(capacity, policy)] = Simulation(trace, config).run()
            if capacity is None:
                break  # policy is irrelevant without a bound
    return grid


def test_storage_capacity_and_policy(benchmark):
    grid = benchmark.pedantic(run_grid, rounds=1, iterations=1)

    print()
    print(f"{'capacity':>9}{'policy':>12}{'meta':>8}{'file':>8}")
    for (capacity, policy), result in grid.items():
        cap = "inf" if capacity is None else str(capacity)
        print(
            f"{cap:>9}{policy:>12}{result.metadata_delivery_ratio:>8.3f}"
            f"{result.file_delivery_ratio:>8.3f}"
        )

    unbounded = grid[(None, "popularity")]
    for policy in POLICIES:
        tight = grid[(5, policy)]
        # Tighter stores can only hurt (within noise).
        assert tight.metadata_delivery_ratio <= (
            unbounded.metadata_delivery_ratio + 0.05
        )

    # More capacity monotonically helps (within noise) under the
    # popularity policy.
    series = [grid[(c, "popularity")].file_delivery_ratio for c in (5, 15, 40)]
    assert series[-1] >= series[0] - 0.05

    # Popularity eviction holds up at least as well as FIFO at the
    # tightest capacity.
    assert grid[(5, "popularity")].file_delivery_ratio >= (
        grid[(5, "fifo")].file_delivery_ratio - 0.05
    )

    # The utility policy (popularity × remaining TTL) should match or
    # beat pure popularity at every bounded capacity — it fixes the
    # keep-expiring-but-popular pathology.
    for capacity in (5, 15, 40):
        assert grid[(capacity, "utility")].file_delivery_ratio >= (
            grid[(capacity, "popularity")].file_delivery_ratio - 0.03
        )
