"""Fig. 2(d) — DieselNet: delivery ratio vs metadata per contact.

Paper shape: ratios increase with the metadata budget. The paper notes
an *exception* at very small budgets: with few metadata exchanged, the
globally popularity-driven protocols (MBT-QM, and MBT-Q's metadata
ratio) can look relatively better — so the ordering assertion here is
applied to the upper half of the sweep only.
"""

from repro.experiments import fig2d

from conftest import assert_mostly_ordered, assert_trend_up, run_panel


def test_fig2d_metadata_budget(benchmark):
    result = run_panel(benchmark, fig2d)

    for protocol in ("mbt", "mbt-q"):
        assert_trend_up(result.metadata_series(protocol))

    # Ordering asserted away from the small-budget exception region.
    half = len(result.x_values) // 2
    assert_mostly_ordered(
        result.metadata_series("mbt")[half:], result.metadata_series("mbt-qm")[half:]
    )
    assert_mostly_ordered(
        result.file_series("mbt")[half:], result.file_series("mbt-qm")[half:]
    )
