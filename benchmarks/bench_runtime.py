"""Validation — wire-level runtime vs omniscient simulator.

The deployment-shaped runtime (serialized frames over an emulated
radio, per-node-local knowledge only) must reproduce the simulator's
results on identical workloads: same traces, catalogs, budgets and
seeds. This bench runs both implementations on both traces and checks
they agree within a small tolerance — the strongest internal
consistency check the reproduction has.
"""

from repro.experiments.workloads import (
    dieselnet_base_config,
    dieselnet_trace,
    nus_base_config,
    nus_trace,
)
from repro.runtime import RuntimeHarness
from repro.sim.runner import Simulation

TOLERANCE = 0.06


def run_both():
    cases = {
        "dieselnet": (dieselnet_trace("fast", 0), dieselnet_base_config(0)),
        "nus": (nus_trace("fast", 0), nus_base_config(0)),
    }
    rows = []
    for name, (trace, config) in cases.items():
        sim = Simulation(trace, config).run()
        runtime = RuntimeHarness(trace, config).run()
        rows.append((name, sim, runtime))
    return rows


def test_runtime_matches_simulator(benchmark):
    rows = benchmark.pedantic(run_both, rounds=1, iterations=1)

    print()
    print(f"{'trace':>10}{'impl':>11}{'meta':>8}{'file':>8}{'frames':>9}{'MB':>8}")
    for name, sim, runtime in rows:
        print(
            f"{name:>10}{'simulator':>11}{sim.metadata_delivery_ratio:>8.3f}"
            f"{sim.file_delivery_ratio:>8.3f}{'-':>9}{'-':>8}"
        )
        print(
            f"{name:>10}{'runtime':>11}{runtime.metadata_delivery_ratio:>8.3f}"
            f"{runtime.file_delivery_ratio:>8.3f}"
            f"{runtime.extra['radio_frames']:>9.0f}"
            f"{runtime.extra['radio_bytes'] / 1e6:>8.2f}"
        )

    for name, sim, runtime in rows:
        assert abs(
            runtime.metadata_delivery_ratio - sim.metadata_delivery_ratio
        ) < TOLERANCE, name
        assert abs(
            runtime.file_delivery_ratio - sim.file_delivery_ratio
        ) < TOLERANCE, name
        assert runtime.extra["radio_frames"] > 0
