"""Fig. 3(d) — NUS: delivery ratio vs metadata per contact.

Paper shape: ratios increase with the metadata budget; the very-small-
budget exception noted for Fig. 2(d) applies here too, so ordering is
asserted on the upper half of the sweep.
"""

from repro.experiments import fig3d

from conftest import assert_mostly_ordered, assert_trend_up, run_panel


def test_fig3d_metadata_budget(benchmark):
    result = run_panel(benchmark, fig3d)

    for protocol in ("mbt", "mbt-q"):
        assert_trend_up(result.metadata_series(protocol))

    half = len(result.x_values) // 2
    assert_mostly_ordered(
        result.metadata_series("mbt")[half:], result.metadata_series("mbt-qm")[half:]
    )
    assert_mostly_ordered(
        result.file_series("mbt")[half:], result.file_series("mbt-qm")[half:]
    )
