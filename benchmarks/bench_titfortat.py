"""Ablation — tit-for-tat credits under selfish populations (§IV-B/§V-B).

The paper's incentive argument: with the credit mechanism, nodes that
contribute get their requests served earlier, so cooperative nodes are
shielded from free-riders. We sweep the selfish-node fraction and
compare delivery with and without tit-for-tat (cyclic scheduling in
both arms so only the selection policy differs).
"""

from dataclasses import replace

from repro.core.mbt import SchedulingMode
from repro.experiments.workloads import dieselnet_base_config, dieselnet_trace
from repro.sim.runner import Simulation

SELFISH_FRACTIONS = (0.0, 0.2, 0.4, 0.6)


def run_sweep():
    trace = dieselnet_trace("fast", seed=0)
    base = replace(
        dieselnet_base_config(seed=0),
        scheduling=SchedulingMode.CYCLIC,
        metadata_per_contact=2,
        files_per_contact=2,
    )
    rows = []
    for fraction in SELFISH_FRACTIONS:
        altruistic = Simulation(
            trace, replace(base, selfish_fraction=fraction, tit_for_tat=False)
        ).run()
        tft = Simulation(
            trace, replace(base, selfish_fraction=fraction, tit_for_tat=True)
        ).run()
        rows.append((fraction, altruistic, tft))
    return rows


def test_tit_for_tat_under_free_riders(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    print()
    print(f"{'selfish':>8}{'plain meta':>12}{'tft meta':>12}"
          f"{'plain file':>12}{'tft file':>12}")
    for fraction, plain, tft in rows:
        print(
            f"{fraction:>8.1f}{plain.metadata_delivery_ratio:>12.3f}"
            f"{tft.metadata_delivery_ratio:>12.3f}"
            f"{plain.file_delivery_ratio:>12.3f}{tft.file_delivery_ratio:>12.3f}"
        )

    # Free-riders hurt overall delivery in both arms.
    plain_files = [plain.file_delivery_ratio for __, plain, __ in rows]
    assert plain_files[-1] < plain_files[0]

    # Tit-for-tat stays within noise of the altruistic policy when
    # everyone cooperates and remains a functioning protocol throughout.
    first_plain, first_tft = rows[0][1], rows[0][2]
    assert abs(first_tft.file_delivery_ratio - first_plain.file_delivery_ratio) < 0.15
    for __, __, tft in rows:
        assert 0.0 <= tft.file_delivery_ratio <= 1.0
