"""Ablation — broadcast vs pair-wise download on classroom cliques.

End-to-end counterpart of the §V capacity analysis: the same NUS
simulation run once with the broadcast medium (the paper's design) and
once with the pair-wise baseline. On clique-heavy traces the broadcast
medium should deliver clearly more files per unit budget; the gap
should widen as classes grow.
"""

from repro.experiments.workloads import nus_base_config, nus_trace
from repro.sim.runner import Simulation

from dataclasses import replace


def run_both(attendance: float):
    trace = nus_trace("fast", seed=0, attendance_rate=attendance)
    base = replace(nus_base_config(seed=0), files_per_contact=2, metadata_per_contact=2)
    broadcast = Simulation(trace, replace(base, broadcast=True)).run()
    pairwise = Simulation(trace, replace(base, broadcast=False)).run()
    return broadcast, pairwise


def test_broadcast_beats_pairwise_on_cliques(benchmark):
    results = benchmark.pedantic(
        lambda: [(a, *run_both(a)) for a in (0.5, 0.8, 1.0)], rounds=1, iterations=1
    )

    print()
    print(f"{'attendance':>12}{'broadcast file':>16}{'pairwise file':>16}{'gain':>8}")
    gains = []
    for attendance, broadcast, pairwise in results:
        gain = (
            broadcast.file_delivery_ratio / pairwise.file_delivery_ratio
            if pairwise.file_delivery_ratio
            else float("inf")
        )
        gains.append(gain)
        print(
            f"{attendance:>12.1f}{broadcast.file_delivery_ratio:>16.3f}"
            f"{pairwise.file_delivery_ratio:>16.3f}{gain:>8.2f}"
        )

    for __, broadcast, pairwise in results:
        assert broadcast.file_delivery_ratio >= pairwise.file_delivery_ratio
        assert broadcast.metadata_delivery_ratio >= pairwise.metadata_delivery_ratio
    # At full attendance (largest cliques) the advantage is substantial.
    assert gains[-1] >= 1.2
