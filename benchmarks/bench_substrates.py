"""Micro-benchmarks of the substrates (engine, cliques, traces, routing).

These are classic pytest-benchmark timings — they guard against
performance regressions in the hot paths the figure sweeps rely on.
"""

from __future__ import annotations

import random

from repro.routing.base import Message, simulate_routing
from repro.routing.epidemic import EpidemicRouter
from repro.sim.cliques import maximal_cliques
from repro.sim.engine import Simulator
from repro.traces.dieselnet import DieselNetConfig, generate_dieselnet_trace
from repro.traces.nus import NUSConfig, generate_nus_trace
from repro.types import NodeId


def test_engine_throughput(benchmark):
    """Schedule-and-run 10k events."""

    def run() -> int:
        sim = Simulator()
        for t in range(10_000):
            sim.schedule(float(t), lambda: None)
        sim.run()
        return sim.events_executed

    assert benchmark(run) == 10_000


def test_dieselnet_generation(benchmark):
    trace = benchmark(
        generate_dieselnet_trace, DieselNetConfig(num_buses=30, num_days=10), 0
    )
    assert len(trace) > 0


def test_nus_generation(benchmark):
    trace = benchmark(
        generate_nus_trace, NUSConfig(num_students=80, num_courses=16, num_days=10), 0
    )
    assert len(trace) > 0


def test_clique_enumeration(benchmark):
    rng = random.Random(0)
    graph = {NodeId(i): set() for i in range(40)}
    for i in range(40):
        for j in range(i + 1, 40):
            if rng.random() < 0.25:
                graph[NodeId(i)].add(NodeId(j))
                graph[NodeId(j)].add(NodeId(i))
    cliques = benchmark(lambda: list(maximal_cliques(graph)))
    assert cliques


def test_epidemic_routing_run(benchmark):
    trace = generate_dieselnet_trace(DieselNetConfig(num_buses=20, num_days=5), 1)
    nodes = trace.nodes
    messages = [
        Message(i, nodes[i % 10], nodes[-1 - i % 10], created_at=0.0, ttl=5 * 86400.0)
        for i in range(30)
    ]
    result = benchmark.pedantic(
        lambda: simulate_routing(trace, messages, EpidemicRouter()),
        rounds=1,
        iterations=1,
    )
    assert result.delivery_ratio > 0.5
