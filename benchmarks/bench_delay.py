"""Analysis — delivery delay distributions per protocol.

The paper reports ratios only; delay is the natural companion metric
(how long after the query the metadata/file arrives). This bench
tabulates the mean / p50 / p90 metadata and file delays per protocol
on the DieselNet trace.

Expected shape: MBT's *metadata* arrive fastest (discovery runs ahead
of content; MBT-QM's metadata only arrive attached to the file itself,
so its median metadata delay is the largest). File-delay percentiles
need care: they condition on delivery, and MBT delivers many hard
long-tail queries the other protocols drop entirely, which *raises*
its measured percentiles — a survivorship effect the table makes
visible rather than hiding.
"""

from repro.core.mbt import ProtocolVariant
from repro.experiments.workloads import dieselnet_base_config, dieselnet_trace
from repro.sim.runner import Simulation

HOUR = 3600.0


def run_all():
    trace = dieselnet_trace("fast", seed=0)
    base = dieselnet_base_config(seed=0)
    out = {}
    for variant in ProtocolVariant:
        out[variant.value] = Simulation(trace, base.with_variant(variant)).run()
    return out


def test_delivery_delays(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    print()
    print(f"{'protocol':>8}{'meta p50 h':>12}{'meta p90 h':>12}"
          f"{'file p50 h':>12}{'file p90 h':>12}")
    for name, result in results.items():
        row = [name]
        for key in ("metadata_delay_p50", "metadata_delay_p90",
                    "file_delay_p50", "file_delay_p90"):
            value = result.extra.get(key)
            row.append("-" if value is None else f"{value / HOUR:.1f}")
        print(f"{row[0]:>8}{row[1]:>12}{row[2]:>12}{row[3]:>12}{row[4]:>12}")

    mbt = results["mbt"]
    qm = results["mbt-qm"]
    # MBT's median metadata delay beats MBT-QM's (discovery runs ahead
    # of content).
    assert mbt.extra["metadata_delay_p50"] <= qm.extra["metadata_delay_p50"]
    # Delays are physically sensible: within the TTL window.
    for result in results.values():
        for key in ("metadata_delay_p90", "file_delay_p90"):
            if key in result.extra:
                assert 0.0 <= result.extra[key] <= 3 * 86400.0