"""Catalog-scale benchmark: DHT-sharded server vs the flat server.

Drives the million-file / ten-thousand-node campaign of ISSUE 9: a
catalog of ``--files`` metadata records is generated shard-parallel
(worker processes synthesize the per-chunk popularity columns, the
parent materializes the records), then both servers run the same
daily Internet-side op mix the simulator produces at that scale:

* one publish batch per day (fresh records, staggered expiries),
* one ``expire`` tick (heap-served on both servers since the flat
  server's satellite fix),
* one ``internet sync`` per access node — a ranked keyword ``search``
  plus two ``top_popular`` calls (push distribution + popular-file
  seeding), which is where the flat server pays a full catalog sort
  per call and the sharded server walks its cached ranked view.

The flat server cannot run the full sync schedule at 10^6 files in
benchmark time (thousands of multi-second sorts), so it runs a
deterministic sample of the syncs and its wall clock is extrapolated
per-sync; the sharded server runs every sync for real. The headline
number is publish+search throughput (ops/s over the whole campaign),
gated at ≥ ``SPEEDUP_TARGET`` sharded-over-flat::

    PYTHONPATH=src python benchmarks/bench_catalog.py --min-speedup 5.0 \
        [--files 1000000 --nodes 10000] [--record BENCH_core.json]

Before any timing, a scripted equivalence check asserts the two
servers return identical results on the first sampled day — the
throughput comparison is only meaningful between observably identical
implementations (the hypothesis property test in
``tests/test_catalog_dht.py`` pins the general case).
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import os
import sys
import time
from array import array
from typing import Any, Dict, List, Optional, Tuple

from repro.catalog.dht import ShardedMetadataServer
from repro.catalog.metadata import Metadata
from repro.catalog.server import MetadataServer
from repro.perf import PerfRecorder
from repro.types import DAY, Uri

#: The acceptance bar: sharded publish+search throughput over flat.
SPEEDUP_TARGET = 5.0

#: Full campaign scale (the ROADMAP's million-file north star) ...
FULL_FILES = 1_000_000
FULL_NODES = 10_000

#: ... and the reduced CI smoke scale. Files shrink 100x; the node
#: count (which only sets the daily sync volume) stays at the full
#: campaign's, so the op mix keeps its shape and the smoke clears the
#: same throughput gate.
SMOKE_FILES = 10_000
SMOKE_NODES = 10_000

#: Catalog shards for the sharded side of the comparison.
NUM_SHARDS = 16

#: Fraction of nodes with Internet access (paper default), each doing
#: one sync per simulated day.
ACCESS_FRACTION = 0.3

#: Campaign days measured (after the catalog build).
CAMPAIGN_DAYS = 2

#: Syncs the flat server actually runs per day (extrapolated up).
FLAT_SYNC_SAMPLE = 12

#: Search vocabulary periods: names are "bench fileA tagB groupC".
_TAGS = 31
_GROUPS = 101
_FILES_MOD = 977

#: Record lifetime; publish days are staggered so a slice of the
#: catalog is live (and some postings dead) at measurement time.
TTL_DAYS = 3.0
PUBLISH_SPREAD_DAYS = 8


def _pop_chunk(task: Tuple[int, int, int]) -> Tuple[int, array]:
    """Worker: deterministic popularity column for one record chunk."""
    import random

    start, count, seed = task
    rng = random.Random(seed * 1_000_003 + start)
    return start, array("d", (rng.random() for __ in range(count)))


def _record_name(index: int) -> str:
    return (
        f"bench file{index % _FILES_MOD} tag{index % _TAGS} "
        f"group{index % _GROUPS}"
    )


def build_records(
    num_files: int, seed: int = 0, procs: Optional[int] = None
) -> List[Metadata]:
    """Generate the campaign catalog, shard-parallel.

    Popularity columns are synthesized in ``procs`` worker processes
    (one chunk per worker slot, compact ``array('d')`` payloads — the
    only per-record field that is not a pure function of the index);
    the parent materializes the records. Unsigned on purpose: the
    servers never verify, and signing 10^6 records would measure HMAC,
    not the catalog.
    """
    if procs is None:
        procs = min(8, os.cpu_count() or 1)
    chunk = -(-num_files // max(1, procs))
    tasks = [
        (start, min(chunk, num_files - start), seed)
        for start in range(0, num_files, chunk)
    ]
    if len(tasks) > 1:
        with multiprocessing.Pool(len(tasks)) as pool:
            columns = dict(pool.map(_pop_chunk, tasks))
    else:
        columns = dict(_pop_chunk(task) for task in tasks)
    records: List[Metadata] = []
    for start, pops in sorted(columns.items()):
        for offset, popularity in enumerate(pops):
            index = start + offset
            created_at = float(index % PUBLISH_SPREAD_DAYS) * DAY
            records.append(
                Metadata(
                    uri=Uri(f"dtn://bench/f{index:07d}"),
                    name=_record_name(index),
                    publisher="bench",
                    description="",
                    checksums=("0" * 40,),
                    size_bytes=1,
                    created_at=created_at,
                    ttl=TTL_DAYS * DAY,
                    popularity=popularity,
                )
            )
    return records


def _sync_ops(server, now: float, sync_index: int) -> None:
    """One access node's Internet sync: a search + two top_popular."""
    tokens = frozenset({f"tag{sync_index % _TAGS}", f"group{sync_index % _GROUPS}"})
    server.search(tokens, now, limit=5)
    exclude = frozenset({Uri(f"dtn://bench/f{sync_index % 997:07d}")})
    server.top_popular(now, 10, exclude=exclude)
    server.top_popular(now, 2)


def _campaign_days(num_files: int) -> List[float]:
    """Measured day instants: the first days after the build window."""
    return [
        (PUBLISH_SPREAD_DAYS + day) * DAY for day in range(1, CAMPAIGN_DAYS + 1)
    ]


def _fresh_batch(num_files: int, day: float, seed: int = 1) -> List[Metadata]:
    """The publish batch of one campaign day (0.1% of the catalog)."""
    import random

    rng = random.Random(seed + int(day))
    count = max(10, num_files // 1000)
    base = num_files + int(day // DAY) * count
    return [
        Metadata(
            uri=Uri(f"dtn://bench/f{base + i:07d}"),
            name=_record_name(base + i),
            publisher="bench",
            description="",
            checksums=("0" * 40,),
            size_bytes=1,
            created_at=day,
            ttl=TTL_DAYS * DAY,
            popularity=rng.random(),
        )
        for i in range(count)
    ]


def _check_equivalence(flat, sharded, now: float) -> None:
    """Scripted identity check before any timing is trusted."""
    probes = [
        frozenset({"tag3"}),
        frozenset({"tag5", "group7"}),
        frozenset({"absent"}),
    ]
    for tokens in probes:
        if flat.search(tokens, now, limit=20) != sharded.search(tokens, now, limit=20):
            raise RuntimeError(f"sharded search diverged from flat for {tokens}")
    if flat.top_popular(now, 25) != sharded.top_popular(now, 25):
        raise RuntimeError("sharded top_popular diverged from flat")


def _run_campaign(
    server, num_files: int, syncs_per_day: int, sync_sample: Optional[int]
) -> Tuple[float, float]:
    """(wall seconds, op count) for the daily op mix.

    ``sync_sample`` runs only that many syncs per day and extrapolates
    the sync term linearly (the flat server at full scale); ``None``
    runs the full schedule.
    """
    wall = 0.0
    ops = 0.0
    for day in _campaign_days(num_files):
        batch = _fresh_batch(num_files, day)
        t0 = time.perf_counter()
        for record in batch:
            server.publish(record)
        server.expire(day)
        wall += time.perf_counter() - t0
        ops += len(batch) + 1
        run_syncs = syncs_per_day if sync_sample is None else min(sync_sample, syncs_per_day)
        t0 = time.perf_counter()
        for sync_index in range(run_syncs):
            _sync_ops(server, day, sync_index)
        sync_wall = time.perf_counter() - t0
        if run_syncs and run_syncs < syncs_per_day:
            sync_wall *= syncs_per_day / run_syncs
        wall += sync_wall
        ops += 3 * syncs_per_day
    return wall, ops


def measure_catalog(
    num_files: int = FULL_FILES,
    num_nodes: int = FULL_NODES,
    shards: int = NUM_SHARDS,
    procs: Optional[int] = None,
) -> Dict[str, Any]:
    """Build both servers, run the campaign, return the comparison."""
    syncs_per_day = max(FLAT_SYNC_SAMPLE, int(num_nodes * ACCESS_FRACTION))
    out: Dict[str, Any] = {
        "files": num_files,
        "nodes": num_nodes,
        "shards": shards,
        "syncs_per_day": syncs_per_day,
        "campaign_days": CAMPAIGN_DAYS,
        "flat_sync_sample": FLAT_SYNC_SAMPLE,
    }

    t0 = time.perf_counter()
    records = build_records(num_files, procs=procs)
    out["generate_wall_s"] = round(time.perf_counter() - t0, 4)

    perf = PerfRecorder()
    sharded = ShardedMetadataServer(shards, perf=perf)
    t0 = time.perf_counter()
    for record in records:
        sharded.publish(record)
    sharded_publish_s = time.perf_counter() - t0

    flat = MetadataServer()
    t0 = time.perf_counter()
    for record in records:
        flat.publish(record)
    flat_publish_s = time.perf_counter() - t0
    del records

    _check_equivalence(flat, sharded, _campaign_days(num_files)[0])

    # The flat campaign mutates flat state (publishes, expiries), so it
    # runs first on its sampled schedule; the sharded campaign then
    # replays the identical schedule in full. Both see the same state
    # evolution: the day batches are deterministic.
    flat_wall, flat_ops = _run_campaign(
        flat, num_files, syncs_per_day, sync_sample=FLAT_SYNC_SAMPLE
    )
    sharded_wall, sharded_ops = _run_campaign(
        sharded, num_files, syncs_per_day, sync_sample=None
    )
    assert flat_ops == sharded_ops

    flat_total = flat_publish_s + flat_wall
    sharded_total = sharded_publish_s + sharded_wall
    total_ops = num_files + flat_ops
    out["flat_publish_s"] = round(flat_publish_s, 4)
    out["sharded_publish_s"] = round(sharded_publish_s, 4)
    out["flat_campaign_s"] = round(flat_wall, 4)
    out["sharded_campaign_s"] = round(sharded_wall, 4)
    out["flat_ops_per_s"] = round(total_ops / flat_total, 1)
    out["sharded_ops_per_s"] = round(total_ops / sharded_total, 1)
    out["speedup"] = (
        round(flat_total / sharded_total, 2) if sharded_total > 0 else float("inf")
    )
    out["shard_sizes_minmax"] = [
        min(sharded.shard_sizes()),
        max(sharded.shard_sizes()),
    ]
    out["perf_counters"] = {
        key: value
        for key, value in sorted(perf.as_counters().items())
        if key.startswith("perf.catalog.")
    }
    return out


def _report(m: Dict[str, Any]) -> None:
    print(
        f"catalog: {m['files']} files / {m['nodes']} nodes "
        f"({m['shards']} shards, {m['syncs_per_day']} syncs/day), "
        f"generated in {m['generate_wall_s']:.1f}s; "
        f"flat {m['flat_ops_per_s']:.0f} ops/s "
        f"(publish {m['flat_publish_s']:.2f}s + campaign "
        f"{m['flat_campaign_s']:.1f}s extrapolated), "
        f"sharded {m['sharded_ops_per_s']:.0f} ops/s "
        f"(publish {m['sharded_publish_s']:.2f}s + campaign "
        f"{m['sharded_campaign_s']:.2f}s) -> {m['speedup']:.1f}x"
    )


def _merge_into(path: str, measurement: Dict[str, Any]) -> None:
    """Attach the measurement to BENCH_core.json (schema 2 aware)."""
    with open(path, "r", encoding="utf-8") as handle:
        recorded = json.load(handle)
    recorded.setdefault("current", {})["bench_catalog"] = measurement
    cores = str(os.cpu_count() or 1)
    by_cores = recorded.get("by_cores")
    if isinstance(by_cores, dict) and cores in by_cores:
        by_cores[cores]["bench_catalog"] = measurement
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(recorded, handle, indent=1, sort_keys=True)
        handle.write("\n")


def test_catalog_smoke(benchmark):
    measurement = benchmark.pedantic(
        lambda: measure_catalog(SMOKE_FILES, SMOKE_NODES), rounds=1, iterations=1
    )
    print()
    _report(measurement)
    # Equivalence raised inside measure_catalog if violated; the timing
    # floor is lenient under pytest (shared boxes jitter) — the
    # scripted CI gate enforces the real target.
    assert measurement["speedup"] >= 1.0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--files", type=int, default=FULL_FILES)
    parser.add_argument("--nodes", type=int, default=FULL_NODES)
    parser.add_argument("--shards", type=int, default=NUM_SHARDS)
    parser.add_argument("--procs", type=int, default=None,
                        help="worker processes for catalog generation")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=SPEEDUP_TARGET,
        help=f"fail below this sharded-over-flat throughput ratio "
             f"(default {SPEEDUP_TARGET})",
    )
    parser.add_argument(
        "--record", metavar="BENCH_JSON", default=None,
        help="merge the measurement into this BENCH_core.json",
    )
    args = parser.parse_args(argv)
    measurement = measure_catalog(args.files, args.nodes, args.shards, args.procs)
    _report(measurement)
    if args.record:
        _merge_into(args.record, measurement)
        print(f"recorded bench_catalog into {args.record}")
    if measurement["speedup"] < args.min_speedup:
        print(
            f"::error title=catalog sharding regression::throughput ratio "
            f"{measurement['speedup']:.2f}x below the "
            f"{args.min_speedup:.2f}x floor"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
