"""Shared helpers for the figure-reproduction benchmarks.

Every ``bench_fig*`` module reproduces one panel of the paper's
evaluation (§VI-B): it runs the corresponding parameter sweep under
``pytest-benchmark``, prints the series the paper plots, and asserts
the qualitative *shape* the paper reports (who wins, which way the
curves move). Absolute values differ from the paper — the traces are
synthetic rebuilds — but the orderings and trends are the reproduction
target (see EXPERIMENTS.md).

All panels execute through the shared kernel (:mod:`repro.exec`); set
``REPRO_BENCH_JOBS=4`` to fan each sweep grid out over four worker
processes (results are identical to serial, only the wall clock moves).
"""

from __future__ import annotations

import os
from typing import Callable, Sequence

from repro.experiments.sweep import SweepResult

#: Seeds averaged per sweep cell in benchmarks (1 keeps CI fast).
BENCH_SEEDS = (0,)

#: Worker processes per sweep grid (the kernel's ``jobs``), from the
#: environment so CI and local runs can scale without code changes.
def _bench_jobs() -> int:
    raw = os.environ.get("REPRO_BENCH_JOBS", "1")
    try:
        return max(1, int(raw))
    except ValueError:
        raise SystemExit(f"REPRO_BENCH_JOBS must be an integer, got {raw!r}") from None


BENCH_JOBS = _bench_jobs()

#: Tolerance for "A >= B" protocol-ordering assertions: a single-seed
#: cell can wobble a few percent, which is noise, not a shape change.
ORDER_TOLERANCE = 0.06


def run_panel(benchmark, figure: Callable[..., SweepResult]) -> SweepResult:
    """Benchmark one figure sweep (through the kernel) and print its table."""
    result = benchmark.pedantic(
        lambda: figure(scale="fast", seeds=BENCH_SEEDS, jobs=BENCH_JOBS),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.format_table())
    return result


def assert_mostly_ordered(
    better: Sequence[float], worse: Sequence[float], tolerance: float = ORDER_TOLERANCE
) -> None:
    """Assert series ``better`` dominates ``worse`` up to noise.

    Every point must satisfy better >= worse − tolerance, and the
    series means must be ordered strictly.
    """
    assert len(better) == len(worse)
    for b, w in zip(better, worse):
        assert b >= w - tolerance, (better, worse)
    assert sum(better) >= sum(worse), (better, worse)


def assert_trend_up(series: Sequence[float], tolerance: float = ORDER_TOLERANCE) -> None:
    """Assert the series rises overall: last >> first and no big dips."""
    assert series[-1] >= series[0] - tolerance, series
    assert max(series) >= series[0], series


def assert_trend_down(series: Sequence[float], tolerance: float = ORDER_TOLERANCE) -> None:
    """Assert the series falls overall."""
    assert series[-1] <= series[0] + tolerance, series
    assert min(series) <= series[0], series
