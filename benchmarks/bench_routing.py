"""Substrate — classic DTN unicast routers on the DieselNet trace.

Sanity table for the routing substrate (§II-A related work): epidemic
is the delivery/delay optimum at maximal transmission cost; binary
spray-and-wait trades a little delivery for a large cost reduction;
PRoPHET sits in between once its predictability tables warm up.
"""

import random

from repro.routing import (
    DirectDeliveryRouter,
    EpidemicRouter,
    MaxPropRouter,
    Message,
    ProphetRouter,
    SprayAndWaitRouter,
    simulate_routing,
)
from repro.traces.dieselnet import DieselNetConfig, generate_dieselnet_trace
from repro.types import DAY


def make_workload():
    trace = generate_dieselnet_trace(
        DieselNetConfig(num_buses=20, num_days=8), seed=2
    )
    rng = random.Random(2)
    nodes = list(trace.nodes)
    messages = []
    for msg_id in range(120):
        src, dst = rng.sample(nodes, 2)
        messages.append(
            Message(msg_id, src, dst, created_at=rng.uniform(0, 4 * DAY), ttl=3 * DAY)
        )
    return trace, messages


def run_all():
    trace, messages = make_workload()
    routers = {
        "direct": DirectDeliveryRouter(),
        "epidemic": EpidemicRouter(),
        "spray-and-wait": SprayAndWaitRouter(initial_copies=8),
        "prophet": ProphetRouter(),
        "maxprop": MaxPropRouter(),
    }
    return {
        name: simulate_routing(trace, messages, router, transfers_per_contact=20)
        for name, router in routers.items()
    }


def test_routing_baselines(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    print()
    print(f"{'router':>16}{'delivery':>10}{'delay h':>9}{'tx':>8}")
    for name, result in results.items():
        delay = result.mean_delay / 3600 if result.delivered else float("nan")
        print(
            f"{name:>16}{result.delivery_ratio:>10.3f}{delay:>9.1f}"
            f"{result.transmissions:>8}"
        )

    direct = results["direct"]
    epidemic = results["epidemic"]
    spray = results["spray-and-wait"]
    prophet = results["prophet"]
    maxprop = results["maxprop"]

    assert epidemic.delivery_ratio >= spray.delivery_ratio
    assert epidemic.delivery_ratio >= prophet.delivery_ratio - 0.02
    assert epidemic.delivery_ratio >= maxprop.delivery_ratio - 0.02
    assert direct.delivery_ratio <= epidemic.delivery_ratio
    assert direct.transmissions <= maxprop.transmissions
    assert spray.transmissions < epidemic.transmissions
    assert maxprop.transmissions < epidemic.transmissions  # ack clearing
    assert epidemic.delivery_ratio > 0.6
