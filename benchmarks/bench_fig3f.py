"""Fig. 3(f) — NUS: delivery ratio vs class attendance rate.

Paper shape: higher attendance means larger classroom cliques and more
contact opportunities, so delivery ratios rise with the attendance
rate for the discovery-based protocols.
"""

from repro.experiments import fig3f

from conftest import assert_mostly_ordered, assert_trend_up, run_panel


def test_fig3f_attendance_rate(benchmark):
    result = run_panel(benchmark, fig3f)

    for protocol in ("mbt", "mbt-q"):
        assert_trend_up(result.file_series(protocol))
        assert_trend_up(result.metadata_series(protocol))

    assert_mostly_ordered(result.file_series("mbt"), result.file_series("mbt-qm"))
