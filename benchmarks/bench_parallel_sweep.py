"""Parallel execution kernel: correctness and wall-clock scaling.

Runs one DieselNet sweep grid twice through :func:`repro.exec.run_many`
— serially and with four worker processes — and checks that

* the parallel results are *bitwise identical* to the serial ones
  (same delivery ratios, same counters, run for run), and
* on a machine with >= 4 cores, four workers cut the wall clock by at
  least 2x (the ISSUE's multicore acceptance bar; on smaller machines
  the speedup is reported but not asserted).
"""

from __future__ import annotations

import os
import time

from repro.exec import TraceSpec, run_many
from repro.experiments.sweep import sweep_specs
from repro.experiments.figures import ACCESS_FRACTIONS, _sweep_access
from repro.experiments.workloads import dieselnet_base_config, dieselnet_trace

JOBS = 4
SPEEDUP_TARGET = 2.0


def _grid_specs():
    return sweep_specs(
        x_values=ACCESS_FRACTIONS,
        trace_factory=lambda x, seed: TraceSpec.of(dieselnet_trace, "fast", seed),
        config_factory=_sweep_access,
        base_config=dieselnet_base_config(),
        seeds=(0,),
    )


def test_parallel_sweep_matches_serial_and_scales(benchmark):
    specs = _grid_specs()

    t0 = time.perf_counter()
    serial = run_many(specs, jobs=1)
    serial_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    # mode="processes" pins the real pool: on a single-core box "auto"
    # would fall back to inline and this bench would compare a run to
    # itself instead of exercising cross-process determinism.
    parallel = benchmark.pedantic(
        lambda: run_many(specs, jobs=JOBS, mode="processes"), rounds=1, iterations=1
    )
    parallel_s = time.perf_counter() - t0

    assert len(parallel) == len(serial) == len(specs)
    for ser, par in zip(serial, parallel):
        assert par.spec == ser.spec
        assert par.result.to_dict() == ser.result.to_dict()

    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    cores = os.cpu_count() or 1
    print()
    print(
        f"{len(specs)} runs: serial {serial_s:.2f}s, "
        f"{JOBS} workers {parallel_s:.2f}s -> {speedup:.2f}x on {cores} cores"
    )
    if cores >= JOBS:
        assert speedup >= SPEEDUP_TARGET, (
            f"expected >= {SPEEDUP_TARGET}x speedup with {JOBS} workers on "
            f"{cores} cores, measured {speedup:.2f}x"
        )
    else:
        # A process pool cannot beat serial execution without spare
        # cores; asserting a speedup here would only measure the pool's
        # overhead. Correctness (bitwise identity) was still checked.
        print(
            f"speedup assertion skipped: {cores} core(s) < {JOBS} workers "
            f"(correctness checks still ran)"
        )
