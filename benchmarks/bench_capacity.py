"""§V capacity claim — broadcast vs pair-wise per-node capacity.

Paper shape: "the broadcast-based file download has an increasing
per-node transmission capacity as node density increases. Meanwhile,
the per-node transmission capacity of the pair-wise file download
decreases as density increases." The two coincide only at n = 2 and
the broadcast advantage factor is n − 1.
"""

from repro.analysis.capacity import capacity_table

CLIQUE_SIZES = list(range(2, 33))


def test_capacity_vs_density(benchmark):
    table = benchmark(capacity_table, CLIQUE_SIZES)

    print()
    print(f"{'n':>4}{'broadcast':>12}{'pairwise':>12}{'gain':>8}")
    for point in table:
        print(
            f"{point.clique_size:>4}{point.broadcast:>12.4f}"
            f"{point.pairwise:>12.4f}{point.gain:>8.1f}"
        )

    broadcast = [p.broadcast for p in table]
    pairwise = [p.pairwise for p in table]
    assert broadcast == sorted(broadcast)  # increasing in density
    assert pairwise == sorted(pairwise, reverse=True)  # decreasing
    assert broadcast[0] == pairwise[0]  # crossover exactly at n = 2
    assert all(b > p for b, p in zip(broadcast[1:], pairwise[1:]))
    assert table[-1].gain == table[-1].clique_size - 1
