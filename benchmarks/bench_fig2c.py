"""Fig. 2(c) — DieselNet: delivery ratio vs file TTL (days).

Paper shape: ratios increase with TTL (files and queries live longer,
so more contacts can serve them); MBT >= MBT-Q >= MBT-QM.
"""

from repro.experiments import fig2c

from conftest import assert_mostly_ordered, assert_trend_up, run_panel


def test_fig2c_ttl(benchmark):
    result = run_panel(benchmark, fig2c)

    for protocol in ("mbt", "mbt-q", "mbt-qm"):
        assert_trend_up(result.metadata_series(protocol))
        assert_trend_up(result.file_series(protocol))

    assert_mostly_ordered(result.file_series("mbt"), result.file_series("mbt-qm"))
    assert_mostly_ordered(result.metadata_series("mbt"), result.metadata_series("mbt-qm"))
