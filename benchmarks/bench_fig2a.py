"""Fig. 2(a) — DieselNet: delivery ratio vs % of Internet-access nodes.

Paper shape: both ratios increase with the access fraction for every
protocol; MBT is best and MBT-QM worst.
"""

from repro.experiments import fig2a

from conftest import assert_mostly_ordered, assert_trend_up, run_panel


def test_fig2a_access_fraction(benchmark):
    result = run_panel(benchmark, fig2a)

    for protocol in ("mbt", "mbt-q", "mbt-qm"):
        assert_trend_up(result.metadata_series(protocol))
        assert_trend_up(result.file_series(protocol))

    assert_mostly_ordered(result.metadata_series("mbt"), result.metadata_series("mbt-q"))
    assert_mostly_ordered(result.metadata_series("mbt-q"), result.metadata_series("mbt-qm"))
    assert_mostly_ordered(result.file_series("mbt"), result.file_series("mbt-q"))
    assert_mostly_ordered(result.file_series("mbt-q"), result.file_series("mbt-qm"))
