"""Ablation — measured delivery vs the space-time oracle bound (§II-A).

The space-time graph gives a bandwidth-free upper bound on any
protocol's file delivery: a file generated at noon can only reach the
nodes the contact sequence can reach before the TTL expires. This bench
computes that bound per generation day and checks MBT's measured file
delivery (a) never exceeds it and (b) lands within a reasonable
fraction of it — evidence the protocol is contact-limited, not
scheduling-limited, at the paper's operating point.
"""

from statistics import mean

from repro.experiments.workloads import dieselnet_base_config, dieselnet_trace
from repro.sim.runner import Simulation
from repro.sim.spacetime import oracle_file_delivery_bound
from repro.types import DAY, noon_of_day


def run_comparison():
    trace = dieselnet_trace("fast", seed=0)
    config = dieselnet_base_config(seed=0)
    simulation = Simulation(trace, config)
    result = simulation.run()

    ttl = config.ttl_days * DAY
    days = simulation.num_days()
    bounds = [
        oracle_file_delivery_bound(
            trace, simulation.access_nodes, noon_of_day(day), ttl
        )
        for day in range(days)
        # Only days whose TTL window lies inside the trace are fair.
        if noon_of_day(day) + ttl <= trace.duration
    ]
    return result, bounds


def test_mbt_within_oracle_bound(benchmark):
    result, bounds = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    bound = mean(bounds)

    print()
    print(f"  oracle reachability bound (mean over days): {bound:.3f}")
    print(f"  measured MBT file delivery:                 "
          f"{result.file_delivery_ratio:.3f}")
    print(f"  efficiency (measured / bound):              "
          f"{result.file_delivery_ratio / bound:.2f}")

    # No protocol can beat the oracle (small slack: the ratio mixes
    # days, including edge days the bound average excludes).
    assert result.file_delivery_ratio <= bound + 0.1
    # And MBT should realize a substantial share of what is reachable.
    assert result.file_delivery_ratio >= 0.4 * bound
