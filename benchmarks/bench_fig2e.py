"""Fig. 2(e) — DieselNet: delivery ratio vs files per contact.

Paper shape: file delivery increases with the file/piece budget for
every protocol; metadata delivery is only weakly affected (metadata
have their own budget); MBT >= MBT-QM.
"""

from repro.experiments import fig2e

from conftest import assert_mostly_ordered, assert_trend_up, run_panel


def test_fig2e_files_budget(benchmark):
    result = run_panel(benchmark, fig2e)

    for protocol in ("mbt", "mbt-q", "mbt-qm"):
        assert_trend_up(result.file_series(protocol))

    assert_mostly_ordered(result.file_series("mbt"), result.file_series("mbt-qm"))
    assert_mostly_ordered(result.file_series("mbt-q"), result.file_series("mbt-qm"))
