"""Scheduling-kernel speedup benchmark: vectorized vs per-turn object loops.

Runs a *candidate-heavy, budget-heavy* workload — many queried files in
flight at once and large per-contact budgets, so per-contact work is
dominated by candidate ranking and re-ranking inside the scheduling
loops, which is exactly the term the vectorized kernel replaces — under
``core="array"`` with the kernel on and off, and checks that

* the kernel run is **bitwise identical** to both the kernel-off run
  and the reference ``core="object"`` run, across both scheduling
  modes (coordinator and cyclic) and both credit policies (plain and
  reputation), and
* the kernel processes contact events at least ``SPEEDUP_TARGET``
  times faster than the pre-kernel array core (the lexsort ranking vs
  per-turn tuple ``min()`` over the full candidate list).

Invoked by CI both through pytest (equivalence always asserted) and as
a script gate::

    PYTHONPATH=src python benchmarks/bench_scheduler.py --min-speedup 2.0

The script exits non-zero when the speedup falls below the floor or
any fingerprint diverges.
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import replace
from typing import Any, Dict

from repro.core import arraycore
from repro.core.mbt import SchedulingMode
from repro.detlint.sanitizer import result_fingerprint
from repro.experiments.workloads import dieselnet_base_config, dieselnet_trace
from repro.sim.runner import run_simulation

#: Events/s floor the vectorized kernel must clear over the kernel-off
#: array core on the workload below (the ISSUE's acceptance bar).
SPEEDUP_TARGET = 2.0

#: Best-of-N wall-clock measurement (same noise guard as
#: bench_array_core: single-shot timings once recorded phantom
#: regressions on shared boxes).
REPEATS = 3


def bench_config():
    """Candidate-heavy, budget-heavy workload on the fast DieselNet trace.

    A large queried catalog keeps a few hundred metadata *and* piece
    candidates alive per clique, and 60/60 budgets force the scheduler
    to re-rank after every transmission — the per-turn keyed scan the
    kernel replaces with one composite-key lexsort per turn.
    Tit-for-tat (cyclic mode, weight-ranked keys) is the headline
    because its per-candidate requester-weight recomputation is the
    most expensive ranking term on the object path. Four days keeps
    the whole gate under a minute on one core.
    """
    return replace(
        dieselnet_base_config(),
        internet_access_fraction=0.5,
        files_per_day=400,
        num_days=4,
        ttl_days=8.0,
        queries_per_node_per_day=30.0,
        pull_limit=60,
        push_limit=200,
        metadata_per_contact=60,
        files_per_contact=60,
        pieces_per_file=4,
        tit_for_tat=True,
    )


def _timed_run(trace, config, repeats: int):
    """Best-of-N wall clock plus the (deterministic) last result."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = run_simulation(trace, config)
        best = min(best, time.perf_counter() - t0)
    return best, result


def measure_scheduler(repeats: int = REPEATS) -> Dict[str, Any]:
    """Best-of-N kernel-on vs kernel-off timing plus fingerprint checks."""
    trace = dieselnet_trace("fast")
    config = replace(bench_config(), core="array")
    out: Dict[str, Any] = {
        "repeats": repeats,
        "workload": "dieselnet-fast/candidate-heavy-20x20",
    }
    fingerprints = {}

    kernel_wall, kernel_result = _timed_run(trace, config, repeats)
    fingerprints["kernel"] = result_fingerprint(kernel_result)
    vectorized = int(kernel_result.extra.get("perf.sched.meta_vectorized", 0))
    if vectorized == 0:
        raise RuntimeError(
            "bench workload never dispatched to the scheduling kernel "
            "(coherence fallback?) — the timing would compare the object "
            "loops against themselves"
        )

    assert arraycore.SCHED_KERNEL_ENABLED
    arraycore.SCHED_KERNEL_ENABLED = False
    try:
        base_wall, base_result = _timed_run(trace, config, repeats)
    finally:
        arraycore.SCHED_KERNEL_ENABLED = True
    fingerprints["baseline"] = result_fingerprint(base_result)

    obj_wall, obj_result = _timed_run(trace, replace(config, core="object"), 1)
    fingerprints["object"] = result_fingerprint(obj_result)

    events = float(kernel_result.extra.get("events", 0.0))
    out["events"] = int(events)
    out["kernel_wall_s"] = round(kernel_wall, 4)
    out["baseline_wall_s"] = round(base_wall, 4)
    out["object_wall_s"] = round(obj_wall, 4)
    out["kernel_events_per_s"] = round(events / kernel_wall, 1)
    out["baseline_events_per_s"] = round(events / base_wall, 1)
    out["speedup"] = (
        round(base_wall / kernel_wall, 2) if kernel_wall > 0 else float("inf")
    )
    out["fingerprint_match"] = (
        fingerprints["kernel"] == fingerprints["baseline"] == fingerprints["object"]
    )
    out["fingerprint"] = fingerprints["kernel"][:16]
    return out


def check_mode_policy_grid() -> Dict[str, bool]:
    """Object-vs-array fingerprint parity across modes x credit policies.

    Lighter than the timing workload (two days) — the grid exists to
    prove the kernel's four loop variants are each bitwise faithful,
    not to measure them.
    """
    trace = dieselnet_trace("fast")
    config = replace(bench_config(), num_days=2)
    verdicts: Dict[str, bool] = {}
    for mode in SchedulingMode:
        for policy in ("plain", "reputation"):
            cfg = replace(config, scheduling=mode, credit_policy=policy)
            obj = run_simulation(trace, replace(cfg, core="object"))
            arr = run_simulation(trace, replace(cfg, core="array"))
            verdicts[f"{mode.value}/{policy}"] = (
                result_fingerprint(obj) == result_fingerprint(arr)
            )
    return verdicts


def _report(measurement: Dict[str, Any]) -> None:
    print(
        f"sched kernel: {measurement['events']} events, "
        f"baseline {measurement['baseline_wall_s']:.3f}s "
        f"({measurement['baseline_events_per_s']:.0f} ev/s), "
        f"kernel {measurement['kernel_wall_s']:.3f}s "
        f"({measurement['kernel_events_per_s']:.0f} ev/s) "
        f"-> {measurement['speedup']:.2f}x, fingerprints "
        f"{'match' if measurement['fingerprint_match'] else 'MISMATCH'}"
    )


def test_scheduler_kernel_equivalent_and_faster(benchmark):
    measurement = benchmark.pedantic(
        lambda: measure_scheduler(repeats=1), rounds=1, iterations=1
    )
    print()
    _report(measurement)
    # Bitwise identity is the hard invariant — any mismatch is a bug.
    assert measurement["fingerprint_match"], (
        "scheduling kernel diverged from the object loops on the bench workload"
    )
    # The timing bar is asserted leniently under pytest (shared CI boxes
    # jitter); the scripted CI gate below enforces the full target.
    assert measurement["speedup"] >= 1.0, (
        f"scheduling kernel slower than the object loops: "
        f"{measurement['speedup']:.2f}x"
    )


def test_mode_policy_grid_bitwise_identical():
    verdicts = check_mode_policy_grid()
    mismatches = sorted(name for name, ok in verdicts.items() if not ok)
    assert not mismatches, f"fingerprint mismatch in: {', '.join(mismatches)}"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=SPEEDUP_TARGET,
        help=f"fail below this kernel-off->kernel-on speedup "
             f"(default {SPEEDUP_TARGET})",
    )
    parser.add_argument(
        "--repeats", type=int, default=REPEATS, help="best-of-N repetitions"
    )
    parser.add_argument(
        "--skip-grid", action="store_true",
        help="skip the mode x policy fingerprint grid (timing only)",
    )
    args = parser.parse_args(argv)
    measurement = measure_scheduler(repeats=args.repeats)
    _report(measurement)
    status = 0
    if not measurement["fingerprint_match"]:
        print("::error title=scheduler kernel divergence::kernel result "
              "fingerprint differs from the object loops")
        status = 1
    if measurement["speedup"] < args.min_speedup:
        print(
            f"::error title=scheduler kernel regression::speedup "
            f"{measurement['speedup']:.2f}x below the "
            f"{args.min_speedup:.2f}x floor"
        )
        status = 1
    if not args.skip_grid:
        verdicts = check_mode_policy_grid()
        for name, ok in sorted(verdicts.items()):
            print(f"grid {name}: {'match' if ok else 'MISMATCH'}")
            if not ok:
                print(f"::error title=scheduler kernel divergence::"
                      f"fingerprint mismatch under {name}")
                status = 1
    return status


if __name__ == "__main__":
    sys.exit(main())
