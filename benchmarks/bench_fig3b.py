"""Fig. 3(b) — NUS: delivery ratio vs new files per day.

Paper shape: same as the DieselNet counterpart — ratios fall as the
daily catalog grows; discovery-based protocols stay ahead.
"""

from repro.experiments import fig3b

from conftest import assert_mostly_ordered, assert_trend_down, run_panel


def test_fig3b_files_per_day(benchmark):
    result = run_panel(benchmark, fig3b)

    for protocol in ("mbt", "mbt-q", "mbt-qm"):
        assert_trend_down(result.file_series(protocol))

    assert_mostly_ordered(result.file_series("mbt"), result.file_series("mbt-qm"))
    assert_mostly_ordered(result.metadata_series("mbt"), result.metadata_series("mbt-qm"))
