"""Fig. 3(c) — NUS: delivery ratio vs file TTL (days).

Paper shape: ratios increase with TTL; discovery keeps MBT ahead of
MBT-QM across the sweep.
"""

from repro.experiments import fig3c

from conftest import assert_mostly_ordered, assert_trend_up, run_panel


def test_fig3c_ttl(benchmark):
    result = run_panel(benchmark, fig3c)

    for protocol in ("mbt", "mbt-q", "mbt-qm"):
        assert_trend_up(result.file_series(protocol))

    assert_mostly_ordered(result.file_series("mbt"), result.file_series("mbt-qm"))
    assert_mostly_ordered(result.metadata_series("mbt"), result.metadata_series("mbt-qm"))
