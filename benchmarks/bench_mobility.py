"""Robustness — MBT on mobility-model traces (beyond the paper's two).

The paper evaluates on a bus trace and a campus-schedule trace. This
bench runs the protocol stack on two classic mobility models (random
waypoint and community-based movement, trajectories → contacts) to
check the qualitative protocol ordering is a property of the design,
not of the particular traces: MBT >= MBT-Q >= MBT-QM should survive a
change of mobility regime.
"""

from repro.core.mbt import ProtocolVariant
from repro.sim.runner import Simulation, SimulationConfig
from repro.traces.mobility import (
    CommunityConfig,
    RandomWaypointConfig,
    generate_community_trace,
    generate_random_waypoint_trace,
)
from repro.types import DAY


def make_traces():
    # Sparse parameterizations: the radio footprint covers well under
    # 1% of the area, so contacts are genuinely intermittent and the
    # mobility structure (uniform vs community-clustered) shows up in
    # the results rather than being washed out by saturation.
    rwp = generate_random_waypoint_trace(
        RandomWaypointConfig(
            num_nodes=20, area_size=6000.0, radio_range=40.0,
            max_speed=10.0, tick=60.0, duration=3 * DAY,
        ),
        seed=0,
    )
    community = generate_community_trace(
        CommunityConfig(
            num_nodes=20, num_communities=4, area_size=6000.0,
            community_radius=250.0, radio_range=40.0,
            roaming_probability=0.1, tick=60.0, duration=3 * DAY,
        ),
        seed=0,
    )
    return {"rwp": rwp, "community": community}


def run_all():
    config = SimulationConfig(
        internet_access_fraction=0.3,
        files_per_day=30,
        ttl_days=2.0,
        metadata_per_contact=3,
        files_per_contact=3,
        frequent_contact_max_gap_days=1.0,
        seed=0,
    )
    out = {}
    for name, trace in make_traces().items():
        for variant in ProtocolVariant:
            out[(name, variant.value)] = Simulation(
                trace, config.with_variant(variant)
            ).run()
    return out


def test_protocol_ordering_across_mobility_models(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    print()
    print(f"{'trace':>10}{'protocol':>9}{'meta':>8}{'file':>8}")
    for (name, variant), result in results.items():
        print(
            f"{name:>10}{variant:>9}{result.metadata_delivery_ratio:>8.3f}"
            f"{result.file_delivery_ratio:>8.3f}"
        )

    for name in ("rwp", "community"):
        mbt = results[(name, "mbt")]
        qm = results[(name, "mbt-qm")]
        assert mbt.metadata_delivery_ratio >= qm.metadata_delivery_ratio - 0.05
        assert mbt.file_delivery_ratio >= qm.file_delivery_ratio - 0.05
        assert 0.0 <= mbt.file_delivery_ratio <= 1.0
