"""Fig. 2(b) — DieselNet: delivery ratio vs new files per day.

Paper shape: ratios decrease as the number of new files per day grows
(the same contact budgets are spread over a larger catalog); protocol
ordering MBT >= MBT-Q >= MBT-QM holds.
"""

from repro.experiments import fig2b

from conftest import assert_mostly_ordered, assert_trend_down, run_panel


def test_fig2b_files_per_day(benchmark):
    result = run_panel(benchmark, fig2b)

    for protocol in ("mbt", "mbt-q", "mbt-qm"):
        assert_trend_down(result.file_series(protocol))

    assert_mostly_ordered(result.metadata_series("mbt"), result.metadata_series("mbt-qm"))
    assert_mostly_ordered(result.file_series("mbt"), result.file_series("mbt-qm"))
