"""Ablation — pieces per file (the §III-B piece-size trade-off).

"The size of the pieces can be increased if we want to decrease the
size of metadata": fewer, larger pieces mean smaller metadata but less
spatial reuse; more, smaller pieces let partial progress accumulate
across short contacts but need more transmissions per file. We sweep
pieces-per-file at a fixed per-contact *piece* budget, so more pieces
per file means more contacts are needed per complete file.

Expected shape: file delivery decreases as files are split into more
pieces (the budget is the bottleneck), while metadata delivery is
unaffected.
"""

from dataclasses import replace

from repro.experiments.workloads import dieselnet_base_config, dieselnet_trace
from repro.sim.runner import Simulation

PIECES = (1, 2, 4)


def run_sweep():
    trace = dieselnet_trace("fast", seed=0)
    base = replace(dieselnet_base_config(seed=0), files_per_contact=4)
    return {
        pieces: Simulation(trace, replace(base, pieces_per_file=pieces)).run()
        for pieces in PIECES
    }


def test_pieces_per_file(benchmark):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    print()
    print(f"{'pieces/file':>12}{'meta':>8}{'file':>8}{'piece tx':>10}")
    for pieces, result in results.items():
        print(
            f"{pieces:>12}{result.metadata_delivery_ratio:>8.3f}"
            f"{result.file_delivery_ratio:>8.3f}"
            f"{result.extra['piece_transmissions']:>10.0f}"
        )

    files = [results[p].file_delivery_ratio for p in PIECES]
    metas = [results[p].metadata_delivery_ratio for p in PIECES]
    # Splitting files across more pieces at a fixed budget hurts files...
    assert files[-1] <= files[0] + 0.02
    # ...but leaves discovery untouched.
    assert abs(metas[-1] - metas[0]) < 0.1
