"""Future work — encrypted choking inverts the free-riding payoff.

§IV-B footnote: "Peers can still be choked if encryption is used. We
will leave this topic for future work." This bench implements and
measures that extension: piece payloads are encrypted and the key is
released only to peers with positive credit at the sender;
Internet-access nodes seed unconditionally (BitTorrent-seed
behaviour); discovery stays open as the bootstrap channel.

Expected shape: without choking, free-riders do at least as well as
cooperators (free-riding pays); with choking, the ordering flips —
cooperators beat free-riders, whose delivery drops distinctly — at a
small cost in the all-cooperative case.
"""

from dataclasses import replace

from repro.core.mbt import SchedulingMode
from repro.experiments.workloads import dieselnet_base_config, dieselnet_trace
from repro.sim.runner import Simulation

SELFISH_FRACTIONS = (0.0, 0.2, 0.4)


def run_grid():
    trace = dieselnet_trace("fast", seed=0)
    base = replace(
        dieselnet_base_config(seed=0),
        scheduling=SchedulingMode.CYCLIC,
        tit_for_tat=True,
        metadata_per_contact=2,
        files_per_contact=2,
    )
    rows = []
    for fraction in SELFISH_FRACTIONS:
        for choking in (False, True):
            config = replace(
                base, selfish_fraction=fraction, encrypted_choking=choking
            )
            sim = Simulation(trace, config)
            sim.run()
            coop = frozenset(
                n for n in sim.states
                if not sim.states[n].selfish and n not in sim.access_nodes
            )
            riders = frozenset(
                n for n in sim.states
                if sim.states[n].selfish and n not in sim.access_nodes
            )
            __, coop_file, __ = sim.metrics.ratios_for(coop)
            __, rider_file, rider_count = sim.metrics.ratios_for(riders)
            rows.append((fraction, choking, coop_file, rider_file, rider_count))
    return rows


def test_encrypted_choking(benchmark):
    rows = benchmark.pedantic(run_grid, rounds=1, iterations=1)

    print()
    print(f"{'selfish':>8}{'choking':>9}{'coop file':>11}{'rider file':>12}")
    for fraction, choking, coop_file, rider_file, rider_count in rows:
        rider = f"{rider_file:.3f}" if rider_count else "-"
        print(f"{fraction:>8.1f}{str(choking):>9}{coop_file:>11.3f}{rider:>12}")

    by_key = {
        (fraction, choking): (coop, rider)
        for fraction, choking, coop, rider, __ in rows
    }
    # All-cooperative: choking costs little.
    assert by_key[(0.0, True)][0] >= by_key[(0.0, False)][0] - 0.10
    # At 40% free-riders: choking flips the payoff ordering.
    coop_plain, rider_plain = by_key[(0.4, False)]
    coop_choke, rider_choke = by_key[(0.4, True)]
    assert rider_plain >= coop_plain - 0.05  # free-riding paid before
    assert coop_choke > rider_choke  # and no longer does
    assert rider_choke < rider_plain  # riders demonstrably punished
