"""Fig. 3(a) — NUS: delivery ratio vs % of Internet-access nodes.

Paper shape (the headline discovery result): "the file delivery ratio
of MBT and MBT-Q increases very fast as the percentage of Internet
access nodes increases; meanwhile, MBT-QM shows no increase because it
does not have a file discovery process."
"""

from repro.experiments import fig3a

from conftest import assert_mostly_ordered, assert_trend_up, run_panel


def test_fig3a_access_fraction(benchmark):
    result = run_panel(benchmark, fig3a)

    for protocol in ("mbt", "mbt-q"):
        assert_trend_up(result.file_series(protocol))
        assert_trend_up(result.metadata_series(protocol))

    # MBT-QM stays flat: its file ratio moves far less than MBT's.
    qm = result.file_series("mbt-qm")
    mbt = result.file_series("mbt")
    qm_rise = qm[-1] - qm[0]
    mbt_rise = mbt[-1] - mbt[0]
    assert qm_rise < mbt_rise / 2, (qm, mbt)

    assert_mostly_ordered(result.file_series("mbt"), result.file_series("mbt-qm"))
    assert_mostly_ordered(result.file_series("mbt-q"), result.file_series("mbt-qm"))

    # With discovery, file delivery at high access fractions is at
    # least ~2x MBT-QM's (the paper reports a doubling at 80%).
    assert mbt[-2] >= 1.8 * qm[-2]
