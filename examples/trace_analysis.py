#!/usr/bin/env python
"""Trace analysis: inter-contact statistics and the space-time oracle.

Compares the four synthetic trace generators shipped with the library —
DieselNet (bus schedules), NUS (classroom cliques), random waypoint and
community mobility — on the metrics the DTN literature uses to
characterize traces:

* contact volume and clique structure,
* inter-contact time distribution (mean/median/CV, exponential fit),
* the space-time reachability oracle: how far data injected at one
  node can spread within a day.

Run:  python examples/trace_analysis.py
"""

from __future__ import annotations

from repro.analysis.intercontact import fit_exponential, intercontact_samples, summarize
from repro.sim.spacetime import reachability_ratio
from repro.traces.dieselnet import DieselNetConfig, generate_dieselnet_trace
from repro.traces.mobility import (
    CommunityConfig,
    RandomWaypointConfig,
    generate_community_trace,
    generate_random_waypoint_trace,
)
from repro.traces.nus import NUSConfig, generate_nus_trace
from repro.types import DAY


def build_traces():
    return {
        "dieselnet": generate_dieselnet_trace(
            DieselNetConfig(num_buses=20, num_days=8), seed=3
        ),
        "nus": generate_nus_trace(
            NUSConfig(num_students=60, num_courses=12, num_days=8), seed=3
        ),
        "rwp": generate_random_waypoint_trace(
            RandomWaypointConfig(
                num_nodes=20, area_size=5000.0, radio_range=50.0,
                max_speed=10.0, tick=60.0, duration=8 * DAY,
            ),
            seed=3,
        ),
        "community": generate_community_trace(
            CommunityConfig(
                num_nodes=20, num_communities=4, area_size=5000.0,
                community_radius=250.0, radio_range=50.0,
                tick=60.0, duration=8 * DAY,
            ),
            seed=3,
        ),
    }


def main() -> None:
    traces = build_traces()

    print("== Contact structure ==")
    for name, trace in traces.items():
        print(f"  {name:>10}: {trace.stats().describe()}")

    print("\n== Inter-contact times ==")
    print(f"  {'trace':>10}{'gaps':>8}{'mean h':>9}{'median h':>10}"
          f"{'cv':>6}{'exp fit err':>13}")
    for name, trace in traces.items():
        samples = intercontact_samples(trace)
        if not samples:
            print(f"  {name:>10}    (no repeat meetings)")
            continue
        stats = summarize(samples)
        fit = fit_exponential(samples)
        print(
            f"  {name:>10}{stats.count:>8}{stats.mean / 3600:>9.2f}"
            f"{stats.median / 3600:>10.2f}{stats.cv:>6.2f}{fit.ccdf_error:>13.3f}"
        )

    print("\n== Space-time reachability (from the lowest-id node, 1 day) ==")
    for name, trace in traces.items():
        source = trace.nodes[0]
        ratio = reachability_ratio(
            trace, [source], start_time=0.0, deadline=DAY
        )
        print(f"  {name:>10}: {ratio:.0%} of other nodes reachable in 24 h")

    print(
        "\nDieselNet gaps fit an exponential closely (Poisson meetings by\n"
        "construction); NUS gaps are scheduled, so the fit is poor; the\n"
        "community model sits in between — locality with random timing."
    )


if __name__ == "__main__":
    main()
