#!/usr/bin/env python
"""Quickstart: run MBT file sharing over a synthetic DieselNet trace.

This is the smallest end-to-end use of the library:

1. synthesize a bus contact trace,
2. configure the hybrid-DTN simulation (30% Internet-access nodes,
   40 new files/day, 3-day TTL),
3. run all three protocols from the paper and print their delivery
   ratios.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    ProtocolVariant,
    Simulation,
    SimulationConfig,
    generate_dieselnet_trace,
)
from repro.traces.dieselnet import DieselNetConfig


def main() -> None:
    trace = generate_dieselnet_trace(
        DieselNetConfig(num_buses=20, num_days=8), seed=42
    )
    print(f"Trace: {trace.stats().describe()}")
    print()

    config = SimulationConfig(
        internet_access_fraction=0.3,
        files_per_day=40,
        ttl_days=3.0,
        metadata_per_contact=3,
        files_per_contact=3,
        seed=42,
    )

    print(f"{'protocol':>8}{'metadata ratio':>16}{'file ratio':>12}{'queries':>9}")
    for variant in ProtocolVariant:
        result = Simulation(trace, config.with_variant(variant)).run()
        print(
            f"{variant.value:>8}"
            f"{result.metadata_delivery_ratio:>16.3f}"
            f"{result.file_delivery_ratio:>12.3f}"
            f"{result.queries_generated:>9}"
        )

    print()
    print(
        "MBT distributes queries and metadata through the DTN, so both\n"
        "ratios beat MBT-Q (no query distribution) and MBT-QM (metadata\n"
        "only ride along with file pieces)."
    )


if __name__ == "__main__":
    main()
