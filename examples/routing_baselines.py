#!/usr/bin/env python
"""Classic DTN unicast routing over the same traces (§II substrate).

The paper builds on a decade of DTN routing work; this example runs the
three canonical routers shipped in :mod:`repro.routing` — epidemic,
binary spray-and-wait and PRoPHET — over a synthetic DieselNet trace
and compares delivery ratio, mean delay and transmission cost.

Run:  python examples/routing_baselines.py
"""

from __future__ import annotations

import random

from repro.routing import (
    DirectDeliveryRouter,
    EpidemicRouter,
    MaxPropRouter,
    Message,
    ProphetRouter,
    SprayAndWaitRouter,
    simulate_routing,
)
from repro.traces.dieselnet import DieselNetConfig, generate_dieselnet_trace
from repro.types import DAY


def main() -> None:
    trace = generate_dieselnet_trace(
        DieselNetConfig(num_buses=25, num_days=10), seed=5
    )
    print(f"Trace: {trace.stats().describe()}\n")

    rng = random.Random(5)
    nodes = list(trace.nodes)
    messages = []
    for msg_id in range(200):
        src, dst = rng.sample(nodes, 2)
        created = rng.uniform(0.0, 5 * DAY)
        messages.append(Message(msg_id, src, dst, created, ttl=4 * DAY))

    routers = [
        DirectDeliveryRouter(),
        EpidemicRouter(),
        SprayAndWaitRouter(initial_copies=8),
        ProphetRouter(),
        MaxPropRouter(),
    ]

    print(f"{'router':>16}{'delivery':>10}{'mean delay (h)':>16}{'transmissions':>15}")
    for router in routers:
        result = simulate_routing(trace, messages, router, transfers_per_contact=20)
        delay_h = result.mean_delay / 3600 if result.delivered else float("nan")
        print(
            f"{router.name:>16}{result.delivery_ratio:>10.3f}"
            f"{delay_h:>16.1f}{result.transmissions:>15}"
        )

    print(
        "\nDirect delivery anchors the bottom; epidemic is the delivery"
        "\nupper bound at maximal cost; spray-and-wait caps copies;"
        "\nPRoPHET follows encounter history; MaxProp (the DieselNet"
        "\npaper's router) adds path costs and delivery acks."
    )


if __name__ == "__main__":
    main()
