#!/usr/bin/env python
"""One-shot reproduction validation checklist.

Runs the key sweeps and checks every qualitative claim the paper makes
about its evaluation, printing a PASS/FAIL line per claim.

Run:  python examples/validate_reproduction.py [--scale paper] [--seeds 0 1]
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.validation import format_report, validate_reproduction


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=("fast", "paper"), default="fast")
    parser.add_argument("--seeds", type=int, nargs="+", default=[0])
    args = parser.parse_args(argv)

    claims = validate_reproduction(scale=args.scale, seeds=tuple(args.seeds))
    print(format_report(claims))
    return 0 if all(c.passed for c in claims) else 1


if __name__ == "__main__":
    sys.exit(main())
