#!/usr/bin/env python
"""Wire-protocol walkthrough: two devices, real frames, one contact.

The other examples drive the omniscient simulator; this one shows the
deployable runtime frame by frame. Alice (Internet access) has
downloaded a file; Bob wants it. They meet once: hellos are exchanged,
Alice learns Bob's query from his hello, advertises the metadata, Bob's
refreshed hello requests the file, and the piece arrives — every step
as serialized bytes over an emulated broadcast radio.

Run:  python examples/wire_protocol_demo.py
"""

from __future__ import annotations

from repro.catalog.files import piece_payload
from repro.catalog.metadata import PublisherRegistry, metadata_for_file
from repro.catalog.files import FileDescriptor, PIECE_SIZE
from repro.core.mbt import ProtocolConfig
from repro.core.node import NodeState
from repro.runtime import DTNNode, EmulatedRadio, decode_frame
from repro.runtime.node import codec
from repro.sim.metrics import MetricsCollector
from repro.catalog.query import Query
from repro.types import DAY, NodeId, Uri


def show(direction: str, data: bytes) -> None:
    frame = decode_frame(data)
    print(f"  {direction}  {frame.frame_type.value.upper():>8}  "
          f"{len(data):>5} bytes  from node {frame.sender}")


def main() -> None:
    registry = PublisherRegistry(master_seed=1)
    registry.register("fox")
    descriptor = FileDescriptor(
        uri=Uri("dtn://fox/f000001"),
        title_tokens=("news", "island", "finale", "s01e01"),
        publisher="fox",
        size_bytes=PIECE_SIZE,
        popularity=0.4,
        created_at=0.0,
        ttl=3 * DAY,
    )
    record = metadata_for_file(descriptor, "News Island finale.", registry)

    config = ProtocolConfig()
    metrics = MetricsCollector()
    alice = DTNNode(
        NodeState(NodeId(1), registry, internet_access=True), config, metrics
    )
    bob = DTNNode(NodeState(NodeId(2), registry), config, metrics)

    # Alice got the file from the Internet; Bob's user typed a query.
    alice.state.accept_metadata(record, now=0.0)
    alice.state.accept_piece(
        record.uri, 0, piece_payload(record.uri, 0), record.checksums[0]
    )
    query = Query(
        node=NodeId(2), tokens=frozenset({"island", "s01e01"}),
        target_uri=record.uri, created_at=0.0, expires_at=3 * DAY,
    )
    bob.state.add_own_query(query)
    metrics.register_query(query, access_node=False)

    # The buses meet: one broadcast domain.
    print("Contact opens — hello handshake:")
    radio = EmulatedRadio()
    clique = frozenset({alice.node_id, bob.node_id})
    now = 100.0
    for device in (alice, bob):
        device.begin_contact(clique)
    radio.join(alice.node_id, lambda s, d: alice.on_frame(s, d, now))
    radio.join(bob.node_id, lambda s, d: bob.on_frame(s, d, now))
    for device in (alice, bob):
        hello = device.hello_bytes(now)
        show("->", hello)
        radio.broadcast(device.node_id, hello)

    print("\nDiscovery phase — Alice heard Bob's query tokens "
          f"{[sorted(t) for t in alice.peer_query_tokens[bob.node_id]]}:")
    frame = alice.next_metadata_frame(now, clique)
    assert frame is not None
    show("->", frame)
    radio.broadcast(alice.node_id, frame)
    alice.note_own_broadcast(frame, clique)

    print("\nRe-beacon — Bob's hello now requests the file:")
    hello = bob.hello_bytes(now + 1.0)
    show("->", hello)
    radio.broadcast(bob.node_id, hello)
    print(f"  Alice sees Bob downloading: "
          f"{sorted(alice.peer_downloading[bob.node_id])}")

    print("\nDownload phase — the requested piece goes on the air:")
    frame = alice.next_piece_frame(now + 1.0, clique)
    assert frame is not None
    show("->", frame)
    radio.broadcast(alice.node_id, frame)

    delivered = metrics.records[0]
    print(
        f"\nBob verified the checksum and completed the file: "
        f"delivered={delivered.file_delivered} "
        f"({radio.frames_sent} frames, {radio.bytes_sent} bytes on air)"
    )


if __name__ == "__main__":
    main()
