#!/usr/bin/env python
"""Free-riders and the tit-for-tat credit mechanism (§IV-B, §V-B).

A growing fraction of buses refuse to transmit anything (free-riders).
We compare the plain altruistic policy against tit-for-tat with cyclic
scheduling, and inspect the credit ledgers: contributors accumulate
credit with their peers, free-riders stay at zero and therefore get
their requests served last.

Run:  python examples/freerider_incentives.py
"""

from __future__ import annotations

from dataclasses import replace
from statistics import mean

from repro import Simulation, SimulationConfig
from repro.core.mbt import SchedulingMode
from repro.traces.dieselnet import DieselNetConfig, generate_dieselnet_trace


def main() -> None:
    trace = generate_dieselnet_trace(
        DieselNetConfig(num_buses=20, num_days=8), seed=11
    )
    base = SimulationConfig(
        internet_access_fraction=0.3,
        files_per_day=40,
        metadata_per_contact=2,
        files_per_contact=2,
        scheduling=SchedulingMode.CYCLIC,
        seed=11,
    )

    def group_files(sim):
        coop = frozenset(
            n for n in sim.states
            if not sim.states[n].selfish and n not in sim.access_nodes
        )
        riders = frozenset(
            n for n in sim.states
            if sim.states[n].selfish and n not in sim.access_nodes
        )
        coop_file = sim.metrics.ratios_for(coop)[1]
        rider = sim.metrics.ratios_for(riders)
        rider_file = rider[1] if rider[2] else float("nan")
        return coop_file, rider_file

    print(f"{'selfish':>8}{'policy':>12}{'coop file':>11}{'rider file':>12}")
    last_tft_sim = None
    for fraction in (0.0, 0.2, 0.4, 0.6):
        for label, overrides in (
            ("plain", dict(tit_for_tat=False)),
            ("tft", dict(tit_for_tat=True)),
            ("tft+choke", dict(tit_for_tat=True, encrypted_choking=True)),
        ):
            sim = Simulation(
                trace, replace(base, selfish_fraction=fraction, **overrides)
            )
            sim.run()
            if label == "tft":
                last_tft_sim = sim
            coop_file, rider_file = group_files(sim)
            print(f"{fraction:>8.1f}{label:>12}{coop_file:>11.3f}{rider_file:>12.3f}")

    assert last_tft_sim is not None
    print("\nCredit earned (averaged over peers' ledgers) at 60% free-riders:")
    earned = {node: 0.0 for node in last_tft_sim.states}
    for state in last_tft_sim.states.values():
        for peer, credit in state.credits.as_mapping().items():
            earned[peer] += credit

    cooperative = [
        earned[node]
        for node, state in last_tft_sim.states.items()
        if not state.selfish
    ]
    selfish = [
        earned[node] for node, state in last_tft_sim.states.items() if state.selfish
    ]
    print(f"  cooperative nodes: {mean(cooperative):10.1f} total credit earned")
    print(f"  free-riders:       {mean(selfish):10.1f} total credit earned")
    print(
        "\nThe broadcast channel alone cannot punish free-riders — they"
        "\noverhear everything and often do *better* than cooperators"
        "\n(they spend no battery). Credits record the imbalance"
        "\n(free-riders earn none), and the encrypted-choking extension"
        "\n(the paper's §IV-B future work) converts that record into"
        "\nconsequences: choked riders' delivery drops while seeds keep"
        "\nserving everyone. See benchmarks/bench_choking.py for the"
        "\nconfiguration where the payoff ordering fully inverts."
    )


if __name__ == "__main__":
    main()
