#!/usr/bin/env python
"""Regenerate any figure panel of the paper from the command line.

Examples:

    python examples/figure_runner.py fig3a
    python examples/figure_runner.py fig2a fig2b --scale paper --seeds 0 1 2
    python examples/figure_runner.py --all

``--scale fast`` (default) uses reduced traces so a panel takes
seconds; ``--scale paper`` approximates the paper's full scale.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import FIGURES


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "figures",
        nargs="*",
        choices=[*sorted(FIGURES), []],
        help="panel ids, e.g. fig2a fig3f",
    )
    parser.add_argument("--all", action="store_true", help="run every panel")
    parser.add_argument(
        "--scale", choices=("fast", "paper"), default="fast",
        help="trace scale (default: fast)",
    )
    parser.add_argument(
        "--seeds", type=int, nargs="+", default=[0],
        help="seeds to average over (default: 0)",
    )
    parser.add_argument(
        "--format", choices=("table", "csv", "markdown", "plot"), default="table",
        help="output format (default: aligned table)",
    )
    args = parser.parse_args(argv)

    names = sorted(FIGURES) if args.all else args.figures
    if not names:
        parser.error("name at least one figure or pass --all")

    from repro.experiments.report import sweep_to_csv, sweep_to_markdown

    for name in names:
        started = time.perf_counter()
        result = FIGURES[name](scale=args.scale, seeds=tuple(args.seeds))
        elapsed = time.perf_counter() - started
        if args.format == "csv":
            print(sweep_to_csv(result), end="")
        elif args.format == "markdown":
            print(sweep_to_markdown(result))
        elif args.format == "plot":
            from repro.experiments.asciiplot import render_panel

            print(render_panel(result, metric="file"))
        else:
            print(result.format_table())
            print(f"   ({elapsed:.1f}s, scale={args.scale}, seeds={args.seeds})")
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
