#!/usr/bin/env python
"""Campus media sharing: the paper's motivating scenario on the NUS trace.

Students attend scheduled classes; each classroom session is a
communication clique. A minority of students have free-WiFi Internet
access; everyone else relies on cooperative discovery and download.
This example walks the full user story:

* publish a day of media files on the Internet side and inspect the
  metadata server's keyword search (what an access node sees),
* run the MBT simulation over a month of classes,
* show how a specific non-access student's query was served: which
  metadata it collected, which pieces arrived, over which contacts.

Run:  python examples/campus_media_sharing.py
"""

from __future__ import annotations

from repro import ProtocolVariant, Simulation, SimulationConfig
from repro.catalog.generator import CatalogConfig, CatalogGenerator
from repro.catalog.server import MetadataServer
from repro.traces.nus import NUSConfig, generate_nus_trace
from repro.types import NodeId, noon_of_day


def demo_keyword_search() -> None:
    """What file discovery looks like on the Internet side."""
    print("== Keyword search against the metadata server ==")
    generator = CatalogGenerator(
        CatalogConfig(files_per_day=30, ttl_days=3.0), [NodeId(0)], seed=7
    )
    server = MetadataServer()
    batch = generator.generate_day(0, noon_of_day(0))
    for record in batch.metadata:
        server.publish(record)

    for tokens in ({"news"}, {"sports", "highlights"}):
        hits = server.search(frozenset(tokens), now=noon_of_day(0), limit=3)
        print(f"  query {sorted(tokens)}: {len(hits)} hit(s)")
        for record in hits:
            print(
                f"    [{record.popularity:.2f}] {record.name}"
                f"  ({record.publisher}, {record.num_pieces} piece(s))"
            )
    print()


def run_campus_simulation() -> None:
    print("== One month of cooperative sharing on campus ==")
    trace = generate_nus_trace(
        NUSConfig(num_students=80, num_courses=16, num_days=20), seed=7
    )
    print(f"  trace: {trace.stats().describe()}")

    config = SimulationConfig(
        internet_access_fraction=0.2,
        files_per_day=30,
        ttl_days=3.0,
        metadata_per_contact=3,
        files_per_contact=3,
        frequent_contact_max_gap_days=1.0,  # classmates met daily (§VI-A)
        seed=7,
    )

    results = {}
    for variant in ProtocolVariant:
        simulation = Simulation(trace, config.with_variant(variant))
        results[variant] = (simulation, simulation.run())

    print(f"\n  {'protocol':>8}{'metadata':>10}{'file':>8}")
    for variant, (__, result) in results.items():
        print(
            f"  {variant.value:>8}{result.metadata_delivery_ratio:>10.3f}"
            f"{result.file_delivery_ratio:>8.3f}"
        )

    # Inspect one served query under full MBT.
    simulation, __ = results[ProtocolVariant.MBT]
    served = next(
        (
            record
            for record in simulation.metrics.records
            if not record.access_node and record.file_delivered
        ),
        None,
    )
    if served is not None:
        query = served.query
        wait_meta = served.metadata_delivered_at - query.created_at
        wait_file = served.file_delivered_at - query.created_at
        print(
            f"\n  Student {query.node} searched for {sorted(query.tokens)}:\n"
            f"    metadata arrived after {wait_meta / 3600:.1f} h,"
            f" full file after {wait_file / 3600:.1f} h\n"
            f"    target: {query.target_uri}"
        )
        state = simulation.states[query.node]
        print(
            f"    node now stores {len(state.metadata)} metadata records and"
            f" {state.pieces.total_pieces()} file pieces"
        )


def main() -> None:
    demo_keyword_search()
    run_campus_simulation()


if __name__ == "__main__":
    main()
