#!/usr/bin/env python
"""Seed robustness: is the protocol ordering real or noise?

Runs the three protocols across several seeds (regenerating the trace
each time, so trace randomness is part of the spread) and reports
mean ± standard deviation, plus whether MBT's advantage over MBT-QM is
separated at one sigma.

Run:  python examples/seed_robustness.py [--seeds 0 1 2 3]
"""

from __future__ import annotations

import argparse
import sys

from repro.core.mbt import ProtocolVariant
from repro.experiments.campaign import compare, format_campaign, separated
from repro.sim.runner import SimulationConfig
from repro.traces.dieselnet import DieselNetConfig, generate_dieselnet_trace


def trace_factory(seed: int):
    return generate_dieselnet_trace(
        DieselNetConfig(num_buses=20, num_days=8), seed=seed
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seeds", type=int, nargs="+", default=[0, 1, 2, 3])
    args = parser.parse_args(argv)

    base = SimulationConfig(
        internet_access_fraction=0.3,
        files_per_day=40,
        metadata_per_contact=3,
        files_per_contact=3,
    )
    configs = {
        variant.value: base.with_variant(variant) for variant in ProtocolVariant
    }
    results = compare(configs, trace_factory, seeds=args.seeds)
    print(format_campaign(results))

    by_name = {r.name: r for r in results}
    mbt, qm = by_name["mbt"], by_name["mbt-qm"]
    if separated(qm.file, mbt.file):
        print(
            "\nMBT vs MBT-QM file delivery is separated at one sigma across"
            f" {len(args.seeds)} seeds — the ordering is not seed noise."
        )
    else:
        print(
            "\nOne-sigma intervals overlap at this seed count; add seeds"
            " for a sharper comparison."
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
