"""Resilience tests for the execution kernel: retries, timeouts,
checkpoint/resume and the per-process LRU trace cache.

The crashy/sleepy builders below are module-level on purpose — worker
processes re-import them by dotted path, so they must be picklable by
qualified name.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import replace
from typing import List

import pytest

from repro.exec import (
    RunError,
    RunManyError,
    RunResult,
    RunSpec,
    TraceSpec,
    execute,
    run_many,
    spec_fingerprint,
    trace_cache_info,
)
from repro.exec import kernel
from repro.exec.kernel import _LRUCache
from repro.faults import FaultPlan
from repro.sim.runner import SimulationConfig
from repro.traces.base import Contact, ContactTrace
from repro.traces.dieselnet import DieselNetConfig, generate_dieselnet_trace
from repro.types import DAY, NodeId


def micro_builder(seed: int = 0) -> ContactTrace:
    """Three nodes, two pair contacts a day for three days."""
    contacts = []
    for day in range(3):
        base = day * DAY
        contacts.append(
            Contact(base + 50_000.0, base + 50_060.0, frozenset({NodeId(0), NodeId(1)}))
        )
        contacts.append(
            Contact(base + 60_000.0, base + 60_060.0, frozenset({NodeId(1), NodeId(2)}))
        )
    return ContactTrace(contacts, name=f"micro{seed}")


def crash_once_builder(flag_path: str, seed: int = 0) -> ContactTrace:
    """Kill the hosting process on first use, then behave like micro."""
    if not os.path.exists(flag_path):
        with open(flag_path, "w", encoding="utf-8"):
            pass
        os._exit(1)
    return micro_builder(seed)


def crash_always_builder(seed: int = 0) -> ContactTrace:
    """Kill the hosting process unconditionally."""
    os._exit(1)


def fail_once_builder(flag_path: str, seed: int = 0) -> ContactTrace:
    """Raise on first use (leaving a flag behind), then behave like micro."""
    if not os.path.exists(flag_path):
        with open(flag_path, "w", encoding="utf-8"):
            pass
        raise RuntimeError("interrupted mid-sweep")
    return micro_builder(seed)


def sleepy_builder(seconds: float, seed: int = 0) -> ContactTrace:
    time.sleep(seconds)
    return micro_builder(seed)


def failing_builder(seed: int = 0) -> ContactTrace:
    raise RuntimeError("deterministic builder failure")


def _tiny_config(seed: int = 0) -> SimulationConfig:
    return SimulationConfig(files_per_day=5, num_days=3, seed=seed)


def micro_spec(seed: int = 0) -> RunSpec:
    return RunSpec(
        trace=TraceSpec.of(micro_builder, seed), config=_tiny_config(seed)
    )


def _dicts(runs: List[RunResult]) -> List[dict]:
    return [run.result.to_dict() for run in runs]


# ------------------------------------------------------------------ LRU cache


class TestLRUCache:
    def test_evicts_least_recently_used(self):
        cache = _LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)
        assert "a" not in cache and "b" in cache and "c" in cache

    def test_hit_refreshes_recency(self):
        cache = _LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # "a" becomes most recent
        cache.put("c", 3)
        assert "a" in cache and "b" not in cache

    def test_membership_probe_does_not_refresh(self):
        cache = _LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert "a" in cache  # probe only
        cache.put("c", 3)
        assert "a" not in cache  # still the LRU entry

    def test_hit_miss_counters(self):
        cache = _LRUCache(4)
        assert cache.get("missing") is None
        cache.put("a", 1)
        cache.get("a")
        assert cache.hits == 1 and cache.misses == 1

    def test_rejects_nonpositive_limit(self):
        with pytest.raises(ValueError):
            _LRUCache(0)

    def test_trace_cache_stays_bounded(self):
        kernel._TRACE_CACHE.clear()
        for seed in range(kernel._TRACE_CACHE_LIMIT + 5):
            kernel._trace_for(TraceSpec.of(micro_builder, seed))
        assert trace_cache_info()["size"] == kernel._TRACE_CACHE_LIMIT


# ------------------------------------------------------------- fingerprinting


class TestSpecFingerprint:
    def test_stable_for_equal_specs(self):
        assert spec_fingerprint(micro_spec(3)) == spec_fingerprint(micro_spec(3))

    def test_sensitive_to_seed_config_and_tag(self):
        base = micro_spec(0)
        assert spec_fingerprint(base) != spec_fingerprint(micro_spec(1))
        assert spec_fingerprint(base) != spec_fingerprint(
            replace(base, config=replace(base.config, files_per_day=9))
        )
        assert spec_fingerprint(base) != spec_fingerprint(
            replace(base, tag=RunSpec.make_tag(x=1))
        )

    def test_sensitive_to_fault_plan(self):
        base = micro_spec(0)
        faulty = replace(
            base, config=replace(base.config, faults=FaultPlan(loss_rate=0.2))
        )
        assert spec_fingerprint(base) != spec_fingerprint(faulty)

    def test_literal_traces_fingerprint_by_content(self):
        a = RunSpec(trace=TraceSpec.literal(micro_builder(0)), config=_tiny_config())
        b = RunSpec(trace=TraceSpec.literal(micro_builder(0)), config=_tiny_config())
        assert spec_fingerprint(a) == spec_fingerprint(b)  # distinct objects
        shifted = ContactTrace(
            [Contact(c.start + 1.0, c.end + 1.0, c.members) for c in micro_builder(0)],
            name="micro0",
        )
        c = RunSpec(trace=TraceSpec.literal(shifted), config=_tiny_config())
        assert spec_fingerprint(a) != spec_fingerprint(c)


# ------------------------------------------------------- deterministic errors


class TestDeterministicErrors:
    def _specs(self):
        return [
            micro_spec(0),
            RunSpec(trace=TraceSpec.of(failing_builder, 0), config=_tiny_config()),
            micro_spec(1),
        ]

    def test_serial_fail_fast_raises(self):
        with pytest.raises(RuntimeError, match="deterministic builder failure"):
            run_many(self._specs(), jobs=1)

    def test_serial_collect_fills_error_slot(self):
        results = run_many(self._specs(), jobs=1, on_error="collect")
        assert isinstance(results[0], RunResult)
        assert isinstance(results[1], RunError)
        assert isinstance(results[2], RunResult)
        assert results[1].attempts == 1
        assert "deterministic builder failure" in results[1].error

    def test_parallel_collect_never_retries_simulation_errors(self):
        results = run_many(
            self._specs(), jobs=2, on_error="collect", backoff=0.0, mode="processes"
        )
        assert isinstance(results[1], RunError)
        assert results[1].attempts == 1

    def test_parallel_fail_fast_raises_original(self):
        with pytest.raises(RuntimeError, match="deterministic builder failure"):
            run_many(self._specs(), jobs=2, backoff=0.0, mode="processes")

    def test_run_error_labels(self):
        spec = replace(
            RunSpec(trace=TraceSpec.of(failing_builder, 0), config=_tiny_config()),
            tag=RunSpec.make_tag(protocol="mbt", x=0.3),
        )
        [error] = run_many([spec], jobs=1, on_error="collect")
        assert error.labels() == {"protocol": "mbt", "x": 0.3}


# ------------------------------------------------------------- worker crashes


class TestWorkerCrashes:
    def test_crashed_worker_is_retried_and_sweep_completes(self, tmp_path):
        flag = str(tmp_path / "crashed-once")
        specs = [
            micro_spec(0),
            RunSpec(
                trace=TraceSpec.of(crash_once_builder, flag, 7),
                config=_tiny_config(7),
            ),
            micro_spec(1),
        ]
        results = run_many(specs, jobs=2, retries=2, backoff=0.01, mode="processes")
        assert os.path.exists(flag)  # the crash really happened
        assert all(isinstance(run, RunResult) for run in results)
        # The retried spec produced the same result a clean run would:
        # crash_once_builder returns micro_builder(7) once the flag exists.
        baseline = execute(specs[1])
        assert results[1].result.to_dict() == baseline.result.to_dict()

    def test_retries_exhausted_collect(self):
        specs = [
            RunSpec(trace=TraceSpec.of(crash_always_builder, 0), config=_tiny_config())
        ]
        [error] = run_many(
            specs, jobs=2, retries=1, backoff=0.01, on_error="collect",
            mode="processes",
        )
        assert isinstance(error, RunError)
        assert error.attempts == 2  # initial try + one retry
        assert "worker crashed" in error.error

    def test_retries_exhausted_fail_fast(self):
        specs = [
            RunSpec(trace=TraceSpec.of(crash_always_builder, 0), config=_tiny_config())
        ]
        with pytest.raises(RunManyError) as excinfo:
            run_many(specs, jobs=2, retries=0, backoff=0.0, mode="processes")
        assert excinfo.value.errors[0].attempts == 1

    def test_timeout_is_a_terminal_failure(self):
        specs = [
            RunSpec(
                trace=TraceSpec.of(sleepy_builder, 10.0), config=_tiny_config()
            )
        ]
        start = time.monotonic()
        [error] = run_many(
            specs, jobs=2, timeout=0.5, retries=0, backoff=0.0, on_error="collect",
            mode="processes",
        )
        assert isinstance(error, RunError)
        assert "timed out" in error.error
        # The stuck pool is abandoned, not awaited for the full sleep.
        assert time.monotonic() - start < 8.0

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            run_many([], retries=-1)
        with pytest.raises(ValueError):
            run_many([], backoff=-0.5)
        with pytest.raises(ValueError):
            run_many([], on_error="explode")
        with pytest.raises(ValueError):
            run_many([], timeout=0.0)


# ------------------------------------------------------------------ checkpoint


class TestCheckpoint:
    def test_resume_restores_without_rerunning(self, tmp_path, monkeypatch):
        path = str(tmp_path / "sweep.jsonl")
        specs = [micro_spec(seed) for seed in range(3)]
        first = run_many(specs, jobs=1, checkpoint=path)

        def boom(spec):
            raise AssertionError("completed spec must not re-run")

        monkeypatch.setattr(kernel, "execute", boom)
        second = run_many(specs, jobs=1, checkpoint=path)
        assert _dicts(second) == _dicts(first)

    def test_interrupted_sweep_reruns_only_unfinished_specs(self, tmp_path, monkeypatch):
        path = str(tmp_path / "sweep.jsonl")
        flag = str(tmp_path / "failed-once")
        specs = [
            micro_spec(0),
            RunSpec(
                trace=TraceSpec.of(fail_once_builder, flag, 5),
                config=_tiny_config(5),
            ),
            micro_spec(1),
        ]
        # First pass: the middle spec fails deterministically and, under
        # collect, lands as a RunError — which is never checkpointed.
        first = run_many(
            specs, jobs=2, retries=0, backoff=0.0, on_error="collect",
            checkpoint=path, mode="processes",
        )
        assert isinstance(first[1], RunError)
        assert isinstance(first[0], RunResult) and isinstance(first[2], RunResult)

        executed: List[RunSpec] = []
        real_execute = kernel.execute

        def counting(spec):
            executed.append(spec)
            return real_execute(spec)

        monkeypatch.setattr(kernel, "execute", counting)
        resumed = run_many(specs, jobs=1, checkpoint=path)
        assert [spec for spec in executed] == [specs[1]]  # only the gap re-ran
        assert all(isinstance(run, RunResult) for run in resumed)
        assert resumed[0].result.to_dict() == first[0].result.to_dict()
        assert resumed[2].result.to_dict() == first[2].result.to_dict()

    def test_torn_tail_line_is_skipped(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        specs = [micro_spec(0), micro_spec(1)]
        first = run_many(specs, jobs=1, checkpoint=path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"fingerprint": "abc", "result": {"trunc')  # killed mid-write
        resumed = run_many(specs, jobs=1, checkpoint=path)
        assert _dicts(resumed) == _dicts(first)

    def test_checkpoint_lines_are_keyed_by_fingerprint(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        specs = [micro_spec(0), micro_spec(1)]
        run_many(specs, jobs=1, checkpoint=path)
        with open(path, encoding="utf-8") as handle:
            lines = [json.loads(line) for line in handle if line.strip()]
        assert [line["fingerprint"] for line in lines] == [
            spec_fingerprint(spec) for spec in specs
        ]
        assert all("result" in line for line in lines)


# --------------------------------------------- determinism under fault plans


class TestFaultedParallelEquality:
    def test_jobs_do_not_change_fault_injected_results(self):
        plan = FaultPlan(
            loss_rate=0.3,
            corruption_rate=0.2,
            contact_truncation_rate=0.3,
            churn_rate=0.2,
        )
        specs = [
            RunSpec(
                trace=TraceSpec.of(
                    generate_dieselnet_trace,
                    DieselNetConfig(num_buses=6, num_days=2),
                    seed,
                ),
                config=replace(_tiny_config(seed), faults=plan),
            )
            for seed in range(4)
        ]
        serial = run_many(specs, jobs=1)
        parallel = run_many(specs, jobs=2, mode="processes")
        assert _dicts(parallel) == _dicts(serial)
        for run in serial:
            assert run.result.extra.get("faults.metadata_losses", 0) > 0
