"""Tests for encrypted choking (§IV-B future work) and group metrics."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.catalog.files import piece_payload
from repro.core.mbt import (
    MobileBitTorrent,
    ProtocolConfig,
    SchedulingMode,
)
from repro.net.medium import ContactBudget
from repro.sim.metrics import MetricsCollector
from repro.sim.runner import Simulation, SimulationConfig
from repro.traces.dieselnet import DieselNetConfig, generate_dieselnet_trace
from repro.types import NodeId, Uri

from conftest import make_metadata, make_query

from test_mbt_engine import Harness


class TestUnchokedSet:
    def _engine(self, registry, **kwargs) -> Harness:
        config = ProtocolConfig(
            tit_for_tat=True, encrypted_choking=True,
            budget=ContactBudget(2, 2), **kwargs,
        )
        return Harness(registry, num_nodes=3, config=config)

    def test_zero_credit_receiver_choked(self, registry):
        h = self._engine(registry)
        sender = h.states[NodeId(0)]
        receivers = frozenset({NodeId(1), NodeId(2)})
        assert h.engine._unchoked(sender, receivers) == frozenset()

    def test_contributor_unchoked(self, registry):
        h = self._engine(registry)
        sender = h.states[NodeId(0)]
        sender.credits.reward_unrequested(NodeId(1), 0.1)
        receivers = frozenset({NodeId(1), NodeId(2)})
        assert h.engine._unchoked(sender, receivers) == frozenset({NodeId(1)})

    def test_threshold_raises_the_bar(self, registry):
        h = self._engine(registry, choke_credit_threshold=1.0)
        sender = h.states[NodeId(0)]
        sender.credits.reward_unrequested(NodeId(1), 0.5)
        sender.credits.reward_requested(NodeId(2))  # 5.0
        receivers = frozenset({NodeId(1), NodeId(2)})
        assert h.engine._unchoked(sender, receivers) == frozenset({NodeId(2)})


class TestChokedExchange:
    def test_metadata_phase_stays_open(self, registry):
        config = ProtocolConfig(tit_for_tat=True, encrypted_choking=True)
        h = Harness(registry, config=config)
        record = make_metadata(registry)
        h.states[NodeId(0)].accept_metadata(record, 0.0)
        h.contact([0, 1])
        assert record.uri in h.states[NodeId(1)].metadata

    def test_pieces_flow_after_bootstrap(self, registry):
        # First contact: metadata both ways builds credit; pieces to a
        # zero-credit peer are withheld. Second contact: unchoked.
        config = ProtocolConfig(
            tit_for_tat=True, encrypted_choking=True, budget=ContactBudget(2, 2)
        )
        h = Harness(registry, config=config)
        file_record = make_metadata(registry, uri="dtn://fox/file")
        advert = make_metadata(registry, uri="dtn://fox/ad")
        h.give_piece(0, file_record, 0)
        # Node 1 has something to contribute back (an advert node 0 lacks).
        h.states[NodeId(1)].accept_metadata(advert, 0.0)
        h.contact([0, 1], now=0.0)
        h.contact([0, 1], now=100.0)
        assert h.states[NodeId(1)].pieces.pieces_of(file_record.uri) == {0}

    def test_pure_free_rider_never_receives_pieces(self, registry):
        config = ProtocolConfig(
            tit_for_tat=True, encrypted_choking=True, budget=ContactBudget(2, 2)
        )
        h = Harness(registry, selfish=[1], config=config)
        record = make_metadata(registry)
        h.give_piece(0, record, 0)
        for t in (0.0, 100.0, 200.0):
            h.contact([0, 1], now=t)
        # Metadata arrived (open channel) but no piece ever did.
        assert record.uri in h.states[NodeId(1)].metadata
        assert h.states[NodeId(1)].pieces.pieces_of(record.uri) == frozenset()

    def test_access_node_seeds_unconditionally(self, registry):
        # Seeds never choke (BitTorrent-seed behaviour): even a
        # zero-credit peer receives pieces from an Internet-access node.
        config = ProtocolConfig(
            tit_for_tat=True, encrypted_choking=True, budget=ContactBudget(2, 2)
        )
        h = Harness(registry, access=[0], config=config)
        record = make_metadata(registry)
        h.give_piece(0, record, 0)
        h.contact([0, 1], now=0.0)
        assert h.states[NodeId(1)].pieces.pieces_of(record.uri) == {0}

    def test_choking_off_by_default(self):
        assert ProtocolConfig().encrypted_choking is False


class TestGroupMetrics:
    def test_ratios_for_subset(self):
        metrics = MetricsCollector()
        for node in (1, 2, 3):
            metrics.register_query(make_query(node, "dtn://fox/a", ["a"]), False)
        metrics.on_file_complete(NodeId(1), Uri("dtn://fox/a"), 1.0)
        meta, file_ratio, count = metrics.ratios_for({NodeId(1), NodeId(2)})
        assert count == 2
        assert file_ratio == 0.5
        assert meta == 0.5

    def test_empty_subset(self):
        metrics = MetricsCollector()
        assert metrics.ratios_for(set()) == (0.0, 0.0, 0)


class TestChokingEndToEnd:
    def _run(self, encrypted_choking: bool):
        trace = generate_dieselnet_trace(
            DieselNetConfig(num_buses=20, num_days=8), seed=0
        )
        config = SimulationConfig(
            seed=0, files_per_day=40, ttl_days=3.0, tit_for_tat=True,
            encrypted_choking=encrypted_choking, selfish_fraction=0.4,
            scheduling=SchedulingMode.CYCLIC,
            metadata_per_contact=2, files_per_contact=2,
            frequent_contact_max_gap_days=3.0,
        )
        sim = Simulation(trace, config)
        sim.run()
        coop = frozenset(
            n for n in sim.states
            if not sim.states[n].selfish and n not in sim.access_nodes
        )
        riders = frozenset(
            n for n in sim.states
            if sim.states[n].selfish and n not in sim.access_nodes
        )
        __, coop_file, __ = sim.metrics.ratios_for(coop)
        __, rider_file, rider_count = sim.metrics.ratios_for(riders)
        assert rider_count > 0
        return coop_file, rider_file

    def test_choking_inverts_the_free_riding_payoff(self):
        coop_plain, rider_plain = self._run(encrypted_choking=False)
        coop_choke, rider_choke = self._run(encrypted_choking=True)
        # Without choking, free-riding pays (riders still receive
        # everything while saving their own battery/bandwidth).
        assert rider_plain >= coop_plain - 0.05
        # With choking, cooperators come out ahead...
        assert coop_choke > rider_choke
        # ...because the riders' delivery drops distinctly.
        assert rider_choke < rider_plain - 0.05
