"""Unit tests for the space-time graph analysis (§II-A oracle)."""

from __future__ import annotations

import math

import pytest

from repro.sim.spacetime import (
    earliest_arrival,
    oracle_file_delivery_bound,
    pairwise_delays,
    reachability_ratio,
)
from repro.traces.base import ContactTrace
from repro.types import DAY, NodeId

from conftest import clique_contact, pair_contact


def chain() -> ContactTrace:
    return ContactTrace(
        [
            pair_contact(100.0, 110.0, 0, 1),
            pair_contact(200.0, 210.0, 1, 2),
            pair_contact(300.0, 310.0, 2, 3),
        ]
    )


class TestEarliestArrival:
    def test_chain_propagation(self):
        result = earliest_arrival(chain(), [NodeId(0)], start_time=0.0)
        assert result.arrival[NodeId(0)] == 0.0
        assert result.arrival[NodeId(1)] == 100.0
        assert result.arrival[NodeId(2)] == 200.0
        assert result.arrival[NodeId(3)] == 300.0

    def test_unreachable_node_absent(self):
        result = earliest_arrival(chain(), [NodeId(3)], start_time=0.0)
        # Contacts are ordered against node 3: nothing flows backwards.
        assert NodeId(0) not in result.arrival
        assert result.delay_to(NodeId(0)) == math.inf

    def test_start_time_after_contact_skips_it(self):
        result = earliest_arrival(chain(), [NodeId(0)], start_time=150.0)
        assert NodeId(1) not in result.arrival

    def test_data_can_join_open_contact(self):
        # A long contact still open when data arrives relays it.
        trace = ContactTrace(
            [
                pair_contact(0.0, 1000.0, 1, 2),  # long-lived link
                pair_contact(500.0, 510.0, 0, 1),
            ]
        )
        result = earliest_arrival(trace, [NodeId(0)], start_time=0.0)
        assert result.arrival[NodeId(1)] == 500.0
        assert result.arrival[NodeId(2)] == 500.0

    def test_clique_contact_reaches_all_members(self):
        trace = ContactTrace([clique_contact(100.0, 200.0, [0, 1, 2, 3])])
        result = earliest_arrival(trace, [NodeId(0)], start_time=0.0)
        for node in (1, 2, 3):
            assert result.arrival[NodeId(node)] == 100.0

    def test_multiple_sources_take_min(self):
        result = earliest_arrival(chain(), [NodeId(0), NodeId(2)], start_time=0.0)
        assert result.arrival[NodeId(3)] == 300.0
        assert result.arrival[NodeId(1)] == 100.0

    def test_reachable_by_deadline(self):
        result = earliest_arrival(chain(), [NodeId(0)], start_time=0.0)
        assert result.reachable_by(250.0) == {NodeId(0), NodeId(1), NodeId(2)}

    def test_delay_to(self):
        result = earliest_arrival(chain(), [NodeId(0)], start_time=50.0)
        assert result.delay_to(NodeId(1)) == 50.0


class TestReachability:
    def test_ratio_excludes_sources(self):
        ratio = reachability_ratio(
            chain(), [NodeId(0)], start_time=0.0, deadline=250.0
        )
        # Nodes 1 and 2 of the 3 non-source nodes reached.
        assert ratio == pytest.approx(2 / 3)

    def test_ratio_with_explicit_population(self):
        ratio = reachability_ratio(
            chain(), [NodeId(0)], 0.0, 250.0, population=[NodeId(1), NodeId(3)]
        )
        assert ratio == pytest.approx(0.5)

    def test_empty_population(self):
        ratio = reachability_ratio(
            chain(), list(chain().nodes), 0.0, 1e9
        )
        assert ratio == 0.0

    def test_oracle_bound_bounds_everything(self):
        bound = oracle_file_delivery_bound(
            chain(), access_nodes=[NodeId(0)], generation_time=0.0, ttl=DAY
        )
        assert bound == 1.0  # all three non-access nodes reachable

    def test_oracle_bound_respects_ttl(self):
        bound = oracle_file_delivery_bound(
            chain(), access_nodes=[NodeId(0)], generation_time=0.0, ttl=250.0
        )
        assert bound == pytest.approx(2 / 3)


class TestPairwiseDelays:
    def test_matrix_shape_and_symmetry_of_reachability(self):
        trace = ContactTrace(
            [
                pair_contact(10.0, 20.0, 0, 1),
                pair_contact(30.0, 40.0, 0, 1),
            ]
        )
        matrix = pairwise_delays(trace)
        assert matrix[NodeId(0)][NodeId(1)] == 10.0
        assert matrix[NodeId(1)][NodeId(0)] == 10.0

    def test_asymmetric_chain(self):
        matrix = pairwise_delays(chain())
        assert matrix[NodeId(0)][NodeId(3)] == 300.0
        assert matrix[NodeId(3)][NodeId(0)] == math.inf
