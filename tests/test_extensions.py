"""Tests for extension features: eviction policies, delay metrics,
hello-derived cliques in the runner, and adversarial behaviour."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.catalog.files import IntegrityError, piece_payload
from repro.catalog.metadata import sign_metadata
from repro.core.node import MetadataStore
from repro.sim.metrics import MetricsCollector, _percentile
from repro.sim.runner import Simulation, SimulationConfig
from repro.traces.nus import NUSConfig, generate_nus_trace
from repro.types import NodeId, Uri

from conftest import make_metadata, make_node, make_query


class TestEvictionPolicies:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            MetadataStore(capacity=2, policy="magic")

    def test_fifo_evicts_oldest(self, registry):
        store = MetadataStore(capacity=2, policy="fifo")
        first = make_metadata(registry, uri="dtn://fox/first", popularity=0.9)
        second = make_metadata(registry, uri="dtn://fox/second", popularity=0.1)
        third = make_metadata(registry, uri="dtn://fox/third", popularity=0.5)
        store.add(first)
        store.add(second)
        store.add(third)
        # FIFO ignores popularity: the oldest insert goes.
        assert first.uri not in store
        assert second.uri in store and third.uri in store

    def test_lru_eviction_respects_access(self, registry):
        store = MetadataStore(capacity=2, policy="lru")
        a = make_metadata(registry, uri="dtn://fox/a")
        b = make_metadata(registry, uri="dtn://fox/b")
        c = make_metadata(registry, uri="dtn://fox/c")
        store.add(a)
        store.add(b)
        store.get(a.uri)  # touch a: b becomes least recently used
        store.add(c)
        assert b.uri not in store
        assert a.uri in store and c.uri in store

    def test_fifo_protected_survive(self, registry):
        store = MetadataStore(capacity=2, policy="fifo")
        first = make_metadata(registry, uri="dtn://fox/first")
        second = make_metadata(registry, uri="dtn://fox/second")
        third = make_metadata(registry, uri="dtn://fox/third")
        store.add(first)
        store.add(second)
        store.add(third, protected=frozenset({first.uri}))
        assert first.uri in store
        assert second.uri not in store

    def test_policy_reaches_node_state(self, registry):
        node = make_node(registry)
        assert node.metadata._policy == "popularity"


class TestDelayMetrics:
    def test_percentile_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert _percentile(values, 0.5) == 2.0
        assert _percentile(values, 0.9) == 4.0
        assert _percentile(values, 0.0) == 1.0
        assert _percentile(values, 1.0) == 4.0

    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            _percentile([], 0.5)
        with pytest.raises(ValueError):
            _percentile([1.0], 1.5)

    def test_delays_collected(self):
        metrics = MetricsCollector()
        query = make_query(1, "dtn://fox/a", ["a"], created_at=100.0,
                           expires_at=10_000.0)
        metrics.register_query(query, access_node=False)
        metrics.on_metadata(NodeId(1), Uri("dtn://fox/a"), now=400.0)
        metrics.on_file_complete(NodeId(1), Uri("dtn://fox/a"), now=700.0)
        assert metrics.metadata_delays() == [300.0]
        assert metrics.file_delays() == [600.0]

    def test_delay_stats_in_result_extra(self):
        metrics = MetricsCollector()
        for node in (1, 2):
            query = make_query(node, "dtn://fox/a", ["a"], 0.0, 10_000.0)
            metrics.register_query(query, access_node=False)
            metrics.on_file_complete(NodeId(node), Uri("dtn://fox/a"),
                                     now=100.0 * node)
        result = metrics.result()
        assert result.extra["file_delay_p50"] == 100.0
        assert result.extra["file_delay_mean"] == 150.0

    def test_no_delay_keys_when_nothing_delivered(self):
        result = MetricsCollector().result()
        assert "file_delay_p50" not in result.extra


class TestHelloDerivedCliquesInRunner:
    def test_equivalent_to_trusted_membership(self):
        trace = generate_nus_trace(
            NUSConfig(num_students=24, num_courses=5, num_days=4), seed=2
        )
        base = SimulationConfig(seed=2, files_per_day=15,
                                frequent_contact_max_gap_days=1.0)
        trusted = Simulation(trace, base).run()
        derived = Simulation(
            trace, replace(base, derive_cliques_from_hellos=True)
        ).run()
        # Trace contacts ARE cliques, so the §III-B derivation must
        # recover them exactly and give identical delivery.
        assert derived.metadata_delivery_ratio == trusted.metadata_delivery_ratio
        assert derived.file_delivery_ratio == trusted.file_delivery_ratio


class TestAdversarialBehaviour:
    def test_corrupt_piece_rejected_end_to_end(self, registry):
        node = make_node(registry)
        record = make_metadata(registry)
        bogus = piece_payload(record.uri, 0) + b"tampered"
        with pytest.raises(IntegrityError):
            node.accept_piece(record.uri, 0, bogus, record.checksums[0])
        assert node.pieces.pieces_of(record.uri) == frozenset()

    def test_fake_publisher_flood_does_not_pollute_store(self, registry):
        node = make_node(registry)
        for i in range(10):
            fake = make_metadata(
                registry, uri=f"dtn://evil/{i}", publisher="fox", signed=False
            )
            assert node.accept_metadata(fake, 0.0) is False
        assert len(node.metadata) == 0
        assert node.stats.metadata_rejected_auth == 10

    def test_replayed_metadata_with_altered_popularity_is_fine(self, registry):
        # Popularity is server-maintained and unsigned: updating it must
        # not break verification, but identity fields must.
        node = make_node(registry)
        record = make_metadata(registry)
        assert node.accept_metadata(record.with_popularity(0.99), 0.0) is True

    def test_wrong_registry_rejects_foreign_signatures(self):
        from repro.catalog.metadata import PublisherRegistry

        theirs = PublisherRegistry(master_seed=1)
        theirs.register("fox")
        record = make_metadata(theirs, publisher="fox")
        ours = PublisherRegistry(master_seed=2)
        ours.register("fox")
        node = make_node(ours)
        assert node.accept_metadata(record, 0.0) is False
