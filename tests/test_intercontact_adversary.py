"""Tests for inter-contact analysis, the fake-file adversary, piece
buffers and duration-derived budgets."""

from __future__ import annotations

import random
from dataclasses import replace

import pytest

from repro.analysis.intercontact import (
    empirical_ccdf,
    fit_exponential,
    intercontact_samples,
    pair_meeting_rates,
    summarize,
)
from repro.catalog.adversary import FakeFileFactory
from repro.catalog.files import piece_payload
from repro.catalog.generator import CatalogConfig, CatalogGenerator
from repro.catalog.metadata import verify_metadata
from repro.sim.runner import Simulation, SimulationConfig
from repro.traces.base import Contact, ContactTrace
from repro.traces.dieselnet import DieselNetConfig, generate_dieselnet_trace
from repro.types import DAY, NodeId, noon_of_day

from conftest import make_metadata, make_node, make_query, pair_contact


class TestInterContact:
    def test_samples_measure_gaps(self):
        trace = ContactTrace(
            [
                pair_contact(0.0, 10.0, 0, 1),
                pair_contact(110.0, 120.0, 0, 1),
                pair_contact(320.0, 330.0, 0, 1),
            ]
        )
        assert intercontact_samples(trace) == [100.0, 200.0]

    def test_overlapping_contacts_contribute_zero(self):
        trace = ContactTrace(
            [pair_contact(0.0, 100.0, 0, 1), pair_contact(50.0, 60.0, 0, 1)]
        )
        assert intercontact_samples(trace) == [0.0]

    def test_pairs_tracked_independently(self):
        trace = ContactTrace(
            [
                pair_contact(0.0, 10.0, 0, 1),
                pair_contact(20.0, 30.0, 2, 3),
                pair_contact(40.0, 50.0, 0, 1),
            ]
        )
        assert intercontact_samples(trace) == [30.0]

    def test_summarize(self):
        stats = summarize([10.0, 20.0, 30.0, 40.0])
        assert stats.count == 4
        assert stats.mean == 25.0
        assert stats.median == 25.0
        assert stats.cv > 0

    def test_summarize_rejects_empty(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_ccdf_monotone_decreasing(self):
        rng = random.Random(0)
        samples = [rng.expovariate(1 / 100.0) for __ in range(2000)]
        ccdf = empirical_ccdf(samples)
        values = [p for __, p in ccdf]
        assert values == sorted(values, reverse=True)
        assert 0.0 <= values[-1] <= values[0] <= 1.0

    def test_exponential_fit_recovers_rate(self):
        rng = random.Random(1)
        rate = 1 / 3600.0
        samples = [rng.expovariate(rate) for __ in range(5000)]
        fit = fit_exponential(samples)
        assert fit.rate == pytest.approx(rate, rel=0.1)
        assert fit.ccdf_error < 0.05  # exponential data fits well

    def test_dieselnet_gaps_roughly_exponential(self):
        # The generator draws meetings from Poisson processes, so the
        # aggregate gaps should fit an exponential reasonably.
        trace = generate_dieselnet_trace(
            DieselNetConfig(num_buses=16, num_days=10), seed=0
        )
        fit = fit_exponential(intercontact_samples(trace))
        assert fit.ccdf_error < 0.12

    def test_pair_meeting_rates(self):
        trace = ContactTrace(
            [pair_contact(0.0, 10.0, 0, 1), pair_contact(50.0, 60.0, 0, 1)]
        )
        rates = pair_meeting_rates(trace)
        assert rates[(0, 1)] == pytest.approx(2 / 60.0)


class TestFakeFileFactory:
    def _batch(self):
        generator = CatalogGenerator(
            CatalogConfig(files_per_day=10), [NodeId(0)], seed=0
        )
        return generator.generate_day(0, noon_of_day(0)), generator.registry

    def test_fakes_mirror_names_but_not_uris(self):
        batch, __ = self._batch()
        fakes = FakeFileFactory(seed=0).make_fakes(batch, 5)
        real_names = {record.name for record in batch.metadata}
        real_uris = {record.uri for record in batch.metadata}
        assert len(fakes.metadata) == 5
        for fake in fakes.metadata:
            assert fake.name in real_names
            assert fake.uri not in real_uris
            assert fake.uri.startswith("dtn://pirate/")

    def test_fakes_fail_signature_verification(self):
        batch, registry = self._batch()
        for fake in FakeFileFactory(seed=0).make_fakes(batch, 5).metadata:
            assert not verify_metadata(fake, registry)

    def test_fake_checksums_self_consistent(self):
        batch, __ = self._batch()
        fake = FakeFileFactory(seed=0).make_fakes(batch, 1).metadata[0]
        payload = piece_payload(fake.uri, 0)
        from repro.catalog.files import piece_checksum

        assert piece_checksum(payload) == fake.checksums[0]

    def test_count_capped_by_batch(self):
        batch, __ = self._batch()
        fakes = FakeFileFactory(seed=0).make_fakes(batch, 99)
        assert len(fakes.metadata) == 10

    def test_claimed_popularity_inflated(self):
        batch, __ = self._batch()
        for fake in FakeFileFactory(seed=0, claimed_popularity=0.9).make_fakes(
            batch, 3
        ).metadata:
            assert fake.popularity == 0.9

    def test_validation(self):
        with pytest.raises(ValueError):
            FakeFileFactory(claimed_popularity=2.0)
        batch, __ = self._batch()
        with pytest.raises(ValueError):
            FakeFileFactory().make_fakes(batch, -1)


class TestPollutionSimulation:
    @pytest.fixture(scope="class")
    def trace(self):
        return generate_dieselnet_trace(
            DieselNetConfig(num_buses=14, num_days=5), seed=3
        )

    def test_verification_blocks_fakes(self, trace):
        config = SimulationConfig(
            seed=3, files_per_day=20, fake_files_per_day=8, malicious_fraction=0.2
        )
        result = Simulation(trace, config).run()
        assert result.extra["metadata_rejected_auth"] > 0

    def test_pollution_hurts_without_verification(self, trace):
        base = SimulationConfig(
            seed=3, files_per_day=20, fake_files_per_day=10, malicious_fraction=0.2
        )
        defended = Simulation(trace, base).run()
        undefended = Simulation(
            trace, replace(base, verify_signatures=False)
        ).run()
        assert undefended.file_delivery_ratio <= defended.file_delivery_ratio
        assert undefended.extra["metadata_rejected_auth"] == 0

    def test_no_fakes_without_malicious_nodes(self, trace):
        config = SimulationConfig(
            seed=3, files_per_day=20, fake_files_per_day=10, malicious_fraction=0.0
        )
        result = Simulation(trace, config).run()
        assert result.extra["metadata_rejected_auth"] == 0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SimulationConfig(malicious_fraction=1.5)
        with pytest.raises(ValueError):
            SimulationConfig(fake_files_per_day=-1)


class TestPieceBuffer:
    def test_capacity_validated(self, registry):
        from repro.core.node import NodeState

        with pytest.raises(ValueError):
            NodeState(NodeId(0), registry, piece_capacity=0)

    def test_unwanted_pieces_evicted_first(self, registry):
        node = make_node(registry)
        node.piece_capacity = 2
        low = make_metadata(registry, uri="dtn://fox/low", popularity=0.1)
        high = make_metadata(registry, uri="dtn://fox/high", popularity=0.9)
        third = make_metadata(registry, uri="dtn://fox/third", popularity=0.5)
        for record in (low, high, third):
            node.accept_metadata(record, 0.0)
        for record in (low, high):
            node.accept_piece(
                record.uri, 0, piece_payload(record.uri, 0), record.checksums[0], 0.0
            )
        node.accept_piece(
            third.uri, 0, piece_payload(third.uri, 0), third.checksums[0], 0.0
        )
        # The least popular unwanted file was evicted.
        assert node.pieces.pieces_of("dtn://fox/low") == frozenset()
        assert node.pieces.pieces_of("dtn://fox/high") == {0}
        assert node.pieces.pieces_of("dtn://fox/third") == {0}

    def test_unwanted_piece_refused_when_buffer_full_of_wanted(self, registry):
        node = make_node(registry)
        node.piece_capacity = 1
        wanted = make_metadata(registry, uri="dtn://fox/want",
                               name="news island s01e01")
        junk = make_metadata(registry, uri="dtn://fox/junk",
                             name="drama desert s01e02")
        node.accept_metadata(wanted, 0.0)
        node.accept_metadata(junk, 0.0)
        node.add_own_query(make_query(0, wanted.uri, ["island"]))
        # Buffer full with a wanted file's only piece...
        assert node.accept_piece(
            wanted.uri, 0, piece_payload(wanted.uri, 0), wanted.checksums[0], 0.0
        )
        # ...an unwanted piece must be refused, not displace it.
        wanted_before = node.pieces.pieces_of(wanted.uri)
        assert not node.accept_piece(
            junk.uri, 0, piece_payload(junk.uri, 0), junk.checksums[0], 0.0
        )
        assert node.pieces.pieces_of(wanted.uri) == wanted_before

    def test_simulation_with_piece_capacity_degrades(self):
        trace = generate_dieselnet_trace(
            DieselNetConfig(num_buses=14, num_days=5), seed=3
        )
        unbounded = Simulation(
            trace, SimulationConfig(seed=3, files_per_day=30)
        ).run()
        tight = Simulation(
            trace, SimulationConfig(seed=3, files_per_day=30, piece_capacity=5)
        ).run()
        assert tight.file_delivery_ratio <= unbounded.file_delivery_ratio


class TestDurationBudgets:
    def test_duration_budget_config_flows_through(self):
        config = SimulationConfig(use_duration_budgets=True,
                                  bandwidth_bytes_per_s=50_000.0)
        protocol = config.protocol_config()
        assert protocol.duration_budgets is True
        assert protocol.bandwidth_bytes_per_s == 50_000.0

    def test_short_contacts_carry_fewer_pieces(self):
        # With duration budgets, a long classroom contact moves many
        # pieces while a short bus contact moves few.
        from repro.core.mbt import MobileBitTorrent, ProtocolConfig
        from repro.traces.base import Contact

        config = ProtocolConfig(duration_budgets=True,
                                bandwidth_bytes_per_s=100_000.0)
        engine = MobileBitTorrent({}, None, None, None, config)  # type: ignore[arg-type]
        short = Contact(0.0, 30.0, frozenset({NodeId(0), NodeId(1)}))
        long = Contact(0.0, 3600.0, frozenset({NodeId(0), NodeId(1)}))
        short_budget = engine._contact_budget(short)
        long_budget = engine._contact_budget(long)
        assert long_budget.pieces > short_budget.pieces
        assert long_budget.metadata > short_budget.metadata
        # 30 s at 100 kB/s leaves 2.4 MB·0.8 ≈ 9 pieces; the discovery
        # share still fits hundreds of 2 kB records (§V's asymmetry).
        assert short_budget.metadata > short_budget.pieces

    def test_runs_end_to_end(self):
        trace = generate_dieselnet_trace(
            DieselNetConfig(num_buses=12, num_days=4), seed=1
        )
        result = Simulation(
            trace,
            SimulationConfig(seed=1, files_per_day=20, use_duration_budgets=True),
        ).run()
        assert 0.0 <= result.file_delivery_ratio <= 1.0
