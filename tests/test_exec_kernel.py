"""Tests for the shared execution kernel (:mod:`repro.exec`).

Covers the picklable spec types, deterministic seed derivation,
parallel-vs-serial equivalence of :func:`run_many`, independence from
the module-level RNG, the per-process trace cache, and the
instrumentation counters aggregated into ``SimulationResult``.
"""

from __future__ import annotations

import pickle
import random

import pytest

from repro.catalog.files import IntegrityError, piece_payload
from repro.exec import (
    RunSpec,
    TraceSpec,
    as_trace_spec,
    derive_seed,
    execute,
    resolve_callable,
    run_many,
    trace_cache_info,
)
from repro.experiments.sweep import cached_trace_factory, run_sweep, sweep_specs
from repro.sim.metrics import COUNTER_KEYS, PERF_COUNTER_PREFIX, format_counters
from repro.sim.runner import Simulation, SimulationConfig
from repro.traces.base import ContactTrace
from repro.traces.dieselnet import DieselNetConfig, generate_dieselnet_trace

from conftest import make_metadata, make_node, pair_contact
from dataclasses import replace


def tiny_dieselnet(seed: int = 0) -> ContactTrace:
    """A few-bus, few-day DieselNet trace — big enough to move data."""
    return generate_dieselnet_trace(DieselNetConfig(num_buses=8, num_days=3), seed)


def micro_trace(seed: int) -> ContactTrace:
    contacts = []
    for day in range(3):
        base = day * 86400.0
        contacts.append(pair_contact(base + 50_000.0, base + 50_060.0, 0, 1))
        contacts.append(pair_contact(base + 60_000.0, base + 60_060.0, 1, 2))
    return ContactTrace(contacts, name=f"micro{seed}")


def _tiny_config(seed: int = 0) -> SimulationConfig:
    return SimulationConfig(files_per_day=5, num_days=3, seed=seed)


class TestResolveCallable:
    def test_module_level_function_resolves(self):
        path = resolve_callable(generate_dieselnet_trace)
        assert path == "repro.traces.dieselnet:generate_dieselnet_trace"

    def test_lambda_does_not_resolve(self):
        assert resolve_callable(lambda seed: None) is None

    def test_closure_does_not_resolve(self):
        def local_builder(seed):
            return None

        assert resolve_callable(local_builder) is None


class TestTraceSpec:
    def test_exactly_one_form_required(self):
        with pytest.raises(ValueError):
            TraceSpec()
        with pytest.raises(ValueError):
            TraceSpec(builder="x:y", trace=micro_trace(0))

    def test_of_rejects_closures(self):
        with pytest.raises(ValueError):
            TraceSpec.of(lambda seed: micro_trace(seed), 0)

    def test_builder_spec_builds(self):
        spec = TraceSpec.of(generate_dieselnet_trace, DieselNetConfig(num_buses=6), 3)
        trace = spec.build()
        assert trace.num_nodes == 6
        # Deterministic: a second build is the same trace.
        again = spec.build()
        assert len(again) == len(trace)

    def test_literal_spec_returns_trace(self):
        trace = micro_trace(0)
        spec = TraceSpec.literal(trace)
        assert spec.build() is trace
        assert spec.cache_key is None

    def test_as_trace_spec_coerces(self):
        trace = micro_trace(1)
        assert as_trace_spec(trace).trace is trace
        spec = TraceSpec.literal(trace)
        assert as_trace_spec(spec) is spec
        with pytest.raises(TypeError):
            as_trace_spec(42)

    def test_spec_is_picklable(self):
        spec = TraceSpec.of(generate_dieselnet_trace, DieselNetConfig(num_buses=6), 1)
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert clone.build().num_nodes == 6


class TestRunSpec:
    def test_seed_override(self):
        spec = RunSpec(
            trace=TraceSpec.literal(micro_trace(0)),
            config=_tiny_config(seed=0),
            seed=7,
        )
        assert spec.resolved_config().seed == 7
        assert spec.config.seed == 0  # original untouched

    def test_tag_round_trip(self):
        tag = RunSpec.make_tag(x=0.3, protocol="mbt", seed=1)
        spec = RunSpec(
            trace=TraceSpec.literal(micro_trace(0)), config=_tiny_config(), tag=tag
        )
        assert spec.labels() == {"x": 0.3, "protocol": "mbt", "seed": 1}
        result = execute(spec)
        assert result.spec.labels() == spec.labels()

    def test_spec_is_picklable(self):
        spec = RunSpec(trace=TraceSpec.literal(micro_trace(0)), config=_tiny_config())
        clone = pickle.loads(pickle.dumps(spec))
        assert clone.config == spec.config


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "sweep", 0.3) == derive_seed(1, "sweep", 0.3)

    def test_distinct_components_distinct_seeds(self):
        seeds = {derive_seed(i) for i in range(50)}
        assert len(seeds) == 50

    def test_fits_in_63_bits(self):
        assert 0 <= derive_seed("anything") < 2**63


class TestExecute:
    def test_pure_and_deterministic(self):
        spec = RunSpec(trace=TraceSpec.literal(tiny_dieselnet()), config=_tiny_config())
        a = execute(spec)
        b = execute(spec)
        assert a.result.to_dict() == b.result.to_dict()
        assert a.wall_time > 0

    def test_independent_of_global_rng(self):
        """Satellite: no code path consults the module-level RNG."""
        spec = RunSpec(trace=TraceSpec.literal(tiny_dieselnet()), config=_tiny_config())
        random.seed(12345)
        a = execute(spec)
        random.seed(99999)
        for _ in range(10):
            random.random()
        b = execute(spec)
        assert a.result.to_dict() == b.result.to_dict()

    def test_trace_cache_hit_on_repeat(self):
        spec = TraceSpec.of(generate_dieselnet_trace, DieselNetConfig(num_buses=6), 11)
        run = RunSpec(trace=spec, config=_tiny_config())
        before = trace_cache_info()
        execute(run)
        execute(run)
        after = trace_cache_info()
        assert after["hits"] >= before["hits"] + 1


class TestRunMany:
    def _specs(self):
        return sweep_specs(
            x_values=(0.25, 0.75),
            trace_factory=lambda x, seed: TraceSpec.of(
                generate_dieselnet_trace, DieselNetConfig(num_buses=8, num_days=3), seed
            ),
            config_factory=lambda cfg, x, seed: replace(
                cfg, internet_access_fraction=x, seed=seed
            ),
            base_config=SimulationConfig(files_per_day=5, num_days=3),
            seeds=(0, 1),
        )

    def test_grid_shape_and_order(self):
        specs = self._specs()
        assert len(specs) == 2 * 3 * 2  # x * protocol * seed
        assert specs[0].labels()["x"] == 0.25
        assert specs[0].labels()["seed"] == 0
        assert specs[1].labels()["seed"] == 1
        assert specs[-1].labels()["x"] == 0.75

    def test_parallel_equals_serial(self):
        """The ISSUE's acceptance bar: jobs=4 bitwise-identical to jobs=1."""
        specs = self._specs()
        serial = run_many(specs, jobs=1)
        parallel = run_many(specs, jobs=4)
        assert len(parallel) == len(serial)
        for ser, par in zip(serial, parallel):
            assert par.spec == ser.spec
            assert par.result.to_dict() == ser.result.to_dict()

    def test_rejects_bad_jobs(self):
        with pytest.raises(ValueError):
            run_many([], jobs=0)

    def test_sweep_parallel_equals_serial(self):
        kwargs = dict(
            name="parallel-check",
            x_label="access",
            x_values=(0.25, 0.75),
            trace_factory=cached_trace_factory(micro_trace),
            config_factory=lambda cfg, x, seed: replace(
                cfg, internet_access_fraction=x, seed=seed
            ),
            base_config=SimulationConfig(files_per_day=5, num_days=3),
            seeds=(0,),
        )
        assert run_sweep(jobs=1, **kwargs) == run_sweep(jobs=2, **kwargs)


class TestCachedTraceFactory:
    def test_module_level_builder_becomes_spec(self):
        factory = cached_trace_factory(tiny_dieselnet)
        spec = factory(0.5, 3)
        assert isinstance(spec, TraceSpec)
        assert spec.builder is not None
        assert spec.args == (3,)

    def test_closure_builder_built_once_per_seed(self):
        calls = []

        def build(seed: int) -> ContactTrace:
            calls.append(seed)
            return micro_trace(seed)

        factory = cached_trace_factory(build)
        a = factory(0.1, 0)
        b = factory(0.9, 0)
        factory(0.9, 1)
        assert calls == [0, 1]
        assert a.trace is b.trace  # literal spec shared across x values


class TestCounters:
    def _result(self, **config_overrides):
        config = replace(_tiny_config(), **config_overrides)
        return Simulation(tiny_dieselnet(), config).run()

    def test_counters_present_and_integral(self):
        counters = self._result().counters
        for key in (
            "events",
            "events_contact",
            "contacts_processed",
            "hello_exchanges",
            "metadata_transmissions",
            "internet_syncs",
        ):
            assert key in counters, key
            assert isinstance(counters[key], int)
        named = {k for k in counters if not k.startswith(PERF_COUNTER_PREFIX)}
        assert named <= set(COUNTER_KEYS)
        # perf.* keys are the open-ended performance namespace.
        assert any(k.startswith(PERF_COUNTER_PREFIX) for k in counters)

    def test_counters_internally_consistent(self):
        counters = self._result().counters
        assert counters["events"] >= counters["events_contact"]
        # Same-instant contacts are dispatched as one batch event, so
        # the contact count bounds the batch count from above and each
        # scheduled contact event is exactly one batch.
        assert counters["contacts_processed"] >= counters["events_contact"]
        assert counters["contact_batches"] == counters["events_contact"]
        assert counters["hello_exchanges"] >= counters["contacts_processed"]
        assert counters["metadata_transmissions"] > 0
        assert counters["internet_syncs"] > 0

    def test_counters_deterministic(self):
        assert self._result().counters == self._result().counters

    def test_format_counters_renders_every_key(self):
        counters = self._result().counters
        text = format_counters(counters)
        for key in counters:
            assert key in text

    def test_metadata_eviction_counter(self, registry):
        node = make_node(registry, metadata_capacity=2)
        for i in range(5):
            record = make_metadata(registry, uri=f"dtn://fox/f{i:06d}")
            node.accept_metadata(record, now=float(i))
        assert node.stats.metadata_evictions >= 1
        assert node.stats.as_dict()["metadata_evictions"] >= 1

    def test_checksum_rejection_counter(self, registry):
        node = make_node(registry)
        record = make_metadata(registry)
        node.accept_metadata(record, 0.0)
        with pytest.raises(IntegrityError):
            node.accept_piece(record.uri, 0, b"corrupt!", record.checksums[0])
        assert node.stats.checksum_rejections == 1
        # A good piece still goes through afterwards.
        payload = piece_payload(record.uri, 0)
        assert node.accept_piece(record.uri, 0, payload, record.checksums[0]) is True
