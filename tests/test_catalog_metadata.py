"""Unit tests for metadata records and publisher authentication."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.catalog.files import PIECE_SIZE, FileDescriptor
from repro.catalog.metadata import (
    Metadata,
    PublisherRegistry,
    metadata_for_file,
    sign_metadata,
    verify_metadata,
)
from repro.types import DAY, Uri

from conftest import make_metadata


class TestMetadata:
    def test_num_pieces_matches_checksums(self, registry):
        record = make_metadata(registry, num_pieces=3)
        assert record.num_pieces == 3

    def test_token_set_lowercases_name(self, registry):
        record = make_metadata(registry, name="News Island S01E01")
        assert record.token_set == {"news", "island", "s01e01"}

    def test_expiry(self, registry):
        record = make_metadata(registry, created_at=10.0, ttl=100.0)
        assert record.expires_at == 110.0
        assert record.is_live(109.0)
        assert not record.is_live(110.0)

    def test_with_popularity_keeps_signature(self, registry):
        record = make_metadata(registry, popularity=0.2)
        bumped = record.with_popularity(0.9)
        assert bumped.popularity == 0.9
        assert bumped.signature == record.signature
        # Popularity is excluded from the signed canonical form.
        assert verify_metadata(bumped, registry)

    def test_canonical_bytes_cover_identity_fields(self, registry):
        record = make_metadata(registry)
        assert record.canonical_bytes() != replace(record, name="x").canonical_bytes()
        assert (
            record.canonical_bytes()
            != replace(record, publisher="abc").canonical_bytes()
        )


class TestPublisherRegistry:
    def test_register_idempotent(self):
        registry = PublisherRegistry(0)
        registry.register("fox")
        secret = registry.secret_for("fox")
        registry.register("fox")
        assert registry.secret_for("fox") == secret

    def test_unknown_publisher_raises(self):
        with pytest.raises(KeyError):
            PublisherRegistry(0).secret_for("nobody")

    def test_secrets_differ_per_publisher(self):
        registry = PublisherRegistry(0)
        registry.register("fox")
        registry.register("abc")
        assert registry.secret_for("fox") != registry.secret_for("abc")

    def test_secrets_differ_per_master_seed(self):
        a = PublisherRegistry(1)
        b = PublisherRegistry(2)
        a.register("fox")
        b.register("fox")
        assert a.secret_for("fox") != b.secret_for("fox")

    def test_publishers_listing(self):
        registry = PublisherRegistry(0)
        registry.register("fox")
        registry.register("abc")
        assert registry.publishers == ("abc", "fox")


class TestSigning:
    def test_signed_record_verifies(self, registry):
        record = make_metadata(registry)
        assert verify_metadata(record, registry)

    def test_unsigned_record_fails(self, registry):
        record = make_metadata(registry, signed=False)
        assert not verify_metadata(record, registry)

    def test_tampered_name_fails(self, registry):
        record = make_metadata(registry)
        forged = replace(record, name="fake blockbuster s01e01")
        assert not verify_metadata(forged, registry)

    def test_tampered_checksums_fail(self, registry):
        record = make_metadata(registry)
        forged = replace(record, checksums=("0" * 40,))
        assert not verify_metadata(forged, registry)

    def test_fake_publisher_rejected(self, registry):
        # An attacker claims to be a publisher the registry never saw.
        record = make_metadata(registry, signed=False)
        forged = replace(record, publisher="evil-corp", signature="ab" * 32)
        assert not verify_metadata(forged, registry)

    def test_signature_from_other_publisher_fails(self, registry):
        record = make_metadata(registry, publisher="fox")
        # Re-sign with abc's key while still claiming fox.
        abc_signed = sign_metadata(replace(record, publisher="abc"), registry)
        forged = replace(abc_signed, publisher="fox")
        assert not verify_metadata(forged, registry)


class TestMetadataForFile:
    def _descriptor(self) -> FileDescriptor:
        return FileDescriptor(
            uri=Uri("dtn://fox/f000009"),
            title_tokens=("drama", "harbor", "finale", "s01e09"),
            publisher="fox",
            size_bytes=2 * PIECE_SIZE,
            popularity=0.3,
            created_at=0.0,
            ttl=DAY,
        )

    def test_builds_signed_record(self, registry):
        record = metadata_for_file(self._descriptor(), "desc", registry)
        assert verify_metadata(record, registry)
        assert record.num_pieces == 2
        assert record.name == "drama harbor finale s01e09"
        assert record.popularity == 0.3

    def test_unsigned_when_no_registry(self):
        record = metadata_for_file(self._descriptor(), "desc", registry=None)
        assert record.signature == ""

    def test_registers_unknown_publisher(self):
        registry = PublisherRegistry(0)
        metadata_for_file(self._descriptor(), "desc", registry)
        assert registry.is_trusted("fox")
