"""Smoke tests: the shipped examples must run to completion.

Only the fast examples run here (the figure sweeps and the validation
checklist have their own benchmarks); each is executed in-process with
stdout captured.
"""

from __future__ import annotations

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, argv: list[str] | None = None) -> None:
    path = EXAMPLES / name
    assert path.exists(), path
    old_argv = sys.argv
    sys.argv = [str(path), *(argv or [])]
    try:
        runpy.run_path(str(path), run_name="__main__")
    except SystemExit as exc:
        assert exc.code in (0, None)
    finally:
        sys.argv = old_argv


class TestExamples:
    def test_quickstart(self, capsys):
        run_example("quickstart.py")
        out = capsys.readouterr().out
        assert "mbt-qm" in out

    def test_wire_protocol_demo(self, capsys):
        run_example("wire_protocol_demo.py")
        out = capsys.readouterr().out
        assert "delivered=True" in out
        assert "PIECE" in out

    def test_figure_runner_single_panel(self, capsys):
        run_example("figure_runner.py", ["fig3f", "--format", "csv"])
        out = capsys.readouterr().out
        assert "attendance" in out
        assert "mbt_file" in out

    def test_figure_runner_plot_format(self, capsys):
        run_example("figure_runner.py", ["fig3f", "--format", "plot"])
        out = capsys.readouterr().out
        assert "file delivery ratio" in out
        assert "|" in out

    def test_routing_baselines(self, capsys):
        run_example("routing_baselines.py")
        out = capsys.readouterr().out
        for router in ("direct", "epidemic", "spray-and-wait", "prophet",
                       "maxprop"):
            assert router in out
