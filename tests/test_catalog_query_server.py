"""Unit tests for queries, keyword matching and the Internet servers."""

from __future__ import annotations

import pytest

from repro.catalog.files import PIECE_SIZE, FileDescriptor, piece_checksum, piece_payload
from repro.catalog.query import Query, best_match, live_queries, matches
from repro.catalog.server import FileServer, MetadataServer
from repro.types import DAY, NodeId, Uri

from conftest import make_metadata, make_query


class TestQuery:
    def test_match_is_conjunctive_subset(self, registry):
        record = make_metadata(registry, name="news island finale s01e01")
        assert make_query(0, record.uri, ["news", "island"]).matches(record)
        assert make_query(0, record.uri, ["s01e01"]).matches(record)
        assert not make_query(0, record.uri, ["news", "desert"]).matches(record)

    def test_module_level_matches(self, registry):
        record = make_metadata(registry)
        assert matches(frozenset({"news"}), record)
        assert not matches(frozenset({"zzz"}), record)

    def test_lifetime(self):
        query = make_query(0, "dtn://fox/x", ["a"], created_at=10.0, expires_at=20.0)
        assert not query.is_live(9.0)
        assert query.is_live(10.0)
        assert not query.is_live(20.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            make_query(0, "dtn://fox/x", [])
        with pytest.raises(ValueError):
            make_query(0, "dtn://fox/x", ["a"], created_at=5.0, expires_at=5.0)

    def test_live_queries_filter(self):
        queries = [
            make_query(0, "dtn://fox/a", ["a"], 0.0, 10.0),
            make_query(0, "dtn://fox/b", ["b"], 0.0, 100.0),
        ]
        assert [q.target_uri for q in live_queries(queries, 50.0)] == ["dtn://fox/b"]

    def test_best_match_returns_first_hit(self, registry):
        record = make_metadata(registry)
        miss = make_query(0, record.uri, ["nothing"])
        hit = make_query(0, record.uri, ["news"])
        assert best_match([miss, hit], record) is hit
        assert best_match([miss], record) is None


class TestMetadataServer:
    def test_publish_and_get(self, registry):
        server = MetadataServer()
        record = make_metadata(registry)
        server.publish(record)
        assert server.get(record.uri) == record
        assert record.uri in server
        assert len(server) == 1

    def test_search_conjunctive(self, registry):
        server = MetadataServer()
        a = make_metadata(registry, uri="dtn://fox/a", name="news island s01e01")
        b = make_metadata(registry, uri="dtn://fox/b", name="news desert s01e02")
        server.publish(a)
        server.publish(b)
        hits = server.search(frozenset({"news"}), now=0.0)
        assert {h.uri for h in hits} == {"dtn://fox/a", "dtn://fox/b"}
        hits = server.search(frozenset({"news", "island"}), now=0.0)
        assert [h.uri for h in hits] == ["dtn://fox/a"]

    def test_search_ranked_by_popularity(self, registry):
        server = MetadataServer()
        low = make_metadata(registry, uri="dtn://fox/low", popularity=0.1)
        high = make_metadata(registry, uri="dtn://fox/high", popularity=0.9)
        server.publish(low)
        server.publish(high)
        hits = server.search(frozenset({"news"}), now=0.0)
        assert [h.uri for h in hits] == ["dtn://fox/high", "dtn://fox/low"]

    def test_search_limit(self, registry):
        server = MetadataServer()
        for i in range(5):
            server.publish(make_metadata(registry, uri=f"dtn://fox/{i}"))
        assert len(server.search(frozenset({"news"}), now=0.0, limit=2)) == 2

    def test_search_empty_tokens(self, registry):
        server = MetadataServer()
        server.publish(make_metadata(registry))
        assert server.search(frozenset(), now=0.0) == []

    def test_search_skips_expired(self, registry):
        server = MetadataServer()
        record = make_metadata(registry, ttl=100.0)
        server.publish(record)
        assert server.search(frozenset({"news"}), now=50.0)
        assert server.search(frozenset({"news"}), now=150.0) == []

    def test_expire_removes_from_index(self, registry):
        server = MetadataServer()
        record = make_metadata(registry, ttl=100.0)
        server.publish(record)
        dead = server.expire(now=200.0)
        assert dead == [record.uri]
        assert record.uri not in server
        assert server.search(frozenset({"news"}), now=200.0) == []

    def test_top_popular_excludes(self, registry):
        server = MetadataServer()
        a = make_metadata(registry, uri="dtn://fox/a", popularity=0.9)
        b = make_metadata(registry, uri="dtn://fox/b", popularity=0.5)
        server.publish(a)
        server.publish(b)
        top = server.top_popular(now=0.0, limit=5, exclude=frozenset({a.uri}))
        assert [t.uri for t in top] == ["dtn://fox/b"]

    def test_all_records_ranked(self, registry):
        server = MetadataServer()
        a = make_metadata(registry, uri="dtn://fox/a", popularity=0.2)
        b = make_metadata(registry, uri="dtn://fox/b", popularity=0.7)
        server.publish(a)
        server.publish(b)
        assert [r.uri for r in server.all_records()] == ["dtn://fox/b", "dtn://fox/a"]

    def test_expire_deletes_emptied_token_buckets(self, registry):
        server = MetadataServer()
        shared = make_metadata(registry, uri="dtn://fox/a", name="news shared")
        only = make_metadata(
            registry, uri="dtn://fox/b", name="news unique", ttl=100.0
        )
        server.publish(shared)
        server.publish(only)
        assert server.expire(now=200.0) == [only.uri]
        # "unique"'s posting bucket emptied and must be gone entirely;
        # "news" still carries the surviving record.
        assert "unique" not in server._index
        assert server._index["news"] == {shared.uri}

    def test_search_limit_zero_returns_nothing(self, registry):
        server = MetadataServer()
        server.publish(make_metadata(registry))
        assert server.search(frozenset({"news"}), now=0.0, limit=0) == []

    def test_top_popular_exclude_interacts_with_expiry(self, registry):
        server = MetadataServer()
        expired = make_metadata(
            registry, uri="dtn://fox/a", popularity=0.9, ttl=100.0
        )
        excluded = make_metadata(registry, uri="dtn://fox/b", popularity=0.8)
        survivor = make_metadata(registry, uri="dtn://fox/c", popularity=0.1)
        server.publish(expired)
        server.publish(excluded)
        server.publish(survivor)
        # Before expiry runs, liveness filtering alone must hide the
        # dead record; the exclude set hides the live popular one.
        top = server.top_popular(now=200.0, limit=5, exclude=frozenset({excluded.uri}))
        assert [t.uri for t in top] == [survivor.uri]
        assert server.expire(now=200.0) == [expired.uri]
        top = server.top_popular(now=200.0, limit=5, exclude=frozenset({excluded.uri}))
        assert [t.uri for t in top] == [survivor.uri]

    def test_republish_drops_stale_postings(self, registry):
        server = MetadataServer()
        first = make_metadata(registry, uri="dtn://fox/a", name="news oldtoken")
        second = make_metadata(registry, uri="dtn://fox/a", name="news newtoken")
        server.publish(first)
        server.publish(second)
        assert server.search(frozenset({"oldtoken"}), now=0.0) == []
        assert [r.uri for r in server.search(frozenset({"newtoken"}), now=0.0)] == [
            "dtn://fox/a"
        ]
        assert len(server) == 1

    def test_refresh_popularities_replaces_only_changed(self, registry):
        from repro.catalog.popularity import PopularityTracker

        tracker = PopularityTracker(population=10)
        server = MetadataServer(tracker)
        moved = make_metadata(registry, uri="dtn://fox/a", popularity=0.5)
        still = make_metadata(registry, uri="dtn://fox/b", popularity=0.0)
        server.publish(moved)
        server.publish(still)
        now = DAY
        tracker.record_request(moved.uri, NodeId(1), now - 1.0)
        before = server.get(still.uri)
        server.refresh_popularities(now)
        assert server.get(still.uri) is before  # unchanged record not reallocated
        assert server.get(moved.uri).popularity == pytest.approx(0.1)


class TestFileServer:
    def _descriptor(self, num_pieces: int = 2) -> FileDescriptor:
        return FileDescriptor(
            uri=Uri("dtn://fox/f1"),
            title_tokens=("a", "b"),
            publisher="fox",
            size_bytes=num_pieces * PIECE_SIZE,
            popularity=0.5,
            created_at=0.0,
            ttl=DAY,
        )

    def test_fetch_piece_matches_payload(self):
        server = FileServer()
        descriptor = self._descriptor()
        server.publish(descriptor)
        payload = server.fetch_piece(descriptor.uri, 1)
        assert payload == piece_payload(descriptor.uri, 1)

    def test_fetch_all_yields_every_piece(self):
        server = FileServer()
        descriptor = self._descriptor(num_pieces=3)
        server.publish(descriptor)
        pieces = dict(server.fetch_all(descriptor.uri))
        assert set(pieces) == {0, 1, 2}

    def test_unknown_uri_raises(self):
        with pytest.raises(KeyError):
            FileServer().fetch_piece(Uri("dtn://fox/none"), 0)

    def test_out_of_range_piece_raises(self):
        server = FileServer()
        descriptor = self._descriptor()
        server.publish(descriptor)
        with pytest.raises(IndexError):
            server.fetch_piece(descriptor.uri, 99)

    def test_expire(self):
        server = FileServer()
        descriptor = self._descriptor()
        server.publish(descriptor)
        assert server.expire(now=DAY + 1) == [descriptor.uri]
        assert descriptor.uri not in server
