"""Integration tests for the end-to-end simulation runner."""

from __future__ import annotations

import pytest

from repro.core.mbt import ProtocolVariant
from repro.sim.runner import Simulation, SimulationConfig, run_simulation
from repro.traces.base import ContactTrace
from repro.traces.dieselnet import DieselNetConfig, generate_dieselnet_trace
from repro.traces.nus import NUSConfig, generate_nus_trace
from repro.types import DAY

from conftest import pair_contact


@pytest.fixture(scope="module")
def diesel_trace() -> ContactTrace:
    return generate_dieselnet_trace(DieselNetConfig(num_buses=14, num_days=5), seed=3)


@pytest.fixture(scope="module")
def nus_small() -> ContactTrace:
    return generate_nus_trace(
        NUSConfig(num_students=30, num_courses=6, num_days=5), seed=3
    )


def run(trace, **overrides):
    config = SimulationConfig(**{"seed": 1, "files_per_day": 20, **overrides})
    return run_simulation(trace, config)


class TestConfigValidation:
    def test_bad_fraction(self):
        with pytest.raises(ValueError):
            SimulationConfig(internet_access_fraction=1.5)

    def test_bad_selfish_fraction(self):
        with pytest.raises(ValueError):
            SimulationConfig(selfish_fraction=-0.1)

    def test_bad_files_per_day(self):
        with pytest.raises(ValueError):
            SimulationConfig(files_per_day=0)

    def test_bad_ttl(self):
        with pytest.raises(ValueError):
            SimulationConfig(ttl_days=0.0)

    def test_negative_budgets(self):
        with pytest.raises(ValueError):
            SimulationConfig(metadata_per_contact=-1)

    def test_with_variant(self):
        config = SimulationConfig()
        assert config.with_variant(ProtocolVariant.MBT_QM).variant is (
            ProtocolVariant.MBT_QM
        )
        assert config.variant is ProtocolVariant.MBT  # original untouched

    def test_trace_needs_two_nodes(self):
        with pytest.raises(ValueError):
            Simulation(ContactTrace([]), SimulationConfig())


class TestDeterminism:
    def test_same_seed_same_result(self, diesel_trace):
        a = run(diesel_trace, seed=7)
        b = run(diesel_trace, seed=7)
        assert a.metadata_delivery_ratio == b.metadata_delivery_ratio
        assert a.file_delivery_ratio == b.file_delivery_ratio
        assert a.extra["piece_transmissions"] == b.extra["piece_transmissions"]

    def test_different_seed_changes_roles(self, diesel_trace):
        sim_a = Simulation(diesel_trace, SimulationConfig(seed=1))
        sim_b = Simulation(diesel_trace, SimulationConfig(seed=2))
        assert sim_a.access_nodes != sim_b.access_nodes


class TestBasicInvariants:
    def test_ratios_in_unit_interval(self, diesel_trace):
        result = run(diesel_trace)
        for value in (
            result.metadata_delivery_ratio,
            result.file_delivery_ratio,
            result.access_metadata_delivery_ratio,
            result.access_file_delivery_ratio,
        ):
            assert 0.0 <= value <= 1.0

    def test_file_delivery_never_exceeds_metadata_delivery(self, diesel_trace):
        # A file cannot be selected without its metadata.
        for variant in ProtocolVariant:
            result = run(diesel_trace, variant=variant)
            assert result.file_delivery_ratio <= result.metadata_delivery_ratio

    def test_access_node_count_respects_fraction(self, diesel_trace):
        sim = Simulation(diesel_trace, SimulationConfig(internet_access_fraction=0.5))
        assert len(sim.access_nodes) == round(0.5 * diesel_trace.num_nodes)

    def test_queries_are_generated(self, diesel_trace):
        result = run(diesel_trace)
        assert result.queries_generated > 0

    def test_num_days_defaults_to_trace_span(self, diesel_trace):
        sim = Simulation(diesel_trace, SimulationConfig())
        assert sim.num_days() == 5

    def test_num_days_override(self, diesel_trace):
        sim = Simulation(diesel_trace, SimulationConfig(num_days=2))
        assert sim.num_days() == 2

    def test_access_nodes_deliver_internally(self, diesel_trace):
        result = run(diesel_trace, internet_access_fraction=0.5)
        # Access nodes query and download directly: near-perfect ratios.
        assert result.access_file_delivery_ratio > 0.9


class TestPaperOrdering:
    def test_variant_ordering_on_dieselnet(self, diesel_trace):
        results = {
            variant: run(diesel_trace, variant=variant, files_per_day=40)
            for variant in ProtocolVariant
        }
        mbt = results[ProtocolVariant.MBT]
        mbt_q = results[ProtocolVariant.MBT_Q]
        mbt_qm = results[ProtocolVariant.MBT_QM]
        assert mbt.metadata_delivery_ratio >= mbt_q.metadata_delivery_ratio
        assert mbt_q.metadata_delivery_ratio > mbt_qm.metadata_delivery_ratio
        assert mbt.file_delivery_ratio >= mbt_qm.file_delivery_ratio

    def test_more_access_nodes_help(self, diesel_trace):
        sparse = run(diesel_trace, internet_access_fraction=0.1)
        dense = run(diesel_trace, internet_access_fraction=0.7)
        assert dense.file_delivery_ratio > sparse.file_delivery_ratio

    def test_longer_ttl_helps(self, diesel_trace):
        short = run(diesel_trace, ttl_days=1.0)
        long = run(diesel_trace, ttl_days=4.0)
        assert long.file_delivery_ratio >= short.file_delivery_ratio

    def test_bigger_budgets_help(self, diesel_trace):
        small = run(diesel_trace, metadata_per_contact=1, files_per_contact=1)
        big = run(diesel_trace, metadata_per_contact=8, files_per_contact=8)
        assert big.file_delivery_ratio >= small.file_delivery_ratio
        assert big.metadata_delivery_ratio >= small.metadata_delivery_ratio

    def test_more_files_per_day_hurt(self, diesel_trace):
        few = run(diesel_trace, files_per_day=10)
        many = run(diesel_trace, files_per_day=80)
        assert many.file_delivery_ratio <= few.file_delivery_ratio

    def test_nus_mbt_qm_flat_in_access_fraction(self, nus_small):
        lo = run(nus_small, variant=ProtocolVariant.MBT_QM,
                 internet_access_fraction=0.1)
        hi = run(nus_small, variant=ProtocolVariant.MBT_QM,
                 internet_access_fraction=0.9)
        # No file discovery: more access nodes barely move file delivery
        # (paper Fig. 3(a)). Allow generous noise.
        assert abs(hi.file_delivery_ratio - lo.file_delivery_ratio) < 0.25


class TestSelfishAndTFT:
    def test_selfish_fraction_selects_nodes(self, diesel_trace):
        sim = Simulation(diesel_trace, SimulationConfig(selfish_fraction=0.5))
        assert len(sim.selfish_nodes) == round(0.5 * diesel_trace.num_nodes)

    def test_selfish_nodes_hurt_delivery(self, diesel_trace):
        honest = run(diesel_trace, selfish_fraction=0.0)
        selfish = run(diesel_trace, selfish_fraction=0.6)
        assert selfish.file_delivery_ratio < honest.file_delivery_ratio

    def test_tit_for_tat_runs(self, diesel_trace):
        result = run(diesel_trace, tit_for_tat=True, selfish_fraction=0.3)
        assert 0.0 <= result.file_delivery_ratio <= 1.0

    def test_pairwise_medium_worse_on_cliques(self, nus_small):
        broadcast = run(nus_small, broadcast=True)
        pairwise = run(nus_small, broadcast=False)
        assert pairwise.file_delivery_ratio <= broadcast.file_delivery_ratio


class TestResultExtras:
    def test_extra_counters_present(self, diesel_trace):
        result = run(diesel_trace)
        for key in ("metadata_transmissions", "piece_transmissions",
                    "num_days", "num_contacts", "access_nodes", "events"):
            assert key in result.extra

    def test_describe(self, diesel_trace):
        assert "metadata" in run(diesel_trace).describe()
