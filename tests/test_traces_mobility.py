"""Unit tests for the mobility-model trace generators."""

from __future__ import annotations

import math
from collections import Counter

import pytest

from repro.traces.mobility import (
    CommunityConfig,
    RandomWaypointConfig,
    community_of_nodes,
    generate_community_trace,
    generate_random_waypoint_trace,
)
from repro.types import HOUR

FAST_RWP = RandomWaypointConfig(
    num_nodes=12, area_size=500.0, radio_range=60.0, tick=30.0, duration=4 * HOUR
)
FAST_COMMUNITY = CommunityConfig(
    num_nodes=16, num_communities=3, area_size=1200.0, community_radius=150.0,
    radio_range=60.0, tick=30.0, duration=4 * HOUR,
)


class TestConfigs:
    def test_rwp_validation(self):
        with pytest.raises(ValueError):
            RandomWaypointConfig(num_nodes=1)
        with pytest.raises(ValueError):
            RandomWaypointConfig(min_speed=0.0)
        with pytest.raises(ValueError):
            RandomWaypointConfig(min_speed=5.0, max_speed=1.0)
        with pytest.raises(ValueError):
            RandomWaypointConfig(min_pause=10.0, max_pause=5.0)
        with pytest.raises(ValueError):
            RandomWaypointConfig(tick=0.0)

    def test_community_validation(self):
        with pytest.raises(ValueError):
            CommunityConfig(num_communities=0)
        with pytest.raises(ValueError):
            CommunityConfig(roaming_probability=1.5)
        with pytest.raises(ValueError):
            CommunityConfig(community_radius=0.0)


class TestRandomWaypoint:
    def test_deterministic_per_seed(self):
        a = generate_random_waypoint_trace(FAST_RWP, seed=1)
        b = generate_random_waypoint_trace(FAST_RWP, seed=1)
        assert [(c.start, c.members) for c in a] == [(c.start, c.members) for c in b]

    def test_seed_changes_trace(self):
        a = generate_random_waypoint_trace(FAST_RWP, seed=1)
        b = generate_random_waypoint_trace(FAST_RWP, seed=2)
        assert [(c.start, c.members) for c in a] != [(c.start, c.members) for c in b]

    def test_contacts_pairwise_and_within_duration(self):
        trace = generate_random_waypoint_trace(FAST_RWP, seed=1)
        assert len(trace) > 0
        for contact in trace:
            assert contact.size == 2
            assert 0.0 <= contact.start <= FAST_RWP.duration
            assert contact.duration >= FAST_RWP.tick

    def test_contact_durations_multiple_of_sampling(self):
        trace = generate_random_waypoint_trace(FAST_RWP, seed=1)
        for contact in trace:
            # Extraction merges tick-aligned samples.
            assert contact.duration >= FAST_RWP.tick - 1e-9

    def test_larger_radio_range_more_contacts(self):
        small = generate_random_waypoint_trace(FAST_RWP, seed=3)
        big_config = RandomWaypointConfig(
            num_nodes=12, area_size=500.0, radio_range=150.0, tick=30.0,
            duration=4 * HOUR,
        )
        big = generate_random_waypoint_trace(big_config, seed=3)
        assert len(big) >= len(small)

    def test_nodes_within_population(self):
        trace = generate_random_waypoint_trace(FAST_RWP, seed=1)
        assert set(trace.nodes) <= set(range(FAST_RWP.num_nodes))


class TestCommunity:
    def test_deterministic_per_seed(self):
        a = generate_community_trace(FAST_COMMUNITY, seed=5)
        b = generate_community_trace(FAST_COMMUNITY, seed=5)
        assert [(c.start, c.members) for c in a] == [(c.start, c.members) for c in b]

    def test_produces_contacts(self):
        trace = generate_community_trace(FAST_COMMUNITY, seed=5)
        assert len(trace) > 0

    def test_same_community_pairs_meet_more(self):
        # Communities induce locality: most contact mass is intra-community.
        trace = generate_community_trace(FAST_COMMUNITY, seed=5)
        homes = community_of_nodes(FAST_COMMUNITY)
        counts = Counter()
        for contact in trace:
            for u, v in contact.pairs():
                key = "same" if homes[u] == homes[v] else "cross"
                counts[key] += 1
        assert counts["same"] > counts["cross"]

    def test_home_assignment_round_robin(self):
        homes = community_of_nodes(FAST_COMMUNITY)
        assert len(homes) == FAST_COMMUNITY.num_nodes
        assert set(homes) == set(range(FAST_COMMUNITY.num_communities))

    def test_zero_roaming_still_runs(self):
        config = CommunityConfig(
            num_nodes=8, num_communities=2, area_size=800.0,
            community_radius=100.0, roaming_probability=0.0,
            radio_range=60.0, tick=30.0, duration=2 * HOUR,
        )
        trace = generate_community_trace(config, seed=1)
        homes = community_of_nodes(config)
        # With no roaming, all contacts are intra-community.
        for contact in trace:
            communities = {homes[m] for m in contact.members}
            assert len(communities) == 1
