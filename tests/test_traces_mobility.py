"""Unit tests for the mobility-model trace generators."""

from __future__ import annotations

import math
import random
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.traces.mobility import (
    CommunityConfig,
    RandomWaypointConfig,
    community_of_nodes,
    generate_community_trace,
    generate_random_waypoint_trace,
)
from repro.types import HOUR

FAST_RWP = RandomWaypointConfig(
    num_nodes=12, area_size=500.0, radio_range=60.0, tick=30.0, duration=4 * HOUR
)
FAST_COMMUNITY = CommunityConfig(
    num_nodes=16, num_communities=3, area_size=1200.0, community_radius=150.0,
    radio_range=60.0, tick=30.0, duration=4 * HOUR,
)


class TestConfigs:
    def test_rwp_validation(self):
        with pytest.raises(ValueError):
            RandomWaypointConfig(num_nodes=1)
        with pytest.raises(ValueError):
            RandomWaypointConfig(min_speed=0.0)
        with pytest.raises(ValueError):
            RandomWaypointConfig(min_speed=5.0, max_speed=1.0)
        with pytest.raises(ValueError):
            RandomWaypointConfig(min_pause=10.0, max_pause=5.0)
        with pytest.raises(ValueError):
            RandomWaypointConfig(tick=0.0)

    def test_community_validation(self):
        with pytest.raises(ValueError):
            CommunityConfig(num_communities=0)
        with pytest.raises(ValueError):
            CommunityConfig(roaming_probability=1.5)
        with pytest.raises(ValueError):
            CommunityConfig(community_radius=0.0)


class TestRandomWaypoint:
    def test_deterministic_per_seed(self):
        a = generate_random_waypoint_trace(FAST_RWP, seed=1)
        b = generate_random_waypoint_trace(FAST_RWP, seed=1)
        assert [(c.start, c.members) for c in a] == [(c.start, c.members) for c in b]

    def test_seed_changes_trace(self):
        a = generate_random_waypoint_trace(FAST_RWP, seed=1)
        b = generate_random_waypoint_trace(FAST_RWP, seed=2)
        assert [(c.start, c.members) for c in a] != [(c.start, c.members) for c in b]

    def test_contacts_pairwise_and_within_duration(self):
        trace = generate_random_waypoint_trace(FAST_RWP, seed=1)
        assert len(trace) > 0
        for contact in trace:
            assert contact.size == 2
            assert 0.0 <= contact.start <= FAST_RWP.duration
            assert contact.duration >= FAST_RWP.tick

    def test_contact_durations_multiple_of_sampling(self):
        trace = generate_random_waypoint_trace(FAST_RWP, seed=1)
        for contact in trace:
            # Extraction merges tick-aligned samples.
            assert contact.duration >= FAST_RWP.tick - 1e-9

    def test_larger_radio_range_more_contacts(self):
        small = generate_random_waypoint_trace(FAST_RWP, seed=3)
        big_config = RandomWaypointConfig(
            num_nodes=12, area_size=500.0, radio_range=150.0, tick=30.0,
            duration=4 * HOUR,
        )
        big = generate_random_waypoint_trace(big_config, seed=3)
        assert len(big) >= len(small)

    def test_nodes_within_population(self):
        trace = generate_random_waypoint_trace(FAST_RWP, seed=1)
        assert set(trace.nodes) <= set(range(FAST_RWP.num_nodes))


class TestCommunity:
    def test_deterministic_per_seed(self):
        a = generate_community_trace(FAST_COMMUNITY, seed=5)
        b = generate_community_trace(FAST_COMMUNITY, seed=5)
        assert [(c.start, c.members) for c in a] == [(c.start, c.members) for c in b]

    def test_produces_contacts(self):
        trace = generate_community_trace(FAST_COMMUNITY, seed=5)
        assert len(trace) > 0

    def test_same_community_pairs_meet_more(self):
        # Communities induce locality: most contact mass is intra-community.
        trace = generate_community_trace(FAST_COMMUNITY, seed=5)
        homes = community_of_nodes(FAST_COMMUNITY)
        counts = Counter()
        for contact in trace:
            for u, v in contact.pairs():
                key = "same" if homes[u] == homes[v] else "cross"
                counts[key] += 1
        assert counts["same"] > counts["cross"]

    def test_home_assignment_round_robin(self):
        homes = community_of_nodes(FAST_COMMUNITY)
        assert len(homes) == FAST_COMMUNITY.num_nodes
        assert set(homes) == set(range(FAST_COMMUNITY.num_communities))

    def test_zero_roaming_still_runs(self):
        config = CommunityConfig(
            num_nodes=8, num_communities=2, area_size=800.0,
            community_radius=100.0, roaming_probability=0.0,
            radio_range=60.0, tick=30.0, duration=2 * HOUR,
        )
        trace = generate_community_trace(config, seed=1)
        homes = community_of_nodes(config)
        # With no roaming, all contacts are intra-community.
        for contact in trace:
            communities = {homes[m] for m in contact.members}
            assert len(communities) == 1


class TestGridEquivalence:
    """The spatial-hash kernel must be bitwise-identical to the all-pairs scan.

    "Bitwise" is literal: same Contact ordering, same float start/end
    values, same member sets. The hypothesis suites below drive both
    kernels over randomized synthetic position streams (including the
    degenerate radio ranges 0 and larger than the whole area) and over
    real walker populations from randomized model configurations.
    """

    @staticmethod
    def _records(contacts):
        # Contact equality ignores members (compare=False), so compare
        # the full value explicitly.
        return [(c.start, c.end, tuple(sorted(c.members))) for c in contacts]

    @staticmethod
    def _run_both(positions, radio_range, tick, num_nodes):
        from repro.traces.mobility import (
            _extract_contacts,
            _extract_contacts_reference,
        )

        grid = _extract_contacts(iter(positions), radio_range, tick, num_nodes)
        reference = _extract_contacts_reference(
            iter(positions), radio_range, tick, num_nodes
        )
        return grid, reference

    @given(
        num_nodes=st.integers(min_value=2, max_value=14),
        num_ticks=st.integers(min_value=1, max_value=12),
        radio_range=st.one_of(
            st.just(0.0),
            st.floats(min_value=1e-3, max_value=5_000.0),
            st.just(1e6),  # covers every bounded coordinate below
        ),
        data=st.data(),
    )
    @settings(max_examples=80, deadline=None)
    def test_matches_reference_on_random_positions(
        self, num_nodes, num_ticks, radio_range, data
    ):
        tick = 30.0
        coord = st.floats(
            min_value=-1e5, max_value=1e5, allow_nan=False, allow_infinity=False
        )
        positions = [
            (
                t * tick,
                [
                    (data.draw(coord), data.draw(coord))
                    for __ in range(num_nodes)
                ],
            )
            for t in range(num_ticks)
        ]
        grid, reference = self._run_both(positions, radio_range, tick, num_nodes)
        assert self._records(grid) == self._records(reference)

    @given(
        num_nodes=st.integers(min_value=2, max_value=12),
        area_size=st.floats(min_value=100.0, max_value=3_000.0),
        radio_range=st.floats(min_value=1.0, max_value=10_000.0),
        ticks=st.integers(min_value=2, max_value=40),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_matches_reference_on_rwp_walkers(
        self, num_nodes, area_size, radio_range, ticks, seed
    ):
        from repro.traces.mobility import _rwp_walkers, _sample_positions

        config = RandomWaypointConfig(
            num_nodes=num_nodes,
            area_size=area_size,
            radio_range=radio_range,  # may exceed area_size: all-in-range
            tick=60.0,
            duration=ticks * 60.0,
        )
        walkers = _rwp_walkers(config, random.Random(seed ^ 0xB0B11E))
        positions = list(
            _sample_positions(walkers, config.tick, config.duration)
        )
        grid, reference = self._run_both(
            positions, config.radio_range, config.tick, config.num_nodes
        )
        assert self._records(grid) == self._records(reference)

    @pytest.mark.parametrize("seed", [0, 1, 7])
    def test_matches_reference_on_community_model(self, seed):
        from repro.traces.mobility import (
            _community_walkers,
            _sample_positions,
        )

        config = FAST_COMMUNITY
        walkers = _community_walkers(config, random.Random(seed ^ 0xC0FFEE))
        positions = list(
            _sample_positions(walkers, config.tick, config.duration)
        )
        grid, reference = self._run_both(
            positions, config.radio_range, config.tick, config.num_nodes
        )
        assert self._records(grid) == self._records(reference)

    def test_generators_use_grid_kernel_unchanged_output(self):
        # The public generators must still produce the exact traces the
        # all-pairs implementation did (determinism contract per seed).
        trace = generate_community_trace(FAST_COMMUNITY, seed=3)
        again = generate_community_trace(FAST_COMMUNITY, seed=3)
        assert self._records(trace) == self._records(again)
