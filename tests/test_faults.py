"""Tests for deterministic fault injection (:mod:`repro.faults`)."""

from __future__ import annotations

import pickle
from dataclasses import replace
from typing import Dict, Sequence

import pytest

from repro.catalog.files import PIECE_SIZE, FileDescriptor, piece_checksum
from repro.catalog.server import FileServer, MetadataServer
from repro.core.mbt import MobileBitTorrent, ProtocolConfig
from repro.core.node import NodeState
from repro.faults import (
    FAULT_COUNTER_NAMES,
    FaultInjector,
    FaultPlan,
    corrupt_payload,
)
from repro.net.medium import ContactBudget
from repro.sim.engine import SimulationError
from repro.sim.metrics import MetricsCollector
from repro.sim.runner import Simulation, SimulationConfig
from repro.traces.dieselnet import DieselNetConfig, generate_dieselnet_trace
from repro.types import DAY, NodeId

from conftest import clique_contact, make_metadata, make_node, make_query, pair_contact


def small_trace(seed: int = 0):
    return generate_dieselnet_trace(DieselNetConfig(num_buses=8, num_days=3), seed)


def small_config(**overrides) -> SimulationConfig:
    defaults = dict(files_per_day=5, num_days=3, seed=0)
    defaults.update(overrides)
    return SimulationConfig(**defaults)


# ------------------------------------------------------------------- FaultPlan


class TestFaultPlan:
    def test_default_plan_is_clean(self):
        assert FaultPlan().is_clean()

    def test_any_rate_makes_it_dirty(self):
        for field in (
            "loss_rate",
            "corruption_rate",
            "contact_drop_rate",
            "contact_truncation_rate",
            "churn_rate",
        ):
            assert not FaultPlan(**{field: 0.1}).is_clean()

    def test_seed_alone_stays_clean(self):
        # Changing only the fault seed of an all-zero plan cannot change
        # behaviour, so it must still count as clean.
        assert FaultPlan(seed=1234).is_clean()

    def test_rates_validated(self):
        with pytest.raises(ValueError):
            FaultPlan(loss_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(churn_rate=-0.1)
        with pytest.raises(ValueError):
            FaultPlan(churn_downtime_days=0.0)

    def test_picklable_and_hashable(self):
        plan = FaultPlan(loss_rate=0.2, churn_rate=0.1, seed=7)
        assert pickle.loads(pickle.dumps(plan)) == plan
        assert hash(plan) == hash(replace(plan))


class TestCorruptPayload:
    def test_always_breaks_checksum(self):
        payload = b"some piece payload"
        mangled = corrupt_payload(payload)
        assert mangled != payload
        assert len(mangled) == len(payload)
        assert piece_checksum(mangled) != piece_checksum(payload)

    def test_empty_payload_still_corrupts(self):
        assert corrupt_payload(b"") == b"\xff"


# ---------------------------------------------------------------- FaultInjector


class TestInjectorDeterminism:
    def test_same_seeds_same_draws(self):
        plan = FaultPlan(loss_rate=0.5, churn_rate=0.3)
        a = FaultInjector(plan, run_seed=5)
        b = FaultInjector(plan, run_seed=5)
        receivers = frozenset(NodeId(i) for i in range(20))
        assert a.deliverable(receivers, "metadata") == b.deliverable(receivers, "metadata")
        nodes = [NodeId(i) for i in range(10)]
        assert a.churn_schedule(nodes, 5) == b.churn_schedule(nodes, 5)

    def test_run_seed_changes_streams(self):
        plan = FaultPlan(loss_rate=0.5)
        a = FaultInjector(plan, run_seed=0)
        b = FaultInjector(plan, run_seed=1)
        receivers = frozenset(NodeId(i) for i in range(64))
        assert a.deliverable(receivers, "piece") != b.deliverable(receivers, "piece")

    def test_counters_start_at_zero(self):
        injector = FaultInjector(FaultPlan(loss_rate=0.1), run_seed=0)
        assert set(injector.counters) == set(FAULT_COUNTER_NAMES)
        assert all(v == 0 for v in injector.counters.values())


class TestTransformContact:
    def test_drop_rate_one_drops_everything(self):
        injector = FaultInjector(FaultPlan(contact_drop_rate=1.0), run_seed=0)
        transformed, scale = injector.transform_contact(pair_contact(0.0, 60.0, 0, 1))
        assert transformed is None and scale == 0.0
        assert injector.counters["contacts_dropped"] == 1

    def test_truncation_keeps_a_fraction(self):
        injector = FaultInjector(FaultPlan(contact_truncation_rate=1.0), run_seed=0)
        contact = pair_contact(100.0, 200.0, 0, 1)
        truncated, keep = injector.transform_contact(contact)
        assert truncated is not None
        assert truncated.members == contact.members
        assert truncated.start == contact.start
        assert 0.1 <= keep <= 0.9
        assert truncated.duration == pytest.approx(contact.duration * keep)
        assert injector.counters["contacts_truncated"] == 1

    def test_zero_rates_pass_through_unchanged(self):
        injector = FaultInjector(FaultPlan(loss_rate=0.5), run_seed=0)
        contact = pair_contact(0.0, 60.0, 0, 1)
        transformed, scale = injector.transform_contact(contact)
        assert transformed is contact and scale == 1.0


class TestDeliverable:
    def test_loss_rate_one_loses_everyone(self):
        injector = FaultInjector(FaultPlan(loss_rate=1.0), run_seed=0)
        receivers = frozenset(NodeId(i) for i in range(5))
        assert injector.deliverable(receivers, "metadata") == frozenset()
        assert injector.counters["metadata_losses"] == 5

    def test_zero_loss_returns_same_object(self):
        injector = FaultInjector(FaultPlan(corruption_rate=0.5), run_seed=0)
        receivers = frozenset({NodeId(0), NodeId(1)})
        assert injector.deliverable(receivers, "piece") is receivers


class TestChurnSchedule:
    def test_zero_churn_is_empty(self):
        injector = FaultInjector(FaultPlan(loss_rate=0.5), run_seed=0)
        assert injector.churn_schedule([NodeId(0)], 10) == []

    def test_full_churn_crashes_every_node_daily_at_most_once(self):
        plan = FaultPlan(churn_rate=1.0, churn_downtime_days=0.25)
        injector = FaultInjector(plan, run_seed=0)
        nodes = [NodeId(i) for i in range(4)]
        schedule = injector.churn_schedule(nodes, 3)
        assert schedule  # something always crashes at rate 1.0
        crash_times = [at for _, at, _ in schedule]
        assert crash_times == sorted(crash_times)
        per_node: Dict[NodeId, list] = {}
        for node, at, rebirth in schedule:
            assert rebirth == pytest.approx(at + 0.25 * DAY)
            per_node.setdefault(node, []).append((at, rebirth))
        for intervals in per_node.values():
            for (_, prev_rebirth), (at, _) in zip(intervals, intervals[1:]):
                assert at >= prev_rebirth  # never crash while already down


class _ScriptedRng:
    """Stand-in RNG replaying a fixed ``random()`` sequence (then 1.0)."""

    def __init__(self, values: Sequence[float]) -> None:
        self._values = list(values)

    def random(self) -> float:
        return self._values.pop(0) if self._values else 1.0


class TestChurnScheduleEdgeCases:
    """Boundary behavior of churn: t=0 crashes, overlap, long downtime."""

    def test_crash_at_exact_time_zero(self):
        # Rate draw 0.0 (< churn_rate -> crash) then time draw 0.0:
        # the very first instant of the simulation is a legal crash
        # time and must not be skipped by the down-until bookkeeping.
        injector = FaultInjector(
            FaultPlan(churn_rate=0.5, churn_downtime_days=0.25), run_seed=0
        )
        injector._rng_churn = _ScriptedRng([0.0, 0.0])
        schedule = injector.churn_schedule([NodeId(3)], 1)
        assert schedule == [(NodeId(3), 0.0, 0.25 * DAY)]

    def test_repeated_churn_same_node_non_overlapping(self):
        # Day 0: crash at 0.1 d, down until 0.35 d. Day 1: crash at
        # 1.5 d — past the rebirth, so both events survive, in order.
        injector = FaultInjector(
            FaultPlan(churn_rate=1.0, churn_downtime_days=0.25), run_seed=0
        )
        injector._rng_churn = _ScriptedRng([0.0, 0.1, 0.0, 0.5])
        schedule = injector.churn_schedule([NodeId(1)], 2)
        assert len(schedule) == 2
        (n1, at1, re1), (n2, at2, re2) = schedule
        assert n1 == n2 == NodeId(1)
        assert at1 == pytest.approx(0.1 * DAY)
        assert at2 == pytest.approx(1.5 * DAY)
        assert at2 >= re1

    def test_repeated_churn_same_node_overlapping_is_skipped(self):
        # Downtime of 2 days swallows day 1's draw (1.2 d < 2.1 d):
        # the second crash would land while already down and is skipped.
        injector = FaultInjector(
            FaultPlan(churn_rate=1.0, churn_downtime_days=2.0), run_seed=0
        )
        injector._rng_churn = _ScriptedRng([0.0, 0.1, 0.0, 0.2])
        schedule = injector.churn_schedule([NodeId(1)], 2)
        assert len(schedule) == 1
        assert schedule[0][0] == NodeId(1)

    def test_rebirth_past_sim_end_leaves_node_down(self):
        # Downtime far beyond the horizon: every node crashes once and
        # no rebirth event ever fires inside the run.
        plan = FaultPlan(churn_rate=1.0, churn_downtime_days=100.0)
        result = Simulation(small_trace(), small_config(faults=plan)).run()
        assert result.counters["faults.crashes"] > 0
        assert result.counters["faults.rebirths"] == 0


class TestContactBudgetScaled:
    def test_identity_scale_returns_self(self):
        budget = ContactBudget(3, 3)
        assert budget.scaled(1.0) is budget
        assert budget.scaled(2.0) is budget

    def test_fractional_scale_floors(self):
        assert ContactBudget(3, 5).scaled(0.5) == ContactBudget(1, 2)
        assert ContactBudget(1, 1).scaled(0.1) == ContactBudget(0, 0)

    def test_negative_scale_rejected(self):
        with pytest.raises(ValueError):
            ContactBudget(3, 3).scaled(-0.5)


# -------------------------------------------------- engine-level fault wiring


class FaultHarness:
    """A hand-wired engine with an active fault injector."""

    def __init__(self, registry, plan: FaultPlan, num_nodes: int = 4) -> None:
        self.states = {
            NodeId(i): make_node(registry, node=i) for i in range(num_nodes)
        }
        self.metrics = MetricsCollector()
        self.injector = FaultInjector(plan, run_seed=0)
        self.engine = MobileBitTorrent(
            self.states,
            MetadataServer(),
            FileServer(),
            self.metrics,
            ProtocolConfig(),
            faults=self.injector,
        )


class TestCorruptedBroadcast:
    """Satellite: a corrupted piece is rejected by every clique receiver."""

    def test_rejected_by_all_receivers_and_never_stored(self, registry):
        h = FaultHarness(registry, FaultPlan(corruption_rate=1.0))
        record = make_metadata(registry)
        from repro.catalog.files import piece_payload

        sender = h.states[NodeId(0)]
        sender.accept_metadata(record, 0.0)
        sender.accept_piece(
            record.uri, 0, piece_payload(record.uri, 0), record.checksums[0]
        )
        h.engine.handle_contact(clique_contact(0.0, 60.0, [0, 1, 2, 3]), 0.0)

        for i in (1, 2, 3):
            state = h.states[NodeId(i)]
            assert state.pieces.pieces_of(record.uri) == frozenset()

        rejections = sum(
            h.states[NodeId(i)].stats.checksum_rejections for i in (1, 2, 3)
        )
        assert rejections > 0
        assert h.injector.counters["corrupt_receipts"] == rejections
        assert h.injector.counters["pieces_corrupted"] >= 1
        # The sender's copy is untouched — only the transmission was hit.
        assert sender.pieces.pieces_of(record.uri) == {0}


class TestChurnWiring:
    def test_crash_wipes_and_mutes_then_rebirth_restores(self, registry):
        h = FaultHarness(registry, FaultPlan(churn_rate=0.5), num_nodes=3)
        record = make_metadata(registry)
        h.states[NodeId(1)].accept_metadata(record, 0.0)
        h.engine.crash_node(NodeId(1), wipe=True)
        assert h.engine.down_nodes == frozenset({NodeId(1)})
        assert record.uri not in h.states[NodeId(1)].metadata
        assert h.injector.counters["crashes"] == 1

        # A pair contact with the crashed node is skipped entirely.
        h.states[NodeId(0)].accept_metadata(record, 0.0)
        h.engine.handle_contact(pair_contact(10.0, 70.0, 0, 1), 10.0)
        assert record.uri not in h.states[NodeId(1)].metadata
        assert h.injector.counters["contacts_skipped_down"] == 1

        # A clique contact proceeds among the survivors.
        h.engine.handle_contact(clique_contact(100.0, 160.0, [0, 1, 2]), 100.0)
        assert record.uri in h.states[NodeId(2)].metadata
        assert record.uri not in h.states[NodeId(1)].metadata

        h.engine.revive_node(NodeId(1))
        assert h.engine.down_nodes == frozenset()
        assert h.injector.counters["rebirths"] == 1
        h.engine.handle_contact(pair_contact(200.0, 260.0, 0, 1), 200.0)
        assert record.uri in h.states[NodeId(1)].metadata

    def test_crash_without_wipe_keeps_stores(self, registry):
        h = FaultHarness(registry, FaultPlan(churn_rate=0.5, wipe_on_crash=False))
        record = make_metadata(registry)
        h.states[NodeId(1)].accept_metadata(record, 0.0)
        h.engine.crash_node(NodeId(1), wipe=False)
        assert record.uri in h.states[NodeId(1)].metadata

    def test_double_crash_counts_once(self, registry):
        h = FaultHarness(registry, FaultPlan(churn_rate=0.5))
        h.engine.crash_node(NodeId(0), wipe=True)
        h.engine.crash_node(NodeId(0), wipe=True)
        assert h.injector.counters["crashes"] == 1


class TestNodeWipe:
    def test_wipe_clears_learned_state_keeps_own_queries(self, registry):
        node = make_node(registry, node=1)
        record = make_metadata(registry)
        from repro.catalog.files import piece_payload

        node.accept_metadata(record, 0.0)
        node.accept_piece(
            record.uri, 0, piece_payload(record.uri, 0), record.checksums[0]
        )
        query = make_query(1, record.uri, ["island"])
        node.add_own_query(query)

        node.wipe()
        assert record.uri not in node.metadata
        assert node.pieces.pieces_of(record.uri) == frozenset()
        assert query in node.own_queries(10.0)


# -------------------------------------------------------------- whole-sim runs


class TestSimulationFaults:
    def test_clean_run_has_no_fault_keys(self):
        result = Simulation(small_trace(), small_config()).run()
        assert not any(k.startswith("faults.") for k in result.extra)
        assert "events_fault" not in result.extra

    def test_clean_plan_seed_does_not_change_results(self):
        # An all-zero plan never instantiates an injector, whatever its
        # seed — results are bitwise identical to the default config.
        base = Simulation(small_trace(), small_config()).run()
        reseeded = Simulation(
            small_trace(), small_config(faults=FaultPlan(seed=99))
        ).run()
        assert reseeded.to_dict() == base.to_dict()

    def test_fault_runs_are_reproducible(self):
        plan = FaultPlan(
            loss_rate=0.2,
            corruption_rate=0.2,
            contact_drop_rate=0.1,
            contact_truncation_rate=0.2,
            churn_rate=0.1,
        )
        first = Simulation(small_trace(), small_config(faults=plan)).run()
        second = Simulation(small_trace(), small_config(faults=plan)).run()
        assert first.to_dict() == second.to_dict()

    def test_loss_degrades_delivery(self):
        clean = Simulation(small_trace(), small_config()).run()
        lossy = Simulation(
            small_trace(), small_config(faults=FaultPlan(loss_rate=0.5))
        ).run()
        assert lossy.file_delivery_ratio <= clean.file_delivery_ratio
        assert lossy.extra["faults.metadata_losses"] > 0
        assert lossy.extra["faults.piece_losses"] > 0

    def test_total_loss_kills_dtn_transfers(self):
        result = Simulation(
            small_trace(),
            small_config(faults=FaultPlan(loss_rate=1.0), internet_access_fraction=0.0),
        ).run()
        # Nothing can cross a contact; only Internet syncs could deliver
        # and there are no access nodes.
        assert result.extra["metadata_transmissions"] == 0 or (
            result.metadata_delivery_ratio == 0.0
        )
        assert result.file_delivery_ratio == 0.0

    def test_full_contact_drop_processes_no_contacts(self):
        result = Simulation(
            small_trace(), small_config(faults=FaultPlan(contact_drop_rate=1.0))
        ).run()
        assert result.extra["contacts_processed"] > 0  # offered by the trace…
        assert result.extra["cliques_processed"] == 0  # …but none survives
        assert result.extra["faults.contacts_dropped"] > 0

    def test_corruption_counter_matches_checksum_rejections(self):
        sim = Simulation(
            small_trace(), small_config(faults=FaultPlan(corruption_rate=1.0))
        )
        result = sim.run()
        rejections = sum(
            state.stats.checksum_rejections for state in sim.states.values()
        )
        assert result.extra["faults.corrupt_receipts"] == rejections
        # With every transmission corrupted, no file crosses a contact.
        assert all(
            state.stats.files_completed == 0
            for node, state in sim.states.items()
            if node not in sim.access_nodes
        )

    def test_churn_counters_fire(self):
        result = Simulation(
            small_trace(),
            small_config(faults=FaultPlan(churn_rate=0.5, churn_downtime_days=0.2)),
        ).run()
        assert result.extra["faults.crashes"] > 0
        assert result.extra["faults.rebirths"] <= result.extra["faults.crashes"]
        assert result.extra["events_fault"] > 0

    def test_max_events_budget_aborts_run(self):
        with pytest.raises(SimulationError, match="event budget exhausted"):
            Simulation(small_trace(), small_config(max_events=3)).run()

    def test_generous_max_events_is_harmless(self):
        base = Simulation(small_trace(), small_config()).run()
        budgeted = Simulation(
            small_trace(), small_config(max_events=1_000_000)
        ).run()
        assert budgeted.to_dict() == base.to_dict()
