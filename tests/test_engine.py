"""Unit tests for the discrete-event engine."""

from __future__ import annotations

import pytest

from repro.sim.engine import EventQueue, SimulationError, Simulator


class TestEventQueue:
    def test_empty_queue_is_falsy(self):
        queue = EventQueue()
        assert not queue
        assert len(queue) == 0
        assert queue.peek_time() is None

    def test_pop_returns_earliest(self):
        queue = EventQueue()
        queue.push(5.0, lambda: None)
        queue.push(1.0, lambda: None)
        queue.push(3.0, lambda: None)
        assert queue.pop().time == 1.0
        assert queue.pop().time == 3.0
        assert queue.pop().time == 5.0

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_priority_breaks_time_ties(self):
        queue = EventQueue()
        queue.push(1.0, lambda: None, priority=2)
        queue.push(1.0, lambda: None, priority=0)
        queue.push(1.0, lambda: None, priority=1)
        priorities = [queue.pop().priority for _ in range(3)]
        assert priorities == [0, 1, 2]

    def test_fifo_among_equal_time_and_priority(self):
        # The heap stores plain tuples; push/pop return equal (not
        # identical) Event handles for the same scheduled callback.
        queue = EventQueue()
        first = queue.push(1.0, lambda: None)
        second = queue.push(1.0, lambda: None)
        assert queue.pop() == first
        assert queue.pop() == second
        assert first.sequence < second.sequence

    def test_peek_time_does_not_pop(self):
        queue = EventQueue()
        queue.push(2.0, lambda: None)
        assert queue.peek_time() == 2.0
        assert len(queue) == 1


class TestSimulator:
    def test_runs_events_in_time_order(self):
        sim = Simulator()
        seen = []
        sim.schedule(2.0, lambda: seen.append("b"))
        sim.schedule(1.0, lambda: seen.append("a"))
        sim.schedule(3.0, lambda: seen.append("c"))
        sim.run()
        assert seen == ["a", "b", "c"]

    def test_clock_advances_to_event_times(self):
        sim = Simulator()
        times = []
        sim.schedule(1.5, lambda: times.append(sim.now))
        sim.schedule(4.0, lambda: times.append(sim.now))
        sim.run()
        assert times == [1.5, 4.0]

    def test_cannot_schedule_in_the_past(self):
        sim = Simulator(start_time=10.0)
        with pytest.raises(SimulationError):
            sim.schedule(5.0, lambda: None)

    def test_schedule_after_negative_delay_raises(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule_after(-1.0, lambda: None)

    def test_schedule_after_relative_to_now(self):
        sim = Simulator(start_time=100.0)
        fired = []
        sim.schedule_after(5.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [105.0]

    def test_events_can_schedule_followups(self):
        sim = Simulator()
        seen = []

        def first():
            seen.append("first")
            sim.schedule_after(1.0, lambda: seen.append("second"))

        sim.schedule(1.0, first)
        sim.run()
        assert seen == ["first", "second"]

    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda: seen.append(1))
        sim.schedule(10.0, lambda: seen.append(10))
        sim.run(until=5.0)
        assert seen == [1]
        assert sim.now == 5.0
        assert sim.pending_events == 1

    def test_run_until_includes_events_at_bound(self):
        sim = Simulator()
        seen = []
        sim.schedule(5.0, lambda: seen.append(5))
        sim.run(until=5.0)
        assert seen == [5]

    def test_step_returns_false_when_empty(self):
        assert Simulator().step() is False

    def test_events_executed_counter(self):
        sim = Simulator()
        for t in (1.0, 2.0, 3.0):
            sim.schedule(t, lambda: None)
        sim.run()
        assert sim.events_executed == 3

    def test_schedule_every_fires_periodically(self):
        sim = Simulator()
        fired = []
        sim.schedule_every(10.0, lambda: fired.append(sim.now), start=0.0, until=35.0)
        sim.run()
        assert fired == [0.0, 10.0, 20.0, 30.0]

    def test_schedule_every_default_start(self):
        sim = Simulator()
        fired = []
        sim.schedule_every(5.0, lambda: fired.append(sim.now), until=16.0)
        sim.run()
        assert fired == [5.0, 10.0, 15.0]

    def test_schedule_every_rejects_bad_interval(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule_every(0.0, lambda: None)

    def test_priority_orders_simultaneous_events(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda: seen.append("low"), priority=5)
        sim.schedule(1.0, lambda: seen.append("high"), priority=0)
        sim.run()
        assert seen == ["high", "low"]

    def test_drain_yields_unexecuted_events_in_order(self):
        sim = Simulator()
        sim.schedule(3.0, lambda: None)
        sim.schedule(1.0, lambda: None)
        times = [event.time for event in sim.drain()]
        assert times == [1.0, 3.0]
        assert sim.pending_events == 0
